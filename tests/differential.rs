//! Randomized differential harness: every scheme, under both stitch
//! policies, must agree bit-for-bit with the sequential reference — end
//! state, accept decision, per-chunk end states, and match counts — over
//! random machines, random and adversarial inputs, and chunk counts from a
//! single chunk up to dozens of thread blocks.
//!
//! The generated machines span the whole structural range (permutation-ish
//! machines that defeat speculation, convergent machines that reward it,
//! and everything between), so this is the lockdown for the occupancy-sized
//! grid launches and the parallel tree stitch: any seam the stitch composes
//! or re-resolves incorrectly shows up as a chunk-end mismatch.

use gspecpal::config::{SchemeConfig, StitchPolicy};
use gspecpal::run::SchemeKind;
use gspecpal::schemes::{compose_mappings, run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{FaultPlan, RecoveryConfig};
use gspecpal_fsm::random::{random_dfa, random_input};
use gspecpal_fsm::{Dfa, FrequencyProfile};
use gspecpal_gpu::DeviceSpec;
use proptest::prelude::*;

/// Runs every scheme under both stitch policies against the sequential
/// reference (and the host-side DFA walk, which never touches the
/// simulator) on the given table.
fn check_all(d: &Dfa, table: &DeviceTable<'_>, input: &[u8], n_chunks: usize, spec: &DeviceSpec) {
    let truth_end = d.run(input);
    for policy in [StitchPolicy::Sequential, StitchPolicy::Tree] {
        let config = SchemeConfig {
            n_chunks,
            count_matches: true,
            stitch: policy,
            ..SchemeConfig::default()
        };
        let job = Job::new(spec, table, input, config).unwrap();
        let reference = run_scheme(SchemeKind::Sequential, &job);
        assert_eq!(reference.end_state, truth_end, "sequential reference must match the DFA");
        for kind in SchemeKind::all() {
            let out = run_scheme(kind, &job);
            let ctx = format!("{kind:?} / {policy:?} / n_chunks={n_chunks}");
            assert_eq!(out.end_state, reference.end_state, "end state: {ctx}");
            assert_eq!(out.accepted, reference.accepted, "accept bit: {ctx}");
            assert_eq!(out.chunk_ends, reference.chunk_ends, "chunk ends: {ctx}");
            assert_eq!(out.match_count, reference.match_count, "match count: {ctx}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn schemes_match_sequential_reference(
        seed in 0u64..1_000_000,
        n_states in 2u32..24,
        n_classes in 1u16..8,
        len in 64usize..512,
        adversarial in 0u8..2,
    ) {
        let d = random_dfa(seed, n_states, n_classes);
        let input: Vec<u8> = if adversarial == 1 {
            // Periodic input: a short random pattern repeated. Every chunk
            // then sees near-identical content, the worst case for
            // speculation diversity (all queues rank the same states).
            let pat = random_input(seed ^ 0xDEAD, 7);
            pat.iter().copied().cycle().take(len).collect()
        } else {
            random_input(seed, len)
        };
        let table = DeviceTable::transformed(&d, d.n_states());
        let spec = DeviceSpec::test_unit();
        // From one chunk through several thread blocks (the test device fits
        // ~24 verification chunks per block).
        for n_chunks in [1usize, 2, 7, 31, 64, 150] {
            check_all(&d, &table, &input, n_chunks.min(input.len()), &spec);
        }
    }
}

/// Chaos leg: every scheme under both stitch policies with a seeded fault
/// plan must still agree bit-for-bit with the sequential reference — faults
/// only ever add cycles (charged to `Phase::Recovery`), never change
/// answers — and the per-phase cycle split must stay an exact partition of
/// the total.
fn check_all_chaos(
    d: &Dfa,
    table: &DeviceTable<'_>,
    input: &[u8],
    n_chunks: usize,
    spec: &DeviceSpec,
    plan: FaultPlan,
    recovery: RecoveryConfig,
) {
    let truth_end = d.run(input);
    for policy in [StitchPolicy::Sequential, StitchPolicy::Tree] {
        let clean_config = SchemeConfig {
            n_chunks,
            count_matches: true,
            stitch: policy,
            ..SchemeConfig::default()
        };
        let chaos_config = SchemeConfig { faults: Some(plan), recovery, ..clean_config };
        let clean_job = Job::new(spec, table, input, clean_config).unwrap();
        let chaos_job = Job::new(spec, table, input, chaos_config).unwrap();
        let reference = run_scheme(SchemeKind::Sequential, &clean_job);
        assert_eq!(reference.end_state, truth_end);
        for kind in SchemeKind::all() {
            let clean = run_scheme(kind, &clean_job);
            let out = run_scheme(kind, &chaos_job);
            let ctx = format!("{kind:?} / {policy:?} / n_chunks={n_chunks} / {plan:?}");
            assert_eq!(out.end_state, reference.end_state, "end state: {ctx}");
            assert_eq!(out.accepted, reference.accepted, "accept bit: {ctx}");
            assert_eq!(out.chunk_ends, reference.chunk_ends, "chunk ends: {ctx}");
            assert_eq!(out.match_count, reference.match_count, "match count: {ctx}");
            // Aborts/watchdogs only ever add cycles. Corruption can shift
            // the verification path itself (a skewed block incoming may by
            // luck match where the clean one missed), so the monotonicity
            // claim only holds for non-corrupting plans.
            if plan.corrupt_permille == 0 {
                assert!(
                    out.total_cycles() >= clean.total_cycles(),
                    "faults only add cycles: {ctx} ({} < {})",
                    out.total_cycles(),
                    clean.total_cycles(),
                );
            }
            let profile = out.phase_profile();
            assert_eq!(
                profile.total_cycles(),
                out.total_cycles(),
                "phase cycles must partition the total exactly: {ctx}"
            );
            assert!(
                profile.get(gspecpal_gpu::Phase::Recovery).cycles >= out.fault_cycles(),
                "fault overhead is charged inside Phase::Recovery: {ctx}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn schemes_survive_random_fault_plans(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        n_states in 2u32..16,
        n_classes in 1u16..6,
        len in 64usize..384,
        rate in prop_oneof![Just(10u32), Just(100u32), Just(500u32)],
        watchdog in prop_oneof![Just(0u64), Just(1u64), Just(50_000u64)],
        max_retries in 0u32..4,
    ) {
        let d = random_dfa(seed, n_states, n_classes);
        let input = random_input(seed, len);
        let table = DeviceTable::transformed(&d, d.n_states());
        let spec = DeviceSpec::test_unit();
        let plan = FaultPlan { watchdog_cycles: watchdog, ..FaultPlan::chaos(fault_seed, rate) };
        let recovery = RecoveryConfig { max_retries, ..RecoveryConfig::default() };
        for n_chunks in [1usize, 7, 64, 150] {
            check_all_chaos(&d, &table, &input, n_chunks.min(input.len()), &spec, plan, recovery);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// SFA's tree stitch composes chunk mappings in log2(B) order instead of
    /// left-to-right, which is only legal because mapping composition is
    /// function composition and therefore associative. Pin that down on
    /// random mappings directly, independent of any engine run.
    #[test]
    fn mapping_composition_is_associative(
        n_states in 1usize..64,
        seed in 0u64..1_000_000,
    ) {
        // Three random (not necessarily injective) mappings over the same
        // state space, derived from a splitmix-style scramble of the seed.
        let mapping = |salt: u64| -> Vec<u32> {
            (0..n_states)
                .map(|q| {
                    let mut x = seed ^ salt ^ (q as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    x ^= x >> 30;
                    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    x ^= x >> 27;
                    (x % n_states as u64) as u32
                })
                .collect()
        };
        let (a, b, c) = (mapping(1), mapping(2), mapping(3));
        let left = compose_mappings(&compose_mappings(&a, &b), &c);
        let right = compose_mappings(&a, &compose_mappings(&b, &c));
        prop_assert_eq!(left, right);
        // Identity is a unit on both sides.
        let id: Vec<u32> = (0..n_states as u32).collect();
        prop_assert_eq!(compose_mappings(&id, &a), a.clone());
        prop_assert_eq!(compose_mappings(&a, &id), a);
    }
}

/// Chaos runs are bit-identical at every rayon pool size: the fault overlay
/// is a pure function of the plan and launch coordinates, never of thread
/// scheduling.
#[test]
fn chaos_outcomes_are_pool_size_invariant() {
    let spec = DeviceSpec::test_unit();
    let d = random_dfa(13, 10, 4);
    let input = random_input(13, 4096);
    let table = DeviceTable::transformed(&d, d.n_states());
    let config = SchemeConfig {
        n_chunks: 1024,
        count_matches: true,
        faults: Some(FaultPlan { watchdog_cycles: 20_000, ..FaultPlan::chaos(99, 200) }),
        ..SchemeConfig::default()
    };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    for kind in SchemeKind::all() {
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| run_scheme(kind, &job));
        for threads in [2usize, 4, 8] {
            let out = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| run_scheme(kind, &job));
            let ctx = format!("{kind:?} / {threads} threads");
            assert_eq!(out.end_state, reference.end_state, "{ctx}");
            assert_eq!(out.chunk_ends, reference.chunk_ends, "{ctx}");
            assert_eq!(out.predict, reference.predict, "predict stats: {ctx}");
            assert_eq!(out.execute, reference.execute, "execute stats: {ctx}");
            assert_eq!(out.verify, reference.verify, "verify stats: {ctx}");
        }
    }
}

/// Deterministic large-grid leg of the harness: ≥64 thread blocks, both
/// stitch paths, every scheme bit-exact against the sequential reference.
#[test]
fn all_schemes_exact_at_64_plus_blocks() {
    let spec = DeviceSpec::test_unit();
    let d = random_dfa(7, 12, 5);
    let input = random_input(7, 8192);
    let table = DeviceTable::transformed(&d, d.n_states());
    let n_chunks = 2048;
    let config = SchemeConfig { n_chunks, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    assert!(
        job.vr_dims(n_chunks).len() >= 64,
        "scenario must span at least 64 blocks, got {}",
        job.vr_dims(n_chunks).len()
    );
    check_all(&d, &table, &input, n_chunks, &spec);
}

/// The hashed table layout goes through the same stitch machinery; a
/// multi-block run must stay exact there too.
#[test]
fn hashed_layout_exact_across_blocks() {
    let spec = DeviceSpec::test_unit();
    let d = random_dfa(11, 16, 6);
    let input = random_input(11, 2000);
    let profile = FrequencyProfile::collect(&d, &input[..500]);
    let table = DeviceTable::hashed(&d, &profile, d.n_states() / 2);
    check_all(&d, &table, &input, 96, &spec);
}
