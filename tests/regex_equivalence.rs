//! Cross-validation of the regex compiler: compiled DFAs agree with direct
//! NFA simulation and with brute-force search semantics on randomized
//! pattern/input pairs.

use gspecpal_fsm::minimize::minimize;
use gspecpal_fsm::subset::determinize;
use gspecpal_regex::thompson::ThompsonCompiler;
use gspecpal_regex::{compile, compile_set, parse, CompileConfig, MatchSemantics};
use proptest::prelude::*;

/// A strategy producing simple-but-varied regex strings from a safe grammar.
fn regex_strategy() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        "[a-d]", // literal-ish class
        Just(".".to_string()),
        Just("a".to_string()),
        Just("b".to_string()),
        Just("cd".to_string()),
        Just("[^a]".to_string()),
        Just(r"\d".to_string()),
    ];
    let unit = (atom, prop_oneof![Just(""), Just("*"), Just("+"), Just("?"), Just("{1,3}")])
        .prop_map(|(a, r)| {
            if r.is_empty() || a.len() == 1 || a.starts_with('[') || a.starts_with('\\') {
                format!("{a}{r}")
            } else {
                format!("({a}){r}")
            }
        });
    prop::collection::vec(unit, 1..4).prop_map(|units| units.join(""))
}

fn input_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'd'), Just(b'1'), Just(b'z')],
        0..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn anchored_dfa_agrees_with_nfa_simulation(
        pattern in regex_strategy(),
        input in input_strategy(),
    ) {
        let ast = parse(&pattern).expect("grammar emits valid patterns");
        let nfa = ThompsonCompiler::new().compile(std::slice::from_ref(&ast), false);
        let dfa = compile(
            &pattern,
            CompileConfig { semantics: MatchSemantics::Anchored, ..Default::default() },
        )
        .expect("compiles");
        prop_assert_eq!(nfa.accepts(&input), dfa.accepts(&input), "pattern {}", pattern);
    }

    #[test]
    fn search_dfa_matches_bruteforce_windows(
        pattern in regex_strategy(),
        input in input_strategy(),
    ) {
        let anchored = compile(
            &pattern,
            CompileConfig { semantics: MatchSemantics::Anchored, ..Default::default() },
        )
        .expect("compiles");
        let search = compile(&pattern, CompileConfig::default()).expect("compiles");
        // The search DFA accepts after position i iff some window ending at
        // i — including the empty window, since patterns like `a*` contain
        // ε — is in the anchored language.
        let matches_empty = anchored.accepts(b"");
        let mut s = search.start();
        for i in 0..input.len() {
            s = search.next(s, input[i]);
            let brute = matches_empty || (0..=i).any(|j| anchored.accepts(&input[j..=i]));
            prop_assert_eq!(
                search.is_accepting(s),
                brute,
                "pattern {} at position {}", pattern, i
            );
        }
    }

    #[test]
    fn minimization_preserves_search_language(
        pattern in regex_strategy(),
        input in input_strategy(),
    ) {
        let raw = compile(
            &pattern,
            CompileConfig { minimize: false, ..Default::default() },
        )
        .expect("compiles");
        let min = minimize(&raw);
        prop_assert!(min.n_states() <= raw.n_states());
        prop_assert!(
            gspecpal_fsm::equivalence::equivalent(&raw, &min).is_equal(),
            "pattern {}", pattern
        );
        prop_assert_eq!(raw.count_matches(&input), min.count_matches(&input));
    }

    #[test]
    fn determinize_then_minimize_is_idempotent(
        pattern in regex_strategy(),
    ) {
        let ast = parse(&pattern).expect("valid");
        let nfa = ThompsonCompiler::new().compile(std::slice::from_ref(&ast), true);
        let dfa = determinize(&nfa).expect("fits");
        let m1 = minimize(&dfa);
        let m2 = minimize(&m1);
        prop_assert_eq!(m1.n_states(), m2.n_states(), "pattern {}", pattern);
    }

    #[test]
    fn pretty_printer_round_trips(
        pattern in regex_strategy(),
    ) {
        // parse -> print -> parse -> compile must give the same language as
        // the original compile (checked exactly via DFA equivalence).
        let ast = parse(&pattern).expect("valid");
        let printed = ast.to_pattern();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed pattern {printed:?} fails to parse: {e}"));
        let d1 = compile(&pattern, CompileConfig::default()).expect("compiles");
        let d2 = gspecpal_regex::compile_asts(
            std::slice::from_ref(&reparsed),
            CompileConfig::default(),
        )
        .expect("compiles");
        prop_assert!(
            gspecpal_fsm::equivalence::equivalent(&d1, &d2).is_equal(),
            "pattern {} printed as {}", pattern, printed
        );
    }

    #[test]
    fn disjunction_equals_union_of_matches(
        p1 in regex_strategy(),
        p2 in regex_strategy(),
        input in input_strategy(),
    ) {
        let d1 = compile(&p1, CompileConfig::default()).expect("compiles");
        let d2 = compile(&p2, CompileConfig::default()).expect("compiles");
        let both = compile_set(&[p1.as_str(), p2.as_str()], CompileConfig::default())
            .expect("compiles");
        // At every position: the set machine accepts iff either accepts.
        let (mut s1, mut s2, mut sb) = (d1.start(), d2.start(), both.start());
        for (i, &b) in input.iter().enumerate() {
            s1 = d1.next(s1, b);
            s2 = d2.next(s2, b);
            sb = both.next(sb, b);
            prop_assert_eq!(
                both.is_accepting(sb),
                d1.is_accepting(s1) || d2.is_accepting(s2),
                "{} | {} at {}", p1, p2, i
            );
        }
    }
}
