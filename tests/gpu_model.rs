//! Integration tests of the simulator's cost model: the properties the
//! reproduction's conclusions rest on, checked end-to-end.

use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::{DeviceTable, REGION_INPUT};
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::examples::{div7, ones_counter};
use gspecpal_fsm::random::{random_dfa, random_input};
use gspecpal_gpu::{launch, DeviceSpec, RoundKernel, RoundOutcome, ThreadCtx};

/// Scheme runs are bit-for-bit deterministic: same job, same cycles, same
/// counters, across repeated executions.
#[test]
fn simulation_is_deterministic() {
    let d = ones_counter(9, &[0]);
    let input: Vec<u8> = b"0110110101".repeat(500);
    let spec = DeviceSpec::rtx3090();
    let table = DeviceTable::transformed(&d, d.n_states());
    let config = SchemeConfig { n_chunks: 64, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    let a = run_scheme(SchemeKind::Nf, &job);
    let b = run_scheme(SchemeKind::Nf, &job);
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.verify.global_transactions, b.verify.global_transactions);
    assert_eq!(a.verify.round_durations, b.verify.round_durations);
    assert_eq!(a.verification_matches, b.verification_matches);
}

/// Sequential execution cost scales linearly with input length (per-byte
/// work is constant).
#[test]
fn sequential_cost_is_linear_in_input() {
    let d = div7();
    let spec = DeviceSpec::rtx3090();
    let table = DeviceTable::transformed(&d, d.n_states());
    let config = SchemeConfig { n_chunks: 1, ..SchemeConfig::default() };

    let short: Vec<u8> = b"10".repeat(1000);
    let long: Vec<u8> = b"10".repeat(4000);
    let a = run_scheme(SchemeKind::Sequential, &Job::new(&spec, &table, &short, config).unwrap());
    let b = run_scheme(SchemeKind::Sequential, &Job::new(&spec, &table, &long, config).unwrap());
    let ratio = b.total_cycles() as f64 / a.total_cycles() as f64;
    assert!((3.5..4.5).contains(&ratio), "4x input gave {ratio:.2}x cycles");
}

/// Cold transition tables cost more than resident ones: evicting the hot
/// rows of a large machine (whose rows don't all fit in the per-round
/// cache window) slows the identical run down.
#[test]
fn cold_tables_are_slower() {
    let d = random_dfa(3, 2000, 12);
    let input = random_input(4, 4000);
    let spec = DeviceSpec::rtx3090();
    let config = SchemeConfig { n_chunks: 32, ..SchemeConfig::default() };

    let hot_table = DeviceTable::transformed(&d, d.n_states());
    let cold_table = DeviceTable::transformed(&d, 0);
    let hot =
        run_scheme(SchemeKind::Sequential, &Job::new(&spec, &hot_table, &input, config).unwrap());
    let cold =
        run_scheme(SchemeKind::Sequential, &Job::new(&spec, &cold_table, &input, config).unwrap());
    assert_eq!(hot.end_state, cold.end_state);
    assert!(
        cold.total_cycles() > hot.total_cycles() * 2,
        "cold {} vs hot {}",
        cold.total_cycles(),
        hot.total_cycles()
    );
}

/// Warp coalescing: threads streaming the same region in lockstep issue far
/// fewer transactions than threads streaming disjoint regions.
#[test]
fn coalescing_reduces_transactions() {
    struct SameChunk;
    impl RoundKernel for SameChunk {
        fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            for pos in 0..256u64 {
                ctx.global(REGION_INPUT, pos, 1);
            }
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }
    struct DisjointChunks;
    impl RoundKernel for DisjointChunks {
        fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            let base = tid as u64 * 4096;
            for pos in 0..256u64 {
                ctx.global(REGION_INPUT, base + pos, 1);
            }
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }
    let spec = DeviceSpec::rtx3090();
    let same = launch(&spec, 32, &mut SameChunk);
    let disjoint = launch(&spec, 32, &mut DisjointChunks);
    // One warp on the same 256 bytes: 8 segments total; on disjoint chunks:
    // 8 segments per thread.
    assert_eq!(same.global_transactions, 8);
    assert_eq!(disjoint.global_transactions, 8 * 32);
    // Per-thread compute is identical (cache hits cost the same either
    // way); the transaction difference shows in the bandwidth floor once
    // rounds are memory-bound, and always in the counters.
    assert!(same.cycles <= disjoint.cycles);
    assert!(same.global_coalesced_hits > disjoint.global_coalesced_hits);
}

/// The barrier rule: a single slow thread stalls the whole block round.
#[test]
fn slowest_thread_gates_the_round() {
    struct Uneven;
    impl RoundKernel for Uneven {
        fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu(if tid == 7 { 10_000 } else { 1 });
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }
    let spec = DeviceSpec::rtx3090();
    let stats = launch(&spec, 64, &mut Uneven);
    assert!(stats.cycles >= 10_000);
    assert_eq!(stats.rounds, 1);
}

/// The PM baseline's recovery really is serialized: its verification kernel
/// takes one round per miss, each round as long as a chunk execution.
#[test]
fn pm_sequential_recovery_rounds_cost_chunk_time() {
    let d = ones_counter(9, &[0]); // queue depth 9 > spec-4 -> frequent misses
                                   // Pseudo-random bits so boundary contexts don't repeat periodically.
    let input: Vec<u8> =
        random_input(9, 6400).into_iter().map(|b| if b & 1 == 1 { b'1' } else { b'0' }).collect();
    let spec = DeviceSpec::rtx3090();
    let table = DeviceTable::transformed(&d, d.n_states());
    let config = SchemeConfig { n_chunks: 64, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    let out = run_scheme(SchemeKind::Pm, &job);
    let misses = out.recovery_runs();
    assert!(misses > 10);
    // Each sequential recovery round costs at least one chunk execution
    // (input_len / n_chunks steps at ≥2 cycles each is a safe floor).
    let chunk_floor = (input.len() as u64 / 64) * 2;
    assert!(
        out.verify.cycles > misses * chunk_floor,
        "verify {} vs {} misses x {} floor",
        out.verify.cycles,
        misses,
        chunk_floor
    );
}
