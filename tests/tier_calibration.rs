//! Guards on the workload suite's calibration: each tier must keep the
//! structural properties the Fig 8 / Table III shapes depend on. If a
//! workload change breaks one of these, the reproduction's headline numbers
//! drift — these tests catch it before the harness does.

use gspecpal::predict::lookback_queue;
use gspecpal::Selector;
use gspecpal_fsm::profile::unique_states_after;
use gspecpal_workloads::{build_suite, Benchmark, Tier};
use std::sync::OnceLock;

fn suite() -> &'static [Benchmark] {
    static SUITE: OnceLock<Vec<Benchmark>> = OnceLock::new();
    SUITE.get_or_init(|| build_suite(1))
}

const INPUT: usize = 96 * 1024;

/// Spec-k tier: the lookback candidate set at quiet boundaries is within
/// spec-4's reach and the machine does not converge (the counter phases
/// survive).
#[test]
fn spec_k_tier_has_shallow_queues() {
    let selector = Selector::default();
    for b in suite().iter().filter(|b| b.tier == Tier::SpecKFriendly) {
        let input = b.generate_input(INPUT, 0);
        let p = selector.profile(&b.dfa, &input);
        assert!(
            p.spec4_accuracy >= 0.9,
            "{}: spec-4 accuracy {:.2} too low for the PM-wins regime",
            b.name(),
            p.spec4_accuracy
        );
        assert!(
            !p.convergence.converges_strongly(b.dfa.n_states()),
            "{}: must not converge (the counter keeps its phases)",
            b.name()
        );
    }
}

/// Slow-convergence tier: total convergence after the window length, but a
/// 2-byte lookback leaves several uniform candidates.
#[test]
fn convergence_tier_converges_totally_but_predicts_poorly() {
    for b in suite().iter().filter(|b| b.tier == Tier::SlowConvergence) {
        let input = b.generate_input(INPUT, 0);
        // Any 3 consecutive symbols determine the state completely.
        let uniq = unique_states_after(&b.dfa, &input[100..103]);
        assert_eq!(uniq, 1, "{}: window machines converge after 3 symbols", b.name());
        // 2-byte lookback leaves the oldest window slot free.
        let q = lookback_queue(&b.dfa, &input[200..202]);
        assert!(
            q.initial_len() >= 5,
            "{}: lookback-2 must stay ambiguous ({} candidates)",
            b.name(),
            q.initial_len()
        );
    }
}

/// Non-convergent tier: the counter phases survive any window, and the
/// candidate set depth sits in the register-window regime (> 4, ≤ ~3×16) so
/// aggressive recovery is both necessary and sufficient.
#[test]
fn deep_tier_defeats_lookback_and_forwarding() {
    let selector = Selector::default();
    for b in suite().iter().filter(|b| b.tier == Tier::NonConvergent) {
        let input = b.generate_input(INPUT, 0);
        let p = selector.profile(&b.dfa, &input);
        assert!(p.spec4_accuracy < 0.9, "{}: spec-4 must miss ({:.2})", b.name(), p.spec4_accuracy);
        assert!(
            !p.convergence.converges_strongly(b.dfa.n_states()),
            "{}: must not converge",
            b.name()
        );
        assert!(
            p.convergence.mean_unique_states >= 5.0,
            "{}: counter phases must survive 10 steps ({:.1})",
            b.name(),
            p.convergence.mean_unique_states
        );
    }
}

/// Input-sensitive tier: per-portion spec-1 accuracy must spread widely
/// (easy regimes pin the counter, hard regimes churn it).
#[test]
fn sensitive_tier_shows_regime_spread() {
    let selector = Selector::default();
    let mut spreads = Vec::new();
    for b in suite().iter().filter(|b| b.tier == Tier::InputSensitive) {
        let input = b.generate_input(INPUT, 0);
        let p = selector.profile(&b.dfa, &input);
        spreads.push((b.name(), p.accuracy_spread));
    }
    // Most of the tier must clear the tree's sensitivity threshold.
    let cleared = spreads.iter().filter(|(_, s)| *s >= 0.35).count();
    assert!(
        cleared * 4 >= spreads.len() * 3,
        "only {cleared}/{} input-sensitive FSMs show spread: {spreads:?}",
        spreads.len()
    );
}

/// Every benchmark (outside the input-sensitive tier, whose regime
/// generators deliberately emit signature-free streams) fires at least one
/// match on a large-enough stream — the machines are recognizers of
/// something, not noise generators.
#[test]
fn benchmarks_eventually_match() {
    for b in suite().iter().filter(|b| b.tier != Tier::InputSensitive) {
        let input = b.generate_input(INPUT, 1);
        assert!(
            b.dfa.count_matches(&input) > 0,
            "{} never matched in {} KiB",
            b.name(),
            INPUT / 1024
        );
    }
}

/// Tier quotas per family stay as designed (Table II).
#[test]
fn tier_quotas_match_design() {
    use gspecpal_workloads::Family;
    for f in Family::all() {
        let tiers: Vec<Tier> = suite().iter().filter(|b| b.family == f).map(|b| b.tier).collect();
        assert_eq!(tiers.len(), 12, "{f}");
        let count = |t: Tier| tiers.iter().filter(|&&x| x == t).count();
        assert!(count(Tier::SpecKFriendly) >= 2, "{f} needs PM-friendly FSMs");
        assert!(count(Tier::SlowConvergence) >= 1, "{f} needs convergent FSMs");
        assert_eq!(
            count(Tier::InputSensitive),
            f.input_sensitive_quota(),
            "{f} input-sensitive quota"
        );
    }
}
