//! Crash-consistency properties of the serve-layer checkpoint path
//! (ISSUE 10 satellite): random engine configs × random checkpoint
//! boundaries × fault plans must round-trip `encode → decode` bit for
//! bit, resume to a `ServeReport` bit-identical to the uninterrupted
//! run, and reject corrupt or truncated checkpoint bytes as structured
//! errors — never panics.

use gspecpal::config::SchemeConfig;
use gspecpal_fsm::examples::{div7, mod_counter, ones_counter};
use gspecpal_fsm::Dfa;
use gspecpal_gpu::{DeviceSpec, FaultPlan};
use gspecpal_serve::{
    serve, serve_checkpoint, serve_resume, serve_until_crash, BatchPolicy, CheckpointOutcome,
    ControllerConfig, EngineCheckpoint, ReportDetail, ResidencyConfig, ServeConfig, ServeError,
    ServeMachine, Trace,
};
use proptest::prelude::*;

fn serve_dfas() -> Vec<Dfa> {
    vec![div7(), mod_counter(5, &[0]), ones_counter(3, &[1])]
}

fn serve_machines<'a>(spec: &DeviceSpec, dfas: &'a [Dfa]) -> Vec<ServeMachine<'a>> {
    dfas.iter().map(|dfa| ServeMachine::prepare(spec, dfa, &b"110100".repeat(64))).collect()
}

/// Maps proptest-drawn indices onto the config axes the checkpoint must
/// survive: every batch policy, faults on/off, the adaptive controller,
/// bounded-memory sketches, and the residency LRU.
fn config_at(
    policy: u8,
    faults: bool,
    controller: bool,
    bounded: bool,
    residency: bool,
) -> ServeConfig {
    let policy = match policy % 3 {
        0 => BatchPolicy::Fifo { batch: 4 },
        1 => BatchPolicy::Deadline { batch: 4, max_wait: 600 },
        _ => BatchPolicy::Adaptive { max_batch: 6 },
    };
    ServeConfig {
        policy,
        scheme_config: SchemeConfig {
            faults: faults
                .then(|| FaultPlan { copy_fail_permille: 150, ..FaultPlan::chaos(29, 90) }),
            ..SchemeConfig::default()
        },
        controller: controller.then(ControllerConfig::default),
        residency: residency.then_some(ResidencyConfig { capacity_bytes: 4096 }),
        detail: if bounded { ReportDetail::Bounded } else { ReportDetail::Full },
        ..ServeConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The hard guarantee: checkpoint at any quiescent batch boundary,
    /// encode, decode, resume — and the final report is bit-identical to
    /// the run that was never interrupted, across every policy, fault
    /// plan, controller, detail level, and residency setting.
    #[test]
    fn checkpoint_resume_is_bit_identical_to_the_uninterrupted_run(
        seed in 0u64..1_000,
        n_streams in 8usize..36,
        at_batch in 0usize..10,
        policy in 0u8..3,
        faults in 0u8..2,
        controller in 0u8..2,
        bounded in 0u8..2,
        residency in 0u8..2,
    ) {
        let spec = DeviceSpec::test_unit();
        let dfas = serve_dfas();
        let machines = serve_machines(&spec, &dfas);
        let cfg = config_at(policy, faults == 1, controller == 1, bounded == 1, residency == 1);
        let trace = Trace::synthetic(seed, n_streams, dfas.len(), 35, 8..80, b"01");
        let reference = serve(&spec, &machines, &trace, &cfg).unwrap();
        match serve_checkpoint(&spec, &machines, trace.source(), &cfg, at_batch).unwrap() {
            CheckpointOutcome::Completed(report) => prop_assert_eq!(*report, reference),
            CheckpointOutcome::Checkpoint(ck) => {
                // The wire format round-trips bit for bit.
                let bytes = ck.encode();
                let decoded = EngineCheckpoint::decode(&bytes).unwrap();
                prop_assert_eq!(&decoded, &*ck);
                prop_assert_eq!(decoded.encode(), bytes);
                // And resuming from it loses nothing.
                let resumed = serve_resume(&spec, &machines, trace.source(), &cfg, &ck).unwrap();
                prop_assert_eq!(resumed, reference);
            }
        }
    }

    /// Corrupt bytes are a structured `CorruptCheckpoint` error, never a
    /// panic: every truncation length and every single-bit flip at a
    /// random offset is rejected (the checksum net catches the flips the
    /// structural validators cannot).
    #[test]
    fn corrupt_checkpoint_bytes_are_structured_errors_never_panics(
        seed in 0u64..500,
        at_batch in 1usize..6,
        flip_byte in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let spec = DeviceSpec::test_unit();
        let dfas = serve_dfas();
        let machines = serve_machines(&spec, &dfas);
        let cfg = config_at(seed as u8, seed % 2 == 0, false, false, false);
        let trace = Trace::synthetic(seed, 24, dfas.len(), 30, 8..64, b"01");
        let outcome = serve_checkpoint(&spec, &machines, trace.source(), &cfg, at_batch).unwrap();
        if let CheckpointOutcome::Checkpoint(ck) = outcome {
            let bytes = ck.encode();
            let cut = seed as usize % bytes.len();
            match EngineCheckpoint::decode(&bytes[..cut]) {
                Err(ServeError::CorruptCheckpoint { .. }) => {}
                other => prop_assert!(false, "truncation at {} not rejected: {:?}", cut, other),
            }
            let mut flipped = bytes.clone();
            flipped[flip_byte % bytes.len()] ^= 1 << flip_bit;
            match EngineCheckpoint::decode(&flipped) {
                Err(ServeError::CorruptCheckpoint { .. }) => {}
                other => prop_assert!(false, "bit flip not rejected: {:?}", other),
            }
        }
    }

    /// `serve_until_crash` + `finalize_checkpoint` conserve streams: the
    /// durable report plus the orphans account for exactly the arrivals
    /// pulled by the checkpointed prefix, under any crash cycle and
    /// checkpoint cadence.
    #[test]
    fn checkpoint_crash_finalize_conserves_every_pulled_stream(
        seed in 0u64..1_000,
        crash_cycle in 0u64..400_000,
        every_batches in 1usize..6,
        faults in 0u8..2,
    ) {
        let spec = DeviceSpec::test_unit();
        let dfas = serve_dfas();
        let machines = serve_machines(&spec, &dfas);
        let cfg = config_at(0, faults == 1, false, false, false);
        let trace = Trace::synthetic(seed, 28, dfas.len(), 30, 8..64, b"01");
        let crash = serve_until_crash(
            &spec, &machines, trace.source(), &cfg, every_batches, crash_cycle,
        ).unwrap();
        if let Some(report) = crash.completed {
            // Idle at the crash cycle: the run finished and nothing needs
            // replay. The report must equal the plain serve.
            let reference = serve(&spec, &machines, &trace, &cfg).unwrap();
            prop_assert_eq!(*report, reference);
        } else {
            prop_assert!(crash.checkpoints_taken >= 1, "batch-0 checkpoint is unconditional");
            prop_assert!(crash.checkpoint_bytes > 0);
            let ck = crash.checkpoint.expect("crashed runs always leave a checkpoint");
            let (durable, orphans) =
                gspecpal_serve::finalize_checkpoint(&spec, &machines, &cfg, &ck).unwrap();
            prop_assert_eq!(durable.streams + orphans.len(), ck.streams_pulled());
            prop_assert!(durable.streams + orphans.len() <= trace.len());
            prop_assert_eq!(durable.stats.profile.total_cycles(), durable.stats.cycles);
        }
    }
}

/// Acceptance criterion: checkpoint/resume is bit-identical across host
/// thread counts (`RAYON_NUM_THREADS ∈ {1, 4}`) — the restored engine
/// inherits the same determinism contract as the uninterrupted path.
#[test]
fn checkpoint_resume_is_bit_identical_across_rayon_pools() {
    let spec = DeviceSpec::test_unit();
    let dfas = serve_dfas();
    let machines = serve_machines(&spec, &dfas);
    let cfg = config_at(2, true, true, false, true);
    let trace = Trace::synthetic(41, 30, dfas.len(), 30, 8..80, b"01");
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap().install(|| {
            let reference = serve(&spec, &machines, &trace, &cfg).unwrap();
            let resumed = match serve_checkpoint(&spec, &machines, trace.source(), &cfg, 2).unwrap()
            {
                CheckpointOutcome::Completed(report) => *report,
                CheckpointOutcome::Checkpoint(ck) => {
                    let ck = EngineCheckpoint::decode(&ck.encode()).unwrap();
                    serve_resume(&spec, &machines, trace.source(), &cfg, &ck).unwrap()
                }
            };
            assert_eq!(resumed, reference, "resume diverged inside a {threads}-thread pool");
            resumed
        })
    };
    assert_eq!(run(1), run(4), "reports differ across pool sizes");
}

/// A checkpoint is tied to its exact run setup: resuming under a
/// different fleet (machine count) is refused with a fingerprint
/// mismatch, not silently accepted.
#[test]
fn checkpoint_fingerprint_pins_the_machine_fleet() {
    let spec = DeviceSpec::test_unit();
    let dfas = serve_dfas();
    let machines = serve_machines(&spec, &dfas);
    let cfg = config_at(0, false, false, false, false);
    let trace = Trace::synthetic(7, 20, 1, 30, 8..64, b"01");
    let CheckpointOutcome::Checkpoint(ck) =
        serve_checkpoint(&spec, &machines, trace.source(), &cfg, 1).unwrap()
    else {
        panic!("expected a checkpoint");
    };
    let fewer = serve_machines(&spec, &dfas[..1]);
    match serve_resume(&spec, &fewer, trace.source(), &cfg, &ck) {
        Err(ServeError::CheckpointMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }
}
