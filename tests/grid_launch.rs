//! Multi-block grid launches: determinism across host worker counts,
//! cost-model scaling past one block, and scheme exactness at grid scale.

use gspecpal::config::{SchemeConfig, StitchPolicy};
use gspecpal::predict::predict;
use gspecpal::run::SchemeKind;
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal_fsm::combinators::keyword_dfa;
use gspecpal_fsm::examples::div7;
use gspecpal_gpu::DeviceSpec;

/// Simulated kernel statistics must be bit-identical regardless of how many
/// host workers simulate the blocks.
#[test]
fn grid_stats_identical_across_rayon_pool_sizes() {
    let d = div7();
    let spec = DeviceSpec::test_unit(); // 64-thread blocks → 200 chunks = 4 blocks
    let table = DeviceTable::transformed(&d, d.n_states());
    let input: Vec<u8> = b"1101010110010111".repeat(60);
    let config = SchemeConfig { n_chunks: 200, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();

    for kind in [SchemeKind::Naive, SchemeKind::Pm, SchemeKind::Nf] {
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| run_scheme(kind, &job));
        for workers in [2, 4, 8] {
            let out = rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .unwrap()
                .install(|| run_scheme(kind, &job));
            assert_eq!(out.end_state, reference.end_state, "{kind:?} @ {workers}");
            assert_eq!(out.chunk_ends, reference.chunk_ends, "{kind:?} @ {workers}");
            assert_eq!(out.execute, reference.execute, "{kind:?} @ {workers} exec stats");
            assert_eq!(out.verify, reference.verify, "{kind:?} @ {workers} verify stats");
            assert_eq!(out.predict, reference.predict, "{kind:?} @ {workers} predict stats");
            assert_eq!(
                out.verification_checks, reference.verification_checks,
                "{kind:?} @ {workers} checks"
            );
            assert_eq!(out.frontier_trace, reference.frontier_trace, "{kind:?} @ {workers} trace");
        }
    }
}

/// Both stitch policies must produce bit-identical outcomes — results *and*
/// simulated statistics — no matter how many host workers simulate the
/// blocks. The tree stitch's concurrent fix-up launches are the interesting
/// case: their stats merge must be block-ordered, not completion-ordered.
#[test]
fn stitch_policies_deterministic_across_pool_sizes() {
    let d = div7();
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&d, d.n_states());
    let input: Vec<u8> = b"1101010110010111".repeat(60);
    for policy in [StitchPolicy::Tree, StitchPolicy::Sequential] {
        let config = SchemeConfig { n_chunks: 200, stitch: policy, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        for kind in [SchemeKind::Naive, SchemeKind::Pm, SchemeKind::Nf] {
            let reference = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap()
                .install(|| run_scheme(kind, &job));
            for workers in [2, 8] {
                let out = rayon::ThreadPoolBuilder::new()
                    .num_threads(workers)
                    .build()
                    .unwrap()
                    .install(|| run_scheme(kind, &job));
                let ctx = format!("{kind:?} / {policy:?} @ {workers} workers");
                assert_eq!(out.end_state, reference.end_state, "{ctx}");
                assert_eq!(out.chunk_ends, reference.chunk_ends, "{ctx}");
                assert_eq!(out.execute, reference.execute, "{ctx} exec stats");
                assert_eq!(out.verify, reference.verify, "{ctx} verify stats");
                assert_eq!(out.verification_checks, reference.verification_checks, "{ctx} checks");
                assert_eq!(
                    out.verification_matches, reference.verification_matches,
                    "{ctx} matches"
                );
                assert_eq!(out.frontier_trace, reference.frontier_trace, "{ctx} trace");
            }
        }
    }
}

/// Fault-free runs at a 1024-chunk grid (dozens of blocks on the test
/// device) are bit-identical across rayon pool sizes for *every* registered
/// scheme — results and full kernel statistics. This is the fault-free
/// companion of `chaos_outcomes_are_pool_size_invariant` in
/// `differential.rs`, and in particular locks down SFA's per-block mapping
/// derivation and tree composition, whose seam order must be block-indexed
/// rather than completion-ordered.
#[test]
fn fault_free_1024_chunk_grid_is_pool_size_invariant() {
    let spec = DeviceSpec::test_unit();
    let d = div7();
    let table = DeviceTable::transformed(&d, d.n_states());
    let input: Vec<u8> = b"1101010110010111".repeat(256); // 4096 bytes
    let config = SchemeConfig { n_chunks: 1024, count_matches: true, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    let truth = d.run(&input);
    for kind in SchemeKind::all() {
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| run_scheme(kind, &job));
        assert_eq!(reference.end_state, truth, "{kind:?} must stay exact at 1024 chunks");
        for workers in [2usize, 4, 8] {
            let out = rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build()
                .unwrap()
                .install(|| run_scheme(kind, &job));
            let ctx = format!("{kind:?} @ {workers} workers");
            assert_eq!(out.end_state, reference.end_state, "{ctx}");
            assert_eq!(out.chunk_ends, reference.chunk_ends, "{ctx}");
            assert_eq!(out.match_count, reference.match_count, "{ctx} matches");
            assert_eq!(out.predict, reference.predict, "{ctx} predict stats");
            assert_eq!(out.execute, reference.execute, "{ctx} exec stats");
            assert_eq!(out.verify, reference.verify, "{ctx} verify stats");
            assert_eq!(out.frontier_trace, reference.frontier_trace, "{ctx} trace");
        }
    }
}

/// The exec and verification phases of a multi-block run carry the
/// occupancy shape the grid scheduler chose, so callers can see waves and
/// resident blocks per SM.
#[test]
fn grid_runs_report_launch_shapes() {
    let d = div7();
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&d, d.n_states());
    let input: Vec<u8> = b"1101010110010111".repeat(60);
    let config = SchemeConfig { n_chunks: 200, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    let out = run_scheme(SchemeKind::Nf, &job);
    let exec_shape = out.execute.shape.expect("multi-block exec must record a shape");
    assert!(exec_shape.waves >= 1);
    assert!(exec_shape.blocks_per_wave >= 1);
    let verify_shape = out.verify.shape.expect("multi-block verify must record a shape");
    assert!(verify_shape.waves >= 1);
}

/// The prediction cost model must keep growing past one block instead of
/// silently truncating at the block capacity (the old clamp bug).
#[test]
fn prediction_cost_scales_past_one_block() {
    let d = div7();
    let spec = DeviceSpec::test_unit(); // capacity 64, 1 SM
    let input: Vec<u8> = b"10110101".repeat(64);
    let chunks_64 = gspecpal::partition::partition(input.len(), 64);
    let chunks_256 = gspecpal::partition::partition(input.len(), 256);
    let one_block = predict(&d, &input, &chunks_64, 2, &spec).stats;
    let four_blocks = predict(&d, &input, &chunks_256, 2, &spec).stats;
    // On a 1-SM, 4-resident-block device the four blocks' prediction rounds
    // cost strictly more cycles than one block's (more chunks → more work),
    // not the same (the clamp would have frozen the cost at 64 threads).
    assert!(
        four_blocks.cycles > one_block.cycles,
        "256-chunk prediction ({}) must out-cost 64-chunk prediction ({})",
        four_blocks.cycles,
        one_block.cycles
    );
    assert!(four_blocks.alu_ops > one_block.alu_ops);
}

/// An 8192-chunk job on the RTX 3090 spec (block capacity 1024 → 8 blocks)
/// launches and stays exact for every scheme.
#[test]
fn n8192_chunks_on_rtx3090_is_exact() {
    let d = keyword_dfa(&[b"attack", b"worm"]).unwrap();
    let spec = DeviceSpec::rtx3090();
    let table = DeviceTable::transformed(&d, d.n_states());
    let input = b"benign stream attack worm padding ".repeat(300); // 10200 bytes
    let config = SchemeConfig { n_chunks: 8192, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    let truth = d.run(&input);
    for kind in [SchemeKind::Naive, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf] {
        let out = run_scheme(kind, &job);
        assert_eq!(out.end_state, truth, "{kind:?}");
        assert_eq!(out.accepted, d.accepts(&input), "{kind:?}");
    }
}

/// Every scheme stays exact when the chunk count spills across blocks on the
/// tiny test device (64-thread blocks), on both convergent and
/// non-convergent machines.
#[test]
fn all_schemes_exact_beyond_one_block() {
    let spec = DeviceSpec::test_unit();
    let machines: [(gspecpal_fsm::Dfa, Vec<u8>); 2] = [
        (div7(), b"1101010110010111".repeat(40)),
        (
            keyword_dfa(&[b"virus", b"trojan"]).unwrap(),
            b"clean data virus sample trojan xyz ".repeat(20),
        ),
    ];
    for (d, input) in &machines {
        let table = DeviceTable::transformed(d, d.n_states());
        let truth = d.run(input);
        for n_chunks in [100, 130] {
            let config = SchemeConfig { n_chunks, ..SchemeConfig::default() };
            let job = Job::new(&spec, &table, input, config).unwrap();
            // The scheme list comes from the registry, not a hand-copied
            // array: a scheme added to `SchemeKind::all()` is covered here
            // automatically.
            for kind in SchemeKind::all() {
                let out = run_scheme(kind, &job);
                assert_eq!(out.end_state, truth, "{kind:?} n_chunks={n_chunks}");
                let mut s = d.start();
                for (i, r) in job.chunks().into_iter().enumerate() {
                    s = d.run_from(s, &input[r.clone()]);
                    assert_eq!(out.chunk_ends[i], s, "{kind:?} n_chunks={n_chunks} chunk {i}");
                }
            }
        }
    }
}
