//! Properties of the all-state lookback-2 predictor (§IV-A).
//!
//! The key guarantee the paper relies on: "the real start state on the
//! current chunk must be contained in the produced end state set" — the
//! containment property that makes the speculation queues a sound basis for
//! exhaustive recovery.

use gspecpal::partition::partition;
use gspecpal::predict::{lookback_queue, predict};
use gspecpal_fsm::random::{random_dfa, random_input};
use gspecpal_gpu::DeviceSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truth_is_always_contained(
        seed in 0u64..10_000,
        n_states in 1u32..60,
        n_classes in 1u16..16,
        input_len in 8usize..1500,
        n_chunks in 2usize..24,
        lookback in 1usize..5,
    ) {
        let dfa = random_dfa(seed, n_states, n_classes);
        let input = random_input(seed ^ 0xABCD, input_len);
        let chunks = partition(input.len(), n_chunks.min(input_len));
        let pred = predict(&dfa, &input, &chunks, lookback, &DeviceSpec::test_unit());
        for (i, chunk) in chunks.iter().enumerate() {
            let truth = dfa.run(&input[..chunk.start]);
            prop_assert!(
                pred.queues[i].candidates().any(|s| s == truth),
                "chunk {i}: truth {truth} not in queue"
            );
        }
    }

    #[test]
    fn queue_sizes_bounded_by_state_count(
        seed in 0u64..5_000,
        n_states in 1u32..50,
        window_len in 0usize..6,
    ) {
        let dfa = random_dfa(seed, n_states, 8);
        let window = random_input(seed ^ 0x77, window_len);
        let q = lookback_queue(&dfa, &window);
        prop_assert!(q.initial_len() >= 1);
        prop_assert!(q.initial_len() <= n_states as usize);
    }

    #[test]
    fn queue_frequencies_sum_to_state_count(
        seed in 0u64..5_000,
        n_states in 1u32..50,
    ) {
        // Every start state maps to exactly one end state, so the candidate
        // multiplicities partition |Q|. Verify via rank structure: the
        // number of candidates with the top frequency times that frequency
        // cannot exceed |Q|.
        let dfa = random_dfa(seed, n_states, 6);
        let window = random_input(seed ^ 0x99, 2);
        let q = lookback_queue(&dfa, &window);
        // All candidates must be distinct states.
        let mut seen: Vec<_> = q.candidates().collect();
        let before = seen.len();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), before, "candidates are distinct");
    }

    #[test]
    fn ranking_is_by_descending_preimage_count(
        seed in 0u64..2_000,
        n_states in 2u32..40,
    ) {
        let dfa = random_dfa(seed, n_states, 4);
        let window = random_input(seed ^ 0x55, 2);
        let q = lookback_queue(&dfa, &window);
        // Recompute preimage counts and check monotonicity along the queue.
        let count = |target| {
            (0..n_states).filter(|&s| dfa.run_from(s, &window) == target).count()
        };
        let counts: Vec<usize> = q.candidates().map(count).collect();
        for w in counts.windows(2) {
            prop_assert!(w[0] >= w[1], "queue must be ranked by frequency: {counts:?}");
        }
        prop_assert!(counts.iter().all(|&c| c > 0));
    }
}

#[test]
fn prediction_cost_is_roughly_constant_in_chunk_size() {
    // §III-C treats prediction cost as a constant C: it must not scale with
    // the input length (only with |Q| and N).
    let dfa = random_dfa(5, 30, 8);
    let spec = DeviceSpec::test_unit();
    let short = random_input(6, 1_000);
    let long = random_input(6, 100_000);
    let chunks_short = partition(short.len(), 16);
    let chunks_long = partition(long.len(), 16);
    let c_short = predict(&dfa, &short, &chunks_short, 2, &spec).stats.cycles;
    let c_long = predict(&dfa, &long, &chunks_long, 2, &spec).stats.cycles;
    // Queue sizes differ slightly with the window contents, but the cost
    // must not scale with the 100x difference in chunk length.
    let ratio = c_long as f64 / c_short as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "prediction cost must not depend on chunk length: {c_short} vs {c_long}"
    );
}
