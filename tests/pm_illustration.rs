//! The paper's Figure 2: Parallel Merge running div7 with two speculative
//! paths per thread, intra/inter-warp verification, and delayed recovery.

use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::examples::div7;
use gspecpal_gpu::DeviceSpec;

fn pm_outcome(input: &[u8], k: usize, n_chunks: usize) -> gspecpal::RunOutcome {
    let d = div7();
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&d, d.n_states());
    let config = SchemeConfig { n_chunks, spec_k: k, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, input, config).unwrap();
    run_scheme(SchemeKind::Pm, &job)
}

#[test]
fn spec2_maintains_two_paths_per_thread() {
    // Fig 2 runs each thread from two speculative states. The execution
    // phase must do roughly twice the table work of spec-1 while sharing
    // input loads.
    let input: Vec<u8> = b"10110101".repeat(64);
    let one = pm_outcome(&input, 1, 8);
    let two = pm_outcome(&input, 2, 8);
    assert_eq!(one.end_state, two.end_state);
    assert!(two.execute.shared_accesses > one.execute.shared_accesses);
    assert_eq!(
        two.execute.global_transactions, one.execute.global_transactions,
        "the input stream is read once per step regardless of k"
    );
}

#[test]
fn mismatched_paths_are_recovered_delayed_and_sequentially() {
    // div7's queue holds all seven residues; spec-2 covers the truth only
    // when it ranks in the top two. Misses surface as must-be-done
    // recoveries in the sequential stage — executed one thread at a time
    // (the bottleneck motivating this paper).
    let input: Vec<u8> = b"110101011001011".repeat(40);
    let out = pm_outcome(&input, 2, 16);
    assert_eq!(out.end_state, div7().run(&input));
    assert!(out.recovery_runs() > 0, "spec-2 cannot cover all residues");
    assert!(
        (out.avg_active_threads_during_recovery() - 1.0).abs() < 1e-12,
        "PM recovery is sequential"
    );
}

#[test]
fn merge_rounds_scale_logarithmically() {
    // The tree-like verification runs ceil(log2 N) rounds. Run on a
    // full-size device whose occupancy-fitted block width keeps all chunks
    // in one block, so the merge tree is unsharded and no boundary stitch
    // rounds mix into the count.
    let d = div7();
    let spec = DeviceSpec::rtx3090();
    let table = DeviceTable::transformed(&d, d.n_states());
    let input: Vec<u8> = b"1011".repeat(256);
    for (n, expected_merge_rounds) in [(4usize, 2u64), (16, 4), (64, 6)] {
        // k=7 covers everything: no recovery.
        let config = SchemeConfig { n_chunks: n, spec_k: 7, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.recovery_runs(), 0, "N={n}");
        assert_eq!(out.verify.rounds, expected_merge_rounds, "N={n}");
    }
}

#[test]
fn wider_speculation_trades_execution_for_recovery() {
    let input: Vec<u8> = b"1101010110010111".repeat(64);
    let k2 = pm_outcome(&input, 2, 16);
    let k7 = pm_outcome(&input, 7, 16);
    // k=7 covers all residues: recovery disappears...
    assert!(k2.recovery_runs() > 0);
    assert_eq!(k7.recovery_runs(), 0);
    // ...at the price of more speculative execution (the α_k factor).
    assert!(k7.execute.cycles > k2.execute.cycles);
    assert_eq!(k2.end_state, k7.end_state);
}
