//! Deterministic-replay coverage of the online autotuning controller
//! (ISSUE 8): controller decisions are a pure function of the prior
//! observation stream — bit-identical across host thread pools and reruns,
//! auditable by replaying the exported decision log through a fresh
//! controller, and perturbed by injected faults *only* through the
//! observed counters.

use gspecpal::{FaultPlan, SchemeConfig, SchemeKind, StitchPolicy};
use gspecpal_fsm::examples::{div7, mod_counter};
use gspecpal_fsm::Dfa;
use gspecpal_gpu::DeviceSpec;
use gspecpal_serve::{
    serve, AdaptiveController, BatchObservation, BatchPolicy, ControllerConfig, LaunchChoice,
    ServeConfig, ServeMachine, ServeReport, StreamArrival, Trace,
};
use proptest::prelude::*;

/// A two-machine trace with machine-contiguous arrivals, long enough
/// streams for the chunk-parallel path, and enough batches per machine for
/// the controller to exploit, explore, and re-commit.
fn mixed_trace() -> Trace {
    let mut arrivals = Vec::new();
    let mut clock = 0u64;
    for machine in 0..2usize {
        for j in 0..16usize {
            clock += 40 + (j as u64 * 7919) % 90;
            let len = 400 + (j * 97) % 500;
            arrivals.push(StreamArrival {
                arrival_cycle: clock,
                machine,
                bytes: b"110100".repeat(len / 6 + 1),
            });
        }
    }
    Trace::from_arrivals(arrivals)
}

fn adaptive_config() -> ServeConfig {
    ServeConfig {
        policy: BatchPolicy::Fifo { batch: 4 },
        controller: Some(ControllerConfig::default()),
        ..ServeConfig::default()
    }
}

fn run_adaptive_serve(
    spec: &DeviceSpec,
    dfas: [&Dfa; 2],
    cfg: &ServeConfig,
    workers: usize,
) -> ServeReport {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
    pool.install(|| {
        let training = b"110100".repeat(256);
        let machines = [
            ServeMachine::prepare(spec, dfas[0], &training),
            ServeMachine::prepare(spec, dfas[1], &training),
        ];
        serve(spec, &machines, &mixed_trace(), cfg).unwrap()
    })
}

/// Replays a report's decision log through a fresh controller built from
/// the same config and arm lists; every decision must reproduce exactly.
fn assert_log_replays(
    report: &ServeReport,
    ctrl_cfg: &ControllerConfig,
    arms: Vec<Vec<LaunchChoice>>,
) {
    assert!(!report.decisions.is_empty(), "the run must have decided something");
    assert_eq!(report.decisions_made as usize, report.decisions.len());
    let mut replay = AdaptiveController::new(ctrl_cfg.clone(), arms);
    for rec in &report.decisions {
        let d = replay.decide(rec.machine);
        assert_eq!(d.arm, rec.arm, "batch {} machine {}", rec.batch, rec.machine);
        assert_eq!(d.choice, rec.choice, "batch {}", rec.batch);
        assert_eq!(d.explore, rec.explore, "batch {}", rec.batch);
        replay.observe(rec.machine, rec.arm, &rec.observation);
    }
}

fn machine_arms(spec: &DeviceSpec, dfas: [&Dfa; 2]) -> Vec<Vec<LaunchChoice>> {
    let training = b"110100".repeat(256);
    dfas.iter().map(|d| ServeMachine::prepare(spec, d, &training).arms().to_vec()).collect()
}

#[test]
fn adaptive_decisions_are_bit_identical_across_thread_pools_and_reruns() {
    let spec = DeviceSpec::test_unit();
    let (d0, d1) = (div7(), mod_counter(5, &[0]));
    let cfg = adaptive_config();
    let baseline = run_adaptive_serve(&spec, [&d0, &d1], &cfg, 1);
    for workers in [1usize, 4] {
        let report = run_adaptive_serve(&spec, [&d0, &d1], &cfg, workers);
        assert_eq!(baseline, report, "workers = {workers}: full reports must match bit for bit");
    }
    // The controller actually steered: every batch carries a decision.
    assert_eq!(baseline.decisions_made, baseline.batches.len() as u64);
    // Answers still match host-side reference scans.
    let trace = mixed_trace();
    for (i, a) in trace.arrivals().iter().enumerate() {
        let dfa = if a.machine == 0 { &d0 } else { &d1 };
        assert_eq!(baseline.end_states[i], dfa.run(&a.bytes), "stream {i}");
    }
}

#[test]
fn decision_log_replays_through_a_fresh_controller() {
    let spec = DeviceSpec::test_unit();
    let (d0, d1) = (div7(), mod_counter(5, &[0]));
    let cfg = adaptive_config();
    let report = run_adaptive_serve(&spec, [&d0, &d1], &cfg, 4);
    let ctrl = cfg.controller.as_ref().unwrap();
    assert_log_replays(&report, ctrl, machine_arms(&spec, [&d0, &d1]));
}

#[test]
fn fault_injected_batches_perturb_decisions_only_through_observed_counters() {
    let spec = DeviceSpec::test_unit();
    let (d0, d1) = (div7(), mod_counter(5, &[0]));
    let clean_cfg = adaptive_config();
    let faulted_cfg = ServeConfig {
        scheme_config: SchemeConfig {
            faults: Some(FaultPlan::chaos(23, 150)),
            ..SchemeConfig::default()
        },
        ..clean_cfg.clone()
    };
    // Chaos under the controller is still pool-independent and rerunnable.
    let faulted = run_adaptive_serve(&spec, [&d0, &d1], &faulted_cfg, 1);
    let faulted4 = run_adaptive_serve(&spec, [&d0, &d1], &faulted_cfg, 4);
    assert_eq!(faulted, faulted4, "faulted adaptive runs must not depend on the host pool");
    // Faults reach the controller only through the recorded observations:
    // a fresh controller fed the faulted observations reproduces the
    // faulted decisions exactly — no hidden fault channel.
    let ctrl = faulted_cfg.controller.as_ref().unwrap();
    assert_log_replays(&faulted, ctrl, machine_arms(&spec, [&d0, &d1]));
    // And the injected faults did change what the controller saw (they
    // showed up in the counters, the only place they are allowed to).
    let clean = run_adaptive_serve(&spec, [&d0, &d1], &clean_cfg, 1);
    let clean_costs: Vec<u64> =
        clean.decisions.iter().map(|d| d.observation.compute_cycles).collect();
    let faulted_costs: Vec<u64> =
        faulted.decisions.iter().map(|d| d.observation.compute_cycles).collect();
    assert_ne!(clean_costs, faulted_costs, "a 15% fault rate must move observed costs");
    // Answers survive the chaos regardless of what the controller picked.
    let trace = mixed_trace();
    for (i, a) in trace.arrivals().iter().enumerate() {
        let dfa = if a.machine == 0 { &d0 } else { &d1 };
        assert_eq!(faulted.end_states[i], dfa.run(&a.bytes), "stream {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // The controller is a pure fold: for any observation stream, a fresh
    // controller fed the same stream makes the identical decisions.
    #[test]
    fn controller_decisions_are_a_pure_function_of_prior_outcomes(
        window in 1usize..6,
        period in 1u64..6,
        cutoff in 1500u64..5000,
        costs in prop::collection::vec(1u64..20_000, 1..60),
    ) {
        let cfg = ControllerConfig {
            window,
            explore_period: period,
            explore_cutoff_permille: cutoff,
            max_decisions: 4096,
        };
        let arms: Vec<LaunchChoice> = [
            (SchemeKind::Pm, 4, 1200),
            (SchemeKind::Sre, 4, 1400),
            (SchemeKind::Rr, 4, 1900),
            (SchemeKind::Nf, 4, 2600),
        ]
        .iter()
        .map(|&(scheme, spec_k, predicted_millicost)| LaunchChoice {
            scheme,
            spec_k,
            stitch: StitchPolicy::Tree,
            predicted_millicost,
        })
        .collect();
        let mut live = AdaptiveController::new(cfg.clone(), vec![arms.clone()]);
        let mut log = Vec::new();
        for (i, &cost) in costs.iter().enumerate() {
            let d = live.decide(0);
            let obs = BatchObservation {
                bytes: 1000 + i as u64,
                compute_cycles: cost.saturating_mul(1000 + i as u64) / 1000,
                ..BatchObservation::default()
            };
            live.observe(0, d.arm, &obs);
            log.push((d, obs));
        }
        let mut replay = AdaptiveController::new(cfg, vec![arms]);
        for (d, obs) in &log {
            let r = replay.decide(0);
            assert_eq!(&r, d, "replay diverged");
            replay.observe(0, r.arm, obs);
        }
    }
}
