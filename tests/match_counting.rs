//! Device-side match counting (the output function φ generalized to
//! reporting): when `count_matches` is enabled, every scheme's verified
//! match total must equal the host's `Dfa::count_matches` — including all
//! the speculative paths and recoveries whose counts must be discarded or
//! adopted along with their end states.

use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::combinators::keyword_dfa;
use gspecpal_fsm::random::{random_dfa, random_input};
use gspecpal_gpu::DeviceSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_scheme_counts_matches_exactly(
        seed in 0u64..8_000,
        n_states in 2u32..24,
        input_len in 1usize..1200,
        n_chunks in 1usize..20,
        spec_k in 1usize..5,
    ) {
        let dfa = random_dfa(seed, n_states, 6);
        let input = random_input(seed ^ 0xC0, input_len);
        let expected = dfa.count_matches(&input);
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&dfa, n_states);
        let config = SchemeConfig {
            n_chunks: n_chunks.min(input_len),
            spec_k,
            count_matches: true,
            ..SchemeConfig::default()
        };
        let job = Job::new(&spec, &table, &input, config).expect("valid");
        for scheme in SchemeKind::all() {
            let out = run_scheme(scheme, &job);
            prop_assert_eq!(
                out.match_count,
                Some(expected),
                "{} must count {} matches", scheme, expected
            );
        }
    }
}

#[test]
fn counting_is_off_by_default() {
    let dfa = random_dfa(1, 8, 4);
    let input = random_input(2, 256);
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&dfa, 8);
    let job = Job::new(&spec, &table, &input, SchemeConfig::with_chunks(8)).unwrap();
    let out = run_scheme(SchemeKind::Rr, &job);
    assert_eq!(out.match_count, None);
}

#[test]
fn counting_costs_extra_alu_work() {
    let dfa = random_dfa(3, 8, 4);
    let input = random_input(4, 2048);
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&dfa, 8);
    let base_cfg = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
    let count_cfg = SchemeConfig { count_matches: true, ..base_cfg };
    let base =
        run_scheme(SchemeKind::Sequential, &Job::new(&spec, &table, &input, base_cfg).unwrap());
    let counted =
        run_scheme(SchemeKind::Sequential, &Job::new(&spec, &table, &input, count_cfg).unwrap());
    assert!(counted.execute.alu_ops > base.execute.alu_ops);
    assert_eq!(base.end_state, counted.end_state);
}

#[test]
fn keyword_scan_counts_real_hits() {
    // An end-to-end check with a meaningful workload: overlapping keywords
    // counted per end position.
    let dfa = keyword_dfa(&[b"abab", b"ba"]).unwrap();
    let mut input = b"xabababx".repeat(60);
    input.extend_from_slice(b"ba");
    let expected = dfa.count_matches(&input);
    assert!(expected > 0);

    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&dfa, dfa.n_states());
    let config = SchemeConfig { n_chunks: 16, count_matches: true, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    for scheme in [SchemeKind::Pm, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf] {
        let out = run_scheme(scheme, &job);
        assert_eq!(out.match_count, Some(expected), "{scheme}");
    }
}
