//! Three-way cross-validation on random machines: the simulated GPU
//! schemes, the real-thread multicore engines, and the host reference must
//! all produce identical verified results.

use gspecpal::cpu::{run_speculative, run_speculative_rr, run_speculative_sre};
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::random::{random_dfa, random_input};
use gspecpal_gpu::DeviceSpec;
use proptest::prelude::*;

proptest! {
    // Each case spawns real threads; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulated_and_multicore_engines_agree(
        seed in 0u64..4_000,
        n_states in 2u32..20,
        input_len in 16usize..1200,
        n_workers in 1usize..10,
    ) {
        let dfa = random_dfa(seed, n_states, 5);
        let input = random_input(seed ^ 0xE, input_len);
        let host_end = dfa.run(&input);

        // Simulated device, all four GSpecPal schemes.
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&dfa, n_states);
        let config = SchemeConfig {
            n_chunks: n_workers.min(input_len),
            ..SchemeConfig::default()
        };
        let job = Job::new(&spec, &table, &input, config).expect("valid");
        for scheme in SchemeKind::gspecpal_schemes() {
            prop_assert_eq!(run_scheme(scheme, &job).end_state, host_end, "{}", scheme);
        }

        // Real threads, all three multicore engines.
        let naive = run_speculative(&dfa, &input, n_workers);
        let sre = run_speculative_sre(&dfa, &input, n_workers);
        let rr = run_speculative_rr(&dfa, &input, n_workers);
        prop_assert_eq!(naive.end_state, host_end);
        prop_assert_eq!(sre.end_state, host_end);
        prop_assert_eq!(rr.end_state, host_end);

        // Per-chunk agreement between the engines that share a partition.
        prop_assert_eq!(&naive.chunk_ends, &sre.chunk_ends);
        prop_assert_eq!(&naive.chunk_ends, &rr.chunk_ends);
    }
}
