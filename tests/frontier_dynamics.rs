//! The frontier trace makes the schemes' recovery dynamics directly
//! observable: these tests pin the trajectories the paper's narrative
//! describes.

use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::combinators::sliding_window_dfa;
use gspecpal_fsm::examples::ones_counter;
use gspecpal_fsm::random::random_input;
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::inputs::window_text;

fn trace(dfa: &gspecpal_fsm::Dfa, input: &[u8], scheme: SchemeKind, n_chunks: usize) -> Vec<u32> {
    let spec = DeviceSpec::rtx3090();
    let table = DeviceTable::transformed(dfa, dfa.n_states());
    let config = SchemeConfig { n_chunks, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, input, config).unwrap();
    let out = run_scheme(scheme, &job);
    assert_eq!(out.end_state, dfa.run(input));
    out.frontier_trace
}

fn bits(seed: u64, len: usize) -> Vec<u8> {
    random_input(seed, len).into_iter().map(|b| if b & 1 == 1 { b'1' } else { b'0' }).collect()
}

#[test]
fn frontier_is_monotone_and_complete() {
    let d = ones_counter(9, &[0]);
    let input = bits(5, 12_800);
    for scheme in
        [SchemeKind::Naive, SchemeKind::Pm, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf]
    {
        let t = trace(&d, &input, scheme, 64);
        assert!(!t.is_empty(), "{scheme}");
        for w in t.windows(2) {
            assert!(w[0] <= w[1], "{scheme}: frontier must be monotone: {t:?}");
        }
        assert_eq!(*t.last().unwrap(), 64, "{scheme}: frontier must reach N");
    }
}

#[test]
fn sre_crawls_where_nf_jumps() {
    // On a permutation machine, SRE's frontier advances ~1 chunk per
    // iteration; NF's seeded records let it jump. Fewer trace entries =
    // fewer verification rounds = the whole Fig 8 story in one vector.
    let d = ones_counter(11, &[0]);
    let input = bits(6, 25_600);
    let sre = trace(&d, &input, SchemeKind::Sre, 128);
    let nf = trace(&d, &input, SchemeKind::Nf, 128);
    // SRE needs a recovery round for nearly every chunk (2 rounds per
    // iteration); NF's pre-seeded records skip most of them.
    assert!(
        nf.len() * 4 <= sre.len() * 3,
        "NF rounds {} should be well below SRE's {}",
        nf.len(),
        sre.len()
    );
    // On a permutation machine a chunk's end changes whenever its start
    // guess was wrong, so chained multi-advance fires only on the rare
    // chunks whose lookback guess happened to be exactly right (~k/m odds
    // on an m-state counter). The frontier must therefore crawl: almost
    // every step advances a single chunk, never a convergent-style leap.
    let jumps: Vec<u32> = nf.windows(2).map(|w| w[1] - w[0]).collect();
    let multi = jumps.iter().filter(|&&j| j > 1).count();
    assert!(
        multi * 20 <= jumps.len(),
        "NF multi-chunk advances should be rare on a permutation machine: \
         {multi} of {} steps",
        jumps.len()
    );
    assert!(jumps.iter().all(|&j| j <= 4), "no convergent-style leaps expected: {jumps:?}");
}

#[test]
fn convergent_machines_finish_in_a_handful_of_rounds() {
    let d = sliding_window_dfa(b"aeiostn", 3, b"aaa").unwrap();
    let input = window_text(7, 25_600, b"aeiostn", 0.9);
    let t = trace(&d, &input, SchemeKind::Sre, 128);
    // One speculative wave then chained multi-advance: a few rounds total,
    // with the frontier leaping through long runs of stable matches.
    assert!(t.len() < 16, "SRE on a convergent machine took {} rounds: {t:?}", t.len());
    let max_jump = t.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0);
    assert!(max_jump > 16, "expected chained advances, max jump {max_jump}");
}

#[test]
fn naive_walks_exactly_one_chunk_per_round() {
    let d = ones_counter(9, &[0]);
    let input = bits(8, 6400);
    let t = trace(&d, &input, SchemeKind::Naive, 32);
    let expected: Vec<u32> = (2..=32).collect();
    assert_eq!(t, expected, "Algorithm 2's walker is strictly sequential");
}
