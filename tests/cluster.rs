//! Fleet-level integration tests: consistent-hash routing laws, cluster
//! report bit-identity across host pools and reruns, whole-device failure
//! re-sharding, and per-device fault-plan composability.

use gspecpal::{FaultPlan, SchemeConfig};
use gspecpal_cluster::{
    run_cluster, run_cluster_source, ClusterConfig, ClusterDevice, DeviceOutage, FailoverConfig,
    FleetMachine, HashRing, RouterStats,
};
use gspecpal_fsm::examples::{div7, mod_counter, ones_counter};
use gspecpal_fsm::Dfa;
use gspecpal_gpu::{fault_coord, DeviceSpec, FaultDomain};
use gspecpal_serve::{
    serve, BatchPolicy, IterSource, PriorityClass, ResidencyConfig, ServeConfig, ServeError,
    ServeMachine, StreamArrival, Trace,
};
use proptest::prelude::*;

fn fleet_dfas() -> Vec<Dfa> {
    vec![
        div7(),
        mod_counter(5, &[0]),
        ones_counter(3, &[1]),
        mod_counter(11, &[3]),
        mod_counter(9, &[2, 4]),
        ones_counter(4, &[0]),
    ]
}

fn fleet_machines(dfas: &[Dfa]) -> Vec<FleetMachine<'_>> {
    dfas.iter()
        .map(|dfa| FleetMachine { dfa, training: b"0110", class: PriorityClass::Bulk })
        .collect()
}

fn test_devices(n: usize) -> Vec<ClusterDevice> {
    (0..n).map(|_| ClusterDevice::test_unit()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Consistent-hash minimal-remapping law, removal half: machines not
    // owned by the removed device keep their placement exactly.
    #[test]
    fn removing_any_device_never_moves_survivors_machines(
        n_devices in 2usize..8,
        vnodes in 1usize..64,
        victim_salt in 0usize..8,
        machine_base in 0usize..10_000,
    ) {
        let ring = HashRing::new(n_devices, vnodes);
        let victim = victim_salt % n_devices;
        let shrunk = ring.without(victim);
        for m in machine_base..machine_base + 300 {
            let before = ring.route(m);
            if before == victim {
                prop_assert_ne!(shrunk.route(m), victim);
            } else {
                prop_assert_eq!(shrunk.route(m), before);
            }
        }
    }

    // Addition half: growing the fleet moves machines only onto the new
    // device, and roughly its fair share of them (~1/N, generously
    // bounded) — never between old devices.
    #[test]
    fn adding_a_device_remaps_about_one_nth_onto_it(
        n_devices in 2usize..8,
        vnodes in 8usize..64,
        machine_base in 0usize..10_000,
    ) {
        const SAMPLE: usize = 1200;
        let small = HashRing::new(n_devices, vnodes);
        let grown = small.with_device(n_devices);
        let mut moved = 0usize;
        for m in machine_base..machine_base + SAMPLE {
            if grown.route(m) != small.route(m) {
                prop_assert_eq!(grown.route(m), n_devices);
                moved += 1;
            }
        }
        // Expectation is SAMPLE / (n_devices + 1); allow 4x slack above it
        // (vnodes as low as 8 make arcs lumpy) and require only that
        // *something* moved.
        prop_assert!(moved > 0, "a new device must take some machines");
        prop_assert!(
            moved < 4 * SAMPLE / (n_devices + 1),
            "moved {} of {} onto 1 of {} devices",
            moved, SAMPLE, n_devices + 1
        );
    }

    // Routing is a pure function of (machine, device set, vnodes):
    // independent ring constructions agree everywhere.
    #[test]
    fn routing_is_pure_across_reconstruction(
        n_devices in 1usize..10,
        vnodes in 1usize..48,
        machine in 0usize..100_000,
    ) {
        let a = HashRing::new(n_devices, vnodes);
        let b = HashRing::new(n_devices, vnodes);
        prop_assert_eq!(a.route(machine), b.route(machine));
        prop_assert!(a.route(machine) < n_devices);
    }
}

#[test]
fn cluster_reports_are_bit_identical_across_rayon_pools_and_reruns() {
    let dfas = fleet_dfas();
    let trace = Trace::synthetic(13, 48, dfas.len(), 30, 8..96, b"01");
    let cfg = ClusterConfig {
        serve: ServeConfig {
            residency: Some(ResidencyConfig { capacity_bytes: 4096 }),
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };
    let run = |workers: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
        pool.install(|| {
            let dfas = fleet_dfas();
            let machines = fleet_machines(&dfas);
            run_cluster(&test_devices(3), &machines, &trace, &cfg).unwrap()
        })
    };
    let one = run(1);
    let four = run(4);
    let rerun = run(1);
    assert_eq!(one, four, "cluster reports must not depend on the host pool");
    assert_eq!(one, rerun, "cluster reports must not depend on the run");
}

#[test]
fn streaming_cluster_path_matches_the_batch_path_bit_for_bit() {
    let dfas = fleet_dfas();
    let machines = fleet_machines(&dfas);
    let trace = Trace::synthetic(17, 40, dfas.len(), 50, 8..80, b"01");
    let devices = test_devices(3);
    let cfg = ClusterConfig::default();
    let batch = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
    for _ in 0..3 {
        let streamed = run_cluster_source(
            &devices,
            &machines,
            IterSource(trace.arrivals().iter().cloned()),
            &cfg,
        )
        .unwrap();
        assert_eq!(batch, streamed);
    }
}

/// Reconstructs each device's sub-trace exactly as the router demuxes it.
fn sub_traces(
    devices: &[ClusterDevice],
    n_machines: usize,
    trace: &Trace,
    cfg: &ClusterConfig,
    footprints: Vec<u64>,
) -> Vec<Trace> {
    let mut router = gspecpal_cluster::Router::new(devices, footprints, cfg);
    let mut shares: Vec<Vec<StreamArrival>> = vec![Vec::new(); devices.len()];
    for a in trace.arrivals() {
        assert!(a.machine < n_machines);
        let d = router.route(a.machine, a.arrival_cycle, a.bytes.len());
        shares[d].push(a.clone());
    }
    shares.into_iter().map(Trace::from_arrivals).collect()
}

// Fault-plan composability: a device's slice of the cluster report — fault
// injection and all — is byte-identical to serving its sub-trace alone on
// a single-device engine with the same config.
#[test]
fn per_device_fault_plans_compose_with_cluster_chaos_routing() {
    let spec = DeviceSpec::test_unit();
    let dfas = fleet_dfas();
    let machines = fleet_machines(&dfas);
    let trace = Trace::synthetic(23, 36, dfas.len(), 40, 8..96, b"01");
    let devices = test_devices(3);
    let cfg = ClusterConfig {
        serve: ServeConfig {
            scheme_config: SchemeConfig {
                faults: Some(FaultPlan { copy_fail_permille: 250, ..FaultPlan::chaos(9, 150) }),
                ..SchemeConfig::default()
            },
            residency: Some(ResidencyConfig { capacity_bytes: 4096 }),
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };
    let cluster = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
    let standalone_machines: Vec<ServeMachine<'_>> =
        dfas.iter().map(|dfa| ServeMachine::prepare(&spec, dfa, b"0110")).collect();
    let footprints: Vec<u64> =
        standalone_machines.iter().map(|m| m.table_footprint_bytes() as u64).collect();
    for (d, sub) in sub_traces(&devices, dfas.len(), &trace, &cfg, footprints).iter().enumerate() {
        let alone = serve(&spec, &standalone_machines, sub, &cfg.serve).unwrap();
        assert_eq!(
            cluster.devices[d].report, alone,
            "device {d}: cluster slice must equal standalone serving of its sub-trace"
        );
    }
}

// Chaos leg: a whole-device outage mid-trace. The router re-shards the
// failed device's later arrivals over the survivors; earlier work on the
// failed device still completes, nothing is lost fleet-wide, and the run
// stays bit-deterministic.
#[test]
fn whole_device_failure_reshards_streams_onto_survivors() {
    let dfas = fleet_dfas();
    let machines = fleet_machines(&dfas);
    let trace = Trace::synthetic(29, 60, dfas.len(), 60, 8..64, b"01");
    let devices = test_devices(3);
    let healthy = run_cluster(&devices, &machines, &trace, &ClusterConfig::default()).unwrap();
    let victim = (0..3).max_by_key(|&d| healthy.devices[d].report.streams).expect("three devices");
    let mid = trace.arrivals()[trace.len() / 2].arrival_cycle;
    let cfg = ClusterConfig {
        outage: Some(DeviceOutage { device: victim, at_cycle: mid }),
        ..ClusterConfig::default()
    };
    let failed = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
    // Nothing lost: every stream still served exactly once, fleet-wide.
    assert_eq!(failed.streams, 60);
    let total: usize = failed.devices.iter().map(|d| d.report.streams).sum();
    assert_eq!(total, 60);
    assert!(
        failed.router.rerouted_streams > 0,
        "the busiest device must have had post-outage arrivals to re-shard"
    );
    // The dead device kept only its pre-outage share.
    assert!(
        failed.devices[victim].report.streams < healthy.devices[victim].report.streams,
        "outage must shrink the failed device's share"
    );
    // Survivors absorb the difference, and the whole thing is replayable.
    let again = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
    assert_eq!(failed, again, "chaos runs must stay bit-deterministic");
    // Full-fleet answers stay correct under the outage: check every
    // device's verdicts against the reference scan of its sub-trace.
    let spec = DeviceSpec::test_unit();
    let standalone: Vec<ServeMachine<'_>> =
        dfas.iter().map(|dfa| ServeMachine::prepare(&spec, dfa, b"0110")).collect();
    let footprints: Vec<u64> =
        standalone.iter().map(|m| m.table_footprint_bytes() as u64).collect();
    for (d, sub) in sub_traces(&devices, dfas.len(), &trace, &cfg, footprints).iter().enumerate() {
        for (i, a) in sub.arrivals().iter().enumerate() {
            assert_eq!(
                failed.devices[d].report.accepted[i],
                dfas[a.machine].accepts(&a.bytes),
                "device {d} stream {i}"
            );
        }
    }
}

// Priority classes ride the router: a deadline machine's streams preempt
// bulk kernels on whatever device the ring gives them.
#[test]
fn deadline_class_preempts_across_the_fleet() {
    let dfas = fleet_dfas();
    let ring = HashRing::new(2, 32);
    // Pick a co-located bulk/deadline pair so the deadline batches land on
    // a device with open bulk kernels.
    let (bulk_m, deadline_m) = {
        let mut found = None;
        'outer: for a in 0..dfas.len() {
            for b in 0..dfas.len() {
                if a != b && ring.route(a) == ring.route(b) {
                    found = Some((a, b));
                    break 'outer;
                }
            }
        }
        found.expect("six machines on two devices always collide")
    };
    let machines: Vec<FleetMachine<'_>> = dfas
        .iter()
        .enumerate()
        .map(|(m, dfa)| FleetMachine {
            dfa,
            training: b"0110",
            class: if m == deadline_m { PriorityClass::Deadline } else { PriorityClass::Bulk },
        })
        .collect();
    let mut arrivals = Vec::new();
    for burst in 0..6u64 {
        let t0 = burst * 50_000;
        for _ in 0..8 {
            arrivals.push(StreamArrival {
                arrival_cycle: t0,
                machine: bulk_m,
                bytes: b"011010".repeat(100),
            });
        }
        arrivals.push(StreamArrival {
            arrival_cycle: t0 + 20_000,
            machine: deadline_m,
            bytes: b"01".repeat(32),
        });
    }
    let trace = Trace::from_arrivals(arrivals);
    let devices = test_devices(2);
    let mk_cfg = |preempt| ClusterConfig {
        serve: ServeConfig {
            policy: BatchPolicy::Fifo { batch: 8 },
            preempt,
            ..ServeConfig::default()
        },
        ..ClusterConfig::default()
    };
    let fifo = run_cluster(&devices, &machines, &trace, &mk_cfg(false)).unwrap();
    let pre = run_cluster(&devices, &machines, &trace, &mk_cfg(true)).unwrap();
    assert_eq!(fifo.preemptions, 0);
    assert!(pre.preemptions > 0, "deadline batches must preempt bulk kernels");
    assert!(
        pre.deadline_delivery.p99 < fifo.deadline_delivery.p99,
        "preemption must cut deadline p99 ({} vs {})",
        pre.deadline_delivery.p99,
        fifo.deadline_delivery.p99
    );
    assert_eq!(pre.shed_streams, 0);
}

// --- ISSUE 10: checkpoint failover across the fleet ------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    /// The chaos-matrix leg: kill a device at a proptest-chosen mid-trace
    /// cycle with failover on. The fleet must finish with
    /// `lost_streams == 0`, conserve every stream and byte, and stay
    /// bit-deterministic across reruns — under any checkpoint cadence and
    /// with or without an injected fault plan.
    #[test]
    fn failover_chaos_mid_trace_device_kill_loses_no_streams(
        seed in 0u64..1_000,
        victim_salt in 0usize..3,
        crash_salt in 1usize..40,
        every_batches in 1usize..6,
        faults in 0u8..2,
    ) {
        let dfas = fleet_dfas();
        let machines = fleet_machines(&dfas);
        let devices = test_devices(3);
        let trace = Trace::synthetic(seed, 42, dfas.len(), 50, 8..64, b"01");
        let serve_cfg = ServeConfig {
            scheme_config: SchemeConfig {
                faults: (faults == 1)
                    .then(|| FaultPlan { copy_fail_permille: 150, ..FaultPlan::chaos(seed, 80) }),
                ..SchemeConfig::default()
            },
            ..ServeConfig::default()
        };
        let victim = victim_salt % devices.len();
        let at_cycle = trace.arrivals()[crash_salt % trace.len()].arrival_cycle;
        let cfg = ClusterConfig {
            serve: serve_cfg,
            outage: Some(DeviceOutage { device: victim, at_cycle }),
            failover: Some(FailoverConfig {
                checkpoint_every_batches: every_batches,
                ..FailoverConfig::default()
            }),
            ..ClusterConfig::default()
        };
        let recovered = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
        // The acceptance criterion: a mid-trace kill with failover loses
        // nothing — provably, by stream conservation.
        prop_assert_eq!(recovered.lost_streams, 0);
        prop_assert_eq!(recovered.streams, trace.len());
        let per_device: usize = recovered.devices.iter().map(|d| d.report.streams).sum();
        prop_assert_eq!(per_device, trace.len());
        let fleet_bytes: usize = recovered.devices.iter().map(|d| d.report.total_bytes).sum();
        let trace_bytes: usize = trace.arrivals().iter().map(|a| a.bytes.len()).sum();
        prop_assert_eq!(fleet_bytes, trace_bytes);
        // A resume point always exists (the batch-0 checkpoint), and the
        // durable-storage traffic it cost is accounted.
        prop_assert!(recovered.failover.checkpoints_taken >= 1);
        prop_assert!(recovered.failover.checkpoint_bytes > 0);
        // Replayed orphans ride a priced checkpoint migration.
        if recovered.failover.migrations_replayed > 0 {
            prop_assert!(recovered.failover.replay_cycles > 0);
        }
        // Chaos or not, the whole report replays bit for bit.
        let again = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
        prop_assert_eq!(recovered, again);
    }
}

/// Satellite (b): without failover the legacy outage path now *measures*
/// what a real crash would destroy — `lost_streams` equals the arrivals
/// already routed to the victim when it died, instead of silently
/// completing them. Flipping failover on drives the same scenario to zero.
#[test]
fn failover_off_reports_doomed_streams_as_lost_and_on_reports_zero() {
    let dfas = fleet_dfas();
    let machines = fleet_machines(&dfas);
    let devices = test_devices(3);
    let trace = Trace::synthetic(29, 60, dfas.len(), 60, 8..64, b"01");
    let healthy = run_cluster(&devices, &machines, &trace, &ClusterConfig::default()).unwrap();
    assert_eq!(healthy.lost_streams, 0, "a healthy fleet loses nothing");
    assert_eq!(healthy.failover, gspecpal_cluster::FailoverReport::default());
    let victim = (0..3).max_by_key(|&d| healthy.devices[d].report.streams).expect("three devices");
    let mid = trace.arrivals()[trace.len() / 2].arrival_cycle;
    let legacy_cfg = ClusterConfig {
        outage: Some(DeviceOutage { device: victim, at_cycle: mid }),
        ..ClusterConfig::default()
    };
    let legacy = run_cluster(&devices, &machines, &trace, &legacy_cfg).unwrap();
    assert!(legacy.router.doomed_streams > 0, "the busiest device had pre-crash arrivals");
    assert_eq!(legacy.lost_streams, legacy.router.doomed_streams);
    assert_eq!(
        legacy.lost_streams as usize, legacy.devices[victim].report.streams,
        "the legacy model still completes exactly the doomed streams on the dead device"
    );
    let failover_cfg = ClusterConfig { failover: Some(FailoverConfig::default()), ..legacy_cfg };
    let recovered = run_cluster(&devices, &machines, &trace, &failover_cfg).unwrap();
    assert_eq!(recovered.lost_streams, 0, "failover must conserve every doomed stream");
    assert_eq!(recovered.router.doomed_streams, legacy.router.doomed_streams);
    assert_eq!(recovered.streams, trace.len());
}

/// A crash that strikes after the victim finished its whole share has
/// nothing in flight: the failover report must equal the crash-free fleet
/// bit for bit, modulo the failover/outage bookkeeping counters.
#[test]
fn failover_after_quiesce_equals_the_crash_free_fleet_modulo_counters() {
    let dfas = fleet_dfas();
    let machines = fleet_machines(&dfas);
    let devices = test_devices(3);
    let trace = Trace::synthetic(31, 40, dfas.len(), 40, 8..64, b"01");
    let healthy = run_cluster(&devices, &machines, &trace, &ClusterConfig::default()).unwrap();
    let cfg = ClusterConfig {
        outage: Some(DeviceOutage { device: 1, at_cycle: healthy.makespan_cycles + 1 }),
        failover: Some(FailoverConfig::default()),
        ..ClusterConfig::default()
    };
    let recovered = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
    assert!(recovered.failover.checkpoints_taken >= 1);
    assert_eq!(recovered.failover.migrations_replayed, 0, "an idle crash migrates nothing");
    assert_eq!(recovered.failover.replay_cycles, 0);
    assert_eq!(recovered.lost_streams, 0);
    let expected = gspecpal_cluster::ClusterReport {
        router: RouterStats { doomed_streams: recovered.router.doomed_streams, ..healthy.router },
        failover: recovered.failover,
        ..healthy.clone()
    };
    assert_eq!(recovered, expected, "only the bookkeeping counters may differ");
}

/// Migration-copy failures come from the *same* fault plan as every other
/// copy in the run, keyed on the receiving survivor, and are retried under
/// the capped-exponential schedule with the post-budget attempt forced
/// through. With a single survivor the retry count is exactly computable.
#[test]
fn failover_migration_retries_follow_the_shared_fault_plan() {
    let dfas = fleet_dfas();
    let machines = fleet_machines(&dfas);
    let devices = test_devices(2);
    let trace = Trace::synthetic(37, 30, dfas.len(), 40, 8..64, b"01");
    let healthy = run_cluster(&devices, &machines, &trace, &ClusterConfig::default()).unwrap();
    let victim = (0..2).max_by_key(|&d| healthy.devices[d].report.streams).expect("two devices");
    let survivor = 1 - victim;
    // Crash right after the first arrival so nearly the whole victim share
    // is orphaned and must migrate.
    let at_cycle = trace.arrivals()[0].arrival_cycle + 1;
    let fo = FailoverConfig::default();
    let outage = DeviceOutage { device: victim, at_cycle };
    let clean_cfg =
        ClusterConfig { outage: Some(outage), failover: Some(fo), ..ClusterConfig::default() };
    let clean = run_cluster(&devices, &machines, &trace, &clean_cfg).unwrap();
    assert!(clean.failover.migrations_replayed > 0, "an early crash must orphan streams");
    assert_eq!(clean.failover.migration_retries, 0, "no fault plan, no failed copies");
    assert!(clean.failover.replay_cycles > 0, "the checkpoint copy itself is never free");
    assert_eq!(clean.lost_streams, 0);
    // Every copy attempt fails: the loop must spend exactly the retry
    // budget on the one migrating survivor, then force the copy through.
    let plan = FaultPlan {
        seed: 97,
        abort_permille: 0,
        copy_fail_permille: 1000,
        corrupt_permille: 0,
        watchdog_cycles: 0,
    };
    let mut expected_retries = 0u64;
    for attempt in 0..fo.migration_max_retries {
        if plan.copy_fails(FaultDomain::H2d, fault_coord(survivor), attempt) {
            expected_retries += 1;
        } else {
            break;
        }
    }
    assert_eq!(expected_retries, fo.migration_max_retries as u64, "1000 permille always fails");
    let faulty_cfg = ClusterConfig {
        serve: ServeConfig {
            scheme_config: SchemeConfig { faults: Some(plan), ..SchemeConfig::default() },
            ..ServeConfig::default()
        },
        ..clean_cfg
    };
    let faulty = run_cluster(&devices, &machines, &trace, &faulty_cfg).unwrap();
    assert!(faulty.failover.migrations_replayed > 0);
    assert_eq!(faulty.failover.migration_retries, expected_retries);
    assert!(
        faulty.failover.replay_cycles > clean.failover.replay_cycles,
        "failed attempts and backoffs must show up in the replay bill"
    );
    assert_eq!(faulty.lost_streams, 0, "forced-through migration still conserves streams");
}

/// The streaming path keeps no routing journal to replay orphans from, so
/// pairing it with failover is a structured configuration error.
#[test]
fn streaming_path_rejects_failover_with_a_structured_error() {
    let dfas = fleet_dfas();
    let machines = fleet_machines(&dfas);
    let trace = Trace::synthetic(11, 8, dfas.len(), 30, 8..32, b"01");
    let cfg = ClusterConfig {
        outage: Some(DeviceOutage { device: 0, at_cycle: 100 }),
        failover: Some(FailoverConfig::default()),
        ..ClusterConfig::default()
    };
    match run_cluster_source(
        &test_devices(2),
        &machines,
        IterSource(trace.arrivals().iter().cloned()),
        &cfg,
    ) {
        Err(ServeError::InvalidConfig { field: "failover", .. }) => {}
        other => panic!("expected the streaming path to reject failover, got {other:?}"),
    }
}

/// A zero checkpoint cadence can never take the batch-0 checkpoint the
/// resume guarantee depends on — rejected up front.
#[test]
fn failover_rejects_a_zero_checkpoint_cadence() {
    let dfas = fleet_dfas();
    let machines = fleet_machines(&dfas);
    let trace = Trace::synthetic(11, 8, dfas.len(), 30, 8..32, b"01");
    let cfg = ClusterConfig {
        outage: Some(DeviceOutage { device: 0, at_cycle: 100 }),
        failover: Some(FailoverConfig { checkpoint_every_batches: 0, ..FailoverConfig::default() }),
        ..ClusterConfig::default()
    };
    match run_cluster(&test_devices(2), &machines, &trace, &cfg) {
        Err(ServeError::InvalidConfig { .. }) => {}
        other => panic!("expected a cadence rejection, got {other:?}"),
    }
}
