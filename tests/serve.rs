//! Serve-scheduler edge cases and determinism (ISSUE 4 satellite
//! coverage): empty traces, single streams, oversized streams as
//! structured errors, backpressure under bursts, and bit-identical
//! reports across host thread counts for every policy.

use gspecpal_fsm::examples::{div7, mod_counter};
use gspecpal_fsm::Dfa;
use gspecpal_gpu::DeviceSpec;
use gspecpal_serve::{
    serve, BatchPolicy, ServeConfig, ServeError, ServeMachine, StreamArrival, Trace,
};

fn machine<'a>(spec: &DeviceSpec, dfa: &'a Dfa) -> ServeMachine<'a> {
    ServeMachine::prepare(spec, dfa, &b"110100".repeat(128))
}

#[test]
fn empty_trace_serves_to_an_empty_report() {
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    let report = serve(&spec, &[m], &Trace::default(), &ServeConfig::default()).unwrap();
    assert_eq!(report.streams, 0);
    assert!(report.batches.is_empty());
    assert_eq!(report.makespan_cycles, 0);
    assert_eq!(report.stats.cycles, 0);
    assert_eq!(report.bytes_per_cycle(), 0.0);
    // An empty trace even serves without any machines.
    let report = serve(&spec, &[], &Trace::default(), &ServeConfig::default()).unwrap();
    assert_eq!(report.streams, 0);
}

#[test]
fn single_stream_round_trips_through_the_pipeline() {
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    let bytes = b"110101".repeat(40);
    let trace = Trace::from_arrivals(vec![StreamArrival {
        arrival_cycle: 17,
        machine: 0,
        bytes: bytes.clone(),
    }]);
    let report = serve(&spec, &[m], &trace, &ServeConfig::default()).unwrap();
    assert_eq!(report.streams, 1);
    assert_eq!(report.batches.len(), 1);
    assert_eq!(report.end_states[0], dfa.run(&bytes));
    assert_eq!(report.accepted[0], dfa.accepts(&bytes));
    // The single stream's latency spans copy-in, kernel, and copy-out.
    let b = &report.batches[0];
    assert!(b.h2d.start >= 17, "nothing happens before arrival");
    assert_eq!(report.latencies[0], b.d2h.end - 17);
    assert_eq!(report.delivery.p50, report.latencies[0]);
    assert_eq!(report.delivery.max, report.latencies[0]);
}

#[test]
fn oversized_streams_are_structured_errors_not_panics() {
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    let cfg = ServeConfig { device_mem_bytes: 64, ..ServeConfig::default() };
    let trace = Trace::from_arrivals(vec![
        StreamArrival { arrival_cycle: 0, machine: 0, bytes: vec![b'1'; 8] },
        StreamArrival { arrival_cycle: 1, machine: 0, bytes: vec![b'0'; 100] },
    ]);
    let err = serve(&spec, &[m], &trace, &cfg).unwrap_err();
    assert_eq!(err, ServeError::StreamTooLarge { stream: 1, bytes: 100, buffer_bytes: 32 });
    assert!(err.to_string().contains("100 bytes"));
}

#[test]
fn unknown_machines_are_structured_errors() {
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    let trace = Trace::from_arrivals(vec![StreamArrival {
        arrival_cycle: 0,
        machine: 3,
        bytes: vec![b'1'; 4],
    }]);
    let err = serve(&spec, &[m], &trace, &ServeConfig::default()).unwrap_err();
    assert_eq!(err, ServeError::UnknownMachine { stream: 0, machine: 3, n_machines: 1 });
}

#[test]
fn bursts_beyond_the_queue_bound_backpressure_admission() {
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    // 12 simultaneous arrivals into a 3-deep queue: arrivals 3.. must wait
    // for earlier batches to start their copies.
    let trace = Trace::from_arrivals(
        (0..12)
            .map(|_| StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(30) })
            .collect(),
    );
    let tight = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 3 },
        max_queue_depth: 3,
        ..ServeConfig::default()
    };
    let report = serve(&spec, std::slice::from_ref(&m), &trace, &tight).unwrap();
    assert!(report.backpressure_events > 0, "a 3-deep queue must push back on a 12-burst");
    assert!(report.backpressure_wait_cycles > 0);
    assert!(report.peak_queue_depth() <= 3, "the queue bound holds");
    // Answers are unaffected by the squeeze.
    for (i, a) in trace.arrivals().iter().enumerate() {
        assert_eq!(report.end_states[i], dfa.run(&a.bytes), "stream {i}");
    }
    // A roomy queue admits the same burst without any waiting.
    let roomy = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 3 },
        max_queue_depth: 64,
        ..ServeConfig::default()
    };
    let report = serve(&spec, &[m], &trace, &roomy).unwrap();
    assert_eq!(report.backpressure_events, 0);
    // Depth samples are taken after all same-cycle events: the burst's 12
    // admissions minus the first batch's 3 instant dispatches.
    assert_eq!(report.peak_queue_depth(), 9);
}

#[test]
fn reports_are_bit_identical_across_rayon_pools_for_all_policies() {
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let dfa2 = mod_counter(5, &[0, 2]);
    let trace = Trace::synthetic(11, 24, 2, 40, 8..120, b"01");
    for policy in [
        BatchPolicy::Fifo { batch: 4 },
        BatchPolicy::Deadline { batch: 4, max_wait: 60 },
        BatchPolicy::Adaptive { max_batch: 16 },
    ] {
        for overlap in [true, false] {
            let cfg = ServeConfig { policy, overlap, ..ServeConfig::default() };
            let run = |workers: usize| {
                let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
                pool.install(|| {
                    let machines = [machine(&spec, &dfa), machine(&spec, &dfa2)];
                    serve(&spec, &machines, &trace, &cfg).unwrap()
                })
            };
            let one = run(1);
            let four = run(4);
            assert_eq!(
                one,
                four,
                "{} overlap={overlap}: reports must not depend on the host pool",
                policy.name()
            );
        }
    }
}

#[test]
fn batch_end_states_are_bit_identical_to_direct_launches() {
    use gspecpal::table::{DeviceTable, TableLayout};
    use gspecpal::throughput::run_stream_parallel;
    use gspecpal_serve::ExecMode;

    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    let trace = Trace::from_arrivals(
        (0..9)
            .map(|i| StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(20 + i) })
            .collect(),
    );
    let cfg = ServeConfig { policy: BatchPolicy::Fifo { batch: 3 }, ..ServeConfig::default() };
    let report = serve(&spec, &[m], &trace, &cfg).unwrap();
    let hot = DeviceTable::hot_rows_for_device(&dfa, TableLayout::Transformed, &spec);
    let table = DeviceTable::transformed(&dfa, hot);
    for b in &report.batches {
        assert_eq!(b.mode, ExecMode::StreamParallel, "comparable streams go stream-parallel");
        let streams: Vec<&[u8]> = trace.arrivals()[b.first_stream..b.first_stream + b.streams]
            .iter()
            .map(|a| a.bytes.as_slice())
            .collect();
        let direct = run_stream_parallel(&spec, &table, &streams);
        assert_eq!(
            &report.end_states[b.first_stream..b.first_stream + b.streams],
            direct.end_states.as_slice(),
            "serve batches must be bit-identical to a direct launch_grid run"
        );
        // The batch's kernel occupies exactly the direct run's cycles.
        assert_eq!(b.compute.end - b.compute.start, direct.stats.cycles);
    }
}

#[test]
fn long_streams_pick_chunk_parallel_execution() {
    use gspecpal_serve::ExecMode;
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    // One long stream alone in its batch: chunked speculation beats a
    // single sequential device thread.
    let long = b"110101".repeat(400);
    let trace = Trace::from_arrivals(vec![StreamArrival {
        arrival_cycle: 0,
        machine: 0,
        bytes: long.clone(),
    }]);
    let report = serve(&spec, &[m], &trace, &ServeConfig::default()).unwrap();
    assert_eq!(report.batches.len(), 1);
    assert_eq!(report.batches[0].mode, ExecMode::ChunkParallel);
    assert_eq!(report.end_states[0], dfa.run(&long));
}

#[test]
fn sfa_chunk_work_factor_routes_wide_machines_to_stream_parallel() {
    use gspecpal::run::SchemeKind;
    use gspecpal::SchemeConfig;
    use gspecpal_serve::ExecMode;

    let spec = DeviceSpec::test_unit();
    let dfa = mod_counter(97, &[0]);
    let bytes = b"110101".repeat(400);
    let trace = || {
        Trace::from_arrivals(vec![StreamArrival {
            arrival_cycle: 0,
            machine: 0,
            bytes: bytes.clone(),
        }])
    };
    // At 32 chunks a per-byte multiplier of 1 makes chunking a clear win…
    let cfg = ServeConfig {
        scheme_config: SchemeConfig { n_chunks: 32, ..SchemeConfig::default() },
        ..ServeConfig::default()
    };
    let naive = ServeMachine::with_scheme(&spec, &dfa, SchemeKind::Naive);
    let report = serve(&spec, &[naive], &trace(), &cfg).unwrap();
    assert_eq!(report.batches[0].mode, ExecMode::ChunkParallel);
    // …but SFA's width-clamped factor (64 for a 97-state machine without a
    // profile) prices the mapping walk at 2× the stream length, so the
    // estimator keeps the batch stream-parallel. Results stay exact.
    let sfa = ServeMachine::with_scheme(&spec, &dfa, SchemeKind::Sfa);
    assert_eq!(sfa.chunk_work_factor(), 64);
    let report = serve(&spec, &[sfa], &trace(), &cfg).unwrap();
    assert_eq!(report.batches[0].mode, ExecMode::StreamParallel);
    assert_eq!(report.end_states[0], dfa.run(&bytes));
}

#[test]
fn chaos_serving_stays_exact_for_served_streams_and_reports_recovery() {
    use gspecpal::FaultPlan;
    use gspecpal::SchemeConfig;
    use gspecpal_serve::StreamOutcome;

    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    // Mix short streams (stream-parallel batches) with long ones
    // (chunk-parallel batches, which exercise the kernel-side fault
    // overlay) so both injection surfaces are hit.
    let mut arrivals: Vec<StreamArrival> = (0..12)
        .map(|i| StreamArrival {
            arrival_cycle: i * 20,
            machine: 0,
            bytes: b"10".repeat(25 + i as usize),
        })
        .collect();
    arrivals.push(StreamArrival { arrival_cycle: 300, machine: 0, bytes: b"110101".repeat(400) });
    let trace = Trace::from_arrivals(arrivals);
    let chaos_cfg = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 3 },
        scheme_config: SchemeConfig {
            faults: Some(FaultPlan { copy_fail_permille: 400, ..FaultPlan::chaos(5, 150) }),
            ..SchemeConfig::default()
        },
        ..ServeConfig::default()
    };
    let report = serve(&spec, std::slice::from_ref(&m), &trace, &chaos_cfg).unwrap();
    // Shedding is a structured outcome: whatever was served is exact.
    let mut served = 0;
    for (i, a) in trace.arrivals().iter().enumerate() {
        if report.outcomes[i] == StreamOutcome::Served {
            served += 1;
            assert_eq!(report.end_states[i], dfa.run(&a.bytes), "served stream {i}");
        }
    }
    assert!(served > 0, "a 15% fault rate with retries must serve most streams");
    assert_eq!(report.served_streams(), served);
    assert_eq!(
        report.recovery.shed_streams as usize + served,
        trace.len(),
        "every stream is either served or accounted shed"
    );
    // A 40% copy-fault rate over ~10 copies must retry at least once, and
    // the kernel-side overlay must have charged something on the long
    // chunk-parallel stream.
    assert!(report.recovery.copy_retries > 0, "{:?}", report.recovery);
    assert!(report.recovery.fault_cycles > 0, "{:?}", report.recovery);
    // The engine-busy phase partition survives retries and recovery.
    assert_eq!(report.stats.profile.total_cycles(), report.stats.cycles);
}

#[test]
fn chaos_reports_are_bit_identical_across_rayon_pools() {
    use gspecpal::FaultPlan;
    use gspecpal::SchemeConfig;

    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let dfa2 = mod_counter(5, &[0, 2]);
    let mut trace_arrivals: Vec<StreamArrival> =
        Trace::synthetic(17, 20, 2, 40, 8..120, b"01").arrivals().to_vec();
    trace_arrivals.push(StreamArrival {
        arrival_cycle: 2_000,
        machine: 0,
        bytes: b"110101".repeat(400),
    });
    let trace = Trace::from_arrivals(trace_arrivals);
    let cfg = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 4 },
        scheme_config: SchemeConfig {
            faults: Some(FaultPlan { watchdog_cycles: 50_000, ..FaultPlan::chaos(23, 120) }),
            ..SchemeConfig::default()
        },
        ..ServeConfig::default()
    };
    let run = |workers: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
        pool.install(|| {
            let machines = [machine(&spec, &dfa), machine(&spec, &dfa2)];
            serve(&spec, &machines, &trace, &cfg).unwrap()
        })
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one, four, "chaos reports must not depend on the host pool");
    assert_eq!(one.recovery, four.recovery);
}

#[test]
fn full_copy_failure_trips_the_breaker_and_the_report_says_so() {
    use gspecpal::FaultPlan;
    use gspecpal::SchemeConfig;
    use gspecpal_serve::{ServeRecoveryConfig, StreamOutcome};

    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    // 8 streams in batches of 2 = a multi-batch trace; every copy attempt
    // fails, so every batch exhausts its retries.
    let trace = Trace::from_arrivals(
        (0..8)
            .map(|i| StreamArrival { arrival_cycle: i * 10, machine: 0, bytes: b"10".repeat(20) })
            .collect(),
    );
    let plan = FaultPlan { copy_fail_permille: 1000, ..FaultPlan::default() };
    let cfg = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 2 },
        scheme_config: SchemeConfig { faults: Some(plan), ..SchemeConfig::default() },
        recovery: ServeRecoveryConfig {
            breaker_failure_threshold: 2,
            ..ServeRecoveryConfig::default()
        },
        ..ServeConfig::default()
    };
    let report = serve(&spec, &[m], &trace, &cfg).unwrap();
    assert_eq!(report.recovery.breaker_trips, 1, "{:?}", report.recovery);
    assert_eq!(report.recovery.failed_batches, 2, "two strikes open the breaker");
    // 2 failed batches × (2 retries of the H2D copy) each.
    assert_eq!(report.recovery.copy_retries, 4);
    assert!(report.batches.is_empty(), "no batch ever completed");
    assert_eq!(report.served_streams(), 0);
    assert_eq!(report.recovery.shed_streams, 8, "every stream is shed, none lost");
    assert_eq!(&report.outcomes[..4], &[StreamOutcome::ShedCopyFailure; 4]);
    assert_eq!(&report.outcomes[4..], &[StreamOutcome::ShedBreakerOpen; 4]);
    // No delivered results: the summaries describe the empty served set.
    assert_eq!(report.delivery, gspecpal_serve::LatencySummary::default());
}

#[test]
fn deadline_shedding_drops_overdue_streams_as_structured_outcomes() {
    use gspecpal_serve::{ServeRecoveryConfig, StreamOutcome};

    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    // A burst into a 1-deep queue: every later stream waits on its
    // predecessor's dispatch, blowing through a tight shedding deadline.
    let trace = Trace::from_arrivals(
        (0..6)
            .map(|_| StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(30) })
            .collect(),
    );
    let cfg = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 1 },
        max_queue_depth: 1,
        recovery: ServeRecoveryConfig { shed_wait_cycles: 1, ..ServeRecoveryConfig::default() },
        ..ServeConfig::default()
    };
    let report = serve(&spec, std::slice::from_ref(&m), &trace, &cfg).unwrap();
    let shed = report.outcomes.iter().filter(|o| **o == StreamOutcome::ShedDeadline).count();
    assert!(shed > 0, "the tight deadline must shed overdue streams: {:?}", report.outcomes);
    assert!(report.served_streams() > 0, "the head of the burst is always served");
    assert_eq!(report.recovery.shed_streams as usize, shed);
    for (i, a) in trace.arrivals().iter().enumerate() {
        if report.outcomes[i] == StreamOutcome::Served {
            assert_eq!(report.end_states[i], dfa.run(&a.bytes), "served stream {i}");
        }
    }
    // Without shedding the same squeeze serves everything.
    let patient = ServeConfig { recovery: ServeRecoveryConfig::default(), ..cfg };
    let report = serve(&spec, &[m], &trace, &patient).unwrap();
    assert_eq!(report.served_streams(), 6);
    assert_eq!(report.recovery.shed_streams, 0);
}
