//! Property tests for the FSM substrate: minimization, determinization,
//! combinators, and transformation on randomized machines.

use gspecpal_fsm::combinators::{complement, intersection, product, union, ProductAccept};
use gspecpal_fsm::equivalence::equivalent;
use gspecpal_fsm::minimize::{minimize, reachable_states};
use gspecpal_fsm::random::{random_dfa, random_input};
use gspecpal_fsm::{FrequencyProfile, TransformedDfa};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn minimize_preserves_language_exactly(
        seed in 0u64..20_000,
        n_states in 1u32..40,
        n_classes in 1u16..8,
    ) {
        let d = random_dfa(seed, n_states, n_classes);
        let m = minimize(&d);
        prop_assert!(m.n_states() <= d.n_states());
        // Exact language equivalence, not sampling.
        prop_assert!(equivalent(&d, &m).is_equal());
    }

    #[test]
    fn minimize_reaches_a_true_minimum(
        seed in 0u64..5_000,
        n_states in 1u32..24,
    ) {
        // No strictly smaller equivalent machine can exist: any machine with
        // fewer states than the minimized one must differ in language.
        let d = random_dfa(seed, n_states, 4);
        let m = minimize(&d);
        let m2 = minimize(&m);
        prop_assert_eq!(m.n_states(), m2.n_states());
        prop_assert!(equivalent(&m, &m2).is_equal());
    }

    #[test]
    fn minimize_is_idempotent(
        seed in 0u64..20_000,
        n_states in 1u32..40,
    ) {
        let d = random_dfa(seed, n_states, 5);
        let m1 = minimize(&d);
        let m2 = minimize(&m1);
        prop_assert_eq!(m1.n_states(), m2.n_states());
    }

    #[test]
    fn minimized_machine_has_only_reachable_states(
        seed in 0u64..10_000,
        n_states in 1u32..40,
    ) {
        let d = random_dfa(seed, n_states, 4);
        let m = minimize(&d);
        prop_assert_eq!(reachable_states(&m).len(), m.n_states() as usize);
    }

    #[test]
    fn double_complement_is_identity_on_language(
        seed in 0u64..10_000,
        n_states in 1u32..30,
    ) {
        let d = random_dfa(seed, n_states, 4);
        let cc = complement(&complement(&d));
        let input = random_input(seed ^ 0x10, 64);
        prop_assert_eq!(d.accepts(&input), cc.accepts(&input));
    }

    #[test]
    fn de_morgan_on_products(
        seed in 0u64..5_000,
    ) {
        // ¬(A ∧ B) ≡ ¬A ∨ ¬B, decided exactly through the product
        // combinators and the equivalence checker.
        let a = random_dfa(seed, 8, 4);
        let b = random_dfa(seed ^ 1, 6, 4);
        let lhs = complement(&intersection(&a, &b).unwrap());
        let rhs = union(&complement(&a), &complement(&b)).unwrap();
        prop_assert!(equivalent(&lhs, &rhs).is_equal());
    }

    #[test]
    fn product_first_projects(
        seed in 0u64..5_000,
        input_len in 0usize..80,
    ) {
        let a = random_dfa(seed, 8, 4);
        let b = random_dfa(seed ^ 3, 5, 4);
        let p = product(&a, &b, ProductAccept::First).unwrap();
        let input = random_input(seed ^ 4, input_len);
        prop_assert_eq!(p.accepts(&input), a.accepts(&input));
    }

    #[test]
    fn transformation_commutes_with_execution(
        seed in 0u64..10_000,
        n_states in 1u32..30,
        train_len in 0usize..200,
        input_len in 0usize..200,
    ) {
        let d = random_dfa(seed, n_states, 6);
        let training = random_input(seed ^ 0x20, train_len);
        let profile = FrequencyProfile::collect(&d, &training);
        let t = TransformedDfa::from_profile(&d, &profile);
        let input = random_input(seed ^ 0x21, input_len);
        // to_original ∘ run_transformed == run_original, from any state.
        for s in 0..n_states.min(5) {
            let orig_end = d.run_from(s, &input);
            let trans_end = t.dfa().run_from(t.to_transformed(s), &input);
            prop_assert_eq!(t.to_original(trans_end), orig_end);
        }
    }

    #[test]
    fn hot_ranking_is_visit_ordered(
        seed in 0u64..5_000,
        train_len in 1usize..400,
    ) {
        let d = random_dfa(seed, 12, 4);
        let training = random_input(seed ^ 0x30, train_len);
        let profile = FrequencyProfile::collect(&d, &training);
        let t = TransformedDfa::from_profile(&d, &profile);
        // Transformed id order must be non-increasing in visit counts.
        let mut last = u64::MAX;
        for rank in 0..12u32 {
            let orig = t.to_original(rank);
            let v = profile.visits(orig);
            prop_assert!(v <= last);
            last = v;
        }
    }
}
