//! Phase-level profiling invariants: the per-phase cycle split is an exact
//! partition of every kernel's total cycles, it is bit-deterministic across
//! host worker counts and stitch policies, and the phases the paper argues
//! about (verification, recovery, stitch, predict) are actually visible in
//! the schemes that incur them.

use gspecpal::config::{SchemeConfig, StitchPolicy};
use gspecpal::run::{RunOutcome, SchemeKind};
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal_fsm::combinators::keyword_dfa;
use gspecpal_fsm::examples::div7;
use gspecpal_gpu::{DeviceSpec, KernelStats, Phase};

fn grid_scale_outcome(kind: SchemeKind, policy: StitchPolicy) -> RunOutcome {
    let d = div7();
    let spec = DeviceSpec::test_unit(); // 64-thread blocks → 200 chunks = blocks
    let table = DeviceTable::transformed(&d, d.n_states());
    let input: Vec<u8> = b"1101010110010111".repeat(60);
    let config = SchemeConfig { n_chunks: 200, stitch: policy, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    run_scheme(kind, &job)
}

fn assert_partition(stage: &str, kind: SchemeKind, stats: &KernelStats) {
    assert_eq!(
        stats.profile.total_cycles(),
        stats.cycles,
        "{kind:?} {stage}: phase cycles must partition the stage cycles exactly"
    );
    let event_sum: u64 = Phase::ALL
        .iter()
        .map(|&p| {
            let c = stats.profile.get(p);
            c.global_transactions + c.shared_accesses + c.alu_ops + c.shuffles + c.atomics
        })
        .sum();
    let flat_sum = stats.global_transactions
        + stats.shared_accesses
        + stats.alu_ops
        + stats.shuffles
        + stats.atomics;
    assert_eq!(event_sum, flat_sum, "{kind:?} {stage}: phase events must partition the counters");
    let round_sum: u64 = Phase::ALL.iter().map(|&p| stats.profile.get(p).rounds).sum();
    assert_eq!(round_sum, stats.rounds, "{kind:?} {stage}: phase rounds must partition the rounds");
}

/// No double-charged and no unattributed cycles, for every scheme, at grid
/// scale, under both stitch policies.
#[test]
fn phase_cycles_partition_totals_for_every_scheme() {
    for policy in [StitchPolicy::Tree, StitchPolicy::Sequential] {
        for kind in SchemeKind::all() {
            let out = grid_scale_outcome(kind, policy);
            assert_partition("predict", kind, &out.predict);
            assert_partition("execute", kind, &out.execute);
            assert_partition("verify", kind, &out.verify);
            assert_eq!(
                out.phase_profile().total_cycles(),
                out.total_cycles(),
                "{kind:?}/{policy:?}: run profile must decompose Equation 1 exactly"
            );
        }
    }
}

/// Per-phase counters are bit-identical across rayon pool sizes (the CI
/// matrix runs `RAYON_NUM_THREADS ∈ {1,4}`) and for both stitch policies.
#[test]
fn phase_profiles_bit_identical_across_pool_sizes_and_policies() {
    for policy in [StitchPolicy::Tree, StitchPolicy::Sequential] {
        // Every registered scheme, from the registry: a scheme added to
        // `SchemeKind::all()` is pinned by the CI pool-size matrix with no
        // edit here.
        for kind in SchemeKind::all() {
            let reference = rayon::ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap()
                .install(|| grid_scale_outcome(kind, policy));
            for workers in [2, 4] {
                let out = rayon::ThreadPoolBuilder::new()
                    .num_threads(workers)
                    .build()
                    .unwrap()
                    .install(|| grid_scale_outcome(kind, policy));
                let ctx = format!("{kind:?} / {policy:?} @ {workers} workers");
                assert_eq!(out.predict.profile, reference.predict.profile, "{ctx} predict");
                assert_eq!(out.execute.profile, reference.execute.profile, "{ctx} execute");
                assert_eq!(out.verify.profile, reference.verify.profile, "{ctx} verify");
                assert_eq!(out.phase_profile(), reference.phase_profile(), "{ctx} run profile");
            }
        }
    }
}

/// The costs the paper decomposes are separately visible: VR verification,
/// recovery re-execution, tree-stitch fix-up, prediction, and PM's
/// merge-verification all land in their own buckets.
#[test]
fn paper_cost_centers_are_separately_visible() {
    // div7 defeats speculation, so VR schemes must show genuine recovery
    // cycles next to their verification cycles — and at 200 chunks on
    // 64-thread blocks the block seams make stitch time non-zero.
    let nf = grid_scale_outcome(SchemeKind::Nf, StitchPolicy::Tree);
    let profile = nf.phase_profile();
    assert!(profile.get(Phase::Predict).cycles > 0, "NF runs a prediction phase");
    assert!(profile.get(Phase::SpecExec).cycles > 0, "NF runs speculative execution");
    assert!(profile.get(Phase::Verify).cycles > 0, "NF verification must be visible");
    assert!(profile.get(Phase::Recovery).cycles > 0, "div7 must force recoveries");
    assert!(profile.get(Phase::Stitch).cycles > 0, "block seams must cost stitch time");
    assert_eq!(
        profile.get(Phase::Transfer).cycles,
        0,
        "kernel simulation never charges transfers; only the serving pipeline does"
    );

    // PM: tree merge is verification, its sequential walk is pure recovery.
    let pm = grid_scale_outcome(SchemeKind::Pm, StitchPolicy::Tree);
    let pm_profile = pm.phase_profile();
    assert!(pm_profile.get(Phase::Verify).cycles > 0, "PM's tree merge is verify time");
    assert!(pm_profile.get(Phase::Recovery).cycles > 0, "PM re-executes missed chunks");

    // Sequential scan: everything is speculative execution (one thread, one
    // "speculation" that is trivially right), nothing else.
    let seq = grid_scale_outcome(SchemeKind::Sequential, StitchPolicy::Tree);
    let seq_profile = seq.phase_profile();
    assert_eq!(seq_profile.get(Phase::SpecExec).cycles, seq.total_cycles());
    assert_eq!(seq_profile.get(Phase::Recovery).cycles, 0);

    // A convergent machine over junk input speculates perfectly (every
    // lookback window collapses all states to the root), so recovery stays
    // at zero while verification still costs cycles.
    let d = keyword_dfa(&[b"attack"]).unwrap();
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&d, d.n_states());
    let input = vec![b'z'; 1000];
    let config = SchemeConfig { n_chunks: 100, ..SchemeConfig::default() };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    let out = run_scheme(SchemeKind::Nf, &job);
    let p = out.phase_profile();
    assert!(p.get(Phase::Verify).cycles > 0);
    assert_eq!(out.recovery_runs(), 0, "convergent machine: speculation never misses");
}

/// `Phase::Transfer` is live end to end: a serve run charges real PCIe copy
/// cycles into it, and the merged per-phase cycles still partition the
/// run's total exactly — the same invariant every kernel stage satisfies.
#[test]
fn serve_runs_charge_transfer_cycles_that_still_partition_exactly() {
    use gspecpal_serve::{serve, BatchPolicy, ServeConfig, ServeMachine, StreamArrival, Trace};

    let spec = DeviceSpec::test_unit();
    let d = div7();
    let machine = ServeMachine::prepare(&spec, &d, &b"110100".repeat(128));
    let trace = Trace::from_arrivals(
        (0..10)
            .map(|i| StreamArrival {
                arrival_cycle: i * 7,
                machine: 0,
                bytes: b"10".repeat(30 + i as usize),
            })
            .collect(),
    );
    let cfg = ServeConfig { policy: BatchPolicy::Fifo { batch: 4 }, ..ServeConfig::default() };
    let report = serve(&spec, &[machine], &trace, &cfg).unwrap();
    let transfer = report.stats.profile.get(Phase::Transfer).cycles;
    assert!(transfer > 0, "serving must put real copy cycles under Phase::Transfer");
    assert_eq!(
        report.stats.profile.total_cycles(),
        report.stats.cycles,
        "serve: phase cycles must partition the merged total exactly"
    );
    let round_sum: u64 = Phase::ALL.iter().map(|&p| report.stats.profile.get(p).rounds).sum();
    assert_eq!(round_sum, report.stats.rounds, "serve: phase rounds must partition the rounds");
    // The transfer bucket holds exactly the H2D + D2H spans of every batch.
    let span_sum: u64 =
        report.batches.iter().map(|b| (b.h2d.end - b.h2d.start) + (b.d2h.end - b.d2h.start)).sum();
    assert_eq!(transfer, span_sum);
}

/// Divergence and utilization metrics behave as the paper describes: the
/// naive walker's one-thread recovery rounds are divergent with utilization
/// near 1/threads, while the embarrassingly parallel exec phase is not.
#[test]
fn divergence_shows_up_in_recovery_not_exec() {
    let out = grid_scale_outcome(SchemeKind::Naive, StitchPolicy::Tree);
    let exec = out.execute.profile.get(Phase::SpecExec);
    assert_eq!(exec.divergent_rounds, 0, "exec rounds keep every thread active");
    assert!((exec.utilization() - 1.0).abs() < 1e-12);
    let profile = out.phase_profile();
    let recovery = profile.get(Phase::Recovery);
    assert!(recovery.rounds > 0, "div7 must force naive recoveries");
    assert_eq!(
        recovery.divergent_rounds, recovery.rounds,
        "naive recovery rounds run one thread against idle peers"
    );
    assert!(recovery.utilization() < 0.1, "one active thread out of a 64-wide block");
}
