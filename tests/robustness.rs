//! Robustness: no input should ever panic the parser, the determinizer, or
//! the schemes — errors must surface as `Result`s, not crashes.

use gspecpal::config::SchemeConfig;
use gspecpal::error::CoreError;
use gspecpal::run::SchemeKind;
use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal_fsm::examples::div7;
use gspecpal_fsm::nfa::NfaBuilder;
use gspecpal_fsm::random::random_input;
use gspecpal_fsm::subset::determinize;
use gspecpal_gpu::DeviceSpec;
use gspecpal_regex::{compile, parse, CompileConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Empty input with chunks requested is a structured error, not a panic
/// deep inside a kernel.
#[test]
fn empty_input_is_rejected_with_a_structured_error() {
    let d = div7();
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&d, d.n_states());
    for n_chunks in [1, 4, 256] {
        let config = SchemeConfig { n_chunks, ..SchemeConfig::default() };
        let err = Job::new(&spec, &table, b"", config).unwrap_err();
        assert_eq!(err, CoreError::EmptyInput { n_chunks }, "n_chunks={n_chunks}");
    }
}

/// A one-byte input runs through every scheme without panicking and stays
/// exact (n_chunks is forced to 1 by validation, so this is the degenerate
/// single-chunk path).
#[test]
fn one_byte_inputs_run_every_scheme() {
    let d = div7();
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&d, d.n_states());
    for input in [&b"0"[..], b"1"] {
        let config = SchemeConfig { n_chunks: 1, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, input, config).unwrap();
        for kind in [
            SchemeKind::Sequential,
            SchemeKind::Naive,
            SchemeKind::Enumerative,
            SchemeKind::Pm,
            SchemeKind::Sre,
            SchemeKind::Rr,
            SchemeKind::Nf,
        ] {
            let out = run_scheme(kind, &job);
            assert_eq!(out.end_state, d.run(input), "{kind:?} on {input:?}");
        }
        // More chunks than bytes is the other structured rejection.
        let config = SchemeConfig { n_chunks: 2, ..SchemeConfig::default() };
        assert_eq!(
            Job::new(&spec, &table, input, config).unwrap_err(),
            CoreError::TooManyChunks { n_chunks: 2, input_len: 1 }
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII never panics the parser (it may error).
    #[test]
    fn parser_never_panics(pattern in "[ -~]{0,24}") {
        let _ = parse(&pattern);
    }

    /// Arbitrary ASCII never panics the full compilation pipeline either;
    /// successful compiles yield machines that can scan arbitrary bytes.
    #[test]
    fn compiler_never_panics(
        pattern in "[ -~]{0,16}",
        probe_seed in 0u64..1000,
    ) {
        let cfg = CompileConfig { state_limit: 10_000, ..Default::default() };
        if let Ok(dfa) = compile(&pattern, cfg) {
            let probe = random_input(probe_seed, 64);
            let _ = dfa.run(&probe);
            let _ = dfa.count_matches(&probe);
        }
    }

    /// Random NFAs determinize into DFAs that agree with direct simulation.
    #[test]
    fn random_nfa_determinizes_faithfully(
        seed in 0u64..5_000,
        n_states in 1u32..12,
        n_edges in 0u32..30,
        n_eps in 0u32..8,
        input_len in 0usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NfaBuilder::new();
        for _ in 0..n_states {
            b.add_state(rng.random_range(0..4u8) == 0);
        }
        for _ in 0..n_edges {
            let from = rng.random_range(0..n_states);
            let to = rng.random_range(0..n_states);
            let lo: u8 = rng.random_range(b'a'..=b'e');
            let hi: u8 = rng.random_range(lo..=b'f');
            b.add_range(from, lo, hi, to);
        }
        for _ in 0..n_eps {
            let from = rng.random_range(0..n_states);
            let to = rng.random_range(0..n_states);
            b.add_epsilon(from, to);
        }
        let nfa = b.build(0);
        let dfa = determinize(&nfa).expect("small NFA fits any budget");
        // Agreement on random probes over the active alphabet.
        let probe: Vec<u8> = (0..input_len)
            .map(|_| rng.random_range(b'a'..=b'g'))
            .collect();
        for end in 0..=probe.len() {
            prop_assert_eq!(
                nfa.accepts(&probe[..end]),
                dfa.accepts(&probe[..end]),
                "prefix length {}", end
            );
        }
    }
}

/// A zero retry budget means a struck block degrades to its sequential
/// re-exec immediately — no retries, answers still exact.
#[test]
fn zero_retry_budget_degrades_immediately_and_stays_exact() {
    use gspecpal::{FaultPlan, RecoveryConfig};
    let d = div7();
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&d, d.n_states());
    let input = random_input(3, 2048);
    let config = SchemeConfig {
        n_chunks: 256,
        faults: Some(FaultPlan { abort_permille: 1000, ..FaultPlan::default() }),
        recovery: RecoveryConfig { max_retries: 0, ..RecoveryConfig::default() },
        ..SchemeConfig::default()
    };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    let truth = d.run(&input);
    for kind in [SchemeKind::Naive, SchemeKind::Pm, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf]
    {
        let out = run_scheme(kind, &job);
        assert_eq!(out.end_state, truth, "{kind:?}");
        assert_eq!(out.fault_retries(), 0, "{kind:?}: no budget, no retries");
        assert!(out.fault_degraded_blocks() > 0, "{kind:?}: every struck block degrades");
        let profile = out.phase_profile();
        assert_eq!(profile.total_cycles(), out.total_cycles(), "{kind:?}: exact partition");
    }
}

/// A watchdog budget smaller than a single block round kills every attempt;
/// after the retry budget the block degrades — and stays exact.
#[test]
fn watchdog_below_one_round_degrades_every_block_and_stays_exact() {
    use gspecpal::{FaultPlan, RecoveryConfig};
    let d = div7();
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(&d, d.n_states());
    let input = random_input(4, 2048);
    let config = SchemeConfig {
        n_chunks: 256,
        faults: Some(FaultPlan { watchdog_cycles: 1, ..FaultPlan::default() }),
        recovery: RecoveryConfig { max_retries: 2, ..RecoveryConfig::default() },
        ..SchemeConfig::default()
    };
    let job = Job::new(&spec, &table, &input, config).unwrap();
    let truth = d.run(&input);
    for kind in [SchemeKind::Naive, SchemeKind::Pm, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf]
    {
        let out = run_scheme(kind, &job);
        assert_eq!(out.end_state, truth, "{kind:?}");
        assert!(out.fault_watchdog_kills() > 0, "{kind:?}: every attempt dies");
        assert!(out.fault_degraded_blocks() > 0, "{kind:?}: budgets exhaust");
        assert_eq!(
            out.fault_watchdog_kills(),
            3 * out.fault_degraded_blocks(),
            "{kind:?}: each degraded block burned initial + 2 retry attempts"
        );
        let profile = out.phase_profile();
        assert_eq!(profile.total_cycles(), out.total_cycles(), "{kind:?}: exact partition");
        assert!(
            profile.get(gspecpal_gpu::Phase::Recovery).cycles >= out.fault_cycles(),
            "{kind:?}: fault overhead lives in Phase::Recovery"
        );
    }
}
