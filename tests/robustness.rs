//! Robustness: no input should ever panic the parser, the determinizer, or
//! the schemes — errors must surface as `Result`s, not crashes.

use gspecpal_fsm::nfa::NfaBuilder;
use gspecpal_fsm::random::random_input;
use gspecpal_fsm::subset::determinize;
use gspecpal_regex::{compile, parse, CompileConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII never panics the parser (it may error).
    #[test]
    fn parser_never_panics(pattern in "[ -~]{0,24}") {
        let _ = parse(&pattern);
    }

    /// Arbitrary ASCII never panics the full compilation pipeline either;
    /// successful compiles yield machines that can scan arbitrary bytes.
    #[test]
    fn compiler_never_panics(
        pattern in "[ -~]{0,16}",
        probe_seed in 0u64..1000,
    ) {
        let cfg = CompileConfig { state_limit: 10_000, ..Default::default() };
        if let Ok(dfa) = compile(&pattern, cfg) {
            let probe = random_input(probe_seed, 64);
            let _ = dfa.run(&probe);
            let _ = dfa.count_matches(&probe);
        }
    }

    /// Random NFAs determinize into DFAs that agree with direct simulation.
    #[test]
    fn random_nfa_determinizes_faithfully(
        seed in 0u64..5_000,
        n_states in 1u32..12,
        n_edges in 0u32..30,
        n_eps in 0u32..8,
        input_len in 0usize..40,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = NfaBuilder::new();
        for _ in 0..n_states {
            b.add_state(rng.random_range(0..4u8) == 0);
        }
        for _ in 0..n_edges {
            let from = rng.random_range(0..n_states);
            let to = rng.random_range(0..n_states);
            let lo: u8 = rng.random_range(b'a'..=b'e');
            let hi: u8 = rng.random_range(lo..=b'f');
            b.add_range(from, lo, hi, to);
        }
        for _ in 0..n_eps {
            let from = rng.random_range(0..n_states);
            let to = rng.random_range(0..n_states);
            b.add_epsilon(from, to);
        }
        let nfa = b.build(0);
        let dfa = determinize(&nfa).expect("small NFA fits any budget");
        // Agreement on random probes over the active alphabet.
        let probe: Vec<u8> = (0..input_len)
            .map(|_| rng.random_range(b'a'..=b'g'))
            .collect();
        for end in 0..=probe.len() {
            prop_assert_eq!(
                nfa.accepts(&probe[..end]),
                dfa.accepts(&probe[..end]),
                "prefix length {}", end
            );
        }
    }
}
