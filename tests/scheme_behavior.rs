//! Integration tests of the paper's qualitative performance claims — the
//! behaviours the figures depend on, asserted end-to-end on the simulator.

use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::combinators::sliding_window_dfa;
use gspecpal_fsm::examples::{div7, ones_counter};
use gspecpal_fsm::Dfa;
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::inputs::window_text;

fn job_outcome(
    dfa: &Dfa,
    input: &[u8],
    config: SchemeConfig,
    scheme: SchemeKind,
) -> gspecpal::RunOutcome {
    let spec = DeviceSpec::rtx3090();
    let table = DeviceTable::transformed(dfa, dfa.n_states());
    let job = Job::new(&spec, &table, input, config).expect("valid");
    let out = run_scheme(scheme, &job);
    assert_eq!(out.end_state, dfa.run(input), "{scheme} must be exact");
    out
}

/// §II-C / Fig 2-3: PM's spec-k redundancy buys coverage. On a machine whose
/// lookback queue is exactly m deep, spec-m eliminates recovery while spec-1
/// recovers on ~(m-1)/m of the chunks.
#[test]
fn spec_k_coverage_tradeoff() {
    let d = ones_counter(5, &[0]);
    let input: Vec<u8> = b"1011010010".repeat(800);
    let base = SchemeConfig { n_chunks: 64, ..SchemeConfig::default() };

    let k1 = job_outcome(&d, &input, SchemeConfig { spec_k: 1, ..base }, SchemeKind::Pm);
    let k5 = job_outcome(&d, &input, SchemeConfig { spec_k: 5, ..base }, SchemeKind::Pm);

    assert!(k1.recovery_runs() > 30, "spec-1 misses most chunks: {}", k1.recovery_runs());
    assert_eq!(k5.recovery_runs(), 0, "spec-5 covers all 5 phases");
    // And the redundancy factor (Fig 3) shows in the execution phase.
    assert!(k5.execute.cycles > 2 * k1.execute.cycles);
    // Net: coverage wins when misses are expensive.
    assert!(k5.total_cycles() < k1.total_cycles());
}

/// §III-A: SRE's forwarded end states fix everything on a fully convergent
/// machine in one speculative wave; on a permutation machine they fix
/// (almost) nothing.
#[test]
fn sre_lives_and_dies_by_convergence() {
    let config = SchemeConfig { n_chunks: 64, ..SchemeConfig::default() };

    let window = sliding_window_dfa(b"aeiostn", 3, b"aaa").unwrap();
    let text = window_text(3, 8000, b"aeiostn", 0.9);
    let convergent = job_outcome(&window, &text, config, SchemeKind::Sre);
    assert!(
        convergent.runtime_accuracy() > 0.95,
        "convergent accuracy {}",
        convergent.runtime_accuracy()
    );

    let d = div7();
    let bits: Vec<u8> = b"10110100".repeat(1000);
    let permutation = job_outcome(&d, &bits, config, SchemeKind::Sre);
    assert!(
        permutation.runtime_accuracy() < 0.5,
        "permutation accuracy {}",
        permutation.runtime_accuracy()
    );
    // The sequential frontier walk shows as ~1-2 active threads (Table III).
    assert!(permutation.avg_active_threads_during_recovery() < 8.0);
}

/// §III-B: the aggressive heuristics turn the idle rear threads into
/// coverage — more active threads, higher accuracy, less total time than
/// SRE on a non-convergent machine.
#[test]
fn aggressive_recovery_beats_sre_on_permutation_machines() {
    let d = ones_counter(11, &[0]);
    let input: Vec<u8> = b"1011010010".repeat(1200);
    let config = SchemeConfig { n_chunks: 128, ..SchemeConfig::default() };

    let sre = job_outcome(&d, &input, config, SchemeKind::Sre);
    let rr = job_outcome(&d, &input, config, SchemeKind::Rr);
    let nf = job_outcome(&d, &input, config, SchemeKind::Nf);

    for (name, agg) in [("RR", &rr), ("NF", &nf)] {
        assert!(
            agg.avg_active_threads_during_recovery()
                > 10.0 * sre.avg_active_threads_during_recovery(),
            "{name} active {} vs SRE {}",
            agg.avg_active_threads_during_recovery(),
            sre.avg_active_threads_during_recovery()
        );
        assert!(
            agg.runtime_accuracy() > sre.runtime_accuracy() + 0.3,
            "{name} accuracy {} vs SRE {}",
            agg.runtime_accuracy(),
            sre.runtime_accuracy()
        );
        assert!(
            agg.total_cycles() * 2 < sre.total_cycles(),
            "{name} cycles {} vs SRE {}",
            agg.total_cycles(),
            sre.total_cycles()
        );
    }
}

/// Fig 7's failure mode: starving the `VR_others` register window drops the
/// records that would have verified the frontier, forcing must-be-done
/// recoveries.
#[test]
fn register_starvation_forces_recoveries() {
    let d = ones_counter(11, &[0]);
    let input: Vec<u8> = b"1011010010".repeat(1200);
    let base = SchemeConfig { n_chunks: 128, ..SchemeConfig::default() };

    let starved =
        job_outcome(&d, &input, SchemeConfig { vr_others_registers: 2, ..base }, SchemeKind::Nf);
    let provisioned =
        job_outcome(&d, &input, SchemeConfig { vr_others_registers: 16, ..base }, SchemeKind::Nf);

    assert!(
        starved.runtime_accuracy() < provisioned.runtime_accuracy(),
        "starved {} vs provisioned {}",
        starved.runtime_accuracy(),
        provisioned.runtime_accuracy()
    );
    assert!(starved.total_cycles() > provisioned.total_cycles());
}

/// Equation 1: the phases are disjoint and total time is their sum; the
/// prediction phase is the constant C (independent of input length).
#[test]
fn phase_decomposition_follows_equation_1() {
    let d = div7();
    let config = SchemeConfig { n_chunks: 32, ..SchemeConfig::default() };
    let short: Vec<u8> = b"10110100".repeat(200);
    let long: Vec<u8> = b"10110100".repeat(2000);

    let a = job_outcome(&d, &short, config, SchemeKind::Rr);
    let b = job_outcome(&d, &long, config, SchemeKind::Rr);
    assert_eq!(a.total_cycles(), a.predict.cycles + a.execute.cycles + a.verify.cycles);
    // C is constant; T_par grows with the chunk length.
    assert_eq!(a.predict.cycles, b.predict.cycles);
    assert!(b.execute.cycles > 5 * a.execute.cycles);
}

/// The verification records work across schemes: a chunk verified from a
/// record yields the same end state as a re-execution would (spot-checked by
/// comparing the full chunk_ends of different schemes).
#[test]
fn all_schemes_verify_identical_chunk_ends() {
    let d = ones_counter(7, &[0]);
    let input: Vec<u8> = b"0110101101".repeat(640);
    let config = SchemeConfig { n_chunks: 64, ..SchemeConfig::default() };
    let reference = job_outcome(&d, &input, config, SchemeKind::Sequential);
    for scheme in [SchemeKind::Pm, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf] {
        let out = job_outcome(&d, &input, config, scheme);
        assert_eq!(out.chunk_ends, reference.chunk_ends, "{scheme}");
    }
}

/// §V-A with the SFA leaf: on the suite's family-C (PowerEN) non-convergent
/// tiers — hundreds of states, uniformly poor speculation, but a live path
/// set narrow enough to keep the full-mapping kernel resident — the
/// selector must pick SFA. That is exactly where mapping composition beats
/// every speculative scheme in the fig. 8 matrix.
#[test]
fn selector_picks_sfa_on_poweren_nonconvergent_tiers() {
    use gspecpal::Selector;
    use gspecpal_workloads::{build_suite, Family, Tier};

    let selector = Selector::default();
    let suite = build_suite(1);
    let targets: Vec<_> = suite
        .iter()
        .filter(|b| b.family == Family::PowerEn && b.tier == Tier::NonConvergent)
        .collect();
    assert_eq!(targets.len(), 3, "PowerEN tier layout places three non-convergent machines");
    for b in targets {
        let input = b.generate_input(32 * 1024, 0);
        let profile = selector.profile(&b.dfa, &input);
        let (choice, why) = selector.select_explained(&profile);
        assert_eq!(
            choice,
            SchemeKind::Sfa,
            "{}: |Q|={} uniq10={:.1} spread={:.2} — expected the SFA leaf ({why})",
            b.name(),
            b.dfa.n_states(),
            profile.convergence.mean_unique_states,
            profile.accuracy_spread,
        );
        assert!(why.contains("full mapping"), "{}: explanation names the mapping kernel", b.name());
    }
}

/// The SFA leaf must stay a *leaf*, not a default: small convergent machines
/// keep their speculative picks (SFA's |Q|-fold execute work would be pure
/// waste when spec-1 already lands), and the giant Snort non-convergent
/// machines fall through to RR because their tables blow the shared-memory
/// residency the SFA cost model assumes.
#[test]
fn selector_rejects_sfa_outside_its_window() {
    use gspecpal::Selector;
    use gspecpal_workloads::{build_suite, Family, Tier};

    let selector = Selector::default();

    // Small convergent machine: div7 has 7 states, below the SFA floor.
    let d = div7();
    let input: Vec<u8> = b"1101010110010111".repeat(2048);
    let profile = selector.profile(&d, &input);
    assert_ne!(selector.select(&profile), SchemeKind::Sfa, "7-state machine must not pick SFA");

    // Suite-wide: convergent/spec-k tiers never pick SFA, and neither do the
    // non-convergent Snort giants (thousands of states).
    for b in build_suite(1) {
        let input = b.generate_input(32 * 1024, 0);
        let profile = selector.profile(&b.dfa, &input);
        let choice = selector.select(&profile);
        match b.tier {
            Tier::SpecKFriendly | Tier::SlowConvergence => {
                assert_ne!(
                    choice,
                    SchemeKind::Sfa,
                    "{}: speculation-friendly tiers keep their speculative scheme",
                    b.name()
                );
            }
            Tier::NonConvergent if b.family == Family::Snort => {
                assert_ne!(
                    choice,
                    SchemeKind::Sfa,
                    "{}: {}-state table spills shared memory, SFA must not fire",
                    b.name(),
                    b.dfa.n_states()
                );
            }
            _ => {}
        }
    }
}

/// The selector is a pure function of the training stream: profiling the
/// same benchmark twice yields bit-identical profiles, decisions, and
/// explanations. Deployment relies on this — the scheme choice is made once
/// offline and must reproduce.
#[test]
fn selector_decision_is_deterministic() {
    use gspecpal::Selector;
    use gspecpal_workloads::{build_suite, Family, Tier};

    let selector = Selector::default();
    let suite = build_suite(1);
    let b = suite
        .iter()
        .find(|b| b.family == Family::PowerEn && b.tier == Tier::NonConvergent)
        .expect("suite has a PowerEN non-convergent machine");
    let input = b.generate_input(32 * 1024, 0);
    let first = selector.profile(&b.dfa, &input);
    let (first_choice, first_why) = selector.select_explained(&first);
    for _ in 0..3 {
        let again = selector.profile(&b.dfa, &input);
        let (choice, why) = selector.select_explained(&again);
        assert_eq!(choice, first_choice, "decision must reproduce");
        assert_eq!(why, first_why, "explanation must reproduce");
        assert_eq!(again.spec1_accuracy, first.spec1_accuracy);
        assert_eq!(again.spec4_accuracy, first.spec4_accuracy);
        assert_eq!(again.accuracy_spread, first.accuracy_spread);
        assert_eq!(again.convergence.mean_unique_states, first.convergence.mean_unique_states);
    }
}
