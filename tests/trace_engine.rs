//! Million-stream trace-engine guarantees (ISSUE 6): the streaming
//! ingestion path must be bit-identical to the materialized one, latency
//! sketches must track exact quantiles within their documented bound, and
//! none of it may depend on the host thread pool.

use gspecpal_fsm::examples::div7;
use gspecpal_fsm::Dfa;
use gspecpal_gpu::{DeviceSpec, FaultPlan};
use gspecpal_serve::sketch::SUB_BUCKET_BITS;
use gspecpal_serve::{
    serve, serve_source, BatchPolicy, IterSource, LatencySketch, LatencySummary, ReportDetail,
    ServeConfig, ServeMachine, ServeRecoveryConfig, SyntheticSource, Trace, EXACT_SUMMARY_MAX,
};
use proptest::prelude::*;

fn machine<'a>(spec: &DeviceSpec, dfa: &'a Dfa) -> ServeMachine<'a> {
    ServeMachine::prepare(spec, dfa, &b"110100".repeat(128))
}

/// Nearest-rank percentile over a sorted slice — the exact rule both the
/// sort path and the sketch follow.
fn exact_percentile(sorted: &[u64], pct: u64) -> u64 {
    let idx = (pct * sorted.len() as u64).div_ceil(100).max(1) - 1;
    sorted[idx as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The sketch's documented contract, checked differentially against a
    // full sort: quantiles never understate the exact value and overstate
    // it by less than 2^-SUB_BUCKET_BITS relative. Values span every
    // octave from the exact linear range up to 2^63.
    #[test]
    fn sketch_quantiles_stay_within_the_documented_bound(
        smalls in prop::collection::vec(0u64..4096, 0..200),
        scaled in prop::collection::vec((0u32..54, 1u64..1024), 1..300),
    ) {
        let mut values: Vec<u64> = smalls;
        values.extend(scaled.into_iter().map(|(exp, m)| m << exp));
        let mut sketch = LatencySketch::new();
        for &v in &values {
            sketch.record(v);
        }
        values.sort_unstable();
        for pct in [1u64, 5, 10, 25, 50, 75, 90, 95, 99, 100] {
            let exact = exact_percentile(&values, pct);
            let sketched = sketch.percentile(pct);
            prop_assert!(sketched >= exact, "p{}: {} understates {}", pct, sketched, exact);
            prop_assert!(
                sketched - exact <= exact >> SUB_BUCKET_BITS,
                "p{}: {} vs {} breaks the 2^-{} relative bound",
                pct, sketched, exact, SUB_BUCKET_BITS
            );
        }
        prop_assert_eq!(sketch.max(), *values.last().unwrap());
    }

    // Above the exact-summary threshold `from_latencies` must route through
    // the sketch — same result as sketching by hand, and still within the
    // bound of the true sorted quantiles.
    #[test]
    fn summaries_past_the_threshold_carry_sketch_semantics(
        seed in 0u64..1_000,
        extra in 1usize..600,
    ) {
        let n = EXACT_SUMMARY_MAX + extra;
        let mut state = seed;
        let values: Vec<u64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (state >> 17) % 10_000_000
            })
            .collect();
        let summary = LatencySummary::from_latencies(&values);
        let mut sketch = LatencySketch::new();
        for &v in &values {
            sketch.record(v);
        }
        prop_assert_eq!(summary, LatencySummary::from_sketch(&sketch));
        let mut sorted = values;
        sorted.sort_unstable();
        for (pct, got) in [(50u64, summary.p50), (95, summary.p95), (99, summary.p99)] {
            let exact = exact_percentile(&sorted, pct);
            prop_assert!(got >= exact && got - exact <= exact >> SUB_BUCKET_BITS);
        }
        prop_assert_eq!(summary.max, *sorted.last().unwrap());
    }
}

#[test]
fn streaming_and_materialized_reports_are_bit_identical_across_pools() {
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    let machines = std::slice::from_ref(&m);
    let trace = Trace::synthetic(11, 64, 1, 20, 8..96, b"01");
    let faulty = gspecpal::SchemeConfig {
        faults: Some(FaultPlan::chaos(4, 250)),
        ..gspecpal::SchemeConfig::default()
    };
    let configs = [
        ServeConfig { policy: BatchPolicy::Fifo { batch: 4 }, ..ServeConfig::default() },
        ServeConfig {
            policy: BatchPolicy::Deadline { batch: 8, max_wait: 64 },
            ..ServeConfig::default()
        },
        ServeConfig { policy: BatchPolicy::Adaptive { max_batch: 16 }, ..ServeConfig::default() },
        ServeConfig {
            policy: BatchPolicy::Fifo { batch: 4 },
            scheme_config: faulty,
            recovery: ServeRecoveryConfig {
                copy_max_retries: 1,
                shed_wait_cycles: 500,
                ..ServeRecoveryConfig::default()
            },
            max_queue_depth: 8,
            ..ServeConfig::default()
        },
    ];
    for (i, cfg) in configs.iter().enumerate() {
        let mut reports = Vec::new();
        for workers in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
            pool.install(|| {
                reports.push(serve(&spec, machines, &trace, cfg).unwrap());
                reports.push(
                    serve_source(
                        &spec,
                        machines,
                        IterSource(trace.arrivals().iter().cloned()),
                        cfg,
                    )
                    .unwrap(),
                );
            });
        }
        for r in &reports[1..] {
            assert_eq!(
                &reports[0], r,
                "config {i}: trace/iterator paths and thread pools must all agree bit for bit"
            );
        }
    }
}

#[test]
fn bounded_streaming_reports_are_bit_identical_across_pools() {
    // The bounded-memory path at a scale that forces the latency sketch:
    // a generator-fed run past EXACT_SUMMARY_MAX streams, on two pools.
    let spec = DeviceSpec::test_unit();
    let dfa = div7();
    let m = machine(&spec, &dfa);
    let n = EXACT_SUMMARY_MAX + 400;
    let cfg = ServeConfig {
        policy: BatchPolicy::Fifo { batch: 32 },
        detail: ReportDetail::Bounded,
        ..ServeConfig::default()
    };
    let mut reports = Vec::new();
    for workers in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(workers).build().unwrap();
        pool.install(|| {
            let source = SyntheticSource::new(31, n, 1, 2, 4..12, b"01");
            reports.push(serve_source(&spec, std::slice::from_ref(&m), source, &cfg).unwrap());
        });
    }
    assert_eq!(reports[0], reports[1], "bounded reports must not depend on the host pool");
    assert_eq!(reports[0].streams, n);
    assert_eq!(reports[0].latency_error_permille, LatencySketch::ERROR_PERMILLE);
    assert!(reports[0].latencies.is_empty(), "bounded mode holds no per-stream vectors");
    assert!(reports[0].queue_depth.is_empty());
    assert!(reports[0].peak_queue > 0);
}
