//! The paper's Figure 1 example end to end, plus a three-way cross-check:
//! simulated-GPU schemes vs. the multicore engine vs. the host reference.

use gspecpal::cpu::run_speculative;
use gspecpal::{GSpecPal, SchemeConfig, SchemeKind};
use gspecpal_fsm::examples::div7;
use gspecpal_gpu::DeviceSpec;

fn binary(n: u64) -> Vec<u8> {
    format!("{n:b}").into_bytes()
}

#[test]
fn fig1_transition_walkthrough() {
    // Figure 1(c): consuming bits walks the residue graph one lookup per
    // symbol.
    let d = div7();
    assert_eq!(d.start(), 0);
    let mut s = d.start();
    for (b, expect) in [(b'1', 1), (b'0', 2), (b'1', 5), (b'0', 3), (b'1', 0)] {
        s = d.next(s, b);
        assert_eq!(s, expect);
    }
    assert!(d.is_accepting(s), "10101 = 21 is divisible by 7");
}

#[test]
fn div7_language_is_divisibility() {
    let d = div7();
    for n in 0..2000u64 {
        assert_eq!(d.accepts(&binary(n)), n % 7 == 0, "n = {n}");
    }
}

#[test]
fn three_engines_agree_on_div7() {
    let d = div7();
    // A long pseudo-random bit stream.
    let mut x = 0x9E3779B97F4A7C15u64;
    let input: Vec<u8> = (0..40_000)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x & 1 == 1 {
                b'1'
            } else {
                b'0'
            }
        })
        .collect();
    let host = d.run(&input);

    // Simulated GPU, every scheme.
    let fw = GSpecPal::new(DeviceSpec::test_unit())
        .with_config(SchemeConfig { n_chunks: 32, ..SchemeConfig::default() });
    for scheme in SchemeKind::all() {
        let o = fw.run_with(&d, &input, scheme);
        assert_eq!(o.end_state, host, "{scheme}");
    }

    // Real threads (crossbeam).
    let cpu = run_speculative(&d, &input, 8);
    assert_eq!(cpu.end_state, host);
    assert_eq!(cpu.accepted, d.is_accepting(host));
}

#[test]
fn div7_defeats_speculation_but_not_correctness() {
    // div7 is a permutation automaton: lookback prediction cannot narrow the
    // candidate set, so spec-1 recovery fires constantly — the adversarial
    // case the aggressive schemes were designed for.
    let d = div7();
    let input: Vec<u8> = b"1011010101101".repeat(500);
    let fw = GSpecPal::new(DeviceSpec::test_unit())
        .with_config(SchemeConfig { n_chunks: 64, ..SchemeConfig::default() });

    let naive = fw.run_with(&d, &input, SchemeKind::Naive);
    assert!(naive.recovery_runs() > 0);

    let rr = fw.run_with(&d, &input, SchemeKind::Rr);
    let nf = fw.run_with(&d, &input, SchemeKind::Nf);
    // Aggressive recovery converts the sequential walk into parallel
    // coverage: far fewer cycles than naive speculation.
    assert!(
        rr.total_cycles() < naive.total_cycles() / 2,
        "RR {} vs naive {}",
        rr.total_cycles(),
        naive.total_cycles()
    );
    assert!(nf.total_cycles() < naive.total_cycles() / 2);
    assert_eq!(rr.end_state, d.run(&input));
    assert_eq!(nf.end_state, d.run(&input));
}
