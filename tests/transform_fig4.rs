//! The paper's Figure 4: frequency-based DFA transformation on the 4-state
//! comment-recognizer machine, plus its interaction with the device table.

use gspecpal::table::{DeviceTable, TableLayout};
use gspecpal_fsm::examples::fig4_dfa;
use gspecpal_fsm::{FrequencyProfile, TransformedDfa};
use gspecpal_gpu::DeviceSpec;

/// A training input on which S0/S1 (outside comments, after slash) dominate,
/// matching the frequency column of Figure 4(a).
fn fig4_training() -> &'static [u8] {
    b"int x = a / b; // average\nint y = c / d; /* note */ done"
}

#[test]
fn hot_states_get_the_low_ids() {
    let d = fig4_dfa();
    let profile = FrequencyProfile::collect(&d, fig4_training());
    let t = TransformedDfa::from_profile(&d, &profile);
    // The two most-visited original states occupy transformed ids 0 and 1 —
    // the shadowed hot rows of Figure 4(b).
    let ranked = profile.ranked_states();
    assert_eq!(t.to_transformed(ranked[0]), 0);
    assert_eq!(t.to_transformed(ranked[1]), 1);
    assert_eq!(t.to_transformed(ranked[2]), 2);
    assert_eq!(t.to_transformed(ranked[3]), 3);
}

#[test]
fn mapping_rules_preserve_semantics() {
    let d = fig4_dfa();
    let profile = FrequencyProfile::collect(&d, fig4_training());
    let t = TransformedDfa::from_profile(&d, &profile);
    for input in [
        &b"/* comment */ code"[..],
        b"///*//*/",
        b"no comments here",
        b"/*unterminated",
        b"",
        b"a/*b*/c/*d*/e",
    ] {
        // Running the transformed machine and mapping back equals running
        // the original — the Figure 4(b) state-mapping rules.
        assert_eq!(t.to_original(t.dfa().run(input)), d.run(input), "{input:?}");
        assert_eq!(t.dfa().accepts(input), d.accepts(input), "{input:?}");
    }
}

#[test]
fn hot_test_replaces_hash_lookup() {
    // With 2 of 4 rows resident, the transformed layout answers "cached?"
    // with the single comparison `state < 2`; the hashed layout needs a
    // probe. Per-step shared-access counts expose the difference.
    let d = fig4_dfa();
    let profile = FrequencyProfile::collect(&d, fig4_training());
    let t = TransformedDfa::from_profile(&d, &profile);

    assert!(TransformedDfa::is_hot(0, 2));
    assert!(TransformedDfa::is_hot(1, 2));
    assert!(!TransformedDfa::is_hot(2, 2));
    assert!(!TransformedDfa::is_hot(3, 2));

    // Device cost comparison over the same stream.
    use gspecpal::schemes::{run_scheme, Job};
    use gspecpal::{SchemeConfig, SchemeKind};
    let spec = DeviceSpec::test_unit();
    let input = fig4_training().repeat(40);
    let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };

    let transformed_table = DeviceTable::transformed(t.dfa(), 2);
    let job = Job::new(&spec, &transformed_table, &input, config).unwrap();
    let fast = run_scheme(SchemeKind::Sequential, &job);

    let hashed_table = DeviceTable::hashed(&d, &profile, 2);
    let job = Job::new(&spec, &hashed_table, &input, config).unwrap();
    let slow = run_scheme(SchemeKind::Sequential, &job);

    assert_eq!(t.to_original(fast.end_state), slow.end_state, "same answer");
    assert!(
        slow.execute.shared_accesses > fast.execute.shared_accesses,
        "hash probes cost extra shared accesses: {} vs {}",
        slow.execute.shared_accesses,
        fast.execute.shared_accesses
    );
    assert!(slow.total_cycles() > fast.total_cycles());
}

#[test]
fn budget_rule_promotes_highest_frequencies_first() {
    let d = fig4_dfa();
    let profile = FrequencyProfile::collect(&d, fig4_training());
    let t = TransformedDfa::from_profile(&d, &profile);
    let row_bytes = d.stride() * 4;
    assert_eq!(t.hot_rows_for_budget(2 * row_bytes), 2);
    assert_eq!(t.hot_rows_for_budget(100 * row_bytes), 4, "capped at |Q|");
    // Coverage grows with every promoted row.
    assert!(profile.hot_coverage(1) < profile.hot_coverage(2));
    assert!(profile.hot_coverage(2) <= profile.hot_coverage(4));
}

#[test]
fn layouts_agree_under_every_scheme() {
    use gspecpal::{GSpecPal, SchemeConfig, SchemeKind};
    let d = fig4_dfa();
    let input = fig4_training().repeat(100);
    let config = SchemeConfig { n_chunks: 16, ..SchemeConfig::default() };
    let fw_t = GSpecPal::new(DeviceSpec::test_unit()).with_config(config);
    let fw_h =
        GSpecPal::new(DeviceSpec::test_unit()).with_config(config).with_layout(TableLayout::Hashed);
    for scheme in SchemeKind::gspecpal_schemes() {
        let a = fw_t.run_with(&d, &input, scheme);
        let b = fw_h.run_with(&d, &input, scheme);
        assert_eq!(a.end_state, b.end_state, "{scheme}");
        assert_eq!(a.accepted, b.accepted, "{scheme}");
    }
}
