//! The central correctness contract, property-tested: every parallelization
//! scheme produces *exactly* the sequential result — final state, accept
//! decision, and all per-chunk verified end states — for arbitrary machines,
//! inputs, chunk counts, spec-k values, and register budgets.
//!
//! This is the invariant the paper's verification-and-recovery machinery
//! exists to guarantee ("relies on sequential verification and recovery to
//! ensure the correctness", §II-A).

use gspecpal::schemes::{run_scheme, Job};
use gspecpal::table::DeviceTable;
use gspecpal::{SchemeConfig, SchemeKind};
use gspecpal_fsm::random::{random_dfa, random_input};
use gspecpal_fsm::Dfa;
use gspecpal_gpu::DeviceSpec;
use proptest::prelude::*;

fn check_scheme_exact(
    dfa: &Dfa,
    input: &[u8],
    config: SchemeConfig,
    hot_rows: u32,
    scheme: SchemeKind,
) {
    let spec = DeviceSpec::test_unit();
    let table = DeviceTable::transformed(dfa, hot_rows);
    let job = Job::new(&spec, &table, input, config).expect("valid job");
    let out = run_scheme(scheme, &job);

    // Final state and decision.
    assert_eq!(out.end_state, dfa.run(input), "{scheme}: end state");
    assert_eq!(out.accepted, dfa.is_accepting(dfa.run(input)), "{scheme}: accept");

    // Every verified chunk end equals the true prefix state.
    let mut s = dfa.start();
    for (i, range) in job.chunks().into_iter().enumerate() {
        s = dfa.run_from(s, &input[range]);
        assert_eq!(out.chunk_ends[i], s, "{scheme}: chunk {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schemes_exact_on_random_machines(
        seed in 0u64..10_000,
        n_states in 2u32..40,
        n_classes in 1u16..12,
        input_len in 1usize..2000,
        n_chunks in 1usize..24,
        spec_k in 1usize..6,
        vr_others in 0usize..20,
    ) {
        let dfa = random_dfa(seed, n_states, n_classes);
        let input = random_input(seed.wrapping_add(1), input_len);
        let config = SchemeConfig {
            n_chunks: n_chunks.min(input_len),
            spec_k,
            vr_others_registers: vr_others,
            ..SchemeConfig::default()
        };
        // Hot-row coverage varies from nothing resident to everything.
        let hot = (seed % u64::from(n_states + 1)) as u32;
        for scheme in SchemeKind::all() {
            if scheme == SchemeKind::Enumerative && n_states > 24 {
                continue; // keep the all-states reference cheap
            }
            check_scheme_exact(&dfa, &input, config, hot, scheme);
        }
    }

    #[test]
    fn schemes_exact_with_tiny_register_budgets(
        seed in 0u64..2_000,
        input_len in 32usize..600,
    ) {
        // Degenerate windows: zero cross-thread slots and one own slot force
        // constant record loss — correctness must survive.
        let dfa = random_dfa(seed, 12, 5);
        let input = random_input(seed ^ 7, input_len);
        let config = SchemeConfig {
            n_chunks: 8.min(input_len),
            vr_end_registers: 1,
            vr_others_registers: 0,
            ..SchemeConfig::default()
        };
        for scheme in [SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf, SchemeKind::Pm] {
            check_scheme_exact(&dfa, &input, config, 12, scheme);
        }
    }
}

#[test]
fn schemes_exact_on_single_byte_input() {
    let dfa = random_dfa(77, 9, 4);
    let config = SchemeConfig { n_chunks: 1, ..SchemeConfig::default() };
    for scheme in SchemeKind::all() {
        check_scheme_exact(&dfa, b"x", config, 9, scheme);
    }
}

#[test]
fn schemes_exact_when_chunks_equal_bytes() {
    // Every chunk is exactly one byte: maximal verification pressure.
    let dfa = random_dfa(3, 15, 6);
    let input = random_input(4, 48);
    let config = SchemeConfig { n_chunks: 48, ..SchemeConfig::default() };
    for scheme in SchemeKind::all() {
        check_scheme_exact(&dfa, &input, config, 15, scheme);
    }
}

#[test]
fn schemes_exact_on_identity_machine() {
    // One state: everything is trivially verified.
    let dfa = random_dfa(11, 1, 3);
    let input = random_input(12, 300);
    let config = SchemeConfig { n_chunks: 16, ..SchemeConfig::default() };
    for scheme in SchemeKind::all() {
        check_scheme_exact(&dfa, &input, config, 1, scheme);
    }
}
