//! End-to-end checks over the synthetic benchmark suite and the framework:
//! exactness for every benchmark, stable behaviour across layouts, and the
//! selector's decisions lining up with the tiers.

use gspecpal::table::TableLayout;
use gspecpal::{GSpecPal, SchemeConfig, SchemeKind, Selector};
use gspecpal_gpu::DeviceSpec;
use gspecpal_workloads::{build_family, build_suite, Family, Tier};
use std::sync::OnceLock;

fn suite() -> &'static [gspecpal_workloads::Benchmark] {
    static SUITE: OnceLock<Vec<gspecpal_workloads::Benchmark>> = OnceLock::new();
    SUITE.get_or_init(|| build_suite(1))
}

fn small_fw() -> GSpecPal {
    GSpecPal::new(DeviceSpec::test_unit())
        .with_config(SchemeConfig { n_chunks: 32, ..SchemeConfig::default() })
}

#[test]
fn every_benchmark_is_exact_under_every_scheme() {
    let fw = small_fw();
    for b in suite() {
        let input = b.generate_input(24 * 1024, 0);
        let truth = b.dfa.run(&input);
        for scheme in SchemeKind::gspecpal_schemes() {
            let o = fw.run_with(&b.dfa, &input, scheme);
            assert_eq!(o.end_state, truth, "{} under {}", b.name(), scheme);
        }
    }
}

#[test]
fn hashed_layout_is_exact_across_the_suite() {
    let fw = small_fw().with_layout(TableLayout::Hashed);
    for b in suite().iter().step_by(5) {
        let input = b.generate_input(16 * 1024, 0);
        let o = fw.run_with(&b.dfa, &input, SchemeKind::Rr);
        assert_eq!(o.end_state, b.dfa.run(&input), "{}", b.name());
    }
}

#[test]
fn selector_tracks_tiers() {
    // On large-enough inputs the decision tree should map tiers to their
    // designed winners (modulo RR/NF near-ties).
    let selector = Selector::default();
    let mut agreements = 0usize;
    let mut total = 0usize;
    for b in suite() {
        let input = b.generate_input(128 * 1024, 0);
        let profile = selector.profile(&b.dfa, &input);
        let picked = selector.select(&profile);
        let expected: &[SchemeKind] = match b.tier {
            Tier::SpecKFriendly => &[SchemeKind::Pm],
            Tier::SlowConvergence => &[SchemeKind::Sre],
            Tier::NonConvergent => &[SchemeKind::Rr, SchemeKind::Nf],
            Tier::InputSensitive => &[SchemeKind::Nf, SchemeKind::Rr],
        };
        total += 1;
        if expected.contains(&picked) {
            agreements += 1;
        }
    }
    // The paper's coarse tree reaches ~80% on its suite; require a healthy
    // majority here (exact matching is not the point — robustness is).
    assert!(
        agreements * 10 >= total * 8,
        "selector agreed with tier design on only {agreements}/{total}"
    );
}

#[test]
fn framework_report_survives_tiny_inputs() {
    let fw = small_fw();
    for b in build_family(Family::PowerEn, 3).iter().take(3) {
        for len in [1usize, 7, 64, 300] {
            let input = b.generate_input(len, 0);
            let report = fw.process(&b.dfa, &input);
            assert_eq!(report.end_state(), b.dfa.run(&input), "{} len {len}", b.name());
        }
    }
}

#[test]
fn input_variants_are_equivalent_workloads() {
    // Different variants of a benchmark's input exercise the same machine;
    // all schemes stay exact on each variant.
    let fw = small_fw();
    let b = &suite()[5];
    for variant in 0..4u64 {
        let input = b.generate_input(8 * 1024, variant);
        let o = fw.run_with(&b.dfa, &input, SchemeKind::Nf);
        assert_eq!(o.end_state, b.dfa.run(&input), "variant {variant}");
    }
}

#[test]
fn profiles_are_deterministic() {
    let b = &suite()[0];
    let input = b.generate_input(32 * 1024, 0);
    let sel = Selector::default();
    let p1 = sel.profile(&b.dfa, &input);
    let p2 = sel.profile(&b.dfa, &input);
    assert_eq!(p1.spec1_accuracy, p2.spec1_accuracy);
    assert_eq!(p1.spec4_accuracy, p2.spec4_accuracy);
    assert_eq!(p1.worst_truth_rank, p2.worst_truth_rank);
    assert_eq!(sel.select(&p1), sel.select(&p2));
}

#[test]
fn simulated_costs_are_deterministic() {
    // The whole point of the simulator: bit-for-bit reproducible timing.
    let fw = small_fw();
    let b = &suite()[20];
    let input = b.generate_input(16 * 1024, 0);
    let a = fw.run_with(&b.dfa, &input, SchemeKind::Rr);
    let c = fw.run_with(&b.dfa, &input, SchemeKind::Rr);
    assert_eq!(a.total_cycles(), c.total_cycles());
    assert_eq!(a.verify.rounds, c.verify.rounds);
    assert_eq!(a.verification_matches, c.verification_matches);
}
