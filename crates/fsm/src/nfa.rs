//! Non-deterministic finite automata with epsilon transitions.
//!
//! NFAs are the intermediate representation the regex compiler produces
//! (Thompson construction) before determinization, and they also exhibit the
//! *state-level parallelism* of Algorithm 1 lines 9-10: simulation keeps a
//! set of active states and advances all of them on each symbol.

use crate::dfa::StateId;

/// A byte-range transition `lo..=hi -> target`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ByteRange {
    /// Lowest byte matched (inclusive).
    pub lo: u8,
    /// Highest byte matched (inclusive).
    pub hi: u8,
    /// Successor state.
    pub target: StateId,
}

/// One NFA state: byte-range transitions plus epsilon edges.
#[derive(Clone, Debug, Default)]
pub struct NfaState {
    /// Byte-range transitions out of this state.
    pub ranges: Vec<ByteRange>,
    /// Epsilon (input-free) transitions out of this state.
    pub epsilons: Vec<StateId>,
    /// Whether this state accepts.
    pub accepting: bool,
}

/// A non-deterministic finite automaton over bytes.
#[derive(Clone, Debug)]
pub struct Nfa {
    states: Vec<NfaState>,
    start: StateId,
}

impl Nfa {
    /// Number of states.
    pub fn n_states(&self) -> u32 {
        self.states.len() as u32
    }

    /// The initial state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Immutable access to a state.
    pub fn state(&self, s: StateId) -> &NfaState {
        &self.states[s as usize]
    }

    /// Iterates over all states.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &NfaState)> {
        self.states.iter().enumerate().map(|(i, s)| (i as StateId, s))
    }

    /// Epsilon-closure of a set of states, returned sorted and deduplicated.
    pub fn epsilon_closure(&self, set: &[StateId]) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = Vec::with_capacity(set.len());
        for &s in set {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &e in &self.states[s as usize].epsilons {
                if !seen[e as usize] {
                    seen[e as usize] = true;
                    stack.push(e);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Advances a (closed) state set on one byte, returning the epsilon
    /// closure of the successors. Lines 9-12 of Algorithm 1.
    pub fn step(&self, set: &[StateId], b: u8) -> Vec<StateId> {
        let mut next: Vec<StateId> = Vec::new();
        for &s in set {
            for r in &self.states[s as usize].ranges {
                if r.lo <= b && b <= r.hi {
                    next.push(r.target);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        self.epsilon_closure(&next)
    }

    /// Simulates the NFA on `input` from the start state; returns the final
    /// active set (may be empty if the machine dies).
    pub fn simulate(&self, input: &[u8]) -> Vec<StateId> {
        let mut set = self.epsilon_closure(&[self.start]);
        for &b in input {
            if set.is_empty() {
                break;
            }
            set = self.step(&set, b);
        }
        set
    }

    /// True iff some state in the final active set accepts.
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.simulate(input).iter().any(|&s| self.states[s as usize].accepting)
    }

    /// Whether any state in `set` accepts.
    pub fn any_accepting(&self, set: &[StateId]) -> bool {
        set.iter().any(|&s| self.states[s as usize].accepting)
    }
}

/// Mutable builder for [`Nfa`].
#[derive(Clone, Debug, Default)]
pub struct NfaBuilder {
    states: Vec<NfaState>,
}

impl NfaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state; returns its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = self.states.len() as StateId;
        self.states.push(NfaState { ranges: Vec::new(), epsilons: Vec::new(), accepting });
        id
    }

    /// Number of states so far.
    pub fn n_states(&self) -> u32 {
        self.states.len() as u32
    }

    /// Adds a byte-range transition.
    pub fn add_range(&mut self, from: StateId, lo: u8, hi: u8, to: StateId) {
        assert!(lo <= hi, "empty byte range");
        self.states[from as usize].ranges.push(ByteRange { lo, hi, target: to });
    }

    /// Adds a single-byte transition.
    pub fn add_byte(&mut self, from: StateId, b: u8, to: StateId) {
        self.add_range(from, b, b, to);
    }

    /// Adds an epsilon transition.
    pub fn add_epsilon(&mut self, from: StateId, to: StateId) {
        self.states[from as usize].epsilons.push(to);
    }

    /// Marks a state accepting.
    pub fn set_accepting(&mut self, s: StateId, accepting: bool) {
        self.states[s as usize].accepting = accepting;
    }

    /// Finalizes with the given start state.
    pub fn build(self, start: StateId) -> Nfa {
        assert!(
            (start as usize) < self.states.len(),
            "start state {start} out of range ({} states)",
            self.states.len()
        );
        Nfa { states: self.states, start }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NFA for `.*ab` (unanchored "ends with ab").
    fn ends_with_ab() -> Nfa {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(false);
        let s2 = b.add_state(true);
        b.add_range(s0, 0, 255, s0);
        b.add_byte(s0, b'a', s1);
        b.add_byte(s1, b'b', s2);
        b.build(s0)
    }

    #[test]
    fn simulate_tracks_multiple_states() {
        let n = ends_with_ab();
        assert!(n.accepts(b"xxab"));
        assert!(n.accepts(b"ab"));
        assert!(!n.accepts(b"ba"));
        assert!(!n.accepts(b"a"));
        assert!(n.accepts(b"aab"));
    }

    #[test]
    fn epsilon_closure_follows_chains() {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(false);
        let s2 = b.add_state(true);
        b.add_epsilon(s0, s1);
        b.add_epsilon(s1, s2);
        let n = b.build(s0);
        assert_eq!(n.epsilon_closure(&[s0]), vec![s0, s1, s2]);
        // Empty input already accepts through the chain.
        assert!(n.accepts(b""));
    }

    #[test]
    fn epsilon_closure_handles_cycles() {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(true);
        b.add_epsilon(s0, s1);
        b.add_epsilon(s1, s0);
        let n = b.build(s0);
        assert_eq!(n.epsilon_closure(&[s0]), vec![s0, s1]);
    }

    #[test]
    fn dead_set_stays_dead() {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(true);
        b.add_byte(s0, b'a', s1);
        let n = b.build(s0);
        assert!(n.simulate(b"ba").is_empty());
        assert!(!n.accepts(b"ba"));
    }

    #[test]
    fn range_transition_bounds_inclusive() {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(true);
        b.add_range(s0, b'a', b'c', s1);
        let n = b.build(s0);
        assert!(n.accepts(b"a"));
        assert!(n.accepts(b"b"));
        assert!(n.accepts(b"c"));
        assert!(!n.accepts(b"d"));
    }
}
