//! Exact language-equivalence checking between DFAs.
//!
//! A product-construction reachability check: two machines accept the same
//! language iff no reachable state pair disagrees on acceptance. Where the
//! test suite used to sample random inputs, this decides equivalence
//! *exactly* (and produces a shortest distinguishing witness when they
//! differ).

use std::collections::{HashMap, VecDeque};

use crate::classes::ByteClasses;
use crate::dfa::{Dfa, StateId};

/// BFS predecessor map: product pair → (parent pair, byte taken), `None` at
/// the start pair.
type SeenMap = HashMap<(StateId, StateId), Option<(StateId, StateId, u8)>>;

/// Result of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Equivalence {
    /// The machines accept exactly the same language.
    Equal,
    /// They differ; the witness is a shortest input accepted by exactly one
    /// of them.
    Differs {
        /// A shortest distinguishing input.
        witness: Vec<u8>,
    },
}

impl Equivalence {
    /// True when the machines are equivalent.
    pub fn is_equal(&self) -> bool {
        matches!(self, Equivalence::Equal)
    }
}

/// Decides whether `a` and `b` accept the same language over all byte
/// strings, by BFS over the reachable product state space (so the witness,
/// if any, is shortest). Cost is O(|A|·|B|·classes) in the worst case.
///
/// ```
/// use gspecpal_fsm::equivalence::{equivalent, Equivalence};
/// use gspecpal_fsm::examples::div7;
/// use gspecpal_fsm::minimize::minimize;
///
/// let d = div7();
/// assert!(equivalent(&d, &minimize(&d)).is_equal());
/// ```
pub fn equivalent(a: &Dfa, b: &Dfa) -> Equivalence {
    // A combined class partition refined enough for both machines.
    let ca = a.classes().clone();
    let cb = b.classes().clone();
    let classes =
        ByteClasses::refine(|x, y| ca.class(x) != ca.class(y) || cb.class(x) != cb.class(y));
    let reps = classes.representatives();

    let mut seen: SeenMap = HashMap::new();
    let start = (a.start(), b.start());
    seen.insert(start, None);
    let mut queue = VecDeque::new();
    queue.push_back(start);

    let witness_from = |pair: (StateId, StateId), seen: &SeenMap| -> Vec<u8> {
        let mut path = Vec::new();
        let mut cur = pair;
        while let Some(Some((pa, pb, byte))) = seen.get(&cur) {
            path.push(*byte);
            cur = (*pa, *pb);
        }
        path.reverse();
        path
    };

    if a.is_accepting(start.0) != b.is_accepting(start.1) {
        return Equivalence::Differs { witness: Vec::new() };
    }
    while let Some((sa, sb)) = queue.pop_front() {
        for &rep in &reps {
            let ta = a.next(sa, rep);
            let tb = b.next(sb, rep);
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry((ta, tb)) {
                e.insert(Some((sa, sb, rep)));
                if a.is_accepting(ta) != b.is_accepting(tb) {
                    return Equivalence::Differs { witness: witness_from((ta, tb), &seen) };
                }
                queue.push_back((ta, tb));
            }
        }
    }
    Equivalence::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::{complement, union};
    use crate::examples::{div7, mod_counter};
    use crate::minimize::minimize;
    use crate::random::random_dfa;

    #[test]
    fn machine_equals_itself_and_its_minimization() {
        for seed in 0..20 {
            let d = random_dfa(seed, 12, 5);
            assert!(equivalent(&d, &d).is_equal());
            assert!(equivalent(&d, &minimize(&d)).is_equal(), "seed {seed}");
        }
    }

    #[test]
    fn different_languages_give_a_witness() {
        let d3 = mod_counter(3, &[0]);
        let d7 = div7();
        match equivalent(&d3, &d7) {
            Equivalence::Differs { witness } => {
                assert_ne!(d3.accepts(&witness), d7.accepts(&witness));
            }
            Equivalence::Equal => panic!("mod-3 and mod-7 differ"),
        }
    }

    #[test]
    fn witness_is_shortest() {
        // div7 vs its complement differ on the empty string already.
        let d = div7();
        let c = complement(&d);
        assert_eq!(equivalent(&d, &c), Equivalence::Differs { witness: vec![] });
    }

    #[test]
    fn union_is_commutative_up_to_language() {
        let a = mod_counter(3, &[0]);
        let b = mod_counter(5, &[0]);
        let ab = union(&a, &b).unwrap();
        let ba = union(&b, &a).unwrap();
        assert!(equivalent(&ab, &ba).is_equal());
    }

    #[test]
    fn acceptance_tweak_is_detected() {
        let d = div7();
        // Same structure, different accepting set.
        let d2 = crate::examples::mod_counter(7, &[1]);
        match equivalent(&d, &d2) {
            Equivalence::Differs { witness } => {
                assert_ne!(d.accepts(&witness), d2.accepts(&witness));
            }
            Equivalence::Equal => panic!("accepting sets differ"),
        }
    }
}
