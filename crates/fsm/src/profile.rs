//! Offline FSM profiling.
//!
//! Two profiles drive the paper's framework:
//!
//! * **State visit frequencies** (§IV-B): counted on a training slice, they
//!   decide which transition rows are "hot" and get promoted to GPU shared
//!   memory (after the frequency-based transformation, simply the rows of the
//!   highest-ranked states).
//! * **Convergence** (§IV-D, Table II): "the number of unique states after
//!   running 10 steps of transitions starting from all states" — the FSM
//!   state convergence property that decides whether predecessor end states
//!   are good recovery speculations (Δ_End in Equation 4).

use crate::dfa::{Dfa, StateId};

/// State visit counts collected by running the machine over a training input.
#[derive(Clone, Debug)]
pub struct FrequencyProfile {
    visits: Vec<u64>,
    total: u64,
}

impl FrequencyProfile {
    /// Profiles `dfa` on `training`, counting how often each state is
    /// visited (including the start state once).
    pub fn collect(dfa: &Dfa, training: &[u8]) -> Self {
        let mut visits = vec![0u64; dfa.n_states() as usize];
        let mut s = dfa.start();
        visits[s as usize] += 1;
        for &b in training {
            s = dfa.next(s, b);
            visits[s as usize] += 1;
        }
        FrequencyProfile { visits, total: training.len() as u64 + 1 }
    }

    /// A uniform profile (used when no training data is available: every
    /// state equally hot, the transformation degenerates to the identity
    /// ranking).
    pub fn uniform(dfa: &Dfa) -> Self {
        FrequencyProfile { visits: vec![1; dfa.n_states() as usize], total: dfa.n_states() as u64 }
    }

    /// Visit count of `s`.
    pub fn visits(&self, s: StateId) -> u64 {
        self.visits[s as usize]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// States ranked by descending visit frequency (ties broken by state id
    /// so the ranking is deterministic).
    pub fn ranked_states(&self) -> Vec<StateId> {
        let mut ids: Vec<StateId> = (0..self.visits.len() as StateId).collect();
        ids.sort_by_key(|&s| (std::cmp::Reverse(self.visits[s as usize]), s));
        ids
    }

    /// Fraction of all visits landing in the `hot` highest-ranked states.
    /// This predicts the shared-memory hit rate of the transformed table.
    pub fn hot_coverage(&self, hot: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let ranked = self.ranked_states();
        let covered: u64 = ranked.iter().take(hot).map(|&s| self.visits[s as usize]).sum();
        covered as f64 / self.total as f64
    }
}

/// Result of convergence profiling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergenceProfile {
    /// Number of transition steps profiled (the paper uses 10).
    pub steps: usize,
    /// Mean number of unique states remaining after `steps` transitions
    /// starting from *all* states, averaged over sampled input windows.
    pub mean_unique_states: f64,
    /// Minimum across sampled windows.
    pub min_unique_states: usize,
    /// Maximum across sampled windows.
    pub max_unique_states: usize,
}

impl ConvergenceProfile {
    /// Strong convergence means most state pairs merge quickly, so the end
    /// state forwarded from a predecessor chunk is very likely the ground
    /// truth (the property SRE exploits, §III-A). The paper's decision tree
    /// uses a coarse threshold; we normalize by state count.
    pub fn converges_strongly(&self, n_states: u32) -> bool {
        // Strong convergence means a handful of surviving states — and the
        // states must actually have merged: a tiny machine whose states all
        // stay distinct (e.g. a 4-state permutation counter) is maximally
        // non-convergent. The bound is absolute, not relative to state
        // count: what matters downstream is whether a forwarded end state
        // hits one of the few survivors.
        let merged = self.mean_unique_states <= 0.5 * f64::from(n_states.max(1));
        merged && self.mean_unique_states <= 2.5
    }
}

/// Runs all states of `dfa` over `window` and counts unique end states —
/// one sample of the Table II `#uniqStates` metric.
pub fn unique_states_after(dfa: &Dfa, window: &[u8]) -> usize {
    let mut ends = vec![false; dfa.n_states() as usize];
    let mut count = 0usize;
    for s in 0..dfa.n_states() {
        let e = dfa.run_from(s, window);
        if !ends[e as usize] {
            ends[e as usize] = true;
            count += 1;
        }
    }
    count
}

/// Convergence profiling over `samples` evenly-spaced windows of `steps`
/// bytes drawn from `training` (the paper samples a 1 MB slice, 0.5% of each
/// input group, and runs 10 transitions from all states).
pub fn convergence_profile(
    dfa: &Dfa,
    training: &[u8],
    steps: usize,
    samples: usize,
) -> ConvergenceProfile {
    assert!(steps > 0, "need at least one transition step");
    let samples = samples.max(1);
    let mut counts = Vec::with_capacity(samples);
    if training.len() <= steps {
        counts.push(unique_states_after(dfa, training));
    } else {
        let span = training.len() - steps;
        for i in 0..samples {
            let off = span * i / samples.max(1);
            counts.push(unique_states_after(dfa, &training[off..off + steps]));
        }
    }
    let sum: usize = counts.iter().sum();
    ConvergenceProfile {
        steps,
        mean_unique_states: sum as f64 / counts.len() as f64,
        min_unique_states: counts.iter().copied().min().unwrap_or(0),
        max_unique_states: counts.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ByteClasses;
    use crate::dfa::DfaBuilder;
    use crate::examples::div7;

    #[test]
    fn frequency_profile_counts_visits() {
        let d = div7();
        let p = FrequencyProfile::collect(&d, b"111");
        // Start 0, then 1, 3, 7 % 7 = 0.
        assert_eq!(p.visits(0), 2);
        assert_eq!(p.visits(1), 1);
        assert_eq!(p.visits(3), 1);
        assert_eq!(p.total(), 4);
    }

    #[test]
    fn ranked_states_descending() {
        let d = div7();
        let p = FrequencyProfile::collect(&d, b"10101010101");
        let ranked = p.ranked_states();
        for w in ranked.windows(2) {
            assert!(p.visits(w[0]) >= p.visits(w[1]));
        }
        assert_eq!(ranked.len(), 7);
    }

    #[test]
    fn hot_coverage_monotonic_and_bounded() {
        let d = div7();
        let p = FrequencyProfile::collect(&d, b"110101110101010010101");
        let mut prev = 0.0;
        for h in 0..=7 {
            let c = p.hot_coverage(h);
            assert!(c >= prev);
            assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        assert!((p.hot_coverage(7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn div7_never_converges() {
        // div7 is a permutation automaton on binary inputs: all 7 states stay
        // distinct no matter the window.
        let d = div7();
        assert_eq!(unique_states_after(&d, b"1011010111"), 7);
        let prof = convergence_profile(&d, b"110101011010101010101010", 10, 4);
        assert_eq!(prof.mean_unique_states, 7.0);
        assert!(!prof.converges_strongly(d.n_states()));
    }

    #[test]
    fn sink_machine_converges_immediately() {
        let mut b = DfaBuilder::new(ByteClasses::refine(|_, _| false));
        let s0 = b.add_state(false);
        let sink = b.add_state(true);
        b.set_transition(s0, 0, sink).unwrap();
        b.set_transition(sink, 0, sink).unwrap();
        let d = b.build(s0).unwrap();
        assert_eq!(unique_states_after(&d, b"x"), 1);
        let prof = convergence_profile(&d, b"xxxxxxxxxxxxxxxx", 10, 3);
        assert!(prof.converges_strongly(d.n_states()));
    }

    #[test]
    fn short_training_slice_still_profiles() {
        let d = div7();
        let prof = convergence_profile(&d, b"10", 10, 5);
        assert!(prof.mean_unique_states >= 1.0);
    }

    #[test]
    fn uniform_profile_ranks_by_id() {
        let d = div7();
        let p = FrequencyProfile::uniform(&d);
        assert_eq!(p.ranked_states(), (0..7).collect::<Vec<_>>());
    }
}
