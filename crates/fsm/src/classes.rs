//! Byte equivalence classes.
//!
//! Real-world DFAs rarely distinguish all 256 byte values; RE2 (which the
//! paper uses to compile its rule sets) compresses the alphabet into
//! equivalence classes before building the transition table. We do the same:
//! a [`ByteClasses`] maps every input byte to a class id in `0..len()`, and
//! the DFA table stride equals the class count. This keeps large-state-count
//! machines within the simulated GPU's memory budget exactly the way the
//! paper's tooling does.

/// A mapping from raw bytes to alphabet equivalence classes.
#[derive(Clone, PartialEq, Eq)]
pub struct ByteClasses {
    map: [u8; 256],
    len: u16,
}

impl std::fmt::Debug for ByteClasses {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteClasses").field("len", &self.len).finish()
    }
}

impl ByteClasses {
    /// The identity mapping: every byte is its own class (alphabet size 256).
    pub fn identity() -> Self {
        let mut map = [0u8; 256];
        for (b, slot) in map.iter_mut().enumerate() {
            *slot = b as u8;
        }
        ByteClasses { map, len: 256 }
    }

    /// Builds classes from an explicit map. `map[b]` must be a dense class id;
    /// the number of classes is `max(map) + 1`.
    pub fn from_map(map: [u8; 256]) -> Self {
        let len = u16::from(*map.iter().max().expect("array is non-empty")) + 1;
        ByteClasses { map, len }
    }

    /// Builds the coarsest partition of bytes such that any two bytes in the
    /// same class are indistinguishable by `distinct`: `distinct(a, b)` must
    /// return `true` iff some transition treats `a` and `b` differently.
    ///
    /// This is O(256²) in calls to `distinct`, which is fine for construction
    /// time (the paper's offline preprocessing is not on the critical path).
    pub fn refine(mut distinct: impl FnMut(u8, u8) -> bool) -> Self {
        let mut map = [u8::MAX; 256];
        let mut reps: Vec<u8> = Vec::new();
        for b in 0..=255u8 {
            let mut assigned = false;
            for (class, &rep) in reps.iter().enumerate() {
                if !distinct(b, rep) {
                    map[b as usize] = class as u8;
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                map[b as usize] = reps.len() as u8;
                reps.push(b);
            }
        }
        ByteClasses { map, len: reps.len() as u16 }
    }

    /// The class of byte `b`.
    #[inline(always)]
    pub fn class(&self, b: u8) -> u16 {
        u16::from(self.map[b as usize])
    }

    /// Number of classes (the effective alphabet size).
    #[inline(always)]
    pub fn len(&self) -> u16 {
        self.len
    }

    /// True when only one class exists (degenerate alphabet).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One representative byte per class, in class order.
    pub fn representatives(&self) -> Vec<u8> {
        let mut reps = vec![None; self.len as usize];
        for b in 0..=255u8 {
            let c = self.map[b as usize] as usize;
            if reps[c].is_none() {
                reps[c] = Some(b);
            }
        }
        reps.into_iter().map(|r| r.expect("every class has a representative")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_256_classes() {
        let c = ByteClasses::identity();
        assert_eq!(c.len(), 256);
        for b in 0..=255u8 {
            assert_eq!(c.class(b), u16::from(b));
        }
    }

    #[test]
    fn refine_collapses_indistinguishable_bytes() {
        // Distinguish only b'a' from everything else.
        let c = ByteClasses::refine(|a, b| (a == b'a') != (b == b'a'));
        assert_eq!(c.len(), 2);
        assert_eq!(c.class(b'a'), c.class(b'a'));
        assert_ne!(c.class(b'a'), c.class(b'b'));
        assert_eq!(c.class(b'b'), c.class(b'z'));
    }

    #[test]
    fn refine_everything_distinct_matches_identity() {
        let c = ByteClasses::refine(|a, b| a != b);
        assert_eq!(c.len(), 256);
    }

    #[test]
    fn refine_nothing_distinct_is_single_class() {
        let c = ByteClasses::refine(|_, _| false);
        assert_eq!(c.len(), 1);
        assert_eq!(c.class(0), 0);
        assert_eq!(c.class(255), 0);
    }

    #[test]
    fn representatives_cover_all_classes() {
        let c = ByteClasses::refine(|a, b| (a % 3) != (b % 3));
        let reps = c.representatives();
        assert_eq!(reps.len(), 3);
        let classes: Vec<u16> = reps.iter().map(|&b| c.class(b)).collect();
        assert_eq!(classes, vec![0, 1, 2]);
    }

    #[test]
    fn from_map_computes_len() {
        let mut map = [0u8; 256];
        map[10] = 4;
        let c = ByteClasses::from_map(map);
        assert_eq!(c.len(), 5);
    }
}
