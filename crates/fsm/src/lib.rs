//! Finite state machine substrate for the GSpecPal reproduction.
//!
//! This crate provides everything the paper's framework consumes from "an FSM
//! library": dense-table [`Dfa`]s, Thompson-style [`Nfa`]s, subset-construction
//! determinization, Hopcroft minimization, byte-class alphabet compression,
//! offline profiling (state frequencies and the convergence metric used by the
//! scheme selector), the frequency-based DFA transformation of §IV-B, and the
//! FSM combinators used to build the synthetic workload suite.
//!
//! The FSM model follows the paper's §II-A: a tuple `(Q, Σ, q0, δ, F)` where
//! `δ` is a total transition function stored as a dense table. All machines
//! here consume raw bytes; an embedded [`ByteClasses`] map compresses the
//! 256-symbol alphabet down to its equivalence classes so the table stride is
//! only as wide as the machine can actually distinguish.

#![warn(missing_docs)]

pub mod classes;
pub mod combinators;
pub mod dfa;
pub mod equivalence;
pub mod examples;
pub mod minimize;
pub mod nfa;
pub mod profile;
pub mod random;
pub mod render;
pub mod subset;
pub mod transform;

pub use classes::ByteClasses;
pub use dfa::{Dfa, DfaBuilder, StateId};
pub use nfa::{Nfa, NfaBuilder};
pub use profile::{ConvergenceProfile, FrequencyProfile};
pub use transform::TransformedDfa;

/// Errors produced while constructing or transforming machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmError {
    /// A transition referenced a state id that does not exist.
    InvalidState {
        /// The offending state id.
        state: StateId,
        /// How many states the machine actually has.
        n_states: u32,
    },
    /// A transition referenced a symbol class outside the alphabet.
    InvalidClass {
        /// The offending class id.
        class: u16,
        /// How many classes the alphabet actually has.
        n_classes: u16,
    },
    /// The machine has no states.
    Empty,
    /// Determinization exceeded the configured state budget.
    TooManyStates {
        /// The state budget that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for FsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsmError::InvalidState { state, n_states } => {
                write!(f, "invalid state id {state} (machine has {n_states} states)")
            }
            FsmError::InvalidClass { class, n_classes } => {
                write!(f, "invalid symbol class {class} (alphabet has {n_classes} classes)")
            }
            FsmError::Empty => write!(f, "machine has no states"),
            FsmError::TooManyStates { limit } => {
                write!(f, "determinization exceeded the state budget of {limit}")
            }
        }
    }
}

impl std::error::Error for FsmError {}
