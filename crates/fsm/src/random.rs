//! Random machine generation for property-based testing.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::classes::ByteClasses;
use crate::dfa::{Dfa, DfaBuilder, StateId};

/// Generates a random total DFA: `n_states` states over an alphabet of
/// `n_classes` byte classes (bytes are assigned to classes round-robin),
/// uniformly random transitions, each state accepting with probability 1/4.
///
/// Deterministic in `seed`. Useful as a proptest source of structurally
/// arbitrary machines: permutation-ish, convergent, and everything between.
pub fn random_dfa(seed: u64, n_states: u32, n_classes: u16) -> Dfa {
    assert!(n_states >= 1);
    let n_classes = n_classes.clamp(1, 256);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = [0u8; 256];
    for (b, slot) in map.iter_mut().enumerate() {
        *slot = (b % n_classes as usize) as u8;
    }
    let classes = ByteClasses::from_map(map);
    let mut builder = DfaBuilder::new(classes);
    for _ in 0..n_states {
        builder.add_state(rng.random_range(0..4u8) == 0);
    }
    for s in 0..n_states {
        for c in 0..n_classes {
            let t: StateId = rng.random_range(0..n_states);
            builder.set_transition(s, c, t).expect("state exists");
        }
    }
    let start = rng.random_range(0..n_states);
    builder.build(start).expect("random machine is total")
}

/// A random byte string over the full byte range, deterministic in `seed`.
pub fn random_input(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1235_0000);
    (0..len).map(|_| rng.random()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dfa_is_deterministic() {
        let a = random_dfa(5, 10, 4);
        let b = random_dfa(5, 10, 4);
        let input = random_input(9, 200);
        assert_eq!(a.run(&input), b.run(&input));
        let c = random_dfa(6, 10, 4);
        // Different seeds almost surely give different machines.
        assert!(a.table() != c.table() || a.start() != c.start());
    }

    #[test]
    fn random_dfa_is_total() {
        let d = random_dfa(1, 3, 7);
        let input = random_input(2, 5000);
        let _ = d.run(&input); // must not panic
    }

    #[test]
    fn random_input_length_and_determinism() {
        assert_eq!(random_input(3, 128).len(), 128);
        assert_eq!(random_input(3, 128), random_input(3, 128));
        assert_ne!(random_input(3, 128), random_input(4, 128));
    }
}
