//! NFA → DFA determinization (subset construction).
//!
//! Every NFA can be converted to an equivalent DFA (§II-A cites Hopcroft &
//! Ullman); the paper's evaluation compiles its regex rule sets to DFAs this
//! way (via RE2). We first compute byte equivalence classes from the NFA's
//! transition ranges so the resulting table stride is minimal, then run the
//! standard worklist subset construction over epsilon closures.

use std::collections::HashMap;

use crate::classes::ByteClasses;
use crate::dfa::{Dfa, DfaBuilder, StateId};
use crate::nfa::Nfa;
use crate::FsmError;

/// Upper bound on produced DFA states, to keep pathological regexes from
/// exploding during workload generation.
pub const DEFAULT_STATE_LIMIT: usize = 1 << 20;

/// Computes byte classes for an NFA: two bytes are equivalent iff every
/// transition range contains both or neither.
pub fn nfa_byte_classes(nfa: &Nfa) -> ByteClasses {
    // Mark range boundaries: a class boundary occurs at `lo` and after `hi`.
    let mut boundary = [false; 257];
    boundary[0] = true;
    for (_, st) in nfa.states() {
        for r in &st.ranges {
            boundary[r.lo as usize] = true;
            boundary[r.hi as usize + 1] = true;
        }
    }
    let mut map = [0u8; 256];
    let mut class: i32 = -1;
    for b in 0..256usize {
        if boundary[b] {
            class += 1;
        }
        map[b] = class as u8;
    }
    ByteClasses::from_map(map)
}

/// Determinizes `nfa` into a [`Dfa`] with at most `state_limit` states.
///
/// Subset states with an empty NFA set collapse into an explicit dead state
/// so the resulting transition function stays total (the paper's DFAs always
/// have a defined successor — one table lookup per input symbol).
pub fn determinize_with_limit(nfa: &Nfa, state_limit: usize) -> Result<Dfa, FsmError> {
    let classes = nfa_byte_classes(nfa);
    let reps = classes.representatives();
    let n_classes = classes.len();

    let mut builder = DfaBuilder::new(classes.clone());
    let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
    let mut worklist: Vec<(StateId, Vec<StateId>)> = Vec::new();

    let start_set = nfa.epsilon_closure(&[nfa.start()]);
    let start = builder.add_state(nfa.any_accepting(&start_set));
    index.insert(start_set.clone(), start);
    worklist.push((start, start_set));

    // Lazily-allocated dead state for the empty subset.
    let mut dead: Option<StateId> = None;

    while let Some((did, set)) = worklist.pop() {
        for c in 0..n_classes {
            let b = reps[c as usize];
            let next = nfa.step(&set, b);
            let target = if next.is_empty() {
                *dead.get_or_insert_with(|| builder.add_state(false))
            } else if let Some(&t) = index.get(&next) {
                t
            } else {
                if builder.n_states() as usize >= state_limit {
                    return Err(FsmError::TooManyStates { limit: state_limit });
                }
                let t = builder.add_state(nfa.any_accepting(&next));
                index.insert(next.clone(), t);
                worklist.push((t, next.clone()));
                t
            };
            builder.set_transition(did, c, target)?;
        }
    }

    // Complete the dead state's row if it was allocated.
    if let Some(d) = dead {
        builder.set_default_transition(d, d)?;
    }
    builder.build(start)
}

/// Determinizes with the default state budget.
pub fn determinize(nfa: &Nfa) -> Result<Dfa, FsmError> {
    determinize_with_limit(nfa, DEFAULT_STATE_LIMIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::NfaBuilder;

    fn ends_with_ab() -> Nfa {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(false);
        let s2 = b.add_state(true);
        b.add_range(s0, 0, 255, s0);
        b.add_byte(s0, b'a', s1);
        b.add_byte(s1, b'b', s2);
        b.build(s0)
    }

    #[test]
    fn determinized_machine_agrees_with_nfa() {
        let n = ends_with_ab();
        let d = determinize(&n).unwrap();
        for input in [&b""[..], b"ab", b"xxab", b"aab", b"ba", b"a", b"abab", b"abba", b"zzzzzab"] {
            assert_eq!(n.accepts(input), d.accepts(input), "input {input:?}");
        }
    }

    #[test]
    fn byte_classes_collapse_unused_bytes() {
        let n = ends_with_ab();
        let d = determinize(&n).unwrap();
        // Ranges: full 0..=255, 'a', 'b' => classes {<a}, {a}, {b}, {>b} = 4.
        assert!(d.alphabet_len() <= 4, "alphabet was {}", d.alphabet_len());
    }

    #[test]
    fn dead_state_is_total() {
        // NFA for exactly "a": dies on anything else.
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(true);
        b.add_byte(s0, b'a', s1);
        let n = b.build(s0);
        let d = determinize(&n).unwrap();
        assert!(d.accepts(b"a"));
        assert!(!d.accepts(b"ab"));
        assert!(!d.accepts(b"b"));
        // The DFA is total: running a long garbage string never panics.
        let junk = vec![b'q'; 1000];
        let _ = d.run(&junk);
    }

    #[test]
    fn epsilon_only_nfa() {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(true);
        b.add_epsilon(s0, s1);
        let n = b.build(s0);
        let d = determinize(&n).unwrap();
        assert!(d.accepts(b""));
        assert!(!d.accepts(b"a"));
    }

    #[test]
    fn state_limit_enforced() {
        // NFA whose DFA needs 2^8 states: "8th symbol from the end is 'a'".
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        b.add_range(s0, 0, 255, s0);
        let mut prev = b.add_state(false);
        b.add_byte(s0, b'a', prev);
        for _ in 0..7 {
            let nx = b.add_state(false);
            b.add_range(prev, 0, 255, nx);
            prev = nx;
        }
        b.set_accepting(prev, true);
        let n = b.build(s0);
        assert!(matches!(
            determinize_with_limit(&n, 16),
            Err(FsmError::TooManyStates { limit: 16 })
        ));
        // And with a generous limit it succeeds and agrees with the NFA.
        let d = determinize(&n).unwrap();
        assert!(d.accepts(b"a0000000"));
        assert!(!d.accepts(b"b0000000"));
    }
}
