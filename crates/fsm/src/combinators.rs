//! FSM combinators used to construct workload machines.
//!
//! The synthetic benchmark tiers (see `gspecpal-workloads`) are built from
//! three ingredients: keyword-set matchers (Aho-Corasick automata — the shape
//! of Snort/ClamAV signature DFAs), modular counters (div7-like permutation
//! components that defeat state convergence), and products of the two.

use std::collections::{HashMap, VecDeque};

use crate::classes::ByteClasses;
use crate::dfa::{Dfa, DfaBuilder, StateId};
use crate::FsmError;

/// How a product machine decides acceptance from its two components.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProductAccept {
    /// Accepts when both components accept (intersection).
    Both,
    /// Accepts when either component accepts (union).
    Either,
    /// Accepts when the first accepts, ignoring the second. Useful when the
    /// second component only exists to carry non-convergent mode state.
    First,
    /// Accepts when exactly one component accepts (symmetric difference).
    Xor,
}

impl ProductAccept {
    fn apply(self, a: bool, b: bool) -> bool {
        match self {
            ProductAccept::Both => a && b,
            ProductAccept::Either => a || b,
            ProductAccept::First => a,
            ProductAccept::Xor => a != b,
        }
    }
}

/// Builds the product automaton of `a` and `b`, restricted to states
/// reachable from the pair of start states.
///
/// The product inherits non-convergence from either factor: if `b` is a
/// permutation automaton (e.g. a mod-m counter), no two product states with
/// different `b`-components ever merge — the structural trick the paper's
/// hard benchmarks rely on (cf. div7 in Figure 1).
pub fn product(a: &Dfa, b: &Dfa, accept: ProductAccept) -> Result<Dfa, FsmError> {
    let ca = a.classes().clone();
    let cb = b.classes().clone();
    let classes =
        ByteClasses::refine(|x, y| ca.class(x) != ca.class(y) || cb.class(x) != cb.class(y));
    let reps = classes.representatives();

    let mut builder = DfaBuilder::new(classes.clone());
    let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();

    let start_pair = (a.start(), b.start());
    let start =
        builder.add_state(accept.apply(a.is_accepting(a.start()), b.is_accepting(b.start())));
    index.insert(start_pair, start);
    queue.push_back(start_pair);

    while let Some((sa, sb)) = queue.pop_front() {
        let from = index[&(sa, sb)];
        for (c, &rep) in reps.iter().enumerate() {
            let ta = a.next(sa, rep);
            let tb = b.next(sb, rep);
            let to = match index.get(&(ta, tb)) {
                Some(&t) => t,
                None => {
                    let t = builder.add_state(accept.apply(a.is_accepting(ta), b.is_accepting(tb)));
                    index.insert((ta, tb), t);
                    queue.push_back((ta, tb));
                    t
                }
            };
            builder.set_transition(from, c as u16, to)?;
        }
    }
    builder.build(start)
}

/// Union of two machines (accepts when either accepts).
pub fn union(a: &Dfa, b: &Dfa) -> Result<Dfa, FsmError> {
    product(a, b, ProductAccept::Either)
}

/// Intersection of two machines.
pub fn intersection(a: &Dfa, b: &Dfa) -> Result<Dfa, FsmError> {
    product(a, b, ProductAccept::Both)
}

/// Complement: accepting states flipped.
pub fn complement(dfa: &Dfa) -> Dfa {
    let mut builder = DfaBuilder::new(dfa.classes().clone());
    for s in 0..dfa.n_states() {
        builder.add_state(!dfa.is_accepting(s));
    }
    for s in 0..dfa.n_states() {
        for c in 0..dfa.alphabet_len() {
            builder.set_transition(s, c, dfa.next_by_class(s, c)).expect("same shape");
        }
    }
    builder.build(dfa.start()).expect("same shape")
}

/// Builds an Aho-Corasick keyword matcher as a dense DFA: the machine is in
/// an accepting state whenever the bytes consumed so far end with one of
/// `keywords`. This is the canonical shape of signature-matching DFAs
/// (Snort/ClamAV rules compiled by RE2 produce exactly this structure for
/// literal patterns).
///
/// Keyword DFAs converge quickly on inputs where matches are sparse: almost
/// every state falls back towards the root within a few bytes, which is what
/// makes predecessor-end-state speculation (SRE) and lookback prediction
/// accurate on them.
///
/// ```
/// use gspecpal_fsm::combinators::keyword_dfa;
///
/// let d = keyword_dfa(&[b"he", b"she"]).unwrap();
/// assert!(d.accepts(b"she"));          // ends with "she" (and "he")
/// assert_eq!(d.count_matches(b"she he"), 2); // one accepting visit per end position
/// ```
pub fn keyword_dfa(keywords: &[&[u8]]) -> Result<Dfa, FsmError> {
    assert!(!keywords.is_empty(), "need at least one keyword");
    assert!(keywords.iter().all(|k| !k.is_empty()), "keywords must be non-empty");

    // Byte classes: each byte appearing in some keyword is its own class;
    // everything else shares one.
    let mut used = [false; 256];
    for k in keywords {
        for &b in *k {
            used[b as usize] = true;
        }
    }
    let classes = ByteClasses::refine(|x, y| {
        let ux = used[x as usize];
        let uy = used[y as usize];
        ux != uy || (ux && x != y)
    });

    // Trie construction.
    let mut children: Vec<HashMap<u16, usize>> = vec![HashMap::new()];
    let mut output: Vec<bool> = vec![false];
    for k in keywords {
        let mut node = 0usize;
        for &b in *k {
            let c = classes.class(b);
            node = match children[node].get(&c) {
                Some(&n) => n,
                None => {
                    children.push(HashMap::new());
                    output.push(false);
                    let n = children.len() - 1;
                    children[node].insert(c, n);
                    n
                }
            };
        }
        output[node] = true;
    }

    // BFS failure links + dense goto table + output propagation.
    let n_nodes = children.len();
    let n_classes = classes.len() as usize;
    let mut fail = vec![0usize; n_nodes];
    let mut goto = vec![0usize; n_nodes * n_classes];
    let mut queue = VecDeque::new();
    #[allow(clippy::needless_range_loop)]
    for c in 0..n_classes {
        match children[0].get(&(c as u16)) {
            Some(&child) => {
                fail[child] = 0;
                goto[c] = child;
                queue.push_back(child);
            }
            None => goto[c] = 0,
        }
    }
    while let Some(node) = queue.pop_front() {
        output[node] = output[node] || output[fail[node]];
        #[allow(clippy::needless_range_loop)]
        for c in 0..n_classes {
            match children[node].get(&(c as u16)) {
                Some(&child) => {
                    fail[child] = goto[fail[node] * n_classes + c];
                    goto[node * n_classes + c] = child;
                    queue.push_back(child);
                }
                None => {
                    goto[node * n_classes + c] = goto[fail[node] * n_classes + c];
                }
            }
        }
    }

    let mut builder = DfaBuilder::new(classes);
    for &accepting in output.iter().take(n_nodes) {
        builder.add_state(accepting);
    }
    for node in 0..n_nodes {
        for c in 0..n_classes {
            builder.set_transition(
                node as StateId,
                c as u16,
                goto[node * n_classes + c] as StateId,
            )?;
        }
    }
    builder.build(0)
}

/// A sliding-window (de Bruijn) machine: the state is exactly the last `k`
/// symbols consumed, over a reduced alphabet of `alphabet.len() + 1` letters
/// (each byte of `alphabet` is its own letter; every other byte is the
/// shared *foreign* letter). The machine accepts whenever the window equals
/// `accept_word` (given in raw bytes, all from `alphabet`).
///
/// Window machines have the precise speculation profile of the paper's
/// SRE-friendly benchmarks: they converge *completely* after `k` symbols
/// (forwarded predecessor end states are always the ground truth), yet a
/// 2-byte lookback leaves `alphabet.len() + 1` equally-likely candidates —
/// enumerative speculation with small k misses most of them.
pub fn sliding_window_dfa(alphabet: &[u8], k: usize, accept_word: &[u8]) -> Result<Dfa, FsmError> {
    assert!(!alphabet.is_empty(), "alphabet must be non-empty");
    assert!(k >= 1, "window must be non-empty");
    assert_eq!(accept_word.len(), k, "accept word must fill the window");
    let w = alphabet.len() + 1; // +1 for the foreign letter
    let n_states = w.checked_pow(k as u32).expect("window state space overflow");
    assert!(n_states <= 1 << 20, "window state space too large");

    let classes = ByteClasses::refine(|a, b| {
        let pa = alphabet.iter().position(|&x| x == a);
        let pb = alphabet.iter().position(|&x| x == b);
        pa != pb
    });
    let letter_of_class: Vec<usize> = classes
        .representatives()
        .iter()
        .map(|&rep| alphabet.iter().position(|&x| x == rep).unwrap_or(alphabet.len()))
        .collect();

    let accept_id: usize = accept_word.iter().fold(0, |acc, &b| {
        let l =
            alphabet.iter().position(|&x| x == b).expect("accept word uses only alphabet bytes");
        acc * w + l
    });
    // Start state: the all-foreign window.
    let foreign = alphabet.len();
    let start_id: usize = (0..k).fold(0, |acc, _| acc * w + foreign);

    let mut builder = DfaBuilder::new(classes.clone());
    for id in 0..n_states {
        builder.add_state(id == accept_id);
    }
    let modulus = n_states / w; // drop the oldest symbol
    for id in 0..n_states {
        for (c, &l) in letter_of_class.iter().enumerate() {
            let next = (id % modulus) * w + l;
            builder.set_transition(id as StateId, c as u16, next as StateId)?;
        }
    }
    builder.build(start_id as StateId)
}

/// A "long chain" machine: it hunts for `needle` (Aho-Corasick style) but
/// resets only through a slow ladder — on a mismatch the state retreats by
/// `retreat` rungs instead of falling all the way to the root. States still
/// merge eventually, but only after ~`needle.len() / retreat` characters, so
/// 2-byte lookback prediction is inaccurate while whole-chunk convergence
/// holds. This is the Tier-B ("SRE wins") construction.
pub fn slow_chain_dfa(needle: &[u8], retreat: usize) -> Result<Dfa, FsmError> {
    assert!(needle.len() >= 2, "needle too short for a chain");
    let retreat = retreat.max(1);
    let mut used = [false; 256];
    for &b in needle {
        used[b as usize] = true;
    }
    let classes = ByteClasses::refine(|x, y| {
        let ux = used[x as usize];
        let uy = used[y as usize];
        ux != uy || (ux && x != y)
    });
    let n = needle.len();
    let mut builder = DfaBuilder::new(classes.clone());
    for i in 0..=n {
        builder.add_state(i == n);
    }
    for i in 0..=n {
        let fallback = i.saturating_sub(retreat) as StateId;
        for c in 0..classes.len() {
            builder.set_transition(i as StateId, c, fallback)?;
        }
        if i < n {
            let c = classes.class(needle[i]);
            builder.set_transition(i as StateId, c, (i + 1) as StateId)?;
        } else {
            // Accepting state: restart hunting (stay near the top briefly).
            let c = classes.class(needle[0]);
            builder.set_transition(i as StateId, c, 1)?;
        }
    }
    builder.build(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{div7, mod_counter};
    use crate::profile::unique_states_after;

    #[test]
    fn union_of_counters() {
        let d3 = mod_counter(3, &[0]);
        let d5 = mod_counter(5, &[0]);
        let u = union(&d3, &d5).unwrap();
        for n in 0..200u64 {
            let s = format!("{n:b}");
            assert_eq!(u.accepts(s.as_bytes()), n % 3 == 0 || n % 5 == 0, "n = {n}");
        }
    }

    #[test]
    fn intersection_of_counters() {
        let d3 = mod_counter(3, &[0]);
        let d5 = mod_counter(5, &[0]);
        let i = intersection(&d3, &d5).unwrap();
        for n in 0..200u64 {
            let s = format!("{n:b}");
            assert_eq!(i.accepts(s.as_bytes()), n % 15 == 0, "n = {n}");
        }
    }

    #[test]
    fn complement_flips_acceptance() {
        let d = div7();
        let c = complement(&d);
        for n in 0..100u64 {
            let s = format!("{n:b}");
            assert_eq!(d.accepts(s.as_bytes()), !c.accepts(s.as_bytes()));
        }
    }

    #[test]
    fn xor_product() {
        let d3 = mod_counter(3, &[0]);
        let d5 = mod_counter(5, &[0]);
        let x = product(&d3, &d5, ProductAccept::Xor).unwrap();
        for n in 0..200u64 {
            let s = format!("{n:b}");
            assert_eq!(x.accepts(s.as_bytes()), (n % 3 == 0) != (n % 5 == 0), "n = {n}");
        }
    }

    #[test]
    fn keyword_dfa_matches_substrings() {
        let d = keyword_dfa(&[b"he", b"she", b"his", b"hers"]).unwrap();
        // Accepting = input *ends with* a keyword.
        assert!(d.accepts(b"she"));
        assert!(d.accepts(b"xxhe"));
        assert!(!d.accepts(b"hex"));
        assert!(d.accepts(b"ushers")); // ends with "hers" (and "s"? no: "hers")
        assert!(!d.accepts(b"ushe r"));
    }

    #[test]
    fn keyword_dfa_counts_overlapping_matches() {
        let d = keyword_dfa(&[b"aa"]).unwrap();
        assert_eq!(d.count_matches(b"aaaa"), 3);
    }

    #[test]
    fn keyword_dfa_suffix_outputs_propagate() {
        // "she" contains suffix "he": reaching the 'she' end node must accept
        // even though 'he' is a different keyword.
        let d = keyword_dfa(&[b"he"]).unwrap();
        assert!(d.accepts(b"she"));
    }

    #[test]
    fn keyword_dfa_converges_fast() {
        let d = keyword_dfa(&[b"attack", b"overflow", b"exploit"]).unwrap();
        // On a window of unrelated bytes all states collapse to the root.
        assert_eq!(unique_states_after(&d, b"zzzzzzzzzz"), 1);
    }

    #[test]
    fn product_with_counter_never_converges() {
        let kw = keyword_dfa(&[b"ab"]).unwrap();
        let ctr = mod_counter(5, &[0]);
        let p = product(&kw, &ctr, ProductAccept::First).unwrap();
        // The counter component keeps at least 5 states distinct forever.
        assert!(unique_states_after(&p, b"zzzzzzzzzz") >= 5);
    }

    #[test]
    fn sliding_window_matches_window_semantics() {
        let d = sliding_window_dfa(b"abc", 3, b"abc").unwrap();
        assert_eq!(d.n_states(), 64);
        assert!(d.accepts(b"abc"));
        assert!(d.accepts(b"xxabc"));
        assert!(!d.accepts(b"ab"));
        assert!(!d.accepts(b"abcx"));
        assert!(d.accepts(b"abcabc"));
    }

    #[test]
    fn sliding_window_converges_after_exactly_k() {
        let d = sliding_window_dfa(b"abcd", 3, b"aaa").unwrap();
        // After any 3 symbols, every start state lands in the same place.
        assert_eq!(unique_states_after(&d, b"bcd"), 1);
        assert_eq!(unique_states_after(&d, b"zzz"), 1, "foreign symbols count too");
        // After only 2 symbols, one window slot is still free: |alphabet|+1
        // candidates remain.
        assert_eq!(unique_states_after(&d, b"bc"), 5);
    }

    #[test]
    fn sliding_window_start_is_all_foreign() {
        let d = sliding_window_dfa(b"ab", 2, b"ab").unwrap();
        // Consuming two foreign bytes returns to the start state.
        assert_eq!(d.run(b"zz"), d.start());
        assert_ne!(d.run(b"az"), d.start());
    }

    #[test]
    fn slow_chain_converges_slowly() {
        let needle = b"abcdefghijklmnopqrst";
        let d = slow_chain_dfa(needle, 1).unwrap();
        // Two steps of junk only retreat two rungs: many states remain.
        let two = unique_states_after(&d, b"zz");
        // Twenty steps of junk collapse everything to the root.
        let twenty = unique_states_after(&d, &[b'z'; 20]);
        assert!(two > twenty, "two-step {two} vs twenty-step {twenty}");
        assert_eq!(twenty, 1);
    }

    #[test]
    fn slow_chain_still_finds_needle() {
        let d = slow_chain_dfa(b"abcd", 4).unwrap();
        assert!(d.accepts(b"abcd"));
        assert!(d.accepts(b"zzabcd"));
        assert!(!d.accepts(b"abc"));
    }

    #[test]
    fn product_first_ignores_second_component() {
        let kw = keyword_dfa(&[b"hit"]).unwrap();
        let ctr = mod_counter(3, &[1]);
        let p = product(&kw, &ctr, ProductAccept::First).unwrap();
        for input in [&b"hit"[..], b"xxhit", b"hi t", b"hhit"] {
            assert_eq!(p.accepts(input), kw.accepts(input), "input {input:?}");
        }
    }
}
