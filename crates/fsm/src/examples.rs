//! Small canned machines used throughout the paper and this reproduction.

use crate::classes::ByteClasses;
use crate::dfa::{Dfa, DfaBuilder, StateId};

/// The paper's running example (Figure 1): *div7*, which accepts a binary
/// number (most-significant bit first, bytes `'0'`/`'1'`) iff it is divisible
/// by seven. State `s_i` means "the bits consumed so far are ≡ i (mod 7)";
/// `s0` is both the initial and the single accepting state.
///
/// div7 is also the canonical *non-convergent* FSM: no two distinct residues
/// ever merge, so lookback-based prediction can never rule states out. The
/// workload tiers that defeat convergence-based speculation are built from
/// the same structure (see `gspecpal-workloads`).
pub fn div7() -> Dfa {
    mod_counter(7, &[0])
}

/// A binary mod-`m` residue machine over bytes `'0'`/`'1'`, accepting iff the
/// residue is in `accepting`. `div7()` is `mod_counter(7, &[0])`.
pub fn mod_counter(m: u32, accepting: &[u32]) -> Dfa {
    assert!(m >= 1, "modulus must be positive");
    let classes = ByteClasses::refine(|a, b| {
        let da = matches!(a, b'0' | b'1');
        let db = matches!(b, b'0' | b'1');
        da != db || (da && a != b)
    });
    let c0 = classes.class(b'0');
    let c1 = classes.class(b'1');
    let cother: Vec<u16> = (0..classes.len()).filter(|&c| c != c0 && c != c1).collect();
    let mut b = DfaBuilder::new(classes);
    for r in 0..m {
        b.add_state(accepting.contains(&r));
    }
    for r in 0..m {
        let s = r as StateId;
        b.set_transition(s, c0, ((r * 2) % m) as StateId).unwrap();
        b.set_transition(s, c1, ((r * 2 + 1) % m) as StateId).unwrap();
        // Non-binary bytes leave the residue unchanged; keeps the machine
        // total without changing the language over binary inputs.
        for &c in &cother {
            b.set_transition(s, c, s).unwrap();
        }
    }
    b.build(0).unwrap()
}

/// A ones-counting machine over bytes `'0'`/`'1'`: state = (number of `'1'`
/// bits consumed) mod `m`, accepting iff the count is in `accepting`.
///
/// Unlike [`mod_counter`] (whose doubling step collapses for even moduli —
/// `2r mod 4` only depends on the last two bits), incrementing is a
/// permutation for *every* `m`, so a ones-counter never converges: the
/// canonical building block for FSMs that defeat convergence-based
/// speculation while keeping the lookback candidate set at exactly `m`
/// states.
pub fn ones_counter(m: u32, accepting: &[u32]) -> Dfa {
    assert!(m >= 1, "modulus must be positive");
    let classes = ByteClasses::refine(|a, b| (a == b'1') != (b == b'1'));
    let c1 = classes.class(b'1');
    let c_other: Vec<u16> = (0..classes.len()).filter(|&c| c != c1).collect();
    let mut b = DfaBuilder::new(classes);
    for r in 0..m {
        b.add_state(accepting.contains(&r));
    }
    for r in 0..m {
        let s = r as StateId;
        b.set_transition(s, c1, ((r + 1) % m) as StateId).unwrap();
        for &c in &c_other {
            b.set_transition(s, c, s).unwrap();
        }
    }
    b.build(0).unwrap()
}

/// The 4-state DFA of the paper's Figure 4 (transformation example), over the
/// three-symbol alphabet `{'/', '*', 'X'}` where `'X'` stands for "any other
/// byte". This is the classic C-comment recognizer shape:
///
/// | state | `/`  | `*`  | `X`  |
/// |-------|------|------|------|
/// | `S0`  | `S1` | `S0` | `S0` |
/// | `S1`  | `S1` | `S2` | `S0` |
/// | `S2`  | `S2` | `S3` | `S2` |
/// | `S3`  | `S0` | `S3` | `S2` |
///
/// State `S2` ("inside a comment") is marked accepting so the machine has a
/// non-trivial output function.
pub fn fig4_dfa() -> Dfa {
    let classes = ByteClasses::refine(|a, b| {
        let ka = match a {
            b'/' => 0,
            b'*' => 1,
            _ => 2,
        };
        let kb = match b {
            b'/' => 0,
            b'*' => 1,
            _ => 2,
        };
        ka != kb
    });
    let slash = classes.class(b'/');
    let star = classes.class(b'*');
    let other = classes.class(b'x');
    let mut b = DfaBuilder::new(classes);
    let s0 = b.add_state(false);
    let s1 = b.add_state(false);
    let s2 = b.add_state(true);
    let s3 = b.add_state(false);
    for (s, t_slash, t_star, t_other) in
        [(s0, s1, s0, s0), (s1, s1, s2, s0), (s2, s2, s3, s2), (s3, s0, s3, s2)]
    {
        b.set_transition(s, slash, t_slash).unwrap();
        b.set_transition(s, star, t_star).unwrap();
        b.set_transition(s, other, t_other).unwrap();
    }
    b.build(s0).unwrap()
}

/// A single-state machine that accepts everything. Useful as a degenerate
/// edge case in tests.
pub fn trivial_accept() -> Dfa {
    let mut b = DfaBuilder::new(ByteClasses::refine(|_, _| false));
    let s = b.add_state(true);
    b.set_transition(s, 0, s).unwrap();
    b.build(s).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_binary(n: u64) -> Vec<u8> {
        if n == 0 {
            return b"0".to_vec();
        }
        format!("{n:b}").into_bytes()
    }

    #[test]
    fn div7_accepts_multiples_of_seven() {
        let d = div7();
        for n in 0..500u64 {
            assert_eq!(d.accepts(&to_binary(n)), n % 7 == 0, "n = {n}");
        }
    }

    #[test]
    fn div7_matches_fig1_walkthrough() {
        // Figure 1(c): starting at s0 the machine walks through residues.
        let d = div7();
        let trace = d.run_trace(d.start(), b"1101");
        // 1 -> 1, 11 -> 3, 110 -> 6, 1101 -> 13 % 7 = 6.
        assert_eq!(trace, vec![1, 3, 6, 6]);
    }

    #[test]
    fn div7_has_seven_states_and_one_accepting() {
        let d = div7();
        assert_eq!(d.n_states(), 7);
        assert_eq!(d.accepting_states(), vec![0]);
        assert_eq!(d.start(), 0);
    }

    #[test]
    fn mod_counter_general() {
        let d = mod_counter(5, &[0, 2]);
        for n in 0..200u64 {
            let r = n % 5;
            assert_eq!(d.accepts(&to_binary(n)), r == 0 || r == 2, "n = {n}");
        }
    }

    #[test]
    fn mod_counter_ignores_non_binary_bytes() {
        let d = div7();
        assert_eq!(d.run(b"11x0y1"), d.run(b"1101"));
    }

    #[test]
    fn ones_counter_counts_ones() {
        let d = ones_counter(5, &[0]);
        for n in 0..200u64 {
            let s = to_binary(n);
            let ones = s.iter().filter(|&&b| b == b'1').count() as u32;
            assert_eq!(d.accepts(&s), ones.is_multiple_of(5), "n = {n}");
        }
    }

    #[test]
    fn ones_counter_is_a_permutation_for_even_moduli() {
        // The property mod_counter lacks: 10 transitions from all states of a
        // mod-4 ones-counter still leave 4 distinct states.
        let d = ones_counter(4, &[0]);
        let mut ends: Vec<_> = (0..4).map(|s| d.run_from(s, b"1101011010")).collect();
        ends.sort_unstable();
        ends.dedup();
        assert_eq!(ends.len(), 4);
    }

    #[test]
    fn mod_counter_even_modulus_converges() {
        // Documents why ones_counter exists: doubling mod 4 forgets the
        // start state after two steps.
        let d = mod_counter(4, &[0]);
        let mut ends: Vec<_> = (0..4).map(|s| d.run_from(s, b"10")).collect();
        ends.sort_unstable();
        ends.dedup();
        assert_eq!(ends.len(), 1);
    }

    #[test]
    fn fig4_table_matches_paper() {
        let d = fig4_dfa();
        assert_eq!(d.n_states(), 4);
        let step = |s, b| d.next(s, b);
        // Row S0.
        assert_eq!(step(0, b'/'), 1);
        assert_eq!(step(0, b'*'), 0);
        assert_eq!(step(0, b'q'), 0);
        // Row S1.
        assert_eq!(step(1, b'/'), 1);
        assert_eq!(step(1, b'*'), 2);
        assert_eq!(step(1, b'q'), 0);
        // Row S2.
        assert_eq!(step(2, b'/'), 2);
        assert_eq!(step(2, b'*'), 3);
        assert_eq!(step(2, b'q'), 2);
        // Row S3.
        assert_eq!(step(3, b'/'), 0);
        assert_eq!(step(3, b'*'), 3);
        assert_eq!(step(3, b'q'), 2);
    }

    #[test]
    fn fig4_recognizes_comment_interior() {
        let d = fig4_dfa();
        // After "/*" we are inside a comment (state 2, accepting).
        assert_eq!(d.run(b"/*"), 2);
        assert!(d.accepts(b"/* hello"));
        // "*/" closes it.
        assert_eq!(d.run(b"/* hi */"), 0);
    }

    #[test]
    fn trivial_accept_accepts_all() {
        let d = trivial_accept();
        assert!(d.accepts(b""));
        assert!(d.accepts(b"anything at all"));
    }
}
