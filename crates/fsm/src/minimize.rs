//! DFA minimization (Hopcroft's partition-refinement algorithm).
//!
//! The workload generator minimizes every compiled machine so the state
//! counts reported in the Table II reproduction are canonical, and so that
//! structurally distinct FSM tiers really differ in behaviour rather than in
//! redundant states.

use std::collections::HashMap;

use crate::dfa::{Dfa, DfaBuilder, StateId};

/// Returns the set of states reachable from the start state.
pub fn reachable_states(dfa: &Dfa) -> Vec<StateId> {
    let mut seen = vec![false; dfa.n_states() as usize];
    let mut stack = vec![dfa.start()];
    seen[dfa.start() as usize] = true;
    let mut out = Vec::new();
    while let Some(s) = stack.pop() {
        out.push(s);
        for c in 0..dfa.alphabet_len() {
            let t = dfa.next_by_class(s, c);
            if !seen[t as usize] {
                seen[t as usize] = true;
                stack.push(t);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Minimizes `dfa`: removes unreachable states and merges language-equivalent
/// ones. The result is the unique (up to renaming) minimal DFA; states are
/// renumbered in BFS order from the start state so the output is
/// deterministic.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let reachable = reachable_states(dfa);
    let n = reachable.len();
    // Dense renumbering of reachable states.
    let mut dense_of = vec![usize::MAX; dfa.n_states() as usize];
    for (i, &s) in reachable.iter().enumerate() {
        dense_of[s as usize] = i;
    }
    let k = dfa.alphabet_len() as usize;

    // Inverse transition lists per class over the reachable subgraph.
    let mut inv: Vec<Vec<u32>> = vec![Vec::new(); n * k];
    for (i, &s) in reachable.iter().enumerate() {
        for c in 0..k {
            let t = dense_of[dfa.next_by_class(s, c as u16) as usize];
            inv[t * k + c].push(i as u32);
        }
    }

    // Hopcroft partition refinement.
    let mut block_of: Vec<u32> =
        reachable.iter().map(|&s| u32::from(dfa.is_accepting(s))).collect();
    let mut blocks: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
    for (i, &b) in block_of.iter().enumerate() {
        blocks[b as usize].push(i as u32);
    }
    // Drop an empty initial block (all-accepting or none-accepting machines).
    if blocks[1].is_empty() {
        blocks.pop();
    } else if blocks[0].is_empty() {
        blocks.swap_remove(0);
        block_of.fill(0);
    }

    let mut in_worklist = vec![true; blocks.len()];
    let mut worklist: Vec<u32> = (0..blocks.len() as u32).collect();

    while let Some(splitter) = worklist.pop() {
        in_worklist[splitter as usize] = false;
        // Snapshot: the splitter block may be re-split while we iterate.
        let splitter_members = blocks[splitter as usize].clone();
        for c in 0..k {
            // X = preimage of the splitter under class c.
            let mut touched: HashMap<u32, Vec<u32>> = HashMap::new();
            for &m in &splitter_members {
                for &p in &inv[m as usize * k + c] {
                    touched.entry(block_of[p as usize]).or_default().push(p);
                }
            }
            for (b, hit) in touched {
                let b = b as usize;
                if hit.len() == blocks[b].len() {
                    continue; // Entire block in the preimage: no split.
                }
                // Split block b into `hit` and the remainder.
                let new_id = blocks.len() as u32;
                let hitset: std::collections::HashSet<u32> = hit.iter().copied().collect();
                let (stay, moved): (Vec<u32>, Vec<u32>) =
                    blocks[b].iter().partition(|m| !hitset.contains(m));
                debug_assert!(!stay.is_empty() && !moved.is_empty());
                for &m in &moved {
                    block_of[m as usize] = new_id;
                }
                blocks[b] = stay;
                blocks.push(moved);
                in_worklist.push(false);
                // Hopcroft's rule: if b is queued, queue both halves (the
                // new half suffices since b is already queued); otherwise
                // queue the smaller half.
                if in_worklist[b] || blocks[new_id as usize].len() < blocks[b].len() {
                    in_worklist[new_id as usize] = true;
                    worklist.push(new_id);
                } else {
                    in_worklist[b] = true;
                    worklist.push(b as u32);
                }
            }
        }
    }

    // Rebuild: renumber blocks in BFS order from the start block.
    let start_block = block_of[dense_of[dfa.start() as usize]];
    let n_blocks = blocks.len();
    let mut order = vec![u32::MAX; n_blocks];
    let mut bfs = std::collections::VecDeque::new();
    order[start_block as usize] = 0;
    bfs.push_back(start_block);
    let mut next_id = 1u32;
    while let Some(b) = bfs.pop_front() {
        let rep = blocks[b as usize][0];
        let rep_state = reachable[rep as usize];
        for c in 0..k {
            let t_dense = dense_of[dfa.next_by_class(rep_state, c as u16) as usize];
            let tb = block_of[t_dense];
            if order[tb as usize] == u32::MAX {
                order[tb as usize] = next_id;
                next_id += 1;
                bfs.push_back(tb);
            }
        }
    }

    let mut builder = DfaBuilder::new(dfa.classes().clone());
    for _ in 0..next_id {
        builder.add_state(false);
    }
    for (b, members) in blocks.iter().enumerate() {
        let new = order[b];
        if new == u32::MAX {
            continue; // Block unreachable from the start block (cannot happen
                      // after the reachability pass, kept for safety).
        }
        let rep_state = reachable[members[0] as usize];
        builder.set_accepting(new, dfa.is_accepting(rep_state)).expect("state was added above");
        for c in 0..k {
            let t_dense = dense_of[dfa.next_by_class(rep_state, c as u16) as usize];
            let t_new = order[block_of[t_dense] as usize];
            builder
                .set_transition(new, c as u16, t_new)
                .expect("blocks reachable from start are numbered");
        }
    }
    builder.build(0).expect("minimized machine is non-empty and total")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::ByteClasses;
    use crate::examples::{div7, fig4_dfa};

    fn agree_on(d1: &Dfa, d2: &Dfa, inputs: &[&[u8]]) {
        for input in inputs {
            assert_eq!(d1.accepts(input), d2.accepts(input), "input {input:?}");
        }
    }

    #[test]
    fn minimal_machines_are_fixed_points() {
        let d = div7();
        let m = minimize(&d);
        assert_eq!(m.n_states(), d.n_states(), "div7 is already minimal");
        agree_on(&d, &m, &[b"110", b"111", b"0", b"1001", b"1110101", b""]);
    }

    #[test]
    fn redundant_states_are_merged() {
        // Two interchangeable accepting sinks.
        let mut b = DfaBuilder::new(ByteClasses::refine(|_, _| false));
        let s0 = b.add_state(false);
        let a1 = b.add_state(true);
        let a2 = b.add_state(true);
        b.set_transition(s0, 0, a1).unwrap();
        b.set_transition(a1, 0, a2).unwrap();
        b.set_transition(a2, 0, a1).unwrap();
        let d = b.build(s0).unwrap();
        let m = minimize(&d);
        assert_eq!(m.n_states(), 2);
        agree_on(&d, &m, &[b"", b"x", b"xx", b"xxx"]);
    }

    #[test]
    fn unreachable_states_are_dropped() {
        let mut b = DfaBuilder::new(ByteClasses::refine(|_, _| false));
        let s0 = b.add_state(true);
        let orphan = b.add_state(false);
        b.set_transition(s0, 0, s0).unwrap();
        b.set_transition(orphan, 0, orphan).unwrap();
        let d = b.build(s0).unwrap();
        assert_eq!(reachable_states(&d), vec![s0]);
        let m = minimize(&d);
        assert_eq!(m.n_states(), 1);
        assert!(m.accepts(b"anything"));
    }

    #[test]
    fn fig4_minimization_preserves_language() {
        let d = fig4_dfa();
        let m = minimize(&d);
        agree_on(&d, &m, &[b"/*", b"/* x */", b"//", b"**", b"/*/", b"", b"x/y*z"]);
        assert!(m.n_states() <= d.n_states());
    }

    #[test]
    fn all_accepting_machine_minimizes_to_one_state() {
        let mut b = DfaBuilder::new(ByteClasses::refine(|_, _| false));
        let s0 = b.add_state(true);
        let s1 = b.add_state(true);
        b.set_transition(s0, 0, s1).unwrap();
        b.set_transition(s1, 0, s0).unwrap();
        let d = b.build(s0).unwrap();
        let m = minimize(&d);
        assert_eq!(m.n_states(), 1);
    }

    #[test]
    fn none_accepting_machine_minimizes_to_one_state() {
        let mut b = DfaBuilder::new(ByteClasses::refine(|_, _| false));
        let s0 = b.add_state(false);
        let s1 = b.add_state(false);
        b.set_transition(s0, 0, s1).unwrap();
        b.set_transition(s1, 0, s0).unwrap();
        let d = b.build(s0).unwrap();
        let m = minimize(&d);
        assert_eq!(m.n_states(), 1);
        assert!(!m.accepts(b"x"));
    }
}
