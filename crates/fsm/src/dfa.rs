//! Dense-table deterministic finite automata.
//!
//! The layout mirrors Figure 1(b) of the paper: a `states × alphabet` table
//! where `table[s * stride + class]` is the successor of state `s` on a byte
//! of the given class. All transitions are total (there is no implicit dead
//! state — machines that need one allocate it explicitly), which matches the
//! paper's assumption that every step is exactly one table lookup.

use crate::classes::ByteClasses;
use crate::FsmError;

/// Identifier of a DFA state. Dense, `0..n_states`.
pub type StateId = u32;

/// A deterministic finite automaton over bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct Dfa {
    start: StateId,
    classes: ByteClasses,
    stride: usize,
    n_states: u32,
    table: Box<[StateId]>,
    accepting: Box<[bool]>,
}

impl std::fmt::Debug for Dfa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dfa")
            .field("n_states", &self.n_states)
            .field("alphabet", &self.classes.len())
            .field("start", &self.start)
            .field("n_accepting", &self.accepting.iter().filter(|&&a| a).count())
            .finish()
    }
}

impl Dfa {
    /// Number of states.
    #[inline(always)]
    pub fn n_states(&self) -> u32 {
        self.n_states
    }

    /// Effective alphabet size (number of byte classes).
    #[inline(always)]
    pub fn alphabet_len(&self) -> u16 {
        self.classes.len()
    }

    /// Table stride (equals the alphabet size).
    #[inline(always)]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The initial state `q0`.
    #[inline(always)]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The byte-class map used by this machine.
    #[inline(always)]
    pub fn classes(&self) -> &ByteClasses {
        &self.classes
    }

    /// The raw transition table (`n_states * stride` entries).
    #[inline(always)]
    pub fn table(&self) -> &[StateId] {
        &self.table
    }

    /// Whether `s` is an accepting state.
    #[inline(always)]
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s as usize]
    }

    /// Successor of `s` on input byte `b`: one table lookup, exactly the
    /// `state = Table[state][symbol]` operation of §IV-B.
    #[inline(always)]
    pub fn next(&self, s: StateId, b: u8) -> StateId {
        let class = self.classes.class(b) as usize;
        self.table[s as usize * self.stride + class]
    }

    /// Successor of `s` on an already-classified symbol.
    #[inline(always)]
    pub fn next_by_class(&self, s: StateId, class: u16) -> StateId {
        self.table[s as usize * self.stride + class as usize]
    }

    /// Runs the DFA from its start state over `input`, returning the end
    /// state. This is the sequential `FSM_Processing` of Algorithm 1.
    pub fn run(&self, input: &[u8]) -> StateId {
        self.run_from(self.start, input)
    }

    /// Runs from an arbitrary state — the primitive every speculative scheme
    /// is built on (`FSM_Processing(fsm, Π(i), state)` in Algorithms 2-5).
    pub fn run_from(&self, mut s: StateId, input: &[u8]) -> StateId {
        for &b in input {
            s = self.next(s, b);
        }
        s
    }

    /// Runs from `s` and records the state after every symbol.
    pub fn run_trace(&self, s: StateId, input: &[u8]) -> Vec<StateId> {
        let mut cur = s;
        let mut trace = Vec::with_capacity(input.len());
        for &b in input {
            cur = self.next(cur, b);
            trace.push(cur);
        }
        trace
    }

    /// Accept/reject decision for a full input (the paper's output function
    /// `φ` invoked once at the end, §II-A).
    pub fn accepts(&self, input: &[u8]) -> bool {
        self.is_accepting(self.run(input))
    }

    /// Counts positions at which the machine is in an accepting state while
    /// scanning `input` from the start state. This is the "number of matches"
    /// notion used by the pattern-matching examples (unanchored search DFAs
    /// report a match every time they enter an accepting state).
    pub fn count_matches(&self, input: &[u8]) -> u64 {
        let mut s = self.start;
        let mut n = 0u64;
        for &b in input {
            s = self.next(s, b);
            n += u64::from(self.accepting[s as usize]);
        }
        n
    }

    /// Streams over `input` from the start state, yielding
    /// `(position, state_after, is_accepting)` for every byte — the
    /// ergonomic way to enumerate match end-positions of a search DFA.
    ///
    /// ```
    /// use gspecpal_fsm::combinators::keyword_dfa;
    ///
    /// let d = keyword_dfa(&[b"ab"]).unwrap();
    /// let ends: Vec<usize> = d
    ///     .scan_iter(b"abxab")
    ///     .filter(|&(_, _, hit)| hit)
    ///     .map(|(pos, _, _)| pos)
    ///     .collect();
    /// assert_eq!(ends, vec![1, 4]);
    /// ```
    pub fn scan_iter<'a>(&'a self, input: &'a [u8]) -> ScanIter<'a> {
        ScanIter { dfa: self, input, pos: 0, state: self.start }
    }

    /// All accepting state ids.
    pub fn accepting_states(&self) -> Vec<StateId> {
        (0..self.n_states).filter(|&s| self.accepting[s as usize]).collect()
    }

    /// Whether the machine accepts *no* string at all (no accepting state is
    /// reachable from the start state).
    pub fn language_is_empty(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// A shortest accepted input, if any (BFS over reachable states; ties
    /// broken by smallest byte-class representative).
    pub fn shortest_accepted(&self) -> Option<Vec<u8>> {
        let reps = self.classes.representatives();
        let mut parent: Vec<Option<(StateId, u8)>> = vec![None; self.n_states as usize];
        let mut seen = vec![false; self.n_states as usize];
        let mut queue = std::collections::VecDeque::new();
        seen[self.start as usize] = true;
        queue.push_back(self.start);
        let mut hit = if self.is_accepting(self.start) { Some(self.start) } else { None };
        'bfs: while let Some(s) = queue.pop_front() {
            if hit.is_some() {
                break;
            }
            for (c, &rep) in reps.iter().enumerate() {
                let t = self.next_by_class(s, c as u16);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    parent[t as usize] = Some((s, rep));
                    if self.is_accepting(t) {
                        hit = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut path = Vec::new();
        while let Some((p, b)) = parent[cur as usize] {
            path.push(b);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Relabels states by `perm` where `perm[old] = new`. `perm` must be a
    /// permutation of `0..n_states`. Used by the frequency-based
    /// transformation (§IV-B) and by minimization.
    pub fn permute(&self, perm: &[StateId]) -> Result<Dfa, FsmError> {
        if perm.len() != self.n_states as usize {
            return Err(FsmError::InvalidState {
                state: perm.len() as StateId,
                n_states: self.n_states,
            });
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p as usize >= perm.len() || seen[p as usize] {
                return Err(FsmError::InvalidState { state: p, n_states: self.n_states });
            }
            seen[p as usize] = true;
        }
        let mut table = vec![0 as StateId; self.table.len()].into_boxed_slice();
        let mut accepting = vec![false; self.n_states as usize].into_boxed_slice();
        for old in 0..self.n_states as usize {
            let new = perm[old] as usize;
            accepting[new] = self.accepting[old];
            for c in 0..self.stride {
                table[new * self.stride + c] = perm[self.table[old * self.stride + c] as usize];
            }
        }
        Ok(Dfa {
            start: perm[self.start as usize],
            classes: self.classes.clone(),
            stride: self.stride,
            n_states: self.n_states,
            table,
            accepting,
        })
    }
}

/// Iterator over a DFA's states while scanning an input; see
/// [`Dfa::scan_iter`].
pub struct ScanIter<'a> {
    dfa: &'a Dfa,
    input: &'a [u8],
    pos: usize,
    state: StateId,
}

impl Iterator for ScanIter<'_> {
    type Item = (usize, StateId, bool);

    fn next(&mut self) -> Option<Self::Item> {
        let &b = self.input.get(self.pos)?;
        self.state = self.dfa.next(self.state, b);
        let item = (self.pos, self.state, self.dfa.is_accepting(self.state));
        self.pos += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.input.len() - self.pos;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for ScanIter<'_> {}

/// Incremental builder for [`Dfa`].
///
/// ```
/// use gspecpal_fsm::{DfaBuilder, ByteClasses};
///
/// // Two states toggling on any byte; state 1 accepts (odd-length inputs).
/// let mut b = DfaBuilder::new(ByteClasses::refine(|_, _| false));
/// let s0 = b.add_state(false);
/// let s1 = b.add_state(true);
/// b.set_transition(s0, 0, s1).unwrap();
/// b.set_transition(s1, 0, s0).unwrap();
/// let dfa = b.build(s0).unwrap();
/// assert!(dfa.accepts(b"x"));
/// assert!(!dfa.accepts(b"xy"));
/// ```
#[derive(Clone, Debug)]
pub struct DfaBuilder {
    classes: ByteClasses,
    rows: Vec<Vec<Option<StateId>>>,
    accepting: Vec<bool>,
}

impl DfaBuilder {
    /// Creates a builder over the given byte classes.
    pub fn new(classes: ByteClasses) -> Self {
        DfaBuilder { classes, rows: Vec::new(), accepting: Vec::new() }
    }

    /// Convenience constructor with the full 256-byte alphabet.
    pub fn with_byte_alphabet() -> Self {
        Self::new(ByteClasses::identity())
    }

    /// Adds a state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = self.rows.len() as StateId;
        self.rows.push(vec![None; self.classes.len() as usize]);
        self.accepting.push(accepting);
        id
    }

    /// Number of states added so far.
    pub fn n_states(&self) -> u32 {
        self.rows.len() as u32
    }

    /// Marks a state accepting (or not).
    pub fn set_accepting(&mut self, s: StateId, accepting: bool) -> Result<(), FsmError> {
        let slot = self
            .accepting
            .get_mut(s as usize)
            .ok_or(FsmError::InvalidState { state: s, n_states: self.rows.len() as u32 })?;
        *slot = accepting;
        Ok(())
    }

    /// Sets `δ(from, class) = to`.
    pub fn set_transition(
        &mut self,
        from: StateId,
        class: u16,
        to: StateId,
    ) -> Result<(), FsmError> {
        let n = self.rows.len() as u32;
        if from as usize >= self.rows.len() {
            return Err(FsmError::InvalidState { state: from, n_states: n });
        }
        if to as usize >= self.rows.len() {
            return Err(FsmError::InvalidState { state: to, n_states: n });
        }
        if class >= self.classes.len() {
            return Err(FsmError::InvalidClass { class, n_classes: self.classes.len() });
        }
        self.rows[from as usize][class as usize] = Some(to);
        Ok(())
    }

    /// Sets `δ(from, class(b)) = to` for a raw byte `b`.
    pub fn set_transition_byte(
        &mut self,
        from: StateId,
        b: u8,
        to: StateId,
    ) -> Result<(), FsmError> {
        let class = self.classes.class(b);
        self.set_transition(from, class, to)
    }

    /// Sets every still-undefined transition out of `from` to `to`.
    pub fn set_default_transition(&mut self, from: StateId, to: StateId) -> Result<(), FsmError> {
        let n = self.rows.len() as u32;
        if from as usize >= self.rows.len() {
            return Err(FsmError::InvalidState { state: from, n_states: n });
        }
        if to as usize >= self.rows.len() {
            return Err(FsmError::InvalidState { state: to, n_states: n });
        }
        for slot in &mut self.rows[from as usize] {
            if slot.is_none() {
                *slot = Some(to);
            }
        }
        Ok(())
    }

    /// Finalizes the machine. Every transition must be defined.
    pub fn build(self, start: StateId) -> Result<Dfa, FsmError> {
        let n_states = self.rows.len() as u32;
        if n_states == 0 {
            return Err(FsmError::Empty);
        }
        if start >= n_states {
            return Err(FsmError::InvalidState { state: start, n_states });
        }
        let stride = self.classes.len() as usize;
        let mut table = Vec::with_capacity(self.rows.len() * stride);
        for (s, row) in self.rows.iter().enumerate() {
            for (c, slot) in row.iter().enumerate() {
                match slot {
                    Some(t) => table.push(*t),
                    // An undefined transition: report which state is partial.
                    None => {
                        let _ = c;
                        return Err(FsmError::InvalidState { state: s as StateId, n_states });
                    }
                }
            }
        }
        Ok(Dfa {
            start,
            classes: self.classes,
            stride,
            n_states,
            table: table.into_boxed_slice(),
            accepting: self.accepting.into_boxed_slice(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::div7;

    #[test]
    fn builder_rejects_missing_transitions() {
        let mut b = DfaBuilder::with_byte_alphabet();
        let s0 = b.add_state(false);
        b.set_transition_byte(s0, b'a', s0).unwrap();
        assert!(b.build(s0).is_err());
    }

    #[test]
    fn builder_rejects_bad_ids() {
        let mut b = DfaBuilder::with_byte_alphabet();
        let s0 = b.add_state(false);
        assert!(b.set_transition(s0, 0, 99).is_err());
        assert!(b.set_transition(99, 0, s0).is_err());
        assert!(b.set_accepting(99, true).is_err());
    }

    #[test]
    fn builder_rejects_bad_start() {
        let mut b = DfaBuilder::with_byte_alphabet();
        let s0 = b.add_state(false);
        b.set_default_transition(s0, s0).unwrap();
        assert!(b.build(7).is_err());
    }

    #[test]
    fn empty_machine_is_rejected() {
        let b = DfaBuilder::with_byte_alphabet();
        assert!(matches!(b.build(0), Err(FsmError::Empty)));
    }

    #[test]
    fn run_trace_matches_run() {
        let d = div7();
        let input = b"1011010111001";
        let trace = d.run_trace(d.start(), input);
        assert_eq!(trace.len(), input.len());
        assert_eq!(*trace.last().unwrap(), d.run(input));
    }

    #[test]
    fn run_from_composes_over_splits() {
        let d = div7();
        let input = b"110101001101011";
        for split in 0..=input.len() {
            let (a, b) = input.split_at(split);
            let mid = d.run_from(d.start(), a);
            assert_eq!(d.run_from(mid, b), d.run(input));
        }
    }

    #[test]
    fn permute_preserves_language() {
        let d = div7();
        let n = d.n_states();
        // Reverse permutation.
        let perm: Vec<StateId> = (0..n).map(|s| n - 1 - s).collect();
        let p = d.permute(&perm).unwrap();
        for input in [&b"110"[..], b"111", b"0", b"1001", b"1110101"] {
            assert_eq!(d.accepts(input), p.accepts(input), "input {input:?}");
            assert_eq!(perm[d.run(input) as usize], p.run(input));
        }
    }

    #[test]
    fn permute_rejects_non_permutations() {
        let d = div7();
        let bad = vec![0 as StateId; d.n_states() as usize];
        assert!(d.permute(&bad).is_err());
        let short = vec![0 as StateId; 2];
        assert!(d.permute(&short).is_err());
    }

    #[test]
    fn scan_iter_agrees_with_run_trace() {
        let d = div7();
        let input = b"1011010111001";
        let trace = d.run_trace(d.start(), input);
        let scanned: Vec<StateId> = d.scan_iter(input).map(|(_, s, _)| s).collect();
        assert_eq!(scanned, trace);
        assert_eq!(d.scan_iter(input).len(), input.len());
        assert_eq!(d.scan_iter(b"").next(), None);
    }

    #[test]
    fn scan_iter_match_count_equals_count_matches() {
        let d = div7();
        let input = b"110101011010010101110";
        let by_iter = d.scan_iter(input).filter(|&(_, _, hit)| hit).count() as u64;
        assert_eq!(by_iter, d.count_matches(input));
    }

    #[test]
    fn shortest_accepted_finds_minimal_witnesses() {
        let d = div7();
        // The empty string: 0 bits consumed, start state accepts.
        assert_eq!(d.shortest_accepted(), Some(vec![]));
        assert!(!d.language_is_empty());
        // A machine accepting only after seeing 'a' then 'b'.
        let d2 = {
            let mut b = DfaBuilder::new(ByteClasses::refine(|x, y| {
                (x == b'a') != (y == b'a') || (x == b'b') != (y == b'b')
            }));
            let s0 = b.add_state(false);
            let s1 = b.add_state(false);
            let s2 = b.add_state(true);
            b.set_transition_byte(s0, b'a', s1).unwrap();
            b.set_transition_byte(s1, b'b', s2).unwrap();
            b.set_default_transition(s0, s0).unwrap();
            b.set_default_transition(s1, s0).unwrap();
            b.set_default_transition(s2, s2).unwrap();
            b.build(s0).unwrap()
        };
        let w = d2.shortest_accepted().unwrap();
        assert_eq!(w.len(), 2);
        assert!(d2.accepts(&w));
    }

    #[test]
    fn empty_language_detected() {
        let mut b = DfaBuilder::new(ByteClasses::refine(|_, _| false));
        let s0 = b.add_state(false);
        b.set_transition(s0, 0, s0).unwrap();
        let d = b.build(s0).unwrap();
        assert!(d.language_is_empty());
        assert_eq!(d.shortest_accepted(), None);
    }

    #[test]
    fn count_matches_counts_accepting_visits() {
        // Machine accepting whenever the last byte was 'a'.
        let mut b = DfaBuilder::new(ByteClasses::refine(|x, y| (x == b'a') != (y == b'a')));
        let other = b.add_state(false);
        let hit = b.add_state(true);
        let ca = b.classes.class(b'a');
        let cz = 1 - ca;
        b.set_transition(other, ca, hit).unwrap();
        b.set_transition(other, cz, other).unwrap();
        b.set_transition(hit, ca, hit).unwrap();
        b.set_transition(hit, cz, other).unwrap();
        let d = b.build(other).unwrap();
        assert_eq!(d.count_matches(b"abcabca"), 3);
        assert_eq!(d.count_matches(b"zzz"), 0);
    }
}
