//! Human-readable renderings of machines: Graphviz dot (the transition
//! graph of Figure 1(a)) and ASCII transition tables (Figure 1(b)).

use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Renders the machine as a Graphviz `digraph`. Transitions that share a
/// source and target are merged into one edge labelled with their class
/// representatives; the start state gets an incoming arrow and accepting
/// states double circles, matching the paper's Figure 1(a) conventions.
pub fn to_dot(dfa: &Dfa) -> String {
    let reps = dfa.classes().representatives();
    let mut out = String::from("digraph dfa {\n    rankdir=LR;\n    node [shape=circle];\n");
    out.push_str("    __start [shape=point];\n");
    for s in 0..dfa.n_states() {
        if dfa.is_accepting(s) {
            out.push_str(&format!("    s{s} [shape=doublecircle];\n"));
        }
    }
    out.push_str(&format!("    __start -> s{};\n", dfa.start()));
    for s in 0..dfa.n_states() {
        // Group classes by target.
        let mut by_target: Vec<(u32, Vec<String>)> = Vec::new();
        for (c, &rep) in reps.iter().enumerate() {
            let t = dfa.next_by_class(s, c as u16);
            let label = printable(rep);
            match by_target.iter_mut().find(|(tt, _)| *tt == t) {
                Some((_, labels)) => labels.push(label),
                None => by_target.push((t, vec![label])),
            }
        }
        for (t, labels) in by_target {
            out.push_str(&format!("    s{s} -> s{t} [label=\"{}\"];\n", labels.join(",")));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the dense transition table in the style of Figure 1(b). Machines
/// larger than `max_states` are truncated with an ellipsis row.
pub fn to_table(dfa: &Dfa, max_states: usize) -> String {
    let reps = dfa.classes().representatives();
    let mut out = String::new();
    out.push_str("state ");
    for &rep in &reps {
        out.push_str(&format!("| {:>4} ", printable(rep)));
    }
    out.push('\n');
    out.push_str(&"-".repeat(6 + reps.len() * 7));
    out.push('\n');
    for s in 0..dfa.n_states().min(max_states as u32) {
        let marker = if s == dfa.start() {
            ">"
        } else if dfa.is_accepting(s) {
            "*"
        } else {
            " "
        };
        out.push_str(&format!("{marker}s{s:<4}"));
        for c in 0..reps.len() {
            out.push_str(&format!("| s{:<4}", dfa.next_by_class(s, c as u16)));
        }
        out.push('\n');
    }
    if dfa.n_states() as usize > max_states {
        out.push_str(&format!("… ({} more states)\n", dfa.n_states() as usize - max_states));
    }
    out
}

/// Renders an NFA as a Graphviz `digraph`; epsilon edges are dashed.
pub fn nfa_to_dot(nfa: &Nfa) -> String {
    let mut out = String::from("digraph nfa {\n    rankdir=LR;\n    node [shape=circle];\n");
    out.push_str("    __start [shape=point];\n");
    for (id, st) in nfa.states() {
        if st.accepting {
            out.push_str(&format!("    s{id} [shape=doublecircle];\n"));
        }
    }
    out.push_str(&format!("    __start -> s{};\n", nfa.start()));
    for (id, st) in nfa.states() {
        for r in &st.ranges {
            let label = if r.lo == r.hi {
                printable(r.lo)
            } else {
                format!("{}-{}", printable(r.lo), printable(r.hi))
            };
            out.push_str(&format!("    s{id} -> s{} [label=\"{label}\"];\n", r.target));
        }
        for &e in &st.epsilons {
            out.push_str(&format!("    s{id} -> s{e} [style=dashed, label=\"ε\"];\n"));
        }
    }
    out.push_str("}\n");
    out
}

fn printable(b: u8) -> String {
    match b {
        b'"' => "\\\"".to_string(),
        b'\\' => "\\\\".to_string(),
        0x21..=0x7e => (b as char).to_string(),
        b' ' => "' '".to_string(),
        _ => format!("x{b:02x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{div7, fig4_dfa};

    #[test]
    fn dot_contains_all_states_and_marks() {
        let dot = to_dot(&div7());
        assert!(dot.starts_with("digraph dfa {"));
        assert!(dot.contains("__start -> s0;"));
        assert!(dot.contains("s0 [shape=doublecircle];"), "accepting state marked");
        for s in 0..7 {
            assert!(dot.contains(&format!("s{s} ->")), "state {s} has edges");
        }
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_merges_parallel_edges() {
        // div7 has 3 classes ('0', '1', other); transitions on distinct
        // classes to the same target share one labelled edge.
        let dot = to_dot(&div7());
        // State 0 on 'other' stays at 0; only one edge s0 -> s0.
        assert_eq!(dot.matches("s0 -> s0 ").count(), 1);
    }

    #[test]
    fn table_matches_fig4() {
        let t = to_table(&fig4_dfa(), 10);
        // Start marker on s0, accepting marker on s2.
        assert!(t.contains(">s0"));
        assert!(t.contains("*s2"));
        // Four data rows + header + separator.
        assert_eq!(t.lines().count(), 6);
    }

    #[test]
    fn table_truncates_large_machines() {
        let t = to_table(&div7(), 3);
        assert!(t.contains("… (4 more states)"));
    }

    #[test]
    fn nfa_dot_renders_epsilons_dashed() {
        use crate::nfa::NfaBuilder;
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(true);
        b.add_epsilon(s0, s1);
        b.add_range(s0, b'a', b'c', s0);
        let n = b.build(s0);
        let dot = nfa_to_dot(&n);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("a-c"));
        assert!(dot.contains("s1 [shape=doublecircle];"));
    }

    #[test]
    fn printable_escapes() {
        assert_eq!(printable(b'a'), "a");
        assert_eq!(printable(b'"'), "\\\"");
        assert_eq!(printable(0x00), "x00");
        assert_eq!(printable(b' '), "' '");
    }
}
