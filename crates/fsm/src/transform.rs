//! Frequency-based DFA transformation (§IV-B, Figure 4).
//!
//! PM keeps the hot part of the transition table in GPU shared memory behind
//! a hash table, paying one extra shared-memory access plus a hash
//! computation per transition. GSpecPal instead *re-layouts* the table: states
//! are renamed by descending profiled frequency, so "is this transition
//! cached?" becomes the single comparison `state < H` where `H` is the number
//! of rows that fit in shared memory. A state-ID mapping is kept so results
//! can be translated back to the original machine.

use crate::dfa::{Dfa, StateId};
use crate::profile::FrequencyProfile;

/// A DFA re-laid-out by state frequency rank, plus the mapping rules of
/// Figure 4(b).
#[derive(Clone, Debug)]
pub struct TransformedDfa {
    dfa: Dfa,
    rank_of: Vec<StateId>,
    orig_of: Vec<StateId>,
}

impl TransformedDfa {
    /// Applies the transformation: state with the `r`-th highest frequency
    /// becomes state `r` in the new machine.
    pub fn from_profile(dfa: &Dfa, profile: &FrequencyProfile) -> Self {
        let ranked = profile.ranked_states();
        let mut rank_of = vec![0 as StateId; dfa.n_states() as usize];
        for (rank, &orig) in ranked.iter().enumerate() {
            rank_of[orig as usize] = rank as StateId;
        }
        let transformed = dfa.permute(&rank_of).expect("ranking is a permutation");
        TransformedDfa { dfa: transformed, rank_of, orig_of: ranked }
    }

    /// Identity transformation (no profile available).
    pub fn identity(dfa: &Dfa) -> Self {
        let n = dfa.n_states();
        TransformedDfa { dfa: dfa.clone(), rank_of: (0..n).collect(), orig_of: (0..n).collect() }
    }

    /// The transformed machine (state id == frequency rank).
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// Maps an original state id to its transformed id (its rank).
    pub fn to_transformed(&self, orig: StateId) -> StateId {
        self.rank_of[orig as usize]
    }

    /// Maps a transformed state id back to the original machine.
    pub fn to_original(&self, transformed: StateId) -> StateId {
        self.orig_of[transformed as usize]
    }

    /// The Figure 4(b) hot test: with `hot_states` rows resident in shared
    /// memory, a transition out of `s` is cached iff `s < hot_states`.
    #[inline(always)]
    pub fn is_hot(s: StateId, hot_states: u32) -> bool {
        s < hot_states
    }

    /// How many of the highest-ranked rows fit into `shared_bytes` of shared
    /// memory, with 4-byte entries and the machine's stride — the §IV-B
    /// promotion rule ("until there is no more space").
    pub fn hot_rows_for_budget(&self, shared_bytes: usize) -> u32 {
        let row_bytes = self.dfa.stride() * std::mem::size_of::<StateId>();
        if row_bytes == 0 {
            return 0;
        }
        ((shared_bytes / row_bytes) as u32).min(self.dfa.n_states())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{div7, fig4_dfa};
    use crate::profile::FrequencyProfile;

    #[test]
    fn fig4_transformation_example() {
        // The paper profiles the Figure 4 DFA and finds S0, S1 hottest (freq
        // 4 each) and S2, S3 cold (freq 2 each). Build a training input that
        // reproduces that ranking: plain text visits S0/S1 mostly.
        let d = fig4_dfa();
        let profile = FrequencyProfile::collect(&d, b"a/b/c/d x/*y*/ /*z*/");
        let t = TransformedDfa::from_profile(&d, &profile);
        // The two hottest original states map to transformed ids 0 and 1.
        let ranked = profile.ranked_states();
        assert_eq!(t.to_transformed(ranked[0]), 0);
        assert_eq!(t.to_transformed(ranked[1]), 1);
        // Round trip.
        for s in 0..d.n_states() {
            assert_eq!(t.to_original(t.to_transformed(s)), s);
        }
    }

    #[test]
    fn transformed_machine_is_equivalent() {
        let d = fig4_dfa();
        let profile = FrequencyProfile::collect(&d, b"/* hot */ cold /*x*/");
        let t = TransformedDfa::from_profile(&d, &profile);
        for input in [&b"/* hello */"[..], b"///***///", b"plain text", b"/*unclosed", b""] {
            assert_eq!(d.accepts(input), t.dfa().accepts(input), "input {input:?}");
            assert_eq!(t.to_original(t.dfa().run(input)), d.run(input));
        }
    }

    #[test]
    fn hot_test_is_rank_comparison() {
        assert!(TransformedDfa::is_hot(0, 2));
        assert!(TransformedDfa::is_hot(1, 2));
        assert!(!TransformedDfa::is_hot(2, 2));
    }

    #[test]
    fn hot_rows_budget() {
        let d = div7();
        let t = TransformedDfa::identity(&d);
        let row = d.stride() * 4;
        assert_eq!(t.hot_rows_for_budget(row * 3), 3);
        assert_eq!(t.hot_rows_for_budget(row * 100), 7, "capped at n_states");
        assert_eq!(t.hot_rows_for_budget(0), 0);
    }

    #[test]
    fn identity_transform_round_trips() {
        let d = div7();
        let t = TransformedDfa::identity(&d);
        for s in 0..d.n_states() {
            assert_eq!(t.to_transformed(s), s);
            assert_eq!(t.to_original(s), s);
        }
        assert_eq!(t.dfa().run(b"1011"), d.run(b"1011"));
    }

    #[test]
    fn transformed_start_tracks_mapping() {
        let d = fig4_dfa();
        let profile = FrequencyProfile::collect(&d, b"/*****/");
        let t = TransformedDfa::from_profile(&d, &profile);
        assert_eq!(t.to_original(t.dfa().start()), d.start());
    }
}
