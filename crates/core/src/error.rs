//! Error types for job construction and configuration validation.

/// Why a job or configuration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A configuration field has an invalid value.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        problem: String,
    },
    /// The chunk count exceeds the input length (some chunks would be empty
    /// in a way the schemes' invariants do not allow).
    TooManyChunks {
        /// Requested chunk count.
        n_chunks: usize,
        /// Input length in bytes.
        input_len: usize,
    },
    /// The input stream is empty but chunks were requested: the schemes'
    /// speculation and verification invariants assume at least one byte.
    EmptyInput {
        /// Requested chunk count.
        n_chunks: usize,
    },
    /// Even a one-thread block of this job's kernels exceeds the device's
    /// per-SM resources (in practice: the hot transition table plus the
    /// per-thread speculation state outgrow shared memory). No block shape
    /// can launch, so the job is rejected up front instead of panicking
    /// inside a scheme.
    Unlaunchable {
        /// Shared bytes one block would need at the narrowest width.
        shared_bytes: usize,
        /// Shared bytes one SM actually has.
        shared_available: usize,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidConfig { field, problem } => {
                write!(f, "invalid configuration: {field} {problem}")
            }
            CoreError::TooManyChunks { n_chunks, input_len } => {
                write!(f, "n_chunks ({n_chunks}) exceeds the input length ({input_len} bytes)")
            }
            CoreError::EmptyInput { n_chunks } => {
                write!(f, "input is empty but {n_chunks} chunk(s) were requested")
            }
            CoreError::Unlaunchable { shared_bytes, shared_available } => {
                write!(
                    f,
                    "no block shape fits the device: one block needs {shared_bytes} shared \
                     bytes but an SM has {shared_available}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::TooManyChunks { n_chunks: 300, input_len: 10 };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("10"));
        let e = CoreError::EmptyInput { n_chunks: 4096 };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("empty"));
        let e = CoreError::InvalidConfig { field: "spec_k", problem: "must be positive".into() };
        assert!(e.to_string().contains("spec_k"));
        let e = CoreError::Unlaunchable { shared_bytes: 200_000, shared_available: 102_400 };
        assert!(e.to_string().contains("200000"));
        assert!(e.to_string().contains("102400"));
    }
}
