//! Device-resident transition tables (§IV-B).
//!
//! Transition tables of real rule sets exceed GPU shared memory, so only the
//! *hot* rows (most frequently visited states) are kept there; the rest stay
//! in global memory. Two layouts are implemented:
//!
//! * [`TableLayout::Transformed`] — the paper's frequency-based DFA
//!   transformation: state ids are frequency ranks, so the cached test is a
//!   single comparison `state < H` (Figure 4).
//! * [`TableLayout::Hashed`] — PM's approach: an explicit hash table in
//!   shared memory answers "is this row cached?", costing one extra shared
//!   access and a hash computation *every step*.
//!
//! The ~15% mean improvement the paper reports for the transformation
//! (§V-C) is exactly the per-step delta between these two layouts, which the
//! ablation bench regenerates.

use gspecpal_fsm::{Dfa, FrequencyProfile, StateId};
use gspecpal_gpu::{DeviceSpec, ThreadCtx};

use std::ops::Range;

/// Global-memory region id for the input stream.
pub const REGION_INPUT: u32 = 0;
/// Global-memory region id for the (cold part of the) transition table.
pub const REGION_TABLE: u32 = 1;

/// How the hot-row test is performed on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableLayout {
    /// Frequency-transformed table: `state < H` comparison (GSpecPal).
    Transformed,
    /// Shared-memory hash table lookup per step (PM).
    Hashed,
}

/// A transition table as seen by device kernels, with cost accounting.
#[derive(Clone, Debug)]
pub struct DeviceTable<'a> {
    dfa: &'a Dfa,
    layout: TableLayout,
    /// For `Transformed`: rows `0..hot_rows` are in shared memory (the DFA
    /// must already be frequency-permuted so rank == state id).
    hot_rows: u32,
    /// For `Hashed`: per-state cached flag (top-frequency states).
    hot_set: Vec<bool>,
}

impl<'a> DeviceTable<'a> {
    /// A transformed-layout table over a frequency-permuted DFA with the
    /// given number of resident hot rows.
    pub fn transformed(dfa: &'a Dfa, hot_rows: u32) -> Self {
        DeviceTable { dfa, layout: TableLayout::Transformed, hot_rows, hot_set: Vec::new() }
    }

    /// A hashed-layout table: the `hot_rows` most frequent states (per
    /// `profile`) are resident, tested through a shared-memory hash table.
    pub fn hashed(dfa: &'a Dfa, profile: &FrequencyProfile, hot_rows: u32) -> Self {
        let mut hot_set = vec![false; dfa.n_states() as usize];
        for &s in profile.ranked_states().iter().take(hot_rows as usize) {
            hot_set[s as usize] = true;
        }
        DeviceTable { dfa, layout: TableLayout::Hashed, hot_rows, hot_set }
    }

    /// Fraction of shared memory the hot table must leave free for the
    /// schemes' own block state (staged speculation queues, `VR^others`
    /// records, boundary staging). Without this headroom a table sized to
    /// the last byte of shared memory would leave every kernel unlaunchable
    /// once its per-thread shared footprint is accounted for.
    pub const SCHEME_RESERVE_DENOM: usize = 8;

    /// Computes how many rows fit in the device's shared memory for the
    /// given layout. The hashed layout sacrifices part of shared memory to
    /// the hash table itself (2 bytes per machine state). One eighth of
    /// shared memory ([`Self::SCHEME_RESERVE_DENOM`]) is held back for the
    /// launching kernel's per-thread state, so the resulting table always
    /// leaves the job launchable (at a possibly narrow block width).
    pub fn hot_rows_for_device(dfa: &Dfa, layout: TableLayout, spec: &DeviceSpec) -> u32 {
        let row_bytes = dfa.stride() * std::mem::size_of::<StateId>();
        let reserve = spec.shared_mem_bytes / Self::SCHEME_RESERVE_DENOM;
        let budget = match layout {
            TableLayout::Transformed => spec.shared_mem_bytes - reserve,
            TableLayout::Hashed => {
                (spec.shared_mem_bytes - reserve).saturating_sub(2 * dfa.n_states() as usize)
            }
        };
        ((budget / row_bytes.max(1)) as u32).min(dfa.n_states())
    }

    /// Shared-memory bytes this table occupies per block: the resident hot
    /// rows, plus (for the hashed layout) the 2-bytes-per-state hash table
    /// itself. This is the per-block footprint a kernel must declare in its
    /// [`gspecpal_gpu::BlockRequirements`] — a big hot table lowers the
    /// occupancy calculator's resident-block count, which is exactly the
    /// trade-off the paper's §IV-B caching discussion balances.
    pub fn shared_footprint_bytes(&self) -> usize {
        let rows = self.hot_rows.min(self.dfa.n_states()) as usize;
        let row_bytes = self.dfa.stride() * std::mem::size_of::<StateId>();
        let table = rows * row_bytes;
        match self.layout {
            TableLayout::Transformed => table,
            TableLayout::Hashed => table + 2 * self.dfa.n_states() as usize,
        }
    }

    /// Device *global*-memory bytes the machine's full transition table
    /// occupies: every row (hot rows are a shared-memory *copy* of the
    /// hottest rows, but cold-row fallthrough still needs the whole table
    /// in global memory), plus — for the hashed layout — its
    /// 2-bytes-per-state hash index. This is the unit the serving layer's
    /// table-residency LRU accounts in: a machine whose table is not
    /// resident must upload exactly these bytes before its batch can run,
    /// and evicting it frees exactly these bytes.
    pub fn global_footprint_bytes(&self) -> usize {
        let row_bytes = self.dfa.stride() * std::mem::size_of::<StateId>();
        let table = self.dfa.n_states() as usize * row_bytes;
        match self.layout {
            TableLayout::Transformed => table,
            TableLayout::Hashed => table + 2 * self.dfa.n_states() as usize,
        }
    }

    /// The underlying machine.
    pub fn dfa(&self) -> &Dfa {
        self.dfa
    }

    /// The layout in use.
    pub fn layout(&self) -> TableLayout {
        self.layout
    }

    /// Number of resident rows.
    pub fn hot_rows(&self) -> u32 {
        self.hot_rows
    }

    /// Whether state `s`'s row is resident in shared memory.
    #[inline]
    pub fn is_hot(&self, s: StateId) -> bool {
        match self.layout {
            TableLayout::Transformed => s < self.hot_rows,
            TableLayout::Hashed => self.hot_set[s as usize],
        }
    }

    /// One state transition `Table[state][class(b)]`, charging the layout's
    /// device cost. The input byte must already have been loaded (see
    /// [`DeviceTable::load_input`]).
    #[inline]
    pub fn step(&self, ctx: &mut ThreadCtx<'_>, s: StateId, b: u8) -> StateId {
        match self.layout {
            TableLayout::Transformed => {
                // `state < H` test.
                ctx.alu(1);
            }
            TableLayout::Hashed => {
                // hash(state) + Hots[hash(state)] probe. The probe is a
                // shared access that pipelines with the row fetch; its
                // effective extra latency is the device's probe cost.
                ctx.alu(1);
                ctx.probe();
            }
        }
        if self.is_hot(s) {
            ctx.shared(1);
        } else {
            let class = self.dfa.classes().class(b) as u64;
            let offset = (u64::from(s) * self.dfa.stride() as u64 + class)
                * std::mem::size_of::<StateId>() as u64;
            ctx.global(REGION_TABLE, offset, std::mem::size_of::<StateId>() as u64);
        }
        self.dfa.next(s, b)
    }

    /// Loads one input byte from global memory (coalesced per warp segment).
    #[inline]
    pub fn load_input(&self, ctx: &mut ThreadCtx<'_>, input: &[u8], pos: usize) -> u8 {
        ctx.global(REGION_INPUT, pos as u64, 1);
        input[pos]
    }

    /// Runs one chunk on the device from `start`, charging per-step costs.
    /// This is the device-side `FSM_Processing(fsm, Π(i), state)` primitive
    /// every scheme builds on.
    pub fn run_chunk(
        &self,
        ctx: &mut ThreadCtx<'_>,
        input: &[u8],
        range: Range<usize>,
        start: StateId,
    ) -> StateId {
        self.run_chunk_with(ctx, input, range, start, false).end
    }

    /// Like [`DeviceTable::run_chunk`], optionally counting accepting-state
    /// visits (the match-reporting output function φ — one extra ALU op per
    /// transition when enabled).
    pub fn run_chunk_with(
        &self,
        ctx: &mut ThreadCtx<'_>,
        input: &[u8],
        range: Range<usize>,
        start: StateId,
        count_matches: bool,
    ) -> ChunkRun {
        let mut s = start;
        let mut matches = 0u64;
        if count_matches {
            for pos in range {
                let b = self.load_input(ctx, input, pos);
                s = self.step(ctx, s, b);
                ctx.alu(2); // loop bookkeeping + accept test
                matches += u64::from(self.dfa.is_accepting(s));
            }
        } else {
            for pos in range {
                let b = self.load_input(ctx, input, pos);
                s = self.step(ctx, s, b);
                ctx.alu(1); // loop bookkeeping
            }
        }
        ChunkRun { end: s, matches }
    }

    /// Runs `k` speculative paths over the same chunk in one thread (PM's
    /// spec-k execution): the input byte is loaded once per step and all
    /// paths take their table lookups on it. `starts` is updated in place to
    /// the per-path end states.
    pub fn run_chunk_multi(
        &self,
        ctx: &mut ThreadCtx<'_>,
        input: &[u8],
        range: Range<usize>,
        states: &mut [StateId],
    ) {
        let mut counts = vec![0u64; states.len()];
        self.run_chunk_multi_with(ctx, input, range, states, &mut counts, false);
    }

    /// Multi-path execution with optional per-path match counting.
    pub fn run_chunk_multi_with(
        &self,
        ctx: &mut ThreadCtx<'_>,
        input: &[u8],
        range: Range<usize>,
        states: &mut [StateId],
        counts: &mut [u64],
        count_matches: bool,
    ) {
        debug_assert_eq!(states.len(), counts.len());
        for pos in range {
            let b = self.load_input(ctx, input, pos);
            for (s, c) in states.iter_mut().zip(counts.iter_mut()) {
                *s = self.step(ctx, *s, b);
                if count_matches {
                    ctx.alu(1);
                    *c += u64::from(self.dfa.is_accepting(*s));
                }
            }
            ctx.alu(1);
        }
    }
}

/// Result of executing one chunk on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkRun {
    /// End state.
    pub end: StateId,
    /// Accepting-state visits along the way (0 when counting is off).
    pub matches: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::{launch, KernelStats, RoundKernel, RoundOutcome};

    /// Runs `f` once on thread 0 of a one-round kernel and returns the stats.
    fn on_device<F: FnMut(&mut ThreadCtx<'_>)>(f: F) -> KernelStats {
        struct K<F>(F);
        impl<F: FnMut(&mut ThreadCtx<'_>)> RoundKernel for K<F> {
            fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                (self.0)(ctx);
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        launch(&DeviceSpec::test_unit(), 1, &mut K(f))
    }

    #[test]
    fn global_footprint_covers_the_whole_table() {
        let d = div7();
        // Transformed: all 7 rows × stride × 2 bytes, independent of how
        // many rows are hot (hot rows are a copy, not a partition).
        let full = DeviceTable::transformed(&d, 7);
        let cold = DeviceTable::transformed(&d, 1);
        let expect = 7 * d.stride() * std::mem::size_of::<StateId>();
        assert_eq!(full.global_footprint_bytes(), expect);
        assert_eq!(cold.global_footprint_bytes(), expect, "hot rows don't shrink global");
        assert!(cold.shared_footprint_bytes() < full.shared_footprint_bytes());
    }

    #[test]
    fn hashed_global_footprint_adds_the_index() {
        let d = div7();
        let profile = FrequencyProfile::uniform(&d);
        let t = DeviceTable::hashed(&d, &profile, 3);
        let table = 7 * d.stride() * std::mem::size_of::<StateId>();
        assert_eq!(t.global_footprint_bytes(), table + 2 * 7);
    }

    #[test]
    fn transformed_hot_step_uses_shared_only() {
        let d = div7();
        let t = DeviceTable::transformed(&d, 7); // everything hot
        let mut end = 0;
        let stats = on_device(|ctx| {
            end = t.step(ctx, 0, b'1');
        });
        assert_eq!(end, d.next(0, b'1'));
        assert_eq!(stats.shared_accesses, 1);
        assert_eq!(stats.global_transactions, 0);
    }

    #[test]
    fn transformed_cold_step_goes_global() {
        let d = div7();
        let t = DeviceTable::transformed(&d, 0); // nothing hot
        let stats = on_device(|ctx| {
            t.step(ctx, 3, b'0');
        });
        assert_eq!(stats.shared_accesses, 0);
        assert_eq!(stats.global_transactions, 1);
    }

    #[test]
    fn hashed_step_pays_probe_even_when_hot() {
        let d = div7();
        let profile = FrequencyProfile::uniform(&d);
        let t = DeviceTable::hashed(&d, &profile, 7);
        let stats = on_device(|ctx| {
            t.step(ctx, 0, b'1');
        });
        // 1 probe + 1 row access.
        assert_eq!(stats.shared_accesses, 2);
    }

    #[test]
    fn hashed_hot_set_follows_profile() {
        let d = div7();
        let profile = FrequencyProfile::collect(&d, b"1111111");
        let t = DeviceTable::hashed(&d, &profile, 2);
        let ranked = profile.ranked_states();
        assert!(t.is_hot(ranked[0]));
        assert!(t.is_hot(ranked[1]));
        assert!(!t.is_hot(ranked[6]));
    }

    #[test]
    fn run_chunk_computes_correct_end_state() {
        let d = div7();
        let t = DeviceTable::transformed(&d, 7);
        let input = b"110101101";
        let mut end = 0;
        on_device(|ctx| {
            end = t.run_chunk(ctx, input, 0..input.len(), d.start());
        });
        assert_eq!(end, d.run(input));
    }

    #[test]
    fn run_chunk_multi_matches_individual_runs() {
        let d = div7();
        let t = DeviceTable::transformed(&d, 7);
        let input = b"1011010101";
        let mut states = [0, 3, 5];
        on_device(|ctx| {
            t.run_chunk_multi(ctx, input, 2..8, &mut states);
        });
        for (i, &s0) in [0, 3, 5].iter().enumerate() {
            assert_eq!(states[i], d.run_from(s0, &input[2..8]));
        }
    }

    #[test]
    fn multi_path_shares_input_loads() {
        let d = div7();
        let t = DeviceTable::transformed(&d, 7);
        let input = vec![b'1'; 64];
        let single = on_device(|ctx| {
            t.run_chunk(ctx, &input, 0..64, 0);
        });
        let mut states = [0, 1, 2, 3];
        let quad = on_device(|ctx| {
            t.run_chunk_multi(ctx, &input, 0..64, &mut states);
        });
        // Input transactions identical; table work roughly 4x.
        assert_eq!(
            single.global_transactions, quad.global_transactions,
            "input loads are shared across paths"
        );
        assert!(quad.shared_accesses >= 4 * single.shared_accesses);
        // The redundancy factor alpha_k stays well below k thanks to the
        // shared input stream (Fig 3's premise).
        assert!(quad.cycles < 4 * single.cycles);
        assert!(quad.cycles > single.cycles);
    }

    #[test]
    fn layouts_compute_identical_transitions() {
        use gspecpal_fsm::random::{random_dfa, random_input};
        use gspecpal_fsm::FrequencyProfile;
        for seed in 0..10u64 {
            let d = random_dfa(seed, 20, 6);
            let profile = FrequencyProfile::uniform(&d);
            let t = DeviceTable::transformed(&d, 10);
            let h = DeviceTable::hashed(&d, &profile, 10);
            let input = random_input(seed ^ 9, 200);
            let mut st = d.start();
            let mut sh = d.start();
            on_device(|ctx| {
                for &b in &input {
                    st = t.step(ctx, st, b);
                    sh = h.step(ctx, sh, b);
                    assert_eq!(st, sh, "seed {seed}");
                }
            });
        }
    }

    #[test]
    fn hot_rows_budget_accounts_for_hash_table() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let t_rows = DeviceTable::hot_rows_for_device(&d, TableLayout::Transformed, &spec);
        let h_rows = DeviceTable::hot_rows_for_device(&d, TableLayout::Hashed, &spec);
        assert!(h_rows <= t_rows);
    }

    #[test]
    fn shared_footprint_matches_layout() {
        let d = div7();
        let row = d.stride() * std::mem::size_of::<StateId>();
        let t = DeviceTable::transformed(&d, 3);
        assert_eq!(t.shared_footprint_bytes(), 3 * row);
        let profile = FrequencyProfile::uniform(&d);
        let h = DeviceTable::hashed(&d, &profile, 3);
        assert_eq!(h.shared_footprint_bytes(), 3 * row + 2 * d.n_states() as usize);
        // hot_rows beyond the state count never inflate the footprint.
        let t = DeviceTable::transformed(&d, 1000);
        assert_eq!(t.shared_footprint_bytes(), d.n_states() as usize * row);
    }

    #[test]
    fn big_hot_tables_reduce_resident_blocks() {
        // A device-filling hot table must cost occupancy: the same 256-thread
        // block that fits 6-wide with no shared memory fits exactly once when
        // it carries the full table (ISSUE: "shared-memory-heavy shape
        // measurably reduces resident blocks/SM vs light").
        use gspecpal_fsm::random::random_dfa;
        use gspecpal_gpu::{max_resident_blocks, BlockRequirements};
        let spec = DeviceSpec::rtx3090();
        let d = random_dfa(7, 512, 64);
        let hot = DeviceTable::hot_rows_for_device(&d, TableLayout::Transformed, &spec);
        let t = DeviceTable::transformed(&d, hot);
        assert!(t.shared_footprint_bytes() > spec.shared_mem_bytes / 2, "table should be big");
        let heavy = BlockRequirements {
            threads: 256,
            shared_bytes: t.shared_footprint_bytes(),
            regs_per_thread: 32,
        };
        let light = BlockRequirements::light(256);
        let r_heavy = max_resident_blocks(&spec, &heavy);
        let r_light = max_resident_blocks(&spec, &light);
        assert_eq!(r_heavy, 1);
        assert!(r_heavy < r_light, "{r_heavy} vs {r_light}");
    }
}
