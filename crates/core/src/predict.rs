//! All-state lookback-2 state prediction (§IV-A).
//!
//! For every chunk boundary, the predictor executes FSM transitions starting
//! from *all* states over the last `lookback` (= 2) bytes preceding the
//! chunk, producing a set of possible start states ranked by frequency of
//! appearance. The FSM convergence property guarantees the true start state
//! is always contained in the produced set: the real execution path passes
//! through *some* state `lookback` bytes before the boundary, and running
//! every state forward necessarily includes it. (This containment is
//! property-tested in the crate's test suite.)
//!
//! The paper treats prediction cost as a constant `C` (§III-C) because the
//! per-boundary all-state walk is warp-cooperative and only two symbols
//! long; the device kernel here charges exactly that cooperative cost.

use std::collections::HashMap;
use std::ops::Range;

use gspecpal_fsm::{Dfa, StateId};
use gspecpal_gpu::{
    launch_grid, BlockDim, DeviceSpec, GridKernel, KernelStats, Phase, RoundKernel, RoundOutcome,
    ThreadCtx,
};

use crate::specq::SpecQueue;

/// The output of the prediction phase: one ranked queue per chunk, plus the
/// simulated cost of producing them.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// `queues[i]` is `QS_i`. `queues[0]` holds the machine's certain start
    /// state.
    pub queues: Vec<SpecQueue>,
    /// Cost of the prediction kernel (the constant `C` of Equation 1).
    pub stats: KernelStats,
}

/// Runs the all-state lookback predictor for every chunk.
pub fn predict(
    dfa: &Dfa,
    input: &[u8],
    chunks: &[Range<usize>],
    lookback: usize,
    spec: &DeviceSpec,
) -> Prediction {
    assert!(!chunks.is_empty(), "need at least one chunk");
    let mut queues = Vec::with_capacity(chunks.len());
    queues.push(SpecQueue::certain(dfa.start()));
    for chunk in &chunks[1..] {
        let boundary = chunk.start;
        let lo = boundary.saturating_sub(lookback);
        queues.push(lookback_queue(dfa, &input[lo..boundary]));
    }

    // Device cost: each thread runs the all-state walk for its boundary
    // cooperatively across its warp (ceil(|Q| / warp) states per lane, each
    // `lookback` transitions of one shared-memory lookup + one ALU op), then
    // ranks the end-state set.
    let n_states = u64::from(dfa.n_states());
    let mut kernel = PredictCost {
        n_threads: chunks.len(),
        states_per_lane: n_states.div_ceil(u64::from(spec.warp_size)),
        lookback: lookback as u64,
        queue_sizes: queues.iter().map(|q| q.initial_len() as u64).collect(),
    };
    let stats = launch_grid(spec, chunks.len(), &mut kernel);
    Prediction { queues, stats }
}

/// Builds the ranked queue for one boundary window.
pub fn lookback_queue(dfa: &Dfa, window: &[u8]) -> SpecQueue {
    let mut freq: HashMap<StateId, u32> = HashMap::new();
    for s in 0..dfa.n_states() {
        let e = dfa.run_from(s, window);
        *freq.entry(e).or_insert(0) += 1;
    }
    let mut ranked: Vec<(StateId, u32)> = freq.into_iter().collect();
    // Rank by descending frequency; ties by state id for determinism.
    ranked.sort_by_key(|&(s, f)| (std::cmp::Reverse(f), s));
    SpecQueue::from_ranked(ranked)
}

struct PredictCost {
    n_threads: usize,
    states_per_lane: u64,
    lookback: u64,
    queue_sizes: Vec<u64>,
}

/// One block's view of the prediction cost model. The kernel is read-only
/// per thread, so every block shares the same description; global thread ids
/// address `queue_sizes` directly.
struct PredictCostBlock<'s>(&'s PredictCost);

impl RoundKernel for PredictCostBlock<'_> {
    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let cost = self.0;
        if tid == 0 || tid >= cost.n_threads {
            return RoundOutcome::IDLE; // Chunk 0 needs no prediction.
        }
        let steps = cost.states_per_lane * cost.lookback;
        ctx.shared(steps);
        ctx.alu(steps);
        // Frequency ranking of the end-state set.
        ctx.alu(cost.queue_sizes.get(tid).copied().unwrap_or(0) * 2);
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }

    fn phase(&self) -> Phase {
        Phase::Predict
    }
}

impl GridKernel for PredictCost {
    type Block<'s> = PredictCostBlock<'s>;

    fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<PredictCostBlock<'s>> {
        let shared: &'s PredictCost = self;
        dims.iter().map(|_| PredictCostBlock(shared)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition;
    use gspecpal_fsm::examples::{div7, fig4_dfa};

    #[test]
    fn true_start_state_is_always_contained() {
        let d = fig4_dfa();
        let input = b"code /* a comment */ more // and /*another*/ tail";
        let chunks = partition(input.len(), 8);
        let pred = predict(&d, input, &chunks, 2, &DeviceSpec::test_unit());
        for (i, chunk) in chunks.iter().enumerate() {
            let truth = d.run(&input[..chunk.start]);
            assert!(
                pred.queues[i].candidates().any(|s| s == truth),
                "chunk {i}: truth {truth} missing from queue"
            );
        }
    }

    #[test]
    fn div7_queue_contains_all_residues() {
        // div7 is a permutation automaton: lookback can rule nothing out, so
        // every queue holds all 7 states with equal frequency.
        let d = div7();
        let input = b"10110101101011010110101101011010";
        let chunks = partition(input.len(), 4);
        let pred = predict(&d, input, &chunks, 2, &DeviceSpec::test_unit());
        for q in &pred.queues[1..] {
            assert_eq!(q.initial_len(), 7);
        }
    }

    #[test]
    fn convergent_machine_gets_short_queues() {
        // A keyword machine over junk input converges to very few states.
        let d = gspecpal_fsm::combinators::keyword_dfa(&[b"attack", b"worm"]).unwrap();
        let q = lookback_queue(&d, b"zz");
        assert!(q.initial_len() <= 3, "queue had {} entries", q.initial_len());
    }

    #[test]
    fn ranking_is_by_frequency() {
        let d = gspecpal_fsm::combinators::keyword_dfa(&[b"ab"]).unwrap();
        let q = lookback_queue(&d, b"zz");
        // All states collapse to the root after two junk bytes.
        assert_eq!(q.initial_len(), 1);
        assert_eq!(q.front(), Some(d.run_from(d.start(), b"zz")));
    }

    #[test]
    fn chunk0_is_certain() {
        let d = div7();
        let input = b"1010101010101010";
        let chunks = partition(input.len(), 4);
        let pred = predict(&d, input, &chunks, 2, &DeviceSpec::test_unit());
        assert_eq!(pred.queues[0].initial_len(), 1);
        assert_eq!(pred.queues[0].front(), Some(d.start()));
    }

    #[test]
    fn prediction_kernel_has_cost() {
        let d = div7();
        let input = b"10101010101010101010101010101010";
        let chunks = partition(input.len(), 8);
        let pred = predict(&d, input, &chunks, 2, &DeviceSpec::test_unit());
        assert!(pred.stats.cycles > 0);
        assert!(pred.stats.shared_accesses > 0);
    }

    #[test]
    fn boundaries_inside_the_lookback_window_still_contain_truth() {
        // A chunk starting at position 1 has a 1-byte window; containment
        // must hold regardless.
        let d = div7();
        let input = b"101101";
        let chunks = vec![0..1, 1..3, 3..6];
        let pred = predict(&d, input, &chunks, 2, &DeviceSpec::test_unit());
        for (i, c) in chunks.iter().enumerate() {
            let truth = d.run(&input[..c.start]);
            assert!(pred.queues[i].candidates().any(|s| s == truth), "chunk {i}");
        }
    }

    #[test]
    fn empty_window_yields_identity_queue() {
        // A zero-length window maps every state to itself: |Q| candidates.
        let d = div7();
        let q = lookback_queue(&d, b"");
        assert_eq!(q.initial_len(), 7);
    }
}
