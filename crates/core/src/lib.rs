//! GSpecPal: speculation-centric FSM parallelization on (simulated) GPUs.
//!
//! This crate implements the paper's contribution end to end:
//!
//! * the **all-state lookback-2 predictor** producing ranked speculation
//!   queues (§IV-A, [`predict`]);
//! * the device-resident **transition table** in both layouts — the paper's
//!   frequency-transformed layout and PM's hash-table layout (§IV-B,
//!   [`table`]);
//! * the hierarchical **verification-record storage** with a register budget
//!   for records received from other threads (§IV-C Fig 5, [`records`]);
//! * the four **parallel schemes** — PM (parallel merge, spec-k), SRE
//!   (speculative recovery from predecessor end states, Algorithm 3), RR
//!   (round-robin aggressive recovery, Algorithm 4) and NF (nearest-first,
//!   Algorithm 5) — plus sequential, naive-speculative (Algorithm 2) and
//!   fully-enumerative references ([`schemes`]);
//! * the **decision-tree scheme selector** (§IV-D Fig 6, [`selector`]);
//! * the **latency-sensitive framework** tying profiling, transformation,
//!   selection and execution together ([`framework`]);
//! * a **multicore reference engine** on real threads ([`cpu`]) and the
//!   §III-C analytical cost model ([`analysis`]).
//!
//! Every scheme runs on the deterministic SIMT simulator from
//! `gspecpal-gpu`, producing both the *exact same answer* as a sequential
//! run (property-tested) and a cycle-accurate cost breakdown that reproduces
//! the paper's figures.

#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod cpu;
pub mod error;
pub mod framework;
pub mod nfa_engine;
pub mod partition;
pub mod predict;
pub mod records;
pub mod recovery;
pub mod run;
pub mod schemes;
pub mod selector;
pub mod specq;
pub mod table;
pub mod throughput;

pub use config::{SchemeConfig, StitchPolicy};
pub use error::CoreError;
pub use framework::{FrameworkReport, GSpecPal};
pub use gspecpal_gpu::{FaultDomain, FaultPlan};
pub use recovery::RecoveryConfig;
pub use run::{RunOutcome, SchemeKind};
pub use schemes::{run_scheme, Job};
pub use selector::{ScoredChoice, Selector, SelectorProfile, SPEC_K_GRID};
