//! The GSpecPal framework (§IV): profile → transform → select → execute.
//!
//! [`GSpecPal::process`] is the public entry point a downstream user calls:
//! give it a DFA and an input stream and it (1) profiles state frequencies
//! and speculation behaviour on a small training slice, (2) applies the
//! frequency-based DFA transformation and sizes the shared-memory-resident
//! hot rows for the device, (3) runs the Fig 6 decision tree to pick a
//! parallel scheme, (4) launches the simulated kernels, and (5) maps the
//! verified result back to the caller's original state numbering.

use gspecpal_fsm::{Dfa, FrequencyProfile, StateId, TransformedDfa};
use gspecpal_gpu::DeviceSpec;

use crate::config::SchemeConfig;
use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::{run_scheme, Job};
use crate::selector::{Selector, SelectorProfile};
use crate::table::{DeviceTable, TableLayout};

/// The latency-sensitive FSM-processing framework.
///
/// ```
/// use gspecpal::{GSpecPal, SchemeConfig};
/// use gspecpal_gpu::DeviceSpec;
/// use gspecpal_fsm::examples::div7;
///
/// let dfa = div7();
/// let input: Vec<u8> = b"10110101".repeat(256);
/// let fw = GSpecPal::new(DeviceSpec::test_unit())
///     .with_config(SchemeConfig { n_chunks: 16, ..SchemeConfig::default() });
/// let report = fw.process(&dfa, &input);
/// assert_eq!(report.end_state(), dfa.run(&input));
/// ```
#[derive(Clone, Debug)]
pub struct GSpecPal {
    device: DeviceSpec,
    config: SchemeConfig,
    selector: Selector,
    layout: TableLayout,
    /// Fraction of the input used as the offline training slice (the paper
    /// uses 0.5%).
    training_fraction: f64,
    /// Lower bound on the training slice length, so tiny inputs still get a
    /// usable profile.
    min_training: usize,
}

impl GSpecPal {
    /// A framework instance for `device` with the paper's defaults.
    pub fn new(device: DeviceSpec) -> Self {
        GSpecPal {
            device,
            config: SchemeConfig::default(),
            selector: Selector::default(),
            layout: TableLayout::Transformed,
            training_fraction: 0.005,
            min_training: 512,
        }
    }

    /// Overrides the scheme configuration.
    pub fn with_config(mut self, config: SchemeConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the selector thresholds.
    pub fn with_selector(mut self, selector: Selector) -> Self {
        self.selector = selector;
        self
    }

    /// Switches the hot-table layout (the ablation knob: `Hashed` is PM's
    /// hash-table approach, `Transformed` the paper's §IV-B optimization).
    pub fn with_layout(mut self, layout: TableLayout) -> Self {
        self.layout = layout;
        self
    }

    /// The device this framework simulates.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &SchemeConfig {
        &self.config
    }

    /// The training slice of `input` used for offline profiling.
    pub fn training_slice<'i>(&self, input: &'i [u8]) -> &'i [u8] {
        let len = ((input.len() as f64 * self.training_fraction) as usize)
            .max(self.min_training)
            .min(input.len());
        &input[..len]
    }

    /// Processes `input` with `dfa`, letting the selector pick the scheme.
    ///
    /// The selector profiles *sampled boundaries across the whole stream*
    /// (the paper samples a random 0.5% slice of each input group; with a
    /// single stream, spread-out sampling is the equivalent that still sees
    /// regime changes), while the frequency profile for table residency uses
    /// the compact training prefix.
    pub fn process(&self, dfa: &Dfa, input: &[u8]) -> FrameworkReport {
        let profile = self.selector.profile(dfa, input);
        let (scheme, reason) = self.selector.select_explained(&profile);
        let outcome = self.run_with(dfa, input, scheme);
        FrameworkReport { selected: scheme, reason, profile, outcome }
    }

    /// Runs a specific scheme through the full pipeline (transformation,
    /// table residency, kernels) and maps the outcome back to `dfa`'s
    /// original state ids.
    pub fn run_with(&self, dfa: &Dfa, input: &[u8], scheme: SchemeKind) -> RunOutcome {
        let training = self.training_slice(input);
        let freq = FrequencyProfile::collect(dfa, training);
        let config = self.effective_config(input.len());

        let outcome = match self.layout {
            TableLayout::Transformed => {
                let transformed = TransformedDfa::from_profile(dfa, &freq);
                let hot = DeviceTable::hot_rows_for_device(
                    transformed.dfa(),
                    TableLayout::Transformed,
                    &self.device,
                );
                let table = DeviceTable::transformed(transformed.dfa(), hot);
                let job = Job::new(&self.device, &table, input, config).expect("validated config");
                let mut out = run_scheme(scheme, &job);
                // Map states back to the caller's numbering.
                out.end_state = transformed.to_original(out.end_state);
                for s in &mut out.chunk_ends {
                    *s = transformed.to_original(*s);
                }
                out
            }
            TableLayout::Hashed => {
                let hot = DeviceTable::hot_rows_for_device(dfa, TableLayout::Hashed, &self.device);
                let table = DeviceTable::hashed(dfa, &freq, hot);
                let job = Job::new(&self.device, &table, input, config).expect("validated config");
                run_scheme(scheme, &job)
            }
        };
        outcome
    }

    /// Runs all four GSpecPal schemes and returns their outcomes (used by
    /// the evaluation harness for the Fig 8 comparison).
    pub fn run_all(&self, dfa: &Dfa, input: &[u8]) -> Vec<RunOutcome> {
        SchemeKind::gspecpal_schemes().into_iter().map(|s| self.run_with(dfa, input, s)).collect()
    }

    /// Clamps the chunk count for short inputs so the configuration stays
    /// valid.
    fn effective_config(&self, input_len: usize) -> SchemeConfig {
        let mut c = self.config;
        c.n_chunks = c.n_chunks.min(input_len.max(1));
        c.n_chunks = c.n_chunks.min(self.device.max_threads_per_block as usize);
        c
    }
}

/// What [`GSpecPal::process`] returns: the selected scheme, the offline
/// profile that drove the selection, and the verified run outcome.
#[derive(Clone, Debug)]
pub struct FrameworkReport {
    /// Scheme the decision tree picked.
    pub selected: SchemeKind,
    /// The decision-tree branch that fired, in words.
    pub reason: String,
    /// The offline profile (Table II columns).
    pub profile: SelectorProfile,
    /// The run, with states in the caller's original numbering.
    pub outcome: RunOutcome,
}

impl FrameworkReport {
    /// Final state in the original machine.
    pub fn end_state(&self) -> StateId {
        self.outcome.end_state
    }

    /// Accept decision.
    pub fn accepted(&self) -> bool {
        self.outcome.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::combinators::keyword_dfa;
    use gspecpal_fsm::examples::div7;

    fn small_device() -> DeviceSpec {
        DeviceSpec::test_unit()
    }

    #[test]
    fn framework_end_to_end_on_div7() {
        let d = div7();
        let input: Vec<u8> = b"110101011001011101".repeat(64);
        let fw = GSpecPal::new(small_device())
            .with_config(SchemeConfig { n_chunks: 16, ..SchemeConfig::default() });
        let report = fw.process(&d, &input);
        assert_eq!(report.end_state(), d.run(&input));
        assert_eq!(report.accepted(), d.accepts(&input));
        // div7: non-convergent, spec-4 < 90% → aggressive recovery.
        assert!(
            report.selected == SchemeKind::Rr || report.selected == SchemeKind::Nf,
            "selected {}",
            report.selected
        );
    }

    #[test]
    fn framework_maps_states_back_through_transformation() {
        let d = keyword_dfa(&[b"needle"]).unwrap();
        let input = b"hay hay needle hay ".repeat(50);
        let fw = GSpecPal::new(small_device())
            .with_config(SchemeConfig { n_chunks: 8, ..SchemeConfig::default() });
        for scheme in SchemeKind::gspecpal_schemes() {
            let out = fw.run_with(&d, &input, scheme);
            assert_eq!(out.end_state, d.run(&input), "{scheme}");
            assert_eq!(out.accepted, d.accepts(&input), "{scheme}");
        }
    }

    #[test]
    fn hashed_layout_is_slower_than_transformed() {
        let d = keyword_dfa(&[b"alpha", b"beta", b"gamma"]).unwrap();
        let input = b"plain filler text alpha beta ".repeat(80);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        // Force everything cold-capable: tiny shared memory budget comes from
        // the test device; both layouts share it.
        let fw_t = GSpecPal::new(small_device()).with_config(config);
        let fw_h =
            GSpecPal::new(small_device()).with_config(config).with_layout(TableLayout::Hashed);
        let t = fw_t.run_with(&d, &input, SchemeKind::Sre);
        let h = fw_h.run_with(&d, &input, SchemeKind::Sre);
        assert_eq!(t.end_state, h.end_state);
        assert!(
            h.total_cycles() > t.total_cycles(),
            "hashed {} must exceed transformed {}",
            h.total_cycles(),
            t.total_cycles()
        );
    }

    #[test]
    fn short_inputs_clamp_chunk_count() {
        let d = div7();
        let input = b"1011";
        let fw = GSpecPal::new(small_device());
        let report = fw.process(&d, input);
        assert_eq!(report.end_state(), d.run(input));
    }

    #[test]
    fn run_all_produces_identical_answers() {
        let d = div7();
        let input: Vec<u8> = b"10110101".repeat(32);
        let fw = GSpecPal::new(small_device())
            .with_config(SchemeConfig { n_chunks: 8, ..SchemeConfig::default() });
        let outs = fw.run_all(&d, &input);
        assert_eq!(outs.len(), 4);
        for o in &outs {
            assert_eq!(o.end_state, d.run(&input), "{}", o.scheme);
        }
    }
}
