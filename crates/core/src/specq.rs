//! Ranked speculation queues (`QS_i` in Table I).
//!
//! Each chunk gets a queue of candidate start states ranked by their
//! predicted probability of being the ground truth. During aggressive
//! speculative recovery, multiple threads dequeue from the same chunk's
//! queue concurrently; the queue is therefore a *concurrent* structure on the
//! device (the paper notes "`QS_i` is a concurrent queue to ensure
//! thread-safety"), which the simulator charges as an atomic per dequeue.

use gspecpal_fsm::StateId;
use gspecpal_gpu::ThreadCtx;

/// A concurrent ranked queue of speculative start states for one chunk.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecQueue {
    /// Candidate states, best first, with their predictor frequencies.
    ranked: Vec<(StateId, u32)>,
    /// Dequeue cursor.
    head: usize,
}

impl SpecQueue {
    /// Builds a queue from `(state, frequency)` pairs already ranked
    /// best-first.
    pub fn from_ranked(ranked: Vec<(StateId, u32)>) -> Self {
        debug_assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1), "must be ranked");
        SpecQueue { ranked, head: 0 }
    }

    /// A queue holding a single certain state (chunk 0's "queue" is just the
    /// machine's real start state).
    pub fn certain(state: StateId) -> Self {
        SpecQueue { ranked: vec![(state, 1)], head: 0 }
    }

    /// The best not-yet-dequeued candidate, without consuming it.
    pub fn front(&self) -> Option<StateId> {
        self.ranked.get(self.head).map(|&(s, _)| s)
    }

    /// Dequeues the best remaining candidate, charging one atomic operation
    /// on the device.
    pub fn dequeue(&mut self, ctx: &mut ThreadCtx<'_>) -> Option<StateId> {
        ctx.atomic(1);
        let s = self.ranked.get(self.head).map(|&(s, _)| s);
        if s.is_some() {
            self.head += 1;
        }
        s
    }

    /// Host-side dequeue without device cost (used by host-side reference
    /// engines and tests).
    pub fn dequeue_host(&mut self) -> Option<StateId> {
        let s = self.ranked.get(self.head).map(|&(s, _)| s);
        if s.is_some() {
            self.head += 1;
        }
        s
    }

    /// Remaining (not yet dequeued) candidates.
    pub fn remaining(&self) -> usize {
        self.ranked.len() - self.head
    }

    /// Total candidates the predictor produced.
    pub fn initial_len(&self) -> usize {
        self.ranked.len()
    }

    /// The rank (0-based) of `state` in the full queue, if present.
    pub fn rank_of(&self, state: StateId) -> Option<usize> {
        self.ranked.iter().position(|&(s, _)| s == state)
    }

    /// All candidates in rank order (including dequeued ones).
    pub fn candidates(&self) -> impl Iterator<Item = StateId> + '_ {
        self.ranked.iter().map(|&(s, _)| s)
    }

    /// Resets the dequeue cursor (a fresh kernel launch re-reads the queue).
    pub fn reset(&mut self) {
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_gpu::{launch, DeviceSpec, RoundKernel, RoundOutcome};

    #[test]
    fn dequeue_host_walks_rank_order() {
        let mut q = SpecQueue::from_ranked(vec![(5, 10), (2, 7), (9, 1)]);
        assert_eq!(q.front(), Some(5));
        assert_eq!(q.dequeue_host(), Some(5));
        assert_eq!(q.dequeue_host(), Some(2));
        assert_eq!(q.remaining(), 1);
        assert_eq!(q.dequeue_host(), Some(9));
        assert_eq!(q.dequeue_host(), None);
    }

    #[test]
    fn rank_lookup() {
        let q = SpecQueue::from_ranked(vec![(5, 10), (2, 7), (9, 1)]);
        assert_eq!(q.rank_of(5), Some(0));
        assert_eq!(q.rank_of(9), Some(2));
        assert_eq!(q.rank_of(42), None);
    }

    #[test]
    fn certain_queue() {
        let mut q = SpecQueue::certain(3);
        assert_eq!(q.initial_len(), 1);
        assert_eq!(q.dequeue_host(), Some(3));
        assert_eq!(q.dequeue_host(), None);
        q.reset();
        assert_eq!(q.front(), Some(3));
    }

    #[test]
    fn device_dequeue_charges_atomic() {
        struct K {
            q: SpecQueue,
            got: Vec<Option<StateId>>,
        }
        impl RoundKernel for K {
            fn round(
                &mut self,
                _tid: usize,
                ctx: &mut gspecpal_gpu::ThreadCtx<'_>,
            ) -> RoundOutcome {
                let s = self.q.dequeue(ctx);
                self.got.push(s);
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        let mut k = K { q: SpecQueue::from_ranked(vec![(1, 2), (2, 1)]), got: vec![] };
        let stats = launch(&DeviceSpec::test_unit(), 3, &mut k);
        assert_eq!(stats.atomics, 3);
        assert_eq!(k.got, vec![Some(1), Some(2), None]);
    }
}
