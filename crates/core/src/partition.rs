//! Input partitioning (Algorithm 2 line 2: `Π = partition(in, N)`).

use std::ops::Range;

/// Splits `len` bytes into `n` contiguous chunks of near-equal size; the
/// first `len % n` chunks get one extra byte. Every byte belongs to exactly
/// one chunk and chunk order follows input order.
pub fn partition(len: usize, n: usize) -> Vec<Range<usize>> {
    assert!(n > 0, "need at least one chunk");
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0usize;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_input_exactly() {
        for (len, n) in [(100, 7), (8, 8), (13, 4), (1000, 1), (5, 5)] {
            let p = partition(len, n);
            assert_eq!(p.len(), n);
            assert_eq!(p[0].start, 0);
            assert_eq!(p[n - 1].end, len);
            for w in p.windows(2) {
                assert_eq!(w[0].end, w[1].start, "contiguous");
            }
        }
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        let p = partition(103, 10);
        let sizes: Vec<usize> = p.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 103);
    }

    #[test]
    fn empty_input_gives_empty_chunks() {
        let p = partition(0, 4);
        assert!(p.iter().all(|r| r.is_empty()));
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_chunks_panics() {
        partition(10, 0);
    }
}
