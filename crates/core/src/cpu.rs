//! Multicore speculative FSM parallelization on real threads.
//!
//! SRE was originally designed for multicores (\[21\], §III-A); this module
//! provides that lineage substrate: a host-parallel speculative engine using
//! crossbeam scoped threads. It runs the same three phases — lookback
//! prediction, parallel speculative execution, verification & recovery — on
//! actual CPU cores, and serves as an independent cross-check of the
//! simulated schemes (its verified output must be identical).

use crossbeam::thread;
use gspecpal_fsm::{Dfa, StateId};
use parking_lot::Mutex;

use crate::partition::partition;
use crate::predict::lookback_queue;

/// Result of a multicore speculative run.
#[derive(Clone, Debug)]
pub struct CpuRunResult {
    /// Verified end state of the whole input.
    pub end_state: StateId,
    /// Accept decision.
    pub accepted: bool,
    /// Verified end state per chunk.
    pub chunk_ends: Vec<StateId>,
    /// Number of chunks whose speculation was wrong and required
    /// re-execution.
    pub recoveries: usize,
    /// Wall time of the parallel phase.
    pub parallel_time: std::time::Duration,
}

/// Runs `dfa` over `input` with `n_threads` speculative workers (spec-1 +
/// sequential verification/recovery — Algorithm 2 on a multicore).
pub fn run_speculative(dfa: &Dfa, input: &[u8], n_threads: usize) -> CpuRunResult {
    assert!(n_threads > 0, "need at least one thread");
    let n = n_threads.min(input.len().max(1));
    let chunks = partition(input.len(), n);

    // Phase 1: prediction (host-side, trivially parallelizable; done inline).
    let starts: Vec<StateId> = chunks
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == 0 {
                dfa.start()
            } else {
                let lo = c.start.saturating_sub(2);
                lookback_queue(dfa, &input[lo..c.start]).front().expect("non-empty queue")
            }
        })
        .collect();

    // Phase 2: parallel speculative execution on real threads.
    let results: Mutex<Vec<Option<(StateId, StateId)>>> = Mutex::new(vec![None; n]);
    let t0 = std::time::Instant::now();
    thread::scope(|s| {
        for (i, chunk) in chunks.iter().enumerate() {
            let starts = &starts;
            let results = &results;
            let chunk = chunk.clone();
            s.spawn(move |_| {
                let st = starts[i];
                let end = dfa.run_from(st, &input[chunk]);
                results.lock()[i] = Some((st, end));
            });
        }
    })
    .expect("no worker panicked");
    let parallel_time = t0.elapsed();
    let records: Vec<(StateId, StateId)> =
        results.into_inner().into_iter().map(|r| r.expect("every chunk ran")).collect();

    // Phase 3: sequential verification and recovery (Algorithm 2 lines 8-14).
    let mut chunk_ends = Vec::with_capacity(n);
    let mut recoveries = 0usize;
    let mut end_p = records[0].1;
    chunk_ends.push(end_p);
    for i in 1..n {
        let (spec_start, spec_end) = records[i];
        end_p = if spec_start == end_p {
            spec_end
        } else {
            recoveries += 1;
            dfa.run_from(end_p, &input[chunks[i].clone()])
        };
        chunk_ends.push(end_p);
    }

    CpuRunResult {
        end_state: end_p,
        accepted: dfa.is_accepting(end_p),
        chunk_ends,
        recoveries,
        parallel_time,
    }
}

/// Runs `dfa` over `input` with SRE-style recovery on real threads
/// (Algorithm 3's multicore origin \[21\]): after the speculative pass, every
/// thread whose chunk is still unverified re-executes it from the end state
/// forwarded by its predecessor, in parallel rounds, until the verified
/// frontier covers the whole input. On convergent machines one round fixes
/// nearly everything; on permutation machines it degenerates to the
/// sequential walk — the same dynamics as the simulated kernels.
pub fn run_speculative_sre(dfa: &Dfa, input: &[u8], n_threads: usize) -> CpuRunResult {
    assert!(n_threads > 0, "need at least one thread");
    let n = n_threads.min(input.len().max(1));
    let chunks = partition(input.len(), n);

    let starts: Vec<StateId> = chunks
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == 0 {
                dfa.start()
            } else {
                let lo = c.start.saturating_sub(2);
                lookback_queue(dfa, &input[lo..c.start]).front().expect("non-empty queue")
            }
        })
        .collect();

    let t0 = std::time::Instant::now();
    // Records per chunk: (start, end) pairs from execution and recoveries.
    let records: Vec<Mutex<Vec<(StateId, StateId)>>> =
        (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let run_round = |jobs: &[(usize, StateId)]| {
        thread::scope(|s| {
            for &(cid, st) in jobs {
                let records = &records;
                let chunk = chunks[cid].clone();
                s.spawn(move |_| {
                    let end = dfa.run_from(st, &input[chunk]);
                    records[cid].lock().push((st, end));
                });
            }
        })
        .expect("no worker panicked");
    };

    // Round 0: speculative execution of every chunk.
    let initial: Vec<(usize, StateId)> = starts.iter().copied().enumerate().collect();
    run_round(&initial);

    // Verification with parallel speculative recovery rounds.
    let mut verified_end = records[0].lock()[0].1;
    let mut chunk_ends = vec![verified_end];
    let mut recoveries = 0usize;
    let mut f = 1usize;
    while f < n {
        // Walk as far as existing records allow.
        while f < n {
            let hit = records[f].lock().iter().find(|r| r.0 == verified_end).map(|r| r.1);
            match hit {
                Some(end) => {
                    verified_end = end;
                    chunk_ends.push(end);
                    f += 1;
                }
                None => break,
            }
        }
        if f >= n {
            break;
        }
        // Must-be-done recovery at the frontier plus one speculative
        // recovery per rear chunk from its predecessor's current end.
        let mut jobs = vec![(f, verified_end)];
        for cid in (f + 1)..n {
            let pred_end = records[cid - 1].lock().last().map(|r| r.1);
            if let Some(e) = pred_end {
                if !records[cid].lock().iter().any(|r| r.0 == e) {
                    jobs.push((cid, e));
                }
            }
        }
        recoveries += jobs.len();
        run_round(&jobs);
    }

    CpuRunResult {
        end_state: verified_end,
        accepted: dfa.is_accepting(verified_end),
        chunk_ends,
        recoveries,
        parallel_time: t0.elapsed(),
    }
}

/// Runs `dfa` over `input` with RR-style aggressive recovery on real
/// threads: like [`run_speculative_sre`], but when the frontier stalls, the
/// already-verified workers are reassigned round-robin over rear chunks and
/// execute the next states of those chunks' speculation queues (Algorithm 4
/// on a multicore). On machines that defeat end-state forwarding this is
/// what keeps the thread pool busy.
pub fn run_speculative_rr(dfa: &Dfa, input: &[u8], n_threads: usize) -> CpuRunResult {
    assert!(n_threads > 0, "need at least one thread");
    let n = n_threads.min(input.len().max(1));
    let chunks = partition(input.len(), n);

    // Ranked speculation queues (QS_i), dequeued as recoveries are seeded.
    let mut queues: Vec<Vec<StateId>> = chunks
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == 0 {
                vec![dfa.start()]
            } else {
                let lo = c.start.saturating_sub(2);
                lookback_queue(dfa, &input[lo..c.start]).candidates().collect()
            }
        })
        .collect();
    let starts: Vec<StateId> = queues.iter_mut().map(|q| q.remove(0)).collect();

    let t0 = std::time::Instant::now();
    let records: Vec<Mutex<Vec<(StateId, StateId)>>> =
        (0..n).map(|_| Mutex::new(Vec::new())).collect();
    let run_round = |jobs: &[(usize, StateId)]| {
        thread::scope(|s| {
            for &(cid, st) in jobs {
                let records = &records;
                let chunk = chunks[cid].clone();
                s.spawn(move |_| {
                    let end = dfa.run_from(st, &input[chunk]);
                    records[cid].lock().push((st, end));
                });
            }
        })
        .expect("no worker panicked");
    };

    // Speculative execution of every chunk.
    let initial: Vec<(usize, StateId)> = starts.iter().copied().enumerate().collect();
    run_round(&initial);

    let mut verified_end = records[0].lock()[0].1;
    let mut chunk_ends = vec![verified_end];
    let mut recoveries = 0usize;
    let mut f = 1usize;
    while f < n {
        while f < n {
            let hit = records[f].lock().iter().find(|r| r.0 == verified_end).map(|r| r.1);
            match hit {
                Some(end) => {
                    verified_end = end;
                    chunk_ends.push(end);
                    f += 1;
                }
                None => break,
            }
        }
        if f >= n {
            break;
        }
        // Must-be-done recovery at the frontier; every other worker seeds a
        // rear chunk round-robin from its queue.
        let mut jobs = vec![(f, verified_end)];
        let avail: Vec<usize> = ((f + 1)..n).collect();
        if !avail.is_empty() {
            for w in 0..n.saturating_sub(1) {
                let cid = avail[w % avail.len()];
                if let Some(st) = queues[cid].first().copied() {
                    queues[cid].remove(0);
                    if !records[cid].lock().iter().any(|r| r.0 == st) {
                        jobs.push((cid, st));
                    }
                }
            }
        }
        recoveries += jobs.len();
        run_round(&jobs);
    }

    CpuRunResult {
        end_state: verified_end,
        accepted: dfa.is_accepting(verified_end),
        chunk_ends,
        recoveries,
        parallel_time: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::combinators::keyword_dfa;
    use gspecpal_fsm::examples::div7;

    #[test]
    fn cpu_engine_is_exact_on_div7() {
        let d = div7();
        let input: Vec<u8> = b"110101011001".repeat(100);
        let r = run_speculative(&d, &input, 8);
        assert_eq!(r.end_state, d.run(&input));
        assert_eq!(r.accepted, d.accepts(&input));
        // div7 defeats spec-1 prediction most of the time.
        assert!(r.recoveries > 0);
    }

    #[test]
    fn cpu_engine_is_exact_on_keywords() {
        let d = keyword_dfa(&[b"abc", b"xyz"]).unwrap();
        let input = b"lots of abc junk and xyz here ".repeat(64);
        let r = run_speculative(&d, &input, 16);
        assert_eq!(r.end_state, d.run(&input));
        // Convergent machine: spec-1 prediction is nearly perfect.
        assert!(r.recoveries <= 2, "recoveries = {}", r.recoveries);
    }

    #[test]
    fn chunk_ends_match_sequential_prefixes() {
        let d = div7();
        let input: Vec<u8> = b"10110101".repeat(32);
        let n = 8;
        let r = run_speculative(&d, &input, n);
        let chunks = partition(input.len(), n);
        let mut s = d.start();
        for (i, c) in chunks.into_iter().enumerate() {
            s = d.run_from(s, &input[c]);
            assert_eq!(r.chunk_ends[i], s, "chunk {i}");
        }
    }

    #[test]
    fn sre_engine_is_exact_on_both_machine_kinds() {
        let d = div7();
        let input: Vec<u8> = b"110101011001".repeat(80);
        let r = run_speculative_sre(&d, &input, 8);
        assert_eq!(r.end_state, d.run(&input));

        let kw = keyword_dfa(&[b"virus", b"worm"]).unwrap();
        let input2 = b"data virus data worm data ".repeat(40);
        let r2 = run_speculative_sre(&kw, &input2, 8);
        assert_eq!(r2.end_state, kw.run(&input2));
        assert_eq!(r2.accepted, kw.accepts(&input2));
    }

    #[test]
    fn sre_engine_recovers_in_few_rounds_on_convergent_machines() {
        // Convergent machine: the one speculative wave fixes almost all
        // chunks, so SRE needs far fewer recoveries than the number of
        // mispredicted chunks the naive engine re-executes.
        let d = div7(); // non-convergent: SRE ~ sequential walk
        let kw = keyword_dfa(&[b"needle"]).unwrap(); // convergent
        let bits: Vec<u8> = b"10110100".repeat(100);
        let text = b"haystack haystack needle hay ".repeat(28);

        let sre_conv = run_speculative_sre(&kw, &text, 16);
        let naive_conv = run_speculative(&kw, &text, 16);
        assert_eq!(sre_conv.end_state, naive_conv.end_state);

        let sre_div = run_speculative_sre(&d, &bits, 16);
        assert_eq!(sre_div.end_state, d.run(&bits));
        // div7 defeats end forwarding: recovery count is on the order of
        // the chunk count (≥ half), while the convergent machine needs at
        // most a couple of rounds' worth.
        assert!(sre_div.recoveries >= 8, "div7 recoveries = {}", sre_div.recoveries);
    }

    #[test]
    fn sre_engine_chunk_ends_are_true_prefixes() {
        let d = div7();
        let input: Vec<u8> = b"1011010".repeat(64);
        let n = 8;
        let r = run_speculative_sre(&d, &input, n);
        let chunks = partition(input.len(), n);
        let mut s = d.start();
        for (i, c) in chunks.into_iter().enumerate() {
            s = d.run_from(s, &input[c]);
            assert_eq!(r.chunk_ends[i], s, "chunk {i}");
        }
    }

    #[test]
    fn rr_engine_is_exact_and_covers_deep_queues() {
        let d = div7();
        let input: Vec<u8> = b"110101011001011".repeat(120);
        let r = run_speculative_rr(&d, &input, 12);
        assert_eq!(r.end_state, d.run(&input));
        assert_eq!(r.accepted, d.accepts(&input));
        // The seeding drains queue entries that SRE never touches.
        let sre = run_speculative_sre(&d, &input, 12);
        assert_eq!(sre.end_state, r.end_state);
    }

    #[test]
    fn rr_engine_chunk_ends_are_true_prefixes() {
        let d = keyword_dfa(&[b"worm", b"virus"]).unwrap();
        let input = b"scan worm scan virus scan ".repeat(30);
        let n = 6;
        let r = run_speculative_rr(&d, &input, n);
        let chunks = partition(input.len(), n);
        let mut s = d.start();
        for (i, c) in chunks.into_iter().enumerate() {
            s = d.run_from(s, &input[c]);
            assert_eq!(r.chunk_ends[i], s, "chunk {i}");
        }
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let d = div7();
        let input = b"11010";
        let r = run_speculative(&d, input, 1);
        assert_eq!(r.end_state, d.run(input));
        assert_eq!(r.recoveries, 0);
    }

    #[test]
    fn more_threads_than_bytes_is_clamped() {
        let d = div7();
        let input = b"101";
        let r = run_speculative(&d, input, 64);
        assert_eq!(r.end_state, d.run(input));
    }
}
