//! Retry, backoff, and graceful degradation over injected faults.
//!
//! The fault plan ([`gspecpal_gpu::FaultPlan`]) only *decides* where faults
//! strike; this module prices what recovering from them costs and charges it
//! — deterministically — onto the affected blocks:
//!
//! * a **transient abort** wastes the struck fraction of the attempt, then
//!   the block retries after a capped exponential backoff
//!   ([`gspecpal_gpu::backoff_cycles`]);
//! * a **watchdog kill** wastes the full budget per attempt; since a block's
//!   runtime is deterministic, an over-budget block refails every retry and
//!   always ends up degraded;
//! * a block that **exhausts its retry budget** (or whose misspeculation
//!   rate crosses [`RecoveryConfig::misspec_degrade_permille`]) is
//!   *degraded*: its chunk window is re-executed sequentially by one thread
//!   from the block's incoming state — the naive walk, always exact — and
//!   that walk's full cost lands in [`gspecpal_gpu::Phase::Recovery`].
//!
//! The overlay never alters what a launch *computed* — the underlying
//! kernels always ran to completion and the degraded re-exec is exact, so
//! end states stay bit-identical to the fault-free run. It only adds cycles,
//! and it adds them block-locally (then re-applies the wave model via
//! [`gspecpal_gpu::GridStats::reschedule`]), so the per-phase cycle
//! partition and cross-pool-size determinism both survive.

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    backoff_cycles, launch, BlockRequirements, FaultDomain, FaultPlan, GridStats, KernelStats,
    Phase, RoundKernel, RoundOutcome, ThreadCtx,
};

use crate::schemes::Job;

/// Retry/backoff/degradation policy for blocks struck by injected faults.
///
/// With no fault plan on the job and the misspeculation ladder disabled
/// (the default), this config is inert: nothing consults it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Re-attempts a block gets after an abort or watchdog kill before it is
    /// degraded to a sequential re-exec. 0 degrades on the first fault.
    pub max_retries: u32,
    /// Backoff before retry `i` (0-based): `min(base << i, cap)` cycles.
    pub backoff_base_cycles: u64,
    /// Cap of the exponential backoff.
    pub backoff_cap_cycles: u64,
    /// Degrade a verification block whose misspeculation rate — scan misses
    /// per 1000 checks — reaches this threshold, even without injected
    /// faults. Values above 1000 (the default) disable the ladder.
    pub misspec_degrade_permille: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_retries: 3,
            backoff_base_cycles: 64,
            backoff_cap_cycles: 1024,
            misspec_degrade_permille: u32::MAX,
        }
    }
}

impl RecoveryConfig {
    /// Whether the misspeculation degradation ladder is active.
    pub fn misspec_ladder_enabled(&self) -> bool {
        self.misspec_degrade_permille <= 1000
    }

    /// Backoff before retry `attempt` under this config.
    pub fn backoff(&self, attempt: u32) -> u64 {
        backoff_cycles(self.backoff_base_cycles, self.backoff_cap_cycles, attempt)
    }
}

/// Per-block context the recovery overlay needs: where the block's chunk
/// window sits in the input and which state it entered from (for pricing the
/// degraded sequential re-exec), plus its verification check/match counts
/// (for the misspeculation ladder; zero for exec-phase blocks, which have no
/// checks).
pub(crate) struct BlockRecoveryCtx {
    /// Input byte range covered by the block's chunks.
    pub window: Range<usize>,
    /// State the block's first chunk was entered from (speculated or
    /// verified — either prices the same walk over the same bytes).
    pub start: StateId,
    /// Verification scans the block performed.
    pub checks: u64,
    /// Scans that matched a record.
    pub matches: u64,
}

/// Applies the fault overlay to every block of a finished grid launch and
/// re-applies the wave model. A no-op without a fault plan or an active
/// misspeculation ladder, so fault-free runs are byte-identical to builds
/// without this module.
pub(crate) fn apply_grid_recovery(
    job: &Job<'_>,
    domain: FaultDomain,
    grid: &mut GridStats,
    ctxs: &[BlockRecoveryCtx],
) {
    let rc = job.config.recovery;
    let plan = job.config.faults.unwrap_or_default();
    if !plan.any_faults() && !rc.misspec_ladder_enabled() {
        return;
    }
    debug_assert_eq!(grid.blocks.len(), ctxs.len(), "one recovery ctx per block");
    let mut mutated = false;
    for (b, (stats, cx)) in grid.blocks.iter_mut().zip(ctxs).enumerate() {
        mutated |= overlay_block(job, &plan, &rc, domain, b, stats, cx);
    }
    if mutated {
        grid.reschedule();
    }
}

/// What the retry/backoff ladder decided for one struck block.
pub(crate) struct FaultCharges {
    /// Cycles wasted on killed/aborted attempts and backoff waits.
    pub lost: u64,
    /// Retried launches.
    pub retries: u64,
    /// Watchdog kills.
    pub kills: u64,
    /// The block exhausted its retry budget and must fall back to its
    /// scheme's bottom rung.
    pub degraded: bool,
}

/// Prices the retry/backoff ladder for one `base_cycles`-long block against
/// `plan`: watchdog kills (a deterministic block refails every retry),
/// transient aborts, exponential backoff between attempts, and whether the
/// retry budget ran out. Returns `None` for an unstruck block. This is the
/// scheme-independent half of the overlay; what degradation *costs* is the
/// scheme's business (a sequential re-walk for the speculative schemes, a
/// mapping re-derivation for SFA).
pub(crate) fn fault_charges(
    plan: &FaultPlan,
    rc: &RecoveryConfig,
    domain: FaultDomain,
    block: usize,
    base_cycles: u64,
) -> Option<FaultCharges> {
    let mut lost = 0u64;
    let mut retries = 0u64;
    let mut kills = 0u64;
    let mut degraded = false;

    if let Some(err) = plan.watchdog_violation(block, base_cycles) {
        debug_assert!(matches!(err, gspecpal_gpu::LaunchError::WatchdogExpired { .. }));
        // The block's runtime is deterministic, so every attempt trips the
        // same watchdog: charge the budget per killed attempt, back off
        // between them, and degrade once retries run out.
        let mut attempt = 0u32;
        loop {
            kills += 1;
            lost += plan.watchdog_cycles;
            if attempt >= rc.max_retries {
                degraded = true;
                break;
            }
            lost += rc.backoff(attempt);
            retries += 1;
            attempt += 1;
        }
    } else if plan.abort_permille > 0 {
        let mut attempt = 0u32;
        loop {
            if !plan.aborts(domain, block, attempt) {
                break; // This attempt runs to completion.
            }
            lost += base_cycles * plan.abort_point_permille(domain, block, attempt) / 1000;
            if attempt >= rc.max_retries {
                degraded = true;
                break;
            }
            lost += rc.backoff(attempt);
            retries += 1;
            attempt += 1;
        }
    }

    if lost == 0 && !degraded {
        return None;
    }
    Some(FaultCharges { lost, retries, kills, degraded })
}

/// Charges one block's fault-recovery cost onto its stats. Returns whether
/// anything was charged.
fn overlay_block(
    job: &Job<'_>,
    plan: &FaultPlan,
    rc: &RecoveryConfig,
    domain: FaultDomain,
    block: usize,
    stats: &mut KernelStats,
    cx: &BlockRecoveryCtx,
) -> bool {
    let charges = fault_charges(plan, rc, domain, block, stats.cycles);
    let (lost, retries, kills, mut degraded) = match charges {
        Some(c) => (c.lost, c.retries, c.kills, c.degraded),
        None => (0, 0, 0, false),
    };

    if !degraded && rc.misspec_ladder_enabled() && cx.checks > 0 {
        let misses = cx.checks - cx.matches;
        degraded = misses * 1000 >= cx.checks * u64::from(rc.misspec_degrade_permille);
    }

    if lost == 0 && !degraded {
        return false;
    }

    stats.cycles += lost;
    stats.profile.get_mut(Phase::Recovery).cycles += lost;
    stats.recovery_cycles += lost;
    stats.fault_cycles += lost;
    stats.fault_retries += retries;
    stats.fault_watchdog_kills += kills;
    if degraded {
        let walk = degraded_walk(job, cx);
        stats.fault_cycles += walk.cycles;
        stats.fault_degraded_blocks += 1;
        stats.merge_sequential(&walk);
    }
    true
}

/// The degradation ladder's bottom rung: one thread re-executes the block's
/// whole chunk window sequentially from its incoming state. Exact by
/// construction (it is the naive walk), and every cycle lands in
/// [`Phase::Recovery`].
struct DegradedWalk<'a> {
    job: &'a Job<'a>,
    window: Range<usize>,
    start: StateId,
}

impl RoundKernel for DegradedWalk<'_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.vr_requirements(threads)
    }

    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let t0 = ctx.cycles();
        let _ = self.job.table.run_chunk_with(
            ctx,
            self.job.input,
            self.window.clone(),
            self.start,
            self.job.config.count_matches,
        );
        ctx.credit_recovery(t0);
        RoundOutcome::RECOVERING
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }

    fn phase(&self) -> Phase {
        Phase::Recovery
    }
}

fn degraded_walk(job: &Job<'_>, cx: &BlockRecoveryCtx) -> KernelStats {
    let mut kernel = DegradedWalk { job, window: cx.window.clone(), start: cx.start };
    launch(job.spec, 1, &mut kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeConfig;
    use crate::table::DeviceTable;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::{launch_blocks_auto, DeviceSpec};

    fn job_fixture() -> (gspecpal_fsm::Dfa, DeviceSpec, Vec<u8>) {
        (div7(), DeviceSpec::test_unit(), b"1011010110101101".repeat(16).to_vec())
    }

    /// Fixed-cost block kernel for overlay tests.
    struct Busy(u64);
    impl RoundKernel for Busy {
        fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
            ctx.alu(self.0);
            RoundOutcome::ACTIVE
        }
        fn after_sync(&mut self, _round: u64) -> bool {
            false
        }
    }

    fn overlay_fixture(
        faults: Option<gspecpal_gpu::FaultPlan>,
        recovery: RecoveryConfig,
    ) -> GridStats {
        let (d, spec, input) = job_fixture();
        let table = DeviceTable::transformed(&d, d.n_states());
        let config = SchemeConfig { n_chunks: 8, faults, recovery, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let mut blocks: Vec<(usize, Busy)> = (0..4).map(|_| (2usize, Busy(50))).collect();
        let mut grid = launch_blocks_auto(job.spec, &mut blocks);
        let ctxs: Vec<BlockRecoveryCtx> = (0..4)
            .map(|b| BlockRecoveryCtx {
                window: (b * 32)..((b + 1) * 32),
                start: 0,
                checks: 0,
                matches: 0,
            })
            .collect();
        apply_grid_recovery(&job, FaultDomain::Exec, &mut grid, &ctxs);
        grid
    }

    #[test]
    fn no_plan_is_a_no_op() {
        let clean = overlay_fixture(None, RecoveryConfig::default());
        let faulted = overlay_fixture(None, RecoveryConfig::default());
        assert_eq!(clean.cycles, faulted.cycles);
        assert!(clean.blocks.iter().all(|b| b.fault_cycles == 0));
    }

    #[test]
    fn watchdog_smaller_than_one_round_degrades_every_block() {
        // Budget of 1 cycle: below any block's first round, so every block
        // is killed max_retries+1 times and then degraded.
        let plan = gspecpal_gpu::FaultPlan { watchdog_cycles: 1, ..Default::default() };
        let rc = RecoveryConfig { max_retries: 2, ..RecoveryConfig::default() };
        let grid = overlay_fixture(Some(plan), rc);
        for b in &grid.blocks {
            assert_eq!(b.fault_watchdog_kills, 3, "initial attempt + 2 retries all killed");
            assert_eq!(b.fault_retries, 2);
            assert_eq!(b.fault_degraded_blocks, 1);
            assert!(b.fault_cycles > 0);
            assert_eq!(b.profile.total_cycles(), b.cycles, "partition survives the overlay");
        }
    }

    #[test]
    fn zero_retry_budget_degrades_immediately() {
        let plan = gspecpal_gpu::FaultPlan { watchdog_cycles: 1, ..Default::default() };
        let rc = RecoveryConfig { max_retries: 0, ..RecoveryConfig::default() };
        let grid = overlay_fixture(Some(plan), rc);
        for b in &grid.blocks {
            assert_eq!(b.fault_watchdog_kills, 1, "one kill, no retries");
            assert_eq!(b.fault_retries, 0);
            assert_eq!(b.fault_degraded_blocks, 1);
        }
    }

    #[test]
    fn overlay_is_deterministic_and_only_adds_cycles() {
        let plan = gspecpal_gpu::FaultPlan::chaos(99, 400);
        let rc = RecoveryConfig::default();
        let clean = overlay_fixture(None, rc);
        let a = overlay_fixture(Some(plan), rc);
        let b = overlay_fixture(Some(plan), rc);
        assert_eq!(a.cycles, b.cycles, "same plan, same overlay");
        assert!(a.cycles >= clean.cycles);
        for (f, c) in a.blocks.iter().zip(&clean.blocks) {
            assert!(f.cycles >= c.cycles);
            assert_eq!(f.profile.total_cycles(), f.cycles);
        }
    }
}
