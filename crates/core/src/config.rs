//! Scheme and framework configuration.

use gspecpal_gpu::FaultPlan;

use crate::recovery::RecoveryConfig;

/// How cross-block seams are resolved after the per-block phases finish.
///
/// Blocks speculate their incoming state from the predictor; when a block's
/// true incoming state (the previous block's verified end) disagrees, the
/// boundary chunks must be re-walked. The sequential policy walks the seams
/// left to right — O(blocks) dependent launches. The tree policy composes
/// seams pair-wise in log2(blocks) rounds, re-resolving only the seams that
/// actually mismatched, so stitch time grows logarithmically in the block
/// count (the multi-block analogue of PM's tree merge).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StitchPolicy {
    /// Left-to-right seam walk; one dependent launch per block boundary.
    Sequential,
    /// Pair-wise tree stitch: log2(blocks) rounds of concurrent seam checks.
    #[default]
    Tree,
}

/// Parameters shared by all parallel schemes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeConfig {
    /// Number of chunks = number of GPU threads (`N` in Table I). The paper's
    /// Table III active-thread counts imply N = 256.
    pub n_chunks: usize,
    /// Number of speculative transition paths per thread in PM (`spec-k`).
    /// The paper's baseline is spec-4.
    pub spec_k: usize,
    /// Register budget (record slots) for `VR_i^others` — recovery records
    /// received from other threads (§IV-C, swept in Fig 7). 16 is the
    /// empirical best in the paper.
    pub vr_others_registers: usize,
    /// Register budget for `VR_i^end` — records produced by the owning
    /// thread itself (fixed to 16 in the paper's experiments).
    pub vr_end_registers: usize,
    /// How many lookback bytes the predictor uses (the paper uses
    /// all-state lookback-2).
    pub lookback: usize,
    /// Count accepting-state visits while executing (match reporting for
    /// search DFAs). The paper's setting treats the per-step output function
    /// φ as void (§II-A) and only reports the final accept decision; with
    /// this flag the φ of pattern-matching workloads — "report a match at
    /// every accepting visit" — is folded into every speculative path and
    /// recovery at one extra ALU op per transition, and the verified total
    /// appears in `RunOutcome::match_count`.
    pub count_matches: bool,
    /// How many *speculative* (non-frontier) recoveries each rear thread may
    /// execute from forwarded end states — the order of the "higher-order
    /// speculation" \[21\] that SRE generalizes. 1 reproduces the paper's SRE
    /// behaviour (one immediate speculative recovery per thread); 0 disables
    /// end-state forwarding entirely (recovery degenerates to the naive
    /// sequential walk); larger values re-speculate every time the forwarded
    /// state changes.
    pub spec_recovery_budget: u32,
    /// How cross-block seams are stitched once every block has verified its
    /// own chunks. Defaults to the parallel tree stitch; `Sequential`
    /// reproduces the original left-to-right walk (and is what the
    /// differential harness cross-checks the tree against).
    pub stitch: StitchPolicy,
    /// Deterministic fault plan injected into this job's kernel launches and
    /// record stores (`None` runs fault-free — the default). Faults never
    /// change results, only cost: see [`crate::recovery`].
    pub faults: Option<FaultPlan>,
    /// Retry/backoff/degradation policy applied when injected faults strike
    /// or the misspeculation ladder trips. Inert at its defaults without a
    /// fault plan.
    pub recovery: RecoveryConfig,
}

impl Default for SchemeConfig {
    fn default() -> Self {
        SchemeConfig {
            n_chunks: 256,
            spec_k: 4,
            vr_others_registers: 16,
            vr_end_registers: 16,
            lookback: 2,
            count_matches: false,
            spec_recovery_budget: 1,
            stitch: StitchPolicy::Tree,
            faults: None,
            recovery: RecoveryConfig::default(),
        }
    }
}

impl SchemeConfig {
    /// Config with a different chunk count.
    pub fn with_chunks(n_chunks: usize) -> Self {
        SchemeConfig { n_chunks, ..SchemeConfig::default() }
    }

    /// Validates the configuration against an input length.
    pub fn validate(&self, input_len: usize) -> Result<(), crate::error::CoreError> {
        use crate::error::CoreError;
        let positive = |field: &'static str, v: usize| {
            if v == 0 {
                Err(CoreError::InvalidConfig { field, problem: "must be positive".into() })
            } else {
                Ok(())
            }
        };
        positive("n_chunks", self.n_chunks)?;
        positive("spec_k", self.spec_k)?;
        positive("vr_end_registers", self.vr_end_registers)?;
        positive("lookback", self.lookback)?;
        if input_len == 0 {
            return Err(CoreError::EmptyInput { n_chunks: self.n_chunks });
        }
        if self.n_chunks > input_len {
            return Err(CoreError::TooManyChunks { n_chunks: self.n_chunks, input_len });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SchemeConfig::default();
        assert_eq!(c.n_chunks, 256);
        assert_eq!(c.spec_k, 4);
        assert_eq!(c.vr_others_registers, 16);
        assert_eq!(c.lookback, 2);
        assert_eq!(c.stitch, StitchPolicy::Tree);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = SchemeConfig::default();
        assert!(c.validate(1 << 20).is_ok());
        assert!(c.validate(10).is_err(), "more chunks than bytes");
        c.n_chunks = 0;
        assert!(c.validate(1 << 20).is_err());
        let c = SchemeConfig { spec_k: 0, ..SchemeConfig::default() };
        assert!(c.validate(1 << 20).is_err());
    }

    #[test]
    fn empty_input_is_a_structured_error() {
        use crate::error::CoreError;
        let c = SchemeConfig::default();
        assert_eq!(c.validate(0), Err(CoreError::EmptyInput { n_chunks: 256 }));
    }
}
