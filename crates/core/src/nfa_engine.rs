//! Device NFA execution: state-level parallelism (Algorithm 1, lines 9-10).
//!
//! NFA engines are the traditional GPU approach (§II-B, \[16\]\[17\]\[7\]): one
//! thread block cooperates on one stream, and in each step the *active
//! state set* is partitioned across threads, every thread advancing its
//! share of states. Memory-efficient (no subset-construction blowup) but
//! per-character work scales with the active-set size — the reason the
//! paper argues DFAs (exactly one lookup per character) are the right
//! representation for latency, and what this module lets you measure.

use gspecpal_fsm::{Nfa, StateId};
use gspecpal_gpu::{launch, DeviceSpec, KernelStats, RoundKernel, RoundOutcome, ThreadCtx};

use crate::table::REGION_INPUT;

/// Result of running an NFA over a stream on the device.
#[derive(Clone, Debug)]
pub struct NfaRunOutcome {
    /// The active set after the last byte (empty = the machine died).
    pub final_set: Vec<StateId>,
    /// Whether any state in the final set accepts.
    pub accepted: bool,
    /// Kernel statistics.
    pub stats: KernelStats,
    /// Largest active set encountered.
    pub max_active_states: usize,
    /// Mean active-set size per step.
    pub avg_active_states: f64,
}

/// Runs `nfa` over `input` with `n_threads` cooperating threads.
///
/// This engine is *deliberately* single-block: every step shares the active
/// set through shared memory and a barrier, neither of which crosses block
/// boundaries, so the thread count is bounded by the device's block
/// capacity (active states beyond it wrap round-robin onto the same
/// threads). Scaling an NFA engine across blocks means splitting the input,
/// which is exactly the speculation problem the DFA schemes solve — use
/// those for multi-block runs.
///
/// Cost model per step: the input byte is loaded once (coalesced broadcast);
/// the active states are divided round-robin across threads; each assigned
/// state costs one shared-memory transition fetch plus one ALU op per
/// byte-range edge examined; building the next frontier costs one atomic per
/// discovered successor (duplicate suppression in shared memory).
pub fn run_nfa_device(
    spec: &DeviceSpec,
    nfa: &Nfa,
    input: &[u8],
    n_threads: usize,
) -> NfaRunOutcome {
    assert!(n_threads > 0);
    assert!(
        n_threads <= spec.max_threads_per_block as usize,
        "the cooperative NFA engine is single-block by design: {} threads exceed \
         the block capacity of {}",
        n_threads,
        spec.max_threads_per_block
    );
    let mut kernel = NfaKernel {
        nfa,
        input,
        n_threads,
        final_set: Vec::new(),
        max_active: 0,
        total_active: 0,
        steps: 0,
    };
    let stats = launch(spec, n_threads, &mut kernel);
    let accepted = nfa.any_accepting(&kernel.final_set);
    NfaRunOutcome {
        final_set: kernel.final_set,
        accepted,
        stats,
        max_active_states: kernel.max_active,
        avg_active_states: if kernel.steps == 0 {
            0.0
        } else {
            kernel.total_active as f64 / kernel.steps as f64
        },
    }
}

struct NfaKernel<'a> {
    nfa: &'a Nfa,
    input: &'a [u8],
    n_threads: usize,
    final_set: Vec<StateId>,
    max_active: usize,
    total_active: u64,
    steps: u64,
}

impl RoundKernel for NfaKernel<'_> {
    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        // Thread 0 performs the actual set computation (host-side bookkeeping)
        // while every thread is charged for its share of the per-step work;
        // the barrier at the end of the (single) round takes the maximum.
        let mut set = self.nfa.epsilon_closure(&[self.nfa.start()]);
        for (pos, &b) in self.input.iter().enumerate() {
            if set.is_empty() {
                break;
            }
            if tid == 0 {
                self.max_active = self.max_active.max(set.len());
                self.total_active += set.len() as u64;
                self.steps += 1;
            }
            // Input byte: coalesced broadcast across the warp.
            ctx.global(REGION_INPUT, pos as u64, 1);
            // This thread's share of the active set.
            let mut successors = 0u64;
            for (i, &s) in set.iter().enumerate() {
                if i % self.n_threads != tid {
                    continue;
                }
                let st = self.nfa.state(s);
                ctx.shared(1); // fetch the state's transition list header
                ctx.alu(st.ranges.len() as u64); // range comparisons
                successors += st.ranges.iter().filter(|r| r.lo <= b && b <= r.hi).count() as u64;
            }
            // Frontier construction: one shared atomic per discovered
            // successor (set insertion with dedup).
            ctx.atomic(successors);
            set = self.nfa.step(&set, b);
        }
        if tid == 0 {
            self.final_set = set;
        }
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::NfaBuilder;

    /// NFA for `Σ* (ab|ba)` — unanchored search with two branches.
    fn search_nfa() -> Nfa {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        b.add_range(s0, 0, 255, s0);
        let a1 = b.add_state(false);
        let a2 = b.add_state(true);
        b.add_byte(s0, b'a', a1);
        b.add_byte(a1, b'b', a2);
        let b1 = b.add_state(false);
        let b2 = b.add_state(true);
        b.add_byte(s0, b'b', b1);
        b.add_byte(b1, b'a', b2);
        b.build(s0)
    }

    #[test]
    fn device_nfa_agrees_with_host_simulation() {
        let n = search_nfa();
        let spec = DeviceSpec::test_unit();
        for input in [&b"xxab"[..], b"ba", b"abba", b"zzzz", b""] {
            let out = run_nfa_device(&spec, &n, input, 4);
            assert_eq!(out.final_set, n.simulate(input), "{input:?}");
            assert_eq!(out.accepted, n.accepts(input), "{input:?}");
        }
    }

    #[test]
    fn active_set_statistics_are_tracked() {
        let n = search_nfa();
        let out = run_nfa_device(&DeviceSpec::test_unit(), &n, b"ababab", 2);
        // The self-looping start keeps at least one state active; branches
        // add more.
        assert!(out.max_active_states >= 2);
        assert!(out.avg_active_states >= 1.0);
    }

    #[test]
    fn more_threads_reduce_per_step_latency() {
        // State-level parallelism: with enough active states, spreading them
        // across more threads shortens the (max-gated) round.
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        b.add_range(s0, 0, 255, s0);
        // A wide fan-out: 16 parallel 2-state branches.
        for _ in 0..16 {
            let m = b.add_state(false);
            let e = b.add_state(true);
            b.add_byte(s0, b'x', m);
            b.add_byte(m, b'y', e);
        }
        let n = b.build(s0);
        let input = b"xyxyxyxyxyxyxyxy".repeat(8);
        let spec = DeviceSpec::test_unit();
        let one = run_nfa_device(&spec, &n, &input, 1);
        let many = run_nfa_device(&spec, &n, &input, 16);
        assert_eq!(one.final_set, many.final_set);
        assert!(
            many.stats.cycles < one.stats.cycles,
            "16 threads {} vs 1 thread {}",
            many.stats.cycles,
            one.stats.cycles
        );
    }

    #[test]
    fn dead_set_short_circuits() {
        let mut b = NfaBuilder::new();
        let s0 = b.add_state(false);
        let s1 = b.add_state(true);
        b.add_byte(s0, b'a', s1);
        let n = b.build(s0);
        let out = run_nfa_device(&DeviceSpec::test_unit(), &n, b"bcd", 2);
        assert!(out.final_set.is_empty());
        assert!(!out.accepted);
    }
}
