//! Scheme identifiers and run outcomes.

use gspecpal_fsm::StateId;
use gspecpal_gpu::{DeviceSpec, KernelStats, PhaseProfile};

/// The parallelization schemes integrated in GSpecPal, plus reference
/// engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Single-thread reference run (ground truth).
    Sequential,
    /// Algorithm 2: spec-1 + sequential verification and recovery.
    Naive,
    /// Full enumeration of all states per chunk (Mytkowicz-style
    /// data-parallel FSM), as an upper-bound-redundancy reference.
    Enumerative,
    /// Parallel Merge \[19\]: enumerative speculation (spec-k) + tree merge +
    /// delayed sequential recovery. The paper's baseline (spec-4).
    Pm,
    /// Algorithm 3: speculative recovery from predecessor end states \[21\].
    Sre,
    /// Algorithm 4: round-robin aggressive speculative recovery (this
    /// paper).
    Rr,
    /// Algorithm 5: nearest-first aggressive speculative recovery (this
    /// paper).
    Nf,
    /// Simultaneous Finite Automata \[24\] (Sin'ya & Matsuzaki): every chunk
    /// computes its full state→state mapping with converged-path
    /// deduplication, and seams compose mappings instead of states — no
    /// misprediction, no recovery, at up-to-|Q|-fold execution cost.
    Sfa,
}

impl SchemeKind {
    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Sequential => "Seq",
            SchemeKind::Naive => "NaiveSpec",
            SchemeKind::Enumerative => "Enum",
            SchemeKind::Pm => "PM",
            SchemeKind::Sre => "SRE",
            SchemeKind::Rr => "RR",
            SchemeKind::Nf => "NF",
            SchemeKind::Sfa => "SFA",
        }
    }

    /// The four schemes GSpecPal's selector chooses among (§V-A).
    pub fn gspecpal_schemes() -> [SchemeKind; 4] {
        [SchemeKind::Pm, SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf]
    }

    /// Every implemented engine.
    pub fn all() -> [SchemeKind; 8] {
        [
            SchemeKind::Sequential,
            SchemeKind::Naive,
            SchemeKind::Enumerative,
            SchemeKind::Pm,
            SchemeKind::Sre,
            SchemeKind::Rr,
            SchemeKind::Nf,
            SchemeKind::Sfa,
        ]
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of running one scheme on one (FSM, input) job.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Which scheme produced this.
    pub scheme: SchemeKind,
    /// Verified end state of the whole input (in the job DFA's numbering).
    pub end_state: StateId,
    /// Accept decision (the output function φ invoked at the end, §II-A).
    pub accepted: bool,
    /// Verified end state of every chunk, in chunk order.
    pub chunk_ends: Vec<StateId>,
    /// Cost of the prediction phase (`C` in Equation 1).
    pub predict: KernelStats,
    /// Cost of the parallel speculative execution phase (`T_par`).
    pub execute: KernelStats,
    /// Cost of verification and recovery (`T_v&r`).
    pub verify: KernelStats,
    /// Number of speculation checks performed during verification.
    pub verification_checks: u64,
    /// How many of those checks found a matching record.
    pub verification_matches: u64,
    /// Total accepting-state visits across the verified execution, when the
    /// job ran with [`crate::SchemeConfig::count_matches`] (the
    /// match-reporting output function); `None` otherwise.
    pub match_count: Option<u64>,
    /// The verified frontier's position after every verification round —
    /// the observable trajectory of the frontier walk: PM/naive advance one
    /// mismatch at a time, SRE crawls on non-convergent machines, RR/NF
    /// jump through pre-seeded regions. Empty for schemes without a
    /// round-based verification phase (sequential, enumerative).
    pub frontier_trace: Vec<u32>,
}

impl RunOutcome {
    /// A one-line textual summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} cycles (C={} exec={} v&r={}), accuracy {:.1}%,              {} recoveries, avg {:.1} threads active in recovery",
            self.scheme,
            self.total_cycles(),
            self.predict.cycles,
            self.execute.cycles,
            self.verify.cycles,
            self.runtime_accuracy() * 100.0,
            self.recovery_runs(),
            self.avg_active_threads_during_recovery(),
        )
    }

    /// Total simulated kernel cycles (Equation 1: `T = C + T_par + T_v&r`).
    pub fn total_cycles(&self) -> u64 {
        self.predict.cycles + self.execute.cycles + self.verify.cycles
    }

    /// Total simulated time in microseconds on `spec`.
    pub fn total_us(&self, spec: &DeviceSpec) -> f64 {
        spec.cycles_to_us(self.total_cycles())
    }

    /// The run's per-[`gspecpal_gpu::Phase`] cost breakdown: the predict,
    /// execute, and verify stage profiles merged sequentially (stages run
    /// back-to-back). Its total cycles equal [`RunOutcome::total_cycles`]
    /// exactly, so the phase split is an exact decomposition of Equation 1's
    /// `T = C + T_par + T_v&r`.
    pub fn phase_profile(&self) -> PhaseProfile {
        let mut profile = self.predict.profile.clone();
        profile.merge_sequential(&self.execute.profile);
        profile.merge_sequential(&self.verify.profile);
        profile
    }

    /// Runtime speculation accuracy as defined for Table III: the frequency
    /// of matches occurring in verification. 100% when no check was ever
    /// needed (perfect speculation).
    pub fn runtime_accuracy(&self) -> f64 {
        if self.verification_checks == 0 {
            1.0
        } else {
            self.verification_matches as f64 / self.verification_checks as f64
        }
    }

    /// Average number of threads active in recovery rounds (Table III).
    pub fn avg_active_threads_during_recovery(&self) -> f64 {
        self.verify.avg_active_threads_during_recovery()
    }

    /// Chunk re-executions performed during verification/recovery.
    pub fn recovery_runs(&self) -> u64 {
        self.verify.recovery_runs
    }

    /// Mean recovery cycles per re-executed chunk (Fig 9 numerator).
    pub fn recovery_cycles_per_chunk(&self) -> f64 {
        self.verify.recovery_cycles_per_run()
    }

    /// Total retried launches caused by injected faults, summed across the
    /// run's three stages. Zero without a fault plan.
    pub fn fault_retries(&self) -> u64 {
        self.predict.fault_retries + self.execute.fault_retries + self.verify.fault_retries
    }

    /// Total watchdog kills across the run's stages.
    pub fn fault_watchdog_kills(&self) -> u64 {
        self.predict.fault_watchdog_kills
            + self.execute.fault_watchdog_kills
            + self.verify.fault_watchdog_kills
    }

    /// Blocks that exhausted their retry budget (or tripped the
    /// misspeculation ladder) and fell back to a sequential re-exec.
    pub fn fault_degraded_blocks(&self) -> u64 {
        self.predict.fault_degraded_blocks
            + self.execute.fault_degraded_blocks
            + self.verify.fault_degraded_blocks
    }

    /// Cycles lost to fault handling: wasted attempts, backoff waits,
    /// watchdog-killed work and degraded re-execs. Always a subset of the
    /// run's `Phase::Recovery` cycles.
    pub fn fault_cycles(&self) -> u64 {
        self.predict.fault_cycles + self.execute.fault_cycles + self.verify.fault_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> RunOutcome {
        RunOutcome {
            scheme: SchemeKind::Rr,
            end_state: 3,
            accepted: false,
            chunk_ends: vec![1, 2, 3],
            predict: KernelStats { cycles: 10, ..KernelStats::default() },
            execute: KernelStats { cycles: 100, ..KernelStats::default() },
            verify: KernelStats { cycles: 50, ..KernelStats::default() },
            verification_checks: 8,
            verification_matches: 6,
            match_count: None,
            frontier_trace: vec![1, 3],
        }
    }

    #[test]
    fn totals_follow_equation_1() {
        assert_eq!(outcome().total_cycles(), 160);
    }

    #[test]
    fn accuracy_is_match_frequency() {
        assert!((outcome().runtime_accuracy() - 0.75).abs() < 1e-12);
        let mut o = outcome();
        o.verification_checks = 0;
        o.verification_matches = 0;
        assert_eq!(o.runtime_accuracy(), 1.0);
    }

    #[test]
    fn summary_mentions_the_essentials() {
        let s = outcome().summary();
        assert!(s.contains("RR"));
        assert!(s.contains("160 cycles"));
        assert!(s.contains("75.0%"));
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(SchemeKind::Pm.name(), "PM");
        assert_eq!(SchemeKind::Sre.name(), "SRE");
        assert_eq!(SchemeKind::Rr.name(), "RR");
        assert_eq!(SchemeKind::Nf.name(), "NF");
        assert_eq!(SchemeKind::gspecpal_schemes().len(), 4);
    }
}
