//! The §III-C analytical cost model (Equations 1-4).
//!
//! The paper breaks speculative FSM parallelization time into
//! `T = C + T_par + T_v&r` (Equation 1) and derives per-scheme expressions
//! for PM (Equation 2) and the speculative-recovery family (Equation 3).
//! This module evaluates those closed forms from measured primitive costs so
//! the simulator can be sanity-checked against the analysis: the model's
//! scheme ranking should agree with the simulated ranking on inputs with
//! stable mismatch probabilities.

/// Primitive costs, in cycles, measured or estimated for one job.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Prediction cost `C`.
    pub c: f64,
    /// One-path parallel speculative execution time `T_p1`.
    pub t_p1: f64,
    /// Redundancy factor `α_k = T_pk / T_p1` (spec-k execution, Fig 3).
    pub alpha_k: f64,
    /// Communication cost of forwarding one end state, `T_comm(1)`.
    pub t_comm1: f64,
    /// Verification cost for one state against one record, `T_ver(1)`.
    pub t_ver1: f64,
    /// `k` of spec-k.
    pub k: usize,
}

impl CostParams {
    /// `T_comm(k)`: forwarding k states.
    pub fn t_comm_k(&self) -> f64 {
        self.t_comm1 * self.k as f64
    }

    /// `T_ver(k)`: checking k states against k records.
    pub fn t_ver_k(&self) -> f64 {
        self.t_ver1 * (self.k * self.k) as f64
    }
}

/// Equation 2: predicted PM execution time given the per-chunk mismatch
/// probabilities `p_mismatch[i] = P_i^PM = 1 - accu_i^{spec-k}` (index 0 is
/// chunk 2 of the paper's 1-based sum).
pub fn pm_time(params: &CostParams, n_chunks: usize, p_mismatch: &[f64]) -> f64 {
    let log_n = (n_chunks.max(2) as f64).log2().ceil();
    let merge = log_n * (params.t_comm_k() + params.t_ver_k());
    let sequential: f64 =
        p_mismatch.iter().map(|p| p * (params.t_comm1 + params.t_ver_k() + params.t_p1)).sum();
    params.c + params.t_p1 * params.alpha_k + merge + sequential
}

/// Equation 3: predicted time for the speculative-recovery family
/// (SRE/RR/NF) given `p_recover[i] = P_i^SR`, the probability that chunk i
/// becomes a must-be-done recovery at the frontier (Equation 4 folds the
/// accuracy increments Δ_End and Δ_Specs into this probability).
pub fn sr_time(params: &CostParams, p_recover: &[f64]) -> f64 {
    let verification: f64 =
        p_recover.iter().map(|p| params.t_comm1 + params.t_ver1 + p * params.t_p1).sum();
    params.c + params.t_p1 + verification
}

/// Solves for the uniform per-chunk mismatch probability at which PM and a
/// speculative-recovery scheme break even (Equations 2 = 3 with
/// `P_i^PM = p_pm` and `P_i^SR = p_sr = ratio × p_pm` for all chunks).
/// Returns the `p_pm` crossover in `[0, 1]`, or `None` when one scheme
/// dominates the whole range — the quantitative version of §III-C's "when a
/// specific scheme works most efficiently".
pub fn pm_sr_crossover(params: &CostParams, n_chunks: usize, sr_over_pm_miss: f64) -> Option<f64> {
    let diff = |p: f64| {
        pm_time(params, n_chunks, &vec![p; n_chunks.saturating_sub(1)])
            - sr_time(params, &vec![(p * sr_over_pm_miss).min(1.0); n_chunks.saturating_sub(1)])
    };
    let (lo, hi) = (diff(0.0), diff(1.0));
    if lo.signum() == hi.signum() {
        return None;
    }
    // Bisection: both closed forms are monotone in p.
    let (mut a, mut b) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (a + b);
        if diff(mid).signum() == lo.signum() {
            a = mid;
        } else {
            b = mid;
        }
    }
    Some(0.5 * (a + b))
}

/// Equation 4 helper: the frontier-recovery probability of a
/// speculative-recovery scheme, from the base spec-1 accuracy and the two
/// accuracy increments.
pub fn sr_recover_probability(accu_spec1: f64, delta_end: f64, delta_specs: f64) -> f64 {
    (1.0 - (accu_spec1 + delta_end + delta_specs)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams { c: 100.0, t_p1: 10_000.0, alpha_k: 2.5, t_comm1: 4.0, t_ver1: 2.0, k: 4 }
    }

    #[test]
    fn pm_beats_sr_when_speck_is_perfect_and_spec1_poor() {
        let p = params();
        let n = 256;
        // PM: spec-4 covers everything; SR: 70% frontier recoveries.
        let pm = pm_time(&p, n, &vec![0.0; n - 1]);
        let sr = sr_time(&p, &vec![0.7; n - 1]);
        assert!(pm < sr, "pm {pm} < sr {sr}");
    }

    #[test]
    fn sr_beats_pm_when_both_speculations_fail_but_recovery_is_covered() {
        let p = params();
        let n = 256;
        // PM misses on 90% of chunks (sequential recovery); the aggressive
        // schemes cover all but 5% via Δ_Specs.
        let pm = pm_time(&p, n, &vec![0.9; n - 1]);
        let sr = sr_time(&p, &vec![0.05; n - 1]);
        assert!(sr < pm, "sr {sr} < pm {pm}");
        // And the gap is roughly the ratio of sequential re-executions.
        assert!(pm / sr > 5.0);
    }

    #[test]
    fn crossover_sits_between_the_regimes() {
        // A crossover requires PM to win at p = 0, i.e. the spec-k tax
        // `(α_k - 1)·T_p1 + merge` must undercut SR's N-round verification
        // floor. Use a cheap k (low α) and an expensive per-round check.
        let p = CostParams {
            c: 100.0,
            t_p1: 10_000.0,
            alpha_k: 1.05,
            t_comm1: 16.0,
            t_ver1: 8.0,
            k: 4,
        };
        let n = 256;
        let cross = pm_sr_crossover(&p, n, 0.1).expect("a crossover exists");
        assert!((0.0..=1.0).contains(&cross), "crossover {cross}");
        let below = pm_time(&p, n, &vec![cross * 0.5; n - 1]);
        let below_sr = sr_time(&p, &vec![cross * 0.05; n - 1]);
        assert!(below < below_sr, "PM wins below the crossover");
        let above = pm_time(&p, n, &vec![(cross * 2.0).min(1.0); n - 1]);
        let above_sr = sr_time(&p, &vec![(cross * 0.2).min(1.0); n - 1]);
        assert!(above > above_sr, "SR wins above the crossover");
    }

    #[test]
    fn no_crossover_when_one_scheme_dominates() {
        let p = params();
        // SR misses exactly as often as PM: SR always wins (no alpha_k tax,
        // no log-N merge), so no crossover exists.
        assert!(pm_sr_crossover(&p, 256, 1.0).is_none());
    }

    #[test]
    fn equation4_folds_increments() {
        assert!((sr_recover_probability(0.2, 0.3, 0.4) - 0.1).abs() < 1e-12);
        assert_eq!(sr_recover_probability(0.5, 0.4, 0.3), 0.0, "clamped at 0");
        assert_eq!(sr_recover_probability(0.0, 0.0, 0.0), 1.0);
    }

    #[test]
    fn alpha_k_is_pure_execution_overhead() {
        let mut p = params();
        let n = 64;
        let base = pm_time(&p, n, &vec![0.0; n - 1]);
        p.alpha_k = 5.0;
        let heavier = pm_time(&p, n, &vec![0.0; n - 1]);
        assert!((heavier - base - 2.5 * p.t_p1).abs() < 1e-6);
    }

    #[test]
    fn sr_verification_floor_scales_with_chunks() {
        let p = params();
        let no_recovery_small = sr_time(&p, &vec![0.0; 63]);
        let no_recovery_large = sr_time(&p, &vec![0.0; 255]);
        assert!(no_recovery_large > no_recovery_small);
        let floor = 255.0 * (p.t_comm1 + p.t_ver1);
        assert!((no_recovery_large - p.c - p.t_p1 - floor).abs() < 1e-9);
    }
}
