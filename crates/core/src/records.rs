//! Verification/recovery record storage (`VR_i`, §IV-C, Figure 5).
//!
//! Each chunk `i` accumulates records `{start, end}` of speculative
//! executions and recoveries over it. Records produced by the *owning*
//! thread (`VR_i^end`) live in that thread's registers; records produced by
//! *other* threads during aggressive recovery (`VR_i^others`) are staged
//! through shared memory and held in a register window of configurable size
//! — the knob swept in Fig 7. Too few registers lose records (forcing
//! must-be-done recoveries later); too many make every verification scan
//! slower.

use gspecpal_fsm::StateId;
use gspecpal_gpu::ThreadCtx;

/// One speculative execution/recovery record: the chunk was run from
/// `start`, ended in `end`, and visited `matches` accepting states along the
/// way (0 when match counting is disabled).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VrRecord {
    /// Start state the chunk was executed from.
    pub start: StateId,
    /// Resulting end state.
    pub end: StateId,
    /// Accepting-state visits observed during the run.
    pub matches: u64,
}

impl VrRecord {
    /// A record without match information.
    pub fn new(start: StateId, end: StateId) -> Self {
        VrRecord { start, end, matches: 0 }
    }
}

/// Records for one chunk.
#[derive(Clone, Debug, Default)]
struct ChunkRecords {
    own: Vec<VrRecord>,
    others: Vec<VrRecord>,
    /// Cross-thread records that did not fit in the register window.
    dropped: u64,
}

impl ChunkRecords {
    fn push_own(&mut self, own_cap: usize, rec: VrRecord) {
        if self.own.iter().any(|r| r.start == rec.start) {
            return; // Same start state re-executed: result is identical.
        }
        if self.own.len() < own_cap {
            self.own.push(rec);
        } else {
            self.own.remove(0);
            self.own.push(rec);
        }
    }

    fn push_other(&mut self, ctx: &mut ThreadCtx<'_>, others_cap: usize, rec: VrRecord) {
        // Store {start, end, matches} to shared memory for the owner to
        // pick up.
        ctx.shared(2);
        if self.others.iter().any(|r| r.start == rec.start)
            || self.own.iter().any(|r| r.start == rec.start)
        {
            return;
        }
        if self.others.len() < others_cap {
            self.others.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    fn scan(&self, ctx: &mut ThreadCtx<'_>, target: StateId) -> Option<VrRecord> {
        ctx.alu(self.own.len() as u64);
        ctx.shared(self.others.len() as u64);
        ctx.alu(self.others.len() as u64);
        self.find(target)
    }

    fn find(&self, target: StateId) -> Option<VrRecord> {
        self.own.iter().chain(self.others.iter()).find(|r| r.start == target).copied()
    }
}

/// Per-chunk record store for a whole job.
#[derive(Clone, Debug)]
pub struct VrStore {
    chunks: Vec<ChunkRecords>,
    own_cap: usize,
    others_cap: usize,
}

impl VrStore {
    /// Creates an empty store for `n_chunks` chunks with the given register
    /// budgets (record slots) for `VR^end` and `VR^others`.
    pub fn new(n_chunks: usize, own_cap: usize, others_cap: usize) -> Self {
        VrStore {
            chunks: vec![ChunkRecords::default(); n_chunks],
            own_cap: own_cap.max(1),
            others_cap,
        }
    }

    /// Number of chunks tracked.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Pushes a record produced by chunk `cid`'s own thread (register write;
    /// negligible device cost). If the window is full the oldest own record
    /// is overwritten — registers are a fixed file, not a growable buffer.
    pub fn push_own(&mut self, cid: usize, rec: VrRecord) {
        self.chunks[cid].push_own(self.own_cap, rec);
    }

    /// Pushes a record produced by a *different* thread: the writer stores it
    /// to shared memory (charged on `ctx`), and it lands in chunk `cid`'s
    /// register window if a slot is free. Records that do not fit are lost
    /// for verification purposes (the Fig 7 "too few registers" failure
    /// mode) and counted in [`VrStore::dropped`].
    pub fn push_other(&mut self, ctx: &mut ThreadCtx<'_>, cid: usize, rec: VrRecord) {
        self.chunks[cid].push_other(ctx, self.others_cap, rec);
    }

    /// Scans chunk `cid`'s records for one whose `start` equals `target`,
    /// charging the verification cost: one ALU compare per own record
    /// (registers) and one shared load + compare per cross-thread record
    /// (the owner re-reads the staging area every round to see new records).
    pub fn scan(&self, ctx: &mut ThreadCtx<'_>, cid: usize, target: StateId) -> Option<VrRecord> {
        self.chunks[cid].scan(ctx, target)
    }

    /// Host-side lookup without device cost.
    pub fn find(&self, cid: usize, target: StateId) -> Option<VrRecord> {
        self.chunks[cid].find(target)
    }

    /// Splits the store into disjoint contiguous views, one per entry of
    /// `lens` (which must sum to the chunk count). Each view keeps *global*
    /// chunk-id indexing, so a grid block operating on chunks `lo..hi` can
    /// use its slice exactly like the whole store.
    pub fn split_lens<'a>(&'a mut self, lens: &[usize]) -> Vec<VrSlice<'a>> {
        assert_eq!(
            lens.iter().sum::<usize>(),
            self.chunks.len(),
            "split lengths must cover every chunk exactly once"
        );
        let own_cap = self.own_cap;
        let others_cap = self.others_cap;
        let mut rest: &'a mut [ChunkRecords] = &mut self.chunks;
        let mut base = 0usize;
        let mut out = Vec::with_capacity(lens.len());
        for &len in lens {
            let (mine, tail) = rest.split_at_mut(len);
            out.push(VrSlice { base, chunks: mine, own_cap, others_cap });
            rest = tail;
            base += len;
        }
        out
    }

    /// Total records currently held for chunk `cid`.
    pub fn len(&self, cid: usize) -> usize {
        self.chunks[cid].own.len() + self.chunks[cid].others.len()
    }

    /// True when chunk `cid` holds no records.
    pub fn is_empty(&self, cid: usize) -> bool {
        self.len(cid) == 0
    }

    /// Total cross-thread records dropped for lack of registers.
    pub fn dropped(&self) -> u64 {
        self.chunks.iter().map(|c| c.dropped).sum()
    }

    /// Fault injection: overwrites the `start` of every record chunk `cid`
    /// currently holds with `sentinel` (a value no real state uses, e.g.
    /// `StateId::MAX`). Poisoned records can never match a verification scan
    /// — scan targets are always valid states — so verification treats the
    /// chunk as unspeculated and re-executes it: corrupted speculative state
    /// is *caught*, never silently trusted.
    pub fn poison_chunk(&mut self, cid: usize, sentinel: StateId) {
        let c = &mut self.chunks[cid];
        for rec in c.own.iter_mut().chain(c.others.iter_mut()) {
            rec.start = sentinel;
        }
    }
}

/// A disjoint view over a contiguous chunk range of a [`VrStore`], produced
/// by [`VrStore::split_lens`] for grid blocks. All methods take *global*
/// chunk ids (the view knows its offset), mirroring how a block's threads
/// address shared state by their global thread ids.
#[derive(Debug)]
pub struct VrSlice<'a> {
    base: usize,
    chunks: &'a mut [ChunkRecords],
    own_cap: usize,
    others_cap: usize,
}

impl VrSlice<'_> {
    fn chunk(&mut self, cid: usize) -> &mut ChunkRecords {
        &mut self.chunks[cid - self.base]
    }

    /// [`VrStore::push_own`] restricted to this view's chunk range.
    pub fn push_own(&mut self, cid: usize, rec: VrRecord) {
        let cap = self.own_cap;
        self.chunk(cid).push_own(cap, rec);
    }

    /// [`VrStore::push_other`] restricted to this view's chunk range.
    pub fn push_other(&mut self, ctx: &mut ThreadCtx<'_>, cid: usize, rec: VrRecord) {
        let cap = self.others_cap;
        self.chunk(cid).push_other(ctx, cap, rec);
    }

    /// [`VrStore::scan`] restricted to this view's chunk range.
    pub fn scan(&self, ctx: &mut ThreadCtx<'_>, cid: usize, target: StateId) -> Option<VrRecord> {
        self.chunks[cid - self.base].scan(ctx, target)
    }

    /// [`VrStore::find`] restricted to this view's chunk range.
    pub fn find(&self, cid: usize, target: StateId) -> Option<VrRecord> {
        self.chunks[cid - self.base].find(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_gpu::{launch, DeviceSpec, KernelStats, RoundKernel, RoundOutcome};

    fn on_device<F: FnMut(&mut ThreadCtx<'_>)>(f: F) -> KernelStats {
        struct K<F>(F);
        impl<F: FnMut(&mut ThreadCtx<'_>)> RoundKernel for K<F> {
            fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
                (self.0)(ctx);
                RoundOutcome::ACTIVE
            }
            fn after_sync(&mut self, _round: u64) -> bool {
                false
            }
        }
        launch(&DeviceSpec::test_unit(), 1, &mut K(f))
    }

    #[test]
    fn own_records_found_first() {
        let mut vr = VrStore::new(2, 16, 16);
        vr.push_own(0, VrRecord::new(1, 5));
        assert_eq!(vr.find(0, 1).map(|r| r.end), Some(5));
        assert!(vr.find(0, 2).is_none());
        assert!(vr.find(1, 1).is_none());
    }

    #[test]
    fn duplicate_starts_are_deduped() {
        let mut vr = VrStore::new(1, 16, 16);
        vr.push_own(0, VrRecord::new(1, 5));
        vr.push_own(0, VrRecord::new(1, 5));
        assert_eq!(vr.len(0), 1);
    }

    #[test]
    fn others_overflow_is_dropped_and_counted() {
        let mut vr = VrStore::new(1, 16, 2);
        on_device(|ctx| {
            vr.push_other(ctx, 0, VrRecord::new(1, 1));
            vr.push_other(ctx, 0, VrRecord::new(2, 2));
            vr.push_other(ctx, 0, VrRecord::new(3, 3));
        });
        assert_eq!(vr.len(0), 2);
        assert_eq!(vr.dropped(), 1);
        assert!(vr.find(0, 3).is_none(), "dropped record is not visible");
    }

    #[test]
    fn own_overflow_evicts_oldest() {
        let mut vr = VrStore::new(1, 2, 0);
        vr.push_own(0, VrRecord::new(1, 1));
        vr.push_own(0, VrRecord::new(2, 2));
        vr.push_own(0, VrRecord::new(3, 3));
        assert!(vr.find(0, 1).is_none(), "oldest evicted");
        assert_eq!(vr.find(0, 2).map(|r| r.end), Some(2));
        assert_eq!(vr.find(0, 3).map(|r| r.end), Some(3));
    }

    #[test]
    fn scan_cost_scales_with_held_records() {
        let mut vr = VrStore::new(1, 16, 16);
        let baseline = on_device(|ctx| {
            vr.scan(ctx, 0, 0);
        });
        on_device(|ctx| {
            for i in 0..8 {
                vr.push_other(ctx, 0, VrRecord::new(i, i));
            }
        });
        let loaded = on_device(|ctx| {
            vr.scan(ctx, 0, 0);
        });
        assert!(loaded.shared_accesses > baseline.shared_accesses);
        assert!(loaded.alu_ops > baseline.alu_ops);
    }

    #[test]
    fn push_other_charges_shared_store() {
        let mut vr = VrStore::new(1, 16, 16);
        let stats = on_device(|ctx| {
            vr.push_other(ctx, 0, VrRecord::new(1, 2));
        });
        assert_eq!(stats.shared_accesses, 2);
    }

    #[test]
    fn scan_sees_cross_thread_records() {
        let mut vr = VrStore::new(4, 16, 16);
        on_device(|ctx| {
            vr.push_other(ctx, 3, VrRecord::new(7, 9));
            assert_eq!(vr.scan(ctx, 3, 7).map(|r| r.end), Some(9));
            assert!(vr.scan(ctx, 3, 8).is_none());
        });
    }

    #[test]
    fn poisoned_chunks_never_match_a_scan() {
        let mut vr = VrStore::new(2, 16, 16);
        vr.push_own(0, VrRecord::new(1, 5));
        vr.push_own(1, VrRecord::new(1, 6));
        on_device(|ctx| {
            vr.push_other(ctx, 0, VrRecord::new(2, 7));
        });
        vr.poison_chunk(0, StateId::MAX);
        assert!(vr.find(0, 1).is_none(), "own record unmatchable");
        assert!(vr.find(0, 2).is_none(), "cross-thread record unmatchable");
        assert_eq!(vr.len(0), 2, "records still occupy their registers");
        assert_eq!(vr.find(1, 1).map(|r| r.end), Some(6), "other chunks untouched");
    }

    #[test]
    fn zero_others_capacity_drops_everything() {
        let mut vr = VrStore::new(1, 16, 0);
        on_device(|ctx| {
            vr.push_other(ctx, 0, VrRecord::new(1, 2));
        });
        assert!(vr.is_empty(0));
        assert_eq!(vr.dropped(), 1);
    }
}
