//! RR: Round-Robin based aggressive speculative recovery (Algorithm 4).
//!
//! The paper's first heuristic. It breaks the one-to-one thread/chunk
//! binding: when a must-be-done recovery appears at the frontier, the
//! already-verified ("non-rear") threads are reassigned round-robin across
//! the chunks after the frontier (`cid = (f+1) + (tid-1) % (N-f)`), each
//! dequeuing the next-ranked state from that chunk's speculation queue and
//! executing a speculative recovery whose record is forwarded through shared
//! memory into the chunk owner's `VR^others` register window (Fig 5). Rear
//! threads behave like SRE. The extra coverage raises the probability that
//! the frontier's forwarded end state hits a pre-computed record
//! (Δ_Specs in Equation 4), eliminating most must-be-done recoveries.

use crate::run::RunOutcome;
use crate::schemes::vr_kernel::{run_with_policy, RecoveryPolicy};
use crate::schemes::Job;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    run_with_policy(job, RecoveryPolicy::RoundRobin)
}
