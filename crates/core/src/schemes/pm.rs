//! PM: Parallel Merge (Xia et al. [19]) — the paper's baseline.
//!
//! PM combines *enumerative speculation* with a parallel tree-like merge:
//!
//! 1. **spec-k execution**: each thread maintains `k` transition paths from
//!    the `k` best-ranked speculative start states (the redundancy factor
//!    α_k of §III-C — Fig 3 measures exactly this phase);
//! 2. **tree merge**: `log₂ N` rounds of intra/inter-warp verification in
//!    which every thread forwards its `k` end states to its successor and
//!    checks the `k` received states against its own speculated starts.
//!    Mismatching paths are only *marked invalid* — recovery is delayed
//!    because the mismatch may turn out not to lie on the ground-truth path;
//! 3. **sequential verification & recovery**: the ground-truth walk from
//!    chunk 0. Chunks whose record set covers the incoming verified state
//!    are free (they were composed during the merge); each miss is a
//!    must-be-done recovery executed by a single thread while every other
//!    thread idles — Equation 2's `Σ P_i × (T_comm + T_ver + T_p1)` term and
//!    the bottleneck this paper attacks.

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{launch, KernelStats, RoundKernel, RoundOutcome, ThreadCtx};

use crate::records::VrStore;
use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::common::{exec_phase, ExecPhase};
use crate::schemes::Job;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    let k = job.config.spec_k;
    let ExecPhase { chunks, vr, ends, counts, predict_stats, exec_stats, .. } =
        exec_phase(job, k);
    let n = chunks.len();

    let mut verify = KernelStats::default();

    // Phase 2: parallel tree-like merge — log2(N) rounds, every thread
    // forwarding k end states and checking k received ones.
    if n > 1 {
        let mut merge = MergeKernel { k: k as u64, rounds_left: n.next_power_of_two().ilog2() };
        verify.merge_sequential(&launch(job.spec, n, &mut merge));
    }

    // Phase 3: sequential verification and recovery along the ground truth.
    let mut walker = SeqRecoverKernel {
        job,
        chunks: &chunks,
        vr,
        k: k as u64,
        ends,
        counts,
        cursor: 1,
        checks: 0,
        matches: 0,
        frontier_trace: Vec::new(),
    };
    // Advance through matching chunks before deciding whether a kernel is
    // needed at all (they were verified during the merge).
    walker.skip_matches();
    if walker.cursor < n {
        verify.merge_sequential(&launch(job.spec, n, &mut walker));
    }

    let end_state = *walker.ends.last().expect("at least one chunk");
    RunOutcome {
        scheme: SchemeKind::Pm,
        end_state,
        accepted: job.table.dfa().is_accepting(end_state),
        chunk_ends: walker.ends,
        predict: predict_stats,
        execute: exec_stats,
        verify,
        verification_checks: walker.checks,
        verification_matches: walker.matches,
        match_count: job.config.count_matches.then(|| walker.counts.iter().sum()),
        frontier_trace: walker.frontier_trace,
    }
}

/// Cost model of the tree merge: the bookkeeping itself is data-independent
/// (every thread passes and checks k states per round), so only the cost is
/// simulated; the actual path composition is subsumed by the record store
/// the sequential walker reads.
struct MergeKernel {
    k: u64,
    rounds_left: u32,
}

impl RoundKernel for MergeKernel {
    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        // T_comm(k): forward k end states to the successor.
        ctx.shuffle(self.k);
        // T_ver(k): check k received states against k speculated starts.
        ctx.alu(self.k * self.k);
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.rounds_left -= 1;
        self.rounds_left > 0
    }
}

/// The sequential stage: walks the ground truth chunk by chunk. Chunks whose
/// k-path record set contains the verified incoming state cost nothing here
/// (already verified and composed in the merge); every miss runs a one-thread
/// recovery round.
struct SeqRecoverKernel<'a, 'j> {
    job: &'a Job<'j>,
    chunks: &'a [Range<usize>],
    vr: VrStore,
    k: u64,
    ends: Vec<StateId>,
    counts: Vec<u64>,
    cursor: usize,
    checks: u64,
    matches: u64,
    frontier_trace: Vec<u32>,
}

impl SeqRecoverKernel<'_, '_> {
    /// Consumes the run of chunks (starting at `cursor`) whose records cover
    /// the incoming verified end state. Host-side: the device already paid
    /// for these checks in the merge rounds.
    fn skip_matches(&mut self) {
        while self.cursor < self.chunks.len() {
            let prev = self.ends[self.cursor - 1];
            match self.vr.find(self.cursor, prev) {
                Some(rec) => {
                    self.checks += 1;
                    self.matches += 1;
                    self.ends[self.cursor] = rec.end;
                    self.counts[self.cursor] = rec.matches;
                    self.cursor += 1;
                }
                None => break,
            }
        }
    }
}

impl RoundKernel for SeqRecoverKernel<'_, '_> {
    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        if tid != self.cursor {
            return RoundOutcome::IDLE;
        }
        let prev = self.ends[tid - 1];
        ctx.shuffle(1);
        ctx.alu(self.k); // re-check the k paths against the verified state
        self.checks += 1;
        let t0 = ctx.cycles();
        let run = self.job.table.run_chunk_with(
            ctx,
            self.job.input,
            self.chunks[tid].clone(),
            prev,
            self.job.config.count_matches,
        );
        ctx.credit_recovery(t0);
        self.ends[tid] = run.end;
        self.counts[tid] = run.matches;
        RoundOutcome::RECOVERING
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.cursor += 1;
        self.skip_matches();
        self.frontier_trace.push(self.cursor as u32);
        self.cursor < self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SchemeConfig;
    use crate::run::SchemeKind;
    use crate::schemes::{run_scheme, Job};
    use crate::table::DeviceTable;
    use gspecpal_fsm::combinators::keyword_dfa;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::DeviceSpec;

    #[test]
    fn pm_exact_on_div7() {
        // div7's queues hold all 7 residues; spec-4 covers the truth only
        // when it ranks in the top 4, so PM must recover on the rest — and
        // stay exact.
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"11010101100101110101".repeat(16);
        let config = SchemeConfig { n_chunks: 16, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s, "chunk {i}");
        }
    }

    #[test]
    fn pm_spec7_needs_no_recovery_on_div7() {
        // With k = 7 every residue is covered: speculation can't miss.
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(16);
        let config = SchemeConfig { n_chunks: 16, spec_k: 7, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.recovery_runs(), 0, "spec-7 covers all residues");
        assert!((out.runtime_accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pm_recovery_is_sequential() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(16);
        let config = SchemeConfig { n_chunks: 16, spec_k: 1, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        if out.recovery_runs() > 0 {
            assert!(
                (out.avg_active_threads_during_recovery() - 1.0).abs() < 1e-12,
                "PM recovers with exactly one active thread"
            );
        }
    }

    #[test]
    fn pm_exact_on_convergent_machine() {
        let d = keyword_dfa(&[b"virus", b"trojan"]).unwrap();
        let input = b"clean data virus sample trojan xyz ".repeat(10);
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.accepted, d.accepts(&input));
    }
}
