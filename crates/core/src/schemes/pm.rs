//! PM: Parallel Merge (Xia et al. [19]) — the paper's baseline.
//!
//! PM combines *enumerative speculation* with a parallel tree-like merge:
//!
//! 1. **spec-k execution**: each thread maintains `k` transition paths from
//!    the `k` best-ranked speculative start states (the redundancy factor
//!    α_k of §III-C — Fig 3 measures exactly this phase);
//! 2. **tree merge**: `log₂ B` rounds of intra/inter-warp verification in
//!    which every thread forwards its `k` end states to its successor and
//!    checks the `k` received states against its own speculated starts.
//!    Mismatching paths are only *marked invalid* — recovery is delayed
//!    because the mismatch may turn out not to lie on the ground-truth path;
//! 3. **sequential verification & recovery**: the ground-truth walk from
//!    chunk 0. Chunks whose record set covers the incoming verified state
//!    are free (they were composed during the merge); each miss is a
//!    must-be-done recovery executed by a single thread while every other
//!    thread idles — Equation 2's `Σ P_i × (T_comm + T_ver + T_p1)` term and
//!    the bottleneck this paper attacks.
//!
//! Both the merge (shuffles/shared memory) and the walk are block-scoped, so
//! at grid scale every block merges and walks its own chunk window from a
//! block-level speculated incoming state, and the boundary stitch of
//! [`crate::schemes::stitch`] validates the seams afterwards.

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    launch_blocks_auto, BlockDim, BlockRequirements, KernelStats, Phase, RoundKernel, RoundOutcome,
    ThreadCtx,
};

use crate::records::{VrRecord, VrSlice};
use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::common::{exec_phase, ExecPhase};
use crate::schemes::stitch::{fold_grid, stitch_blocks};
use crate::schemes::Job;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    let k = job.config.spec_k;
    let ExecPhase { chunks, mut vr, mut ends, mut counts, predict_stats, exec_stats, .. } =
        exec_phase(job, k);
    let n = chunks.len();

    let mut verify = KernelStats::default();
    let mut checks = 0u64;
    let mut matches = 0u64;
    let mut frontier_trace = Vec::new();

    if n > 1 {
        let dims = job.vr_dims(n);
        let incomings: Vec<StateId> =
            dims.iter().map(|d| if d.index == 0 { 0 } else { ends[d.tids.start - 1] }).collect();

        // Phase 2: parallel tree-like merge, one per block — log2(B) rounds,
        // every thread forwarding k end states and checking k received ones.
        // (A one-chunk trailing block has nothing to merge.)
        let mut merges: Vec<(usize, MergeKernel)> = dims
            .iter()
            .filter(|d| d.len() > 1)
            .map(|d| {
                (
                    d.len(),
                    MergeKernel { k: k as u64, rounds_left: d.len().next_power_of_two().ilog2() },
                )
            })
            .collect();
        if !merges.is_empty() {
            fold_grid(&mut verify, &launch_blocks_auto(job.spec, &mut merges));
        }

        // Phase 3: per-block sequential verification and recovery along each
        // block's speculated ground truth.
        let lens: Vec<usize> = dims.iter().map(BlockDim::len).collect();
        {
            let vr_slices = vr.split_lens(&lens);
            let mut e_rest: &mut [StateId] = &mut ends;
            let mut c_rest: &mut [u64] = &mut counts;
            let mut idle: Vec<PmBlock<'_, '_>> = Vec::new();
            let mut pending: Vec<(usize, PmBlock<'_, '_>)> = Vec::new();
            for (dim, vr_slice) in dims.iter().zip(vr_slices) {
                let (e, er) = e_rest.split_at_mut(dim.len());
                let (c, cr) = c_rest.split_at_mut(dim.len());
                e_rest = er;
                c_rest = cr;
                let mut block = PmBlock {
                    job,
                    chunks: &chunks,
                    base: dim.tids.start,
                    n_local: dim.len(),
                    incoming: incomings[dim.index],
                    vr: vr_slice,
                    k: k as u64,
                    ends: e,
                    counts: c,
                    cursor: usize::from(dim.index == 0),
                    checks: 0,
                    matches: 0,
                    frontier_trace: Vec::new(),
                };
                // Advance through merge-verified chunks before deciding
                // whether the block needs a walker kernel at all.
                block.skip_matches();
                if block.cursor < block.n_local {
                    pending.push((dim.len(), block));
                } else {
                    idle.push(block);
                }
            }
            if !pending.is_empty() {
                fold_grid(&mut verify, &launch_blocks_auto(job.spec, &mut pending));
            }
            let mut blocks: Vec<PmBlock<'_, '_>> =
                idle.into_iter().chain(pending.into_iter().map(|(_, b)| b)).collect();
            blocks.sort_by_key(|b| b.base);
            for block in blocks {
                checks += block.checks;
                matches += block.matches;
                frontier_trace.extend_from_slice(&block.frontier_trace);
            }
        }
        let stitched =
            stitch_blocks(job, &chunks, &dims, &incomings, &mut vr, &mut ends, &mut counts);
        verify.merge_sequential(&stitched.stats);
        checks += stitched.checks;
        matches += stitched.matches;
    }

    let end_state = *ends.last().expect("at least one chunk");
    RunOutcome {
        scheme: SchemeKind::Pm,
        end_state,
        accepted: job.table.dfa().is_accepting(end_state),
        chunk_ends: ends,
        predict: predict_stats,
        execute: exec_stats,
        verify,
        verification_checks: checks,
        verification_matches: matches,
        match_count: job.config.count_matches.then(|| counts.iter().sum()),
        frontier_trace,
    }
}

/// Cost model of the tree merge: the bookkeeping itself is data-independent
/// (every thread passes and checks k states per round), so only the cost is
/// simulated; the actual path composition is subsumed by the record store
/// the sequential walker reads.
struct MergeKernel {
    k: u64,
    rounds_left: u32,
}

impl RoundKernel for MergeKernel {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        // Each thread holds k end states and k speculated starts in
        // registers; no shared memory or table accesses in the merge.
        BlockRequirements {
            threads,
            shared_bytes: 0,
            regs_per_thread: (16 + 4 * self.k).min(255) as u32,
        }
    }

    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        // T_comm(k): forward k end states to the successor.
        ctx.shuffle(self.k);
        // T_ver(k): check k received states against k speculated starts.
        ctx.alu(self.k * self.k);
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.rounds_left -= 1;
        self.rounds_left > 0
    }

    /// The tree merge is verification: it checks speculated paths, it never
    /// re-executes input.
    fn phase(&self) -> Phase {
        Phase::Verify
    }
}

/// One block of the sequential stage: walks the block's speculated ground
/// truth chunk by chunk. Chunks whose k-path record set contains the
/// incoming verified state cost nothing here (already verified and composed
/// in the merge); every miss runs a one-thread recovery round.
struct PmBlock<'a, 'j> {
    job: &'a Job<'j>,
    chunks: &'a [Range<usize>],
    base: usize,
    n_local: usize,
    /// Verified (block 0) or block-speculated incoming end state for the
    /// block's first chunk.
    incoming: StateId,
    vr: VrSlice<'a>,
    k: u64,
    ends: &'a mut [StateId],
    counts: &'a mut [u64],
    cursor: usize,
    checks: u64,
    matches: u64,
    frontier_trace: Vec<u32>,
}

impl PmBlock<'_, '_> {
    fn prev_end(&self) -> StateId {
        if self.cursor == 0 {
            self.incoming
        } else {
            self.ends[self.cursor - 1]
        }
    }

    /// Consumes the run of chunks (starting at `cursor`) whose records cover
    /// the incoming verified end state. Host-side: the device already paid
    /// for these checks in the merge rounds.
    fn skip_matches(&mut self) {
        while self.cursor < self.n_local {
            let prev = self.prev_end();
            match self.vr.find(self.base + self.cursor, prev) {
                Some(rec) => {
                    self.checks += 1;
                    self.matches += 1;
                    self.ends[self.cursor] = rec.end;
                    self.counts[self.cursor] = rec.matches;
                    self.cursor += 1;
                }
                None => break,
            }
        }
    }
}

impl RoundKernel for PmBlock<'_, '_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.vr_requirements(threads)
    }

    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        if tid != self.cursor {
            return RoundOutcome::IDLE;
        }
        let prev = self.prev_end();
        ctx.shuffle(1);
        ctx.alu(self.k); // re-check the k paths against the verified state
        self.checks += 1;
        let t0 = ctx.cycles();
        let run = self.job.table.run_chunk_with(
            ctx,
            self.job.input,
            self.chunks[self.base + tid].clone(),
            prev,
            self.job.config.count_matches,
        );
        ctx.credit_recovery(t0);
        self.vr.push_own(
            self.base + tid,
            VrRecord { start: prev, end: run.end, matches: run.matches },
        );
        self.ends[tid] = run.end;
        self.counts[tid] = run.matches;
        RoundOutcome::RECOVERING
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.cursor += 1;
        self.skip_matches();
        self.frontier_trace.push((self.base + self.cursor) as u32);
        self.cursor < self.n_local
    }

    /// Every walker round re-executes a chunk (merge-verified chunks are
    /// consumed host-side in `skip_matches`), so PM's sequential stage is
    /// pure recovery time — the Equation 2 bottleneck.
    fn phase(&self) -> Phase {
        Phase::Recovery
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SchemeConfig;
    use crate::run::SchemeKind;
    use crate::schemes::{run_scheme, Job};
    use crate::table::DeviceTable;
    use gspecpal_fsm::combinators::keyword_dfa;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::DeviceSpec;

    #[test]
    fn pm_exact_on_div7() {
        // div7's queues hold all 7 residues; spec-4 covers the truth only
        // when it ranks in the top 4, so PM must recover on the rest — and
        // stay exact.
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"11010101100101110101".repeat(16);
        let config = SchemeConfig { n_chunks: 16, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s, "chunk {i}");
        }
    }

    #[test]
    fn pm_spec7_needs_no_recovery_on_div7() {
        // With k = 7 every residue is covered: speculation can't miss.
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(16);
        let config = SchemeConfig { n_chunks: 16, spec_k: 7, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.recovery_runs(), 0, "spec-7 covers all residues");
        assert!((out.runtime_accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pm_recovery_is_sequential() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(16);
        let config = SchemeConfig { n_chunks: 16, spec_k: 1, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        if out.recovery_runs() > 0 {
            assert!(
                (out.avg_active_threads_during_recovery() - 1.0).abs() < 1e-12,
                "PM recovers with exactly one active thread"
            );
        }
    }

    #[test]
    fn pm_exact_on_convergent_machine() {
        let d = keyword_dfa(&[b"virus", b"trojan"]).unwrap();
        let input = b"clean data virus sample trojan xyz ".repeat(10);
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.accepted, d.accepts(&input));
    }

    #[test]
    fn pm_exact_across_block_boundaries() {
        let d = div7();
        let spec = DeviceSpec::test_unit(); // 64-thread blocks
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"11010101100101110101".repeat(50);
        let config = SchemeConfig { n_chunks: 180, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Pm, &job);
        assert_eq!(out.end_state, d.run(&input));
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s, "chunk {i}");
        }
    }
}
