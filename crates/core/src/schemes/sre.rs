//! SRE: Speculative Recovery activated by the Ending state from the
//! Predecessor (Algorithm 3, from [21], ported to the GPU).
//!
//! Threads stay bound one-to-one to chunks. When a mismatch is found, each
//! thread immediately re-executes its chunk from the end state forwarded by
//! its predecessor — a good guess exactly when the FSM converges quickly
//! (Δ_End in Equation 4). On non-convergent machines the forwarded state is
//! almost never right and recovery degenerates to the sequential frontier
//! walk, which is the under-utilization the paper's RR/NF heuristics fix.

use crate::run::RunOutcome;
use crate::schemes::vr_kernel::{run_with_policy, RecoveryPolicy};
use crate::schemes::Job;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    run_with_policy(job, RecoveryPolicy::Sre)
}
