//! The shared verification-and-recovery kernel behind SRE, RR and NF
//! (Algorithms 3, 4 and 5).
//!
//! All three schemes run the same barrier loop: a *verify* round in which
//! every unverified thread receives its predecessor's current end state
//! (`end_state_comm`) and scans its chunk's records for a match, followed —
//! only when the frontier chunk itself mismatched (`mark == false`, the
//! must-be-done case) — by a *recovery* round. They differ exactly where the
//! paper says they differ: in who re-executes what during recovery.
//!
//! * **SRE**: each thread stays bound to its own chunk and re-executes it
//!   from the forwarded predecessor end state. A thread performs this
//!   *speculative* recovery at most once ("immediate speculative recoveries
//!   activated by ending states", §III-A); afterwards only the frontier's
//!   must-be-done recovery keeps running — the low-utilization behaviour
//!   Table III reports (≈1 active thread on non-convergent FSMs).
//! * **RR**: rear threads (`tid ≥ f`) behave like SRE; verified (non-rear)
//!   threads are reassigned round-robin over chunks `f+1..N` and re-execute
//!   them from the next states of their speculation queues (Algorithm 4).
//! * **NF**: non-rear threads drain the speculation queues nearest to the
//!   frontier first (Algorithm 5's `NF_Sched`), piling many threads — often
//!   whole warps, which coalesce — onto the same chunk.
//!
//! Shared memory and barriers are block-scoped, so the loop runs *per
//! block*: each block verifies its own chunk window against a block-level
//! speculated incoming state, all blocks in parallel, and the boundary
//! stitch of [`crate::schemes::stitch`] validates the block seams
//! afterwards. A single block reproduces the pre-grid behaviour exactly.

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    launch_blocks_auto, BlockDim, BlockRequirements, FaultDomain, KernelStats, Phase, RoundKernel,
    RoundOutcome, ThreadCtx,
};

use crate::records::{VrRecord, VrSlice};
use crate::recovery::{apply_grid_recovery, BlockRecoveryCtx};
use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::common::{exec_phase, ExecPhase};
use crate::schemes::stitch::{fold_grid, stitch_blocks};
use crate::schemes::Job;
use crate::specq::SpecQueue;

/// Which recovery scheduling heuristic the kernel applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RecoveryPolicy {
    /// Algorithm 3: threads bound to their own chunks.
    Sre,
    /// Algorithm 4: round-robin reassignment of verified threads.
    RoundRobin,
    /// Algorithm 5: nearest-first queue draining.
    NearestFirst,
}

impl RecoveryPolicy {
    fn scheme(self) -> SchemeKind {
        match self {
            RecoveryPolicy::Sre => SchemeKind::Sre,
            RecoveryPolicy::RoundRobin => SchemeKind::Rr,
            RecoveryPolicy::NearestFirst => SchemeKind::Nf,
        }
    }
}

/// Runs the full scheme (prediction, spec-1 execution, verification &
/// recovery under `policy`).
pub(crate) fn run_with_policy(job: &Job<'_>, policy: RecoveryPolicy) -> RunOutcome {
    let ExecPhase {
        chunks,
        mut queues,
        mut vr,
        mut ends,
        counts: phase_counts,
        predict_stats,
        exec_stats,
        ..
    } = exec_phase(job, 1);
    let n = chunks.len();
    let mut counts: Vec<u64> = (0..n).map(|i| phase_counts.get(i).copied().unwrap_or(0)).collect();

    let mut verify = KernelStats::default();
    let mut checks = 0u64;
    let mut matches = 0u64;
    let mut frontier_trace = Vec::new();

    if n > 1 {
        let dims = job.vr_dims(n);
        // Block-level speculation: each block assumes the exec-phase end of
        // its predecessor chunk as incoming (snapshot *before* any block
        // rewrites its window).
        let incomings: Vec<StateId> =
            dims.iter().map(|d| if d.index == 0 { 0 } else { ends[d.tids.start - 1] }).collect();
        let lens: Vec<usize> = dims.iter().map(BlockDim::len).collect();
        {
            let vr_slices = vr.split_lens(&lens);
            let mut q_rest: &mut [SpecQueue] = &mut queues;
            let mut e_rest: &mut [StateId] = &mut ends;
            let mut c_rest: &mut [u64] = &mut counts;
            let mut blocks: Vec<(usize, VrBlock<'_, '_>)> = Vec::with_capacity(dims.len());
            for (dim, vr_slice) in dims.iter().zip(vr_slices) {
                let (q, qr) = q_rest.split_at_mut(dim.len());
                let (e, er) = e_rest.split_at_mut(dim.len());
                let (c, cr) = c_rest.split_at_mut(dim.len());
                q_rest = qr;
                e_rest = er;
                c_rest = cr;
                blocks.push((
                    dim.len(),
                    VrBlock::new(
                        job,
                        &chunks,
                        dim,
                        incomings[dim.index],
                        q,
                        vr_slice,
                        e,
                        c,
                        policy,
                    ),
                ));
            }
            let mut grid = launch_blocks_auto(job.spec, &mut blocks);
            // Fault overlay on verification: struck blocks retry with
            // backoff; exhaustion or a tripped misspeculation ladder
            // degrades the block to a sequential re-walk of its window.
            let ctxs: Vec<BlockRecoveryCtx> = dims
                .iter()
                .map(|d| BlockRecoveryCtx {
                    window: chunks[d.tids.start].start..chunks[d.tids.end - 1].end,
                    start: incomings[d.index],
                    checks: blocks[d.index].1.checks,
                    matches: blocks[d.index].1.matches,
                })
                .collect();
            apply_grid_recovery(job, FaultDomain::Verify, &mut grid, &ctxs);
            fold_grid(&mut verify, &grid);
            for (_, block) in blocks {
                checks += block.checks;
                matches += block.matches;
                frontier_trace.extend_from_slice(&block.frontier_trace);
            }
        }
        let stitched =
            stitch_blocks(job, &chunks, &dims, &incomings, &mut vr, &mut ends, &mut counts);
        verify.merge_sequential(&stitched.stats);
        checks += stitched.checks;
        matches += stitched.matches;
    }

    let end_state = *ends.last().expect("at least one chunk");
    RunOutcome {
        scheme: policy.scheme(),
        end_state,
        accepted: job.table.dfa().is_accepting(end_state),
        match_count: job.config.count_matches.then(|| counts.iter().sum()),
        frontier_trace,
        chunk_ends: ends,
        predict: predict_stats,
        execute: exec_stats,
        verify,
        verification_checks: checks,
        verification_matches: matches,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum VrPhase {
    Verify,
    Recover,
}

/// One block's verification-and-recovery loop over chunks
/// `base..base+n_local`, indexed by global thread/chunk id.
struct VrBlock<'a, 'j> {
    job: &'a Job<'j>,
    chunks: &'a [Range<usize>],
    base: usize,
    n_local: usize,
    /// End state forwarded into the block's first chunk: ground truth for
    /// block 0 (whose first chunk ran from the machine's start state),
    /// block-level speculation for every other block.
    incoming: StateId,
    /// Block 0's first chunk needs no verification (its start is certain).
    trusted_first: bool,
    queues: &'a mut [SpecQueue],
    vr: VrSlice<'a>,
    /// End states as of the last barrier (what `end_state_comm` returns).
    ends_prev: Vec<StateId>,
    /// End states being written this round.
    ends_cur: &'a mut [StateId],
    /// Match count associated with each chunk's current end value (the
    /// output-function tally of the record or re-execution that set it).
    counts_cur: &'a mut [u64],
    found: Vec<bool>,
    endp: Vec<StateId>,
    /// Remaining speculative (non-frontier) recoveries per thread.
    spec_budget: Vec<u32>,
    /// The block frontier: local chunks `0..f` are verified (relative to the
    /// block's incoming state).
    f: usize,
    phase: VrPhase,
    policy: RecoveryPolicy,
    /// NF_Sched scan hint: queues before this local chunk id are known
    /// drained (they never refill, so the scan is amortized O(1) — on
    /// hardware this is a shared first-non-empty pointer).
    nf_cursor: usize,
    checks: u64,
    matches: u64,
    frontier_trace: Vec<u32>,
}

impl<'a, 'j> VrBlock<'a, 'j> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        job: &'a Job<'j>,
        chunks: &'a [Range<usize>],
        dim: &BlockDim,
        incoming: StateId,
        queues: &'a mut [SpecQueue],
        vr: VrSlice<'a>,
        ends_cur: &'a mut [StateId],
        counts_cur: &'a mut [u64],
        policy: RecoveryPolicy,
    ) -> Self {
        let n_local = dim.len();
        let trusted_first = dim.index == 0;
        VrBlock {
            job,
            chunks,
            base: dim.tids.start,
            n_local,
            incoming,
            trusted_first,
            queues,
            vr,
            ends_prev: ends_cur.to_vec(),
            ends_cur,
            counts_cur,
            found: vec![false; n_local],
            endp: vec![0; n_local],
            spec_budget: vec![job.config.spec_recovery_budget; n_local],
            f: usize::from(trusted_first),
            phase: VrPhase::Verify,
            policy,
            nf_cursor: 0,
            checks: 0,
            matches: 0,
            frontier_trace: Vec::new(),
        }
    }

    /// Seeding a chunk beyond its record-window capacity is pure waste: the
    /// extra records would be dropped (§IV-C). One slot is taken by the
    /// chunk's own speculative-execution record.
    fn seeding_exhausted(&self, rel: usize) -> bool {
        let tried = self.queues[rel].initial_len() - self.queues[rel].remaining();
        tried > self.job.config.vr_others_registers
    }

    fn verify_round(&mut self, rel: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        if (self.trusted_first && rel == 0) || rel < self.f {
            // Verify rounds are cheap (communication + record scan); keeping
            // the verified threads idle here and batching their speculative
            // seeding into the must-be-done recovery rounds hides the
            // seeding cost behind the frontier's unavoidable re-execution
            // (§III-B: "this cost can be hidden by the must-be-done
            // recovery in the frontier").
            return RoundOutcome::IDLE;
        }
        // end_state_comm: receive the predecessor's current end state (the
        // block's speculated incoming for the first local chunk).
        let end_p = if rel == 0 { self.incoming } else { self.ends_prev[rel - 1] };
        ctx.shuffle(1);
        self.endp[rel] = end_p;
        match self.vr.scan(ctx, self.base + rel, end_p) {
            Some(rec) => {
                self.found[rel] = true;
                self.ends_cur[rel] = rec.end;
                self.counts_cur[rel] = rec.matches;
            }
            None => {
                self.found[rel] = false;
            }
        }
        RoundOutcome::ACTIVE
    }

    fn recover_round(&mut self, rel: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let f = self.f;
        let rear = rel >= f;
        if rear {
            // Rear threads follow the SRE strategy: re-execute the own chunk
            // from the forwarded end state. The frontier's recovery is
            // must-be-done; other rear threads recover speculatively, at most
            // `spec_budget` times, and only when no record already covers
            // their forwarded state.
            if rel != f {
                if self.found[rel] || self.spec_budget[rel] == 0 {
                    // Nothing useful to do on the own chunk. Under SRE the
                    // thread idles (the one-to-one binding); the aggressive
                    // schemes reassign it like a verified thread — §III-A:
                    // "when thread i finishes ... it may be assigned to any
                    // other chunk j for a speculative recovery".
                    return match self.policy {
                        RecoveryPolicy::Sre => RoundOutcome::IDLE,
                        RecoveryPolicy::RoundRobin | RecoveryPolicy::NearestFirst => {
                            self.seed_round(rel, ctx)
                        }
                    };
                }
                self.spec_budget[rel] -= 1;
            }
            let st = self.endp[rel];
            let t0 = ctx.cycles();
            let run = self.job.table.run_chunk_with(
                ctx,
                self.job.input,
                self.chunks[self.base + rel].clone(),
                st,
                self.job.config.count_matches,
            );
            ctx.credit_recovery(t0);
            self.vr.push_own(
                self.base + rel,
                VrRecord { start: st, end: run.end, matches: run.matches },
            );
            if !self.found[rel] {
                self.ends_cur[rel] = run.end;
                self.counts_cur[rel] = run.matches;
            }
            RoundOutcome::RECOVERING
        } else {
            // Non-rear (already verified) threads: only the aggressive
            // schemes reassign them; under SRE they idle — the thread
            // under-utilization the paper attacks.
            match self.policy {
                RecoveryPolicy::Sre => RoundOutcome::IDLE,
                RecoveryPolicy::RoundRobin | RecoveryPolicy::NearestFirst => {
                    self.seed_round(rel, ctx)
                }
            }
        }
    }

    /// One speculative-recovery seeding step by a verified thread: pick a
    /// chunk past the frontier (RR: round-robin, Algorithm 4 line 23; NF:
    /// nearest non-drained queue, Algorithm 5 lines 29-33), dequeue the next
    /// speculative state, execute the chunk, and forward the record into the
    /// owner's `VR^others` window. All candidates are block-local: the
    /// speculation queues live in the block's shared memory.
    fn seed_round(&mut self, rel: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let f = self.f;
        let n = self.n_local;
        debug_assert!(f < n);
        let (cid, st) = match self.policy {
            RecoveryPolicy::Sre => return RoundOutcome::IDLE,
            RecoveryPolicy::RoundRobin => {
                let avail = n.saturating_sub(f + 1);
                if avail == 0 {
                    return RoundOutcome::IDLE;
                }
                let cid = f + 1 + (rel % avail);
                if self.seeding_exhausted(cid) {
                    return RoundOutcome::IDLE;
                }
                match self.queues[cid].dequeue(ctx) {
                    Some(st) => (cid, st),
                    None => return RoundOutcome::IDLE,
                }
            }
            RecoveryPolicy::NearestFirst => {
                // The shared first-non-empty hint makes the scan amortized
                // O(1); drained queues never refill.
                self.nf_cursor = self.nf_cursor.max(f + 1);
                let mut pick = None;
                while self.nf_cursor < n {
                    let cid = self.nf_cursor;
                    ctx.shared(1); // queue-size probe
                    if !self.seeding_exhausted(cid) && self.queues[cid].remaining() > 0 {
                        pick = self.queues[cid].dequeue(ctx).map(|st| (cid, st));
                        break;
                    }
                    self.nf_cursor += 1;
                }
                match pick {
                    Some(p) => p,
                    None => return RoundOutcome::IDLE,
                }
            }
        };
        let t0 = ctx.cycles();
        let run = self.job.table.run_chunk_with(
            ctx,
            self.job.input,
            self.chunks[self.base + cid].clone(),
            st,
            self.job.config.count_matches,
        );
        ctx.credit_recovery(t0);
        self.vr.push_other(
            ctx,
            self.base + cid,
            VrRecord { start: st, end: run.end, matches: run.matches },
        );
        RoundOutcome::RECOVERING
    }
}

impl RoundKernel for VrBlock<'_, '_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.vr_requirements(threads)
    }

    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        // `launch_blocks` hands each block kernel block-local thread ids.
        let rel = tid;
        match self.phase {
            VrPhase::Verify => self.verify_round(rel, ctx),
            VrPhase::Recover => self.recover_round(rel, ctx),
        }
    }

    /// Verify rounds (record scans, seeding, speculative recoveries that
    /// overlap verification) vs. must-be-done recovery rounds. Read at the
    /// barrier before `after_sync` flips the state, so each round reports
    /// the mode it actually executed in.
    fn phase(&self) -> Phase {
        match self.phase {
            VrPhase::Verify => Phase::Verify,
            VrPhase::Recover => Phase::Recovery,
        }
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        match self.phase {
            VrPhase::Verify => {
                // Runtime speculation accuracy (Table III) counts the checks
                // that decide each chunk's verification: one per chunk, a
                // match when the chunk was verified from a record, a miss
                // when it needed a must-be-done recovery.
                self.checks += 1;
                let mark = self.found[self.f];
                if mark {
                    // Frontier verified without recovery — and a run of
                    // consecutive matches whose forwarded states chain from
                    // the new truth is verified transitively in the same
                    // round.
                    self.matches += 1;
                    self.f += 1;
                    while self.f < self.n_local
                        && self.found[self.f]
                        && self.endp[self.f] == self.ends_cur[self.f - 1]
                    {
                        self.checks += 1;
                        self.matches += 1;
                        self.f += 1;
                    }
                } else {
                    self.phase = VrPhase::Recover;
                }
                self.ends_prev.copy_from_slice(self.ends_cur);
            }
            VrPhase::Recover => {
                // The frontier's must-be-done recovery resolved chunk f.
                self.ends_prev.copy_from_slice(self.ends_cur);
                self.f += 1;
                self.phase = VrPhase::Verify;
            }
        }
        self.frontier_trace.push((self.base + self.f) as u32);
        self.f < self.n_local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeConfig;
    use crate::table::DeviceTable;
    use gspecpal_fsm::combinators::keyword_dfa;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::DeviceSpec;

    fn check_exact(d: &gspecpal_fsm::Dfa, input: &[u8], n_chunks: usize, policy: RecoveryPolicy) {
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(d, d.n_states());
        let config = SchemeConfig { n_chunks, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, input, config).unwrap();
        let out = run_with_policy(&job, policy);
        assert_eq!(out.end_state, d.run(input), "{policy:?} end state");
        assert_eq!(out.accepted, d.accepts(input), "{policy:?} accept");
        // Every chunk end must be the true prefix state.
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s, "{policy:?} chunk {i}");
        }
    }

    #[test]
    fn all_policies_exact_on_nonconvergent_div7() {
        let input: Vec<u8> = b"110101011001011101".repeat(16);
        for policy in
            [RecoveryPolicy::Sre, RecoveryPolicy::RoundRobin, RecoveryPolicy::NearestFirst]
        {
            check_exact(&div7(), &input, 16, policy);
        }
    }

    #[test]
    fn all_policies_exact_on_convergent_keywords() {
        let d = keyword_dfa(&[b"attack", b"worm", b"exploit"]).unwrap();
        let mut input = b"benign traffic attack packet worm xx ".repeat(12);
        input.extend_from_slice(b"exploit");
        for policy in
            [RecoveryPolicy::Sre, RecoveryPolicy::RoundRobin, RecoveryPolicy::NearestFirst]
        {
            check_exact(&d, &input, 8, policy);
        }
    }

    #[test]
    fn all_policies_exact_across_block_boundaries() {
        // 200 chunks on a 64-thread device: a 4-block grid with block-level
        // speculation and a boundary stitch — still bit-exact.
        let input: Vec<u8> = b"110101011001011101".repeat(64);
        for policy in
            [RecoveryPolicy::Sre, RecoveryPolicy::RoundRobin, RecoveryPolicy::NearestFirst]
        {
            check_exact(&div7(), &input, 200, policy);
        }
        let d = keyword_dfa(&[b"attack", b"worm"]).unwrap();
        let input = b"benign traffic attack packet worm xx ".repeat(40);
        for policy in
            [RecoveryPolicy::Sre, RecoveryPolicy::RoundRobin, RecoveryPolicy::NearestFirst]
        {
            check_exact(&d, &input, 150, policy);
        }
    }

    #[test]
    fn sre_recovery_is_narrow_on_nonconvergent_machines() {
        // div7 defeats end-state forwarding, so after the single speculative
        // wave SRE degenerates to ~1 active thread per recovery round —
        // exactly the Table III behaviour the paper's heuristics fix.
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(32);
        let config = SchemeConfig { n_chunks: 32, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let sre = run_with_policy(&job, RecoveryPolicy::Sre);
        let rr = run_with_policy(&job, RecoveryPolicy::RoundRobin);
        assert!(
            rr.avg_active_threads_during_recovery()
                > 2.0 * sre.avg_active_threads_during_recovery(),
            "RR must activate far more threads than SRE (rr={}, sre={})",
            rr.avg_active_threads_during_recovery(),
            sre.avg_active_threads_during_recovery()
        );
    }

    #[test]
    fn aggressive_schemes_boost_accuracy_on_nonconvergent_machines() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(32);
        let config = SchemeConfig { n_chunks: 32, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let sre = run_with_policy(&job, RecoveryPolicy::Sre);
        let nf = run_with_policy(&job, RecoveryPolicy::NearestFirst);
        assert!(
            nf.runtime_accuracy() > sre.runtime_accuracy(),
            "NF accuracy {} must beat SRE {}",
            nf.runtime_accuracy(),
            sre.runtime_accuracy()
        );
    }

    #[test]
    fn single_chunk_degenerates_gracefully() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input = b"1101011";
        let config = SchemeConfig { n_chunks: 1, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, input, config).unwrap();
        for policy in
            [RecoveryPolicy::Sre, RecoveryPolicy::RoundRobin, RecoveryPolicy::NearestFirst]
        {
            let out = run_with_policy(&job, policy);
            assert_eq!(out.end_state, d.run(input));
            assert_eq!(out.verification_checks, 0);
        }
    }
}
