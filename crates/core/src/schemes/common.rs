//! Machinery shared by the speculative schemes: the prediction + parallel
//! speculative execution phases (Algorithm 2 lines 2-7).

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    block_dims_width, try_launch_grid_unfolded, BlockDim, BlockRequirements, FaultDomain,
    GridKernel, KernelStats, RoundKernel, RoundOutcome, ThreadCtx,
};

use crate::predict::{predict, Prediction};
use crate::records::{VrRecord, VrSlice, VrStore};
use crate::recovery::{apply_grid_recovery, BlockRecoveryCtx};
use crate::schemes::Job;
use crate::specq::SpecQueue;
use crate::table::DeviceTable;

/// Result of the common prediction + speculative execution phases.
pub struct ExecPhase {
    /// Chunk ranges `Π`.
    pub chunks: Vec<Range<usize>>,
    /// Speculation queues `QS_i` (partially dequeued by the exec phase).
    pub queues: Vec<SpecQueue>,
    /// Record store `VR` seeded with the speculative execution results.
    pub vr: VrStore,
    /// Current best-guess end state per chunk (the end of the top-ranked
    /// speculative path).
    pub ends: Vec<StateId>,
    /// The start state each chunk's primary path speculated.
    pub spec_starts: Vec<StateId>,
    /// Accepting-state visits along each chunk's primary path (all zero when
    /// match counting is disabled).
    pub counts: Vec<u64>,
    /// Prediction kernel cost (`C`).
    pub predict_stats: KernelStats,
    /// Speculative execution kernel cost (`T_par`, with the spec-k
    /// redundancy factor α_k baked in when `k > 1`).
    pub exec_stats: KernelStats,
}

/// Runs prediction and the parallel speculative execution with `k` paths per
/// thread (`k = 1` for everything except PM).
pub fn exec_phase(job: &Job<'_>, k: usize) -> ExecPhase {
    let chunks = job.chunks();
    let Prediction { mut queues, stats: predict_stats } =
        predict(job.table.dfa(), job.input, &chunks, job.config.lookback, job.spec);
    // PM stores its k speculative paths in the thread's own registers, so the
    // own-record window must fit them.
    let own_cap = job.config.vr_end_registers.max(k);
    let mut vr = VrStore::new(chunks.len(), own_cap, job.config.vr_others_registers);
    let mut kernel = ExecKernel {
        job,
        table: job.table,
        input: job.input,
        chunks: &chunks,
        queues: &mut queues,
        vr: &mut vr,
        k,
        count_matches: job.config.count_matches,
        ends: vec![0; chunks.len()],
        spec_starts: vec![0; chunks.len()],
        counts: vec![0; chunks.len()],
    };
    let (mut grid, width) = try_launch_grid_unfolded(job.spec, chunks.len(), &mut kernel)
        .unwrap_or_else(|e| panic!("launch_grid: {e}"));
    // Fault overlay: charge retries/backoff/degradation onto struck blocks
    // (a no-op without a fault plan — `fold` then reproduces `launch_grid`
    // bit-for-bit). A degraded block's sequential re-exec walks the block's
    // chunk window from the first chunk's speculated start.
    let dims = block_dims_width(width as usize, chunks.len());
    let ctxs: Vec<BlockRecoveryCtx> = dims
        .iter()
        .map(|d| BlockRecoveryCtx {
            window: chunks[d.tids.start].start..chunks[d.tids.end - 1].end,
            start: kernel.spec_starts[d.tids.start],
            checks: 0,
            matches: 0,
        })
        .collect();
    apply_grid_recovery(job, FaultDomain::Exec, &mut grid, &ctxs);
    let exec_stats = grid.fold();
    let mut ends = kernel.ends;
    let spec_starts = kernel.spec_starts;
    let counts = kernel.counts;
    // Speculative-state corruption: poison the struck chunk's records (their
    // starts become unmatchable, so every verification scan misses) and skew
    // its speculated end (so any consumer trusting it — block incomings —
    // mispredicts). Verification and the boundary stitch must catch both;
    // chunk 0 is never corrupted because its start is ground truth.
    if let Some(plan) = job.config.faults {
        if plan.corrupt_permille > 0 {
            let n_states = job.table.dfa().n_states();
            for (cid, end) in ends.iter_mut().enumerate().take(chunks.len()).skip(1) {
                if plan.corrupts(cid) {
                    vr.poison_chunk(cid, StateId::MAX);
                    if n_states > 1 {
                        *end = (*end + 1) % n_states;
                    }
                }
            }
        }
    }
    ExecPhase { chunks, queues, vr, ends, spec_starts, counts, predict_stats, exec_stats }
}

struct ExecKernel<'a> {
    job: &'a Job<'a>,
    table: &'a DeviceTable<'a>,
    input: &'a [u8],
    chunks: &'a [Range<usize>],
    queues: &'a mut [SpecQueue],
    vr: &'a mut VrStore,
    k: usize,
    count_matches: bool,
    ends: Vec<StateId>,
    spec_starts: Vec<StateId>,
    counts: Vec<u64>,
}

/// One grid block of the speculative execution: chunks are one-to-one with
/// threads and share nothing, so a block is just a disjoint window of the
/// job's state, addressed by global thread id.
struct ExecBlock<'s> {
    table: &'s DeviceTable<'s>,
    input: &'s [u8],
    chunks: &'s [Range<usize>],
    base: usize,
    queues: &'s mut [SpecQueue],
    vr: VrSlice<'s>,
    k: usize,
    count_matches: bool,
    ends: &'s mut [StateId],
    spec_starts: &'s mut [StateId],
    counts: &'s mut [u64],
}

impl RoundKernel for ExecBlock<'_> {
    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let rel = tid - self.base;
        // Dequeue up to k speculative start states (chunk 0 has exactly one,
        // the machine's certain start state).
        let mut starts: Vec<StateId> = Vec::with_capacity(self.k);
        for _ in 0..self.k {
            match self.queues[rel].dequeue(ctx) {
                Some(s) => starts.push(s),
                None => break,
            }
        }
        debug_assert!(!starts.is_empty(), "the lookback queue is never empty");
        let mut states = starts.clone();
        let mut counts = vec![0u64; starts.len()];
        self.table.run_chunk_multi_with(
            ctx,
            self.input,
            self.chunks[tid].clone(),
            &mut states,
            &mut counts,
            self.count_matches,
        );
        for ((s0, s1), m) in starts.iter().zip(states.iter()).zip(counts.iter()) {
            self.vr.push_own(tid, VrRecord { start: *s0, end: *s1, matches: *m });
        }
        self.spec_starts[rel] = starts[0];
        self.ends[rel] = states[0];
        self.counts[rel] = counts[0];
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }
}

impl GridKernel for ExecKernel<'_> {
    type Block<'s>
        = ExecBlock<'s>
    where
        Self: 's;

    fn requirements(&self, width: u32) -> BlockRequirements {
        self.job.exec_requirements(width)
    }

    fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<ExecBlock<'s>> {
        let lens: Vec<usize> = dims.iter().map(BlockDim::len).collect();
        let vr_slices = self.vr.split_lens(&lens);
        let mut queues: &'s mut [SpecQueue] = self.queues;
        let mut ends: &'s mut [StateId] = &mut self.ends;
        let mut spec_starts: &'s mut [StateId] = &mut self.spec_starts;
        let mut counts: &'s mut [u64] = &mut self.counts;
        let mut out = Vec::with_capacity(dims.len());
        for (dim, vr) in dims.iter().zip(vr_slices) {
            let (q, q_rest) = queues.split_at_mut(dim.len());
            let (e, e_rest) = ends.split_at_mut(dim.len());
            let (s, s_rest) = spec_starts.split_at_mut(dim.len());
            let (c, c_rest) = counts.split_at_mut(dim.len());
            queues = q_rest;
            ends = e_rest;
            spec_starts = s_rest;
            counts = c_rest;
            out.push(ExecBlock {
                table: self.table,
                input: self.input,
                chunks: self.chunks,
                base: dim.tids.start,
                queues: q,
                vr,
                k: self.k,
                count_matches: self.count_matches,
                ends: e,
                spec_starts: s,
                counts: c,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeConfig;
    use crate::table::DeviceTable;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::DeviceSpec;

    #[test]
    fn exec_phase_records_speculative_paths() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1011010110101101".repeat(4);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let phase = exec_phase(&job, 1);
        assert_eq!(phase.ends.len(), 8);
        // Chunk 0 ran from the real start: its end is ground truth.
        let truth0 = d.run(&input[phase.chunks[0].clone()]);
        assert_eq!(phase.ends[0], truth0);
        // Every chunk has exactly one record matching its speculation.
        for i in 0..8 {
            assert_eq!(phase.vr.len(i), 1);
            assert_eq!(phase.vr.find(i, phase.spec_starts[i]).map(|r| r.end), Some(phase.ends[i]));
        }
        assert!(phase.exec_stats.cycles > 0);
    }

    #[test]
    fn spec_k_multiplies_table_work_not_input_loads() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"10110101".repeat(32);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let k1 = exec_phase(&job, 1);
        let k4 = exec_phase(&job, 4);
        assert!(k4.exec_stats.shared_accesses > 3 * k1.exec_stats.shared_accesses);
        assert_eq!(
            k4.exec_stats.global_transactions, k1.exec_stats.global_transactions,
            "input loads are shared across the k paths"
        );
        // The redundancy factor α_k > 1 (Fig 3's premise).
        assert!(k4.exec_stats.cycles > k1.exec_stats.cycles);
    }

    #[test]
    fn spec_k_records_every_path() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"10110101".repeat(32);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let phase = exec_phase(&job, 4);
        // div7 queues hold all 7 residues; with k=4 each non-first chunk gets
        // 4 records.
        for i in 1..8 {
            assert_eq!(phase.vr.len(i), 4, "chunk {i}");
        }
    }
}
