//! The parallelization schemes integrated in GSpecPal.
//!
//! Every scheme follows the three-phase structure of Equation 1:
//! prediction (`C`), parallel speculative execution (`T_par`), and
//! verification & recovery (`T_v&r`). The phases run as separate simulated
//! kernels; their costs are reported per phase in [`RunOutcome`].
//!
//! All schemes are *exact*: whatever they speculate, the verified result
//! equals the sequential run (the paper's correctness contract, enforced by
//! the property tests in `tests/`).

mod common;
mod enumerative;
mod naive;
mod nf;
mod pm;
mod rr;
mod sequential;
mod sre;
mod stitch;
mod vr_kernel;

pub use common::{exec_phase, ExecPhase};

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::DeviceSpec;

use crate::config::SchemeConfig;
use crate::partition::partition;
use crate::run::{RunOutcome, SchemeKind};
use crate::table::DeviceTable;

/// One FSM-processing job: a device, a device-resident table, an input
/// stream, and the scheme configuration.
#[derive(Clone, Debug)]
pub struct Job<'a> {
    /// Device to simulate on.
    pub spec: &'a DeviceSpec,
    /// The machine, already laid out for the device (§IV-B).
    pub table: &'a DeviceTable<'a>,
    /// The input stream.
    pub input: &'a [u8],
    /// Scheme parameters.
    pub config: SchemeConfig,
}

impl<'a> Job<'a> {
    /// Creates a job, validating the configuration.
    pub fn new(
        spec: &'a DeviceSpec,
        table: &'a DeviceTable<'a>,
        input: &'a [u8],
        config: SchemeConfig,
    ) -> Result<Self, crate::error::CoreError> {
        config.validate(input.len())?;
        Ok(Job { spec, table, input, config })
    }

    /// The chunk partition `Π` of this job's input.
    pub fn chunks(&self) -> Vec<Range<usize>> {
        partition(self.input.len(), self.config.n_chunks)
    }

    /// Ground truth end state, computed host-side (for tests/verification).
    pub fn truth(&self) -> StateId {
        self.table.dfa().run(self.input)
    }
}

/// Runs `kind` on `job` and returns the outcome.
pub fn run_scheme(kind: SchemeKind, job: &Job<'_>) -> RunOutcome {
    match kind {
        SchemeKind::Sequential => sequential::run(job),
        SchemeKind::Naive => naive::run(job),
        SchemeKind::Enumerative => enumerative::run(job),
        SchemeKind::Pm => pm::run(job),
        SchemeKind::Sre => sre::run(job),
        SchemeKind::Rr => rr::run(job),
        SchemeKind::Nf => nf::run(job),
    }
}
