//! The parallelization schemes integrated in GSpecPal.
//!
//! Every scheme follows the three-phase structure of Equation 1:
//! prediction (`C`), parallel speculative execution (`T_par`), and
//! verification & recovery (`T_v&r`). The phases run as separate simulated
//! kernels; their costs are reported per phase in [`RunOutcome`].
//!
//! All schemes are *exact*: whatever they speculate, the verified result
//! equals the sequential run (the paper's correctness contract, enforced by
//! the property tests in `tests/`).

mod common;
mod enumerative;
mod naive;
mod nf;
mod pm;
mod rr;
mod sequential;
mod sfa;
mod sre;
mod stitch;
mod vr_kernel;

pub use common::{exec_phase, ExecPhase};
pub use sfa::compose_mappings;

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    block_dims_width, fit_block_width, max_resident_blocks, BlockDim, BlockRequirements, DeviceSpec,
};

use crate::config::SchemeConfig;
use crate::partition::partition;
use crate::run::{RunOutcome, SchemeKind};
use crate::table::DeviceTable;

/// One FSM-processing job: a device, a device-resident table, an input
/// stream, and the scheme configuration.
#[derive(Clone, Debug)]
pub struct Job<'a> {
    /// Device to simulate on.
    pub spec: &'a DeviceSpec,
    /// The machine, already laid out for the device (§IV-B).
    pub table: &'a DeviceTable<'a>,
    /// The input stream.
    pub input: &'a [u8],
    /// Scheme parameters.
    pub config: SchemeConfig,
}

impl<'a> Job<'a> {
    /// Creates a job, validating the configuration.
    pub fn new(
        spec: &'a DeviceSpec,
        table: &'a DeviceTable<'a>,
        input: &'a [u8],
        config: SchemeConfig,
    ) -> Result<Self, crate::error::CoreError> {
        config.validate(input.len())?;
        let job = Job { spec, table, input, config };
        // Launchability gate: if even a one-thread block of the execution or
        // verification kernels exceeds the SM (a hot table bigger than shared
        // memory), reject the job here instead of panicking mid-scheme.
        for req in [job.exec_requirements(1), job.vr_requirements(1), job.sfa_requirements(1)] {
            if max_resident_blocks(spec, &req) == 0 {
                return Err(crate::error::CoreError::Unlaunchable {
                    shared_bytes: req.shared_bytes,
                    shared_available: spec.shared_mem_bytes,
                });
            }
        }
        Ok(job)
    }

    /// The chunk partition `Π` of this job's input.
    pub fn chunks(&self) -> Vec<Range<usize>> {
        partition(self.input.len(), self.config.n_chunks)
    }

    /// Ground truth end state, computed host-side (for tests/verification).
    pub fn truth(&self) -> StateId {
        self.table.dfa().run(self.input)
    }

    /// Shared-memory bytes of per-thread device state in the speculation
    /// kernels: the staged speculation queue — up to `VR^others` records plus
    /// the thread's own forwarded end states — at 8 bytes per record slot
    /// (start, end, match count packed), plus a 16-byte staging slot for the
    /// boundary exchange. Queues longer than the state count are pointless
    /// (a record per distinct start state at most), so the slot count is
    /// clamped there.
    fn shared_bytes_per_thread(&self) -> usize {
        let slots = (self.config.vr_others_registers + self.config.spec_k + 1)
            .min(self.table.dfa().n_states() as usize + 1);
        8 * slots + 16
    }

    /// Per-block resources of the speculative-execution kernels (the `T_par`
    /// phase): the hot table in shared memory, per-thread speculation queues,
    /// and registers for the VR^end window plus the spec-k path states.
    /// Register counts are capped at 255, the hardware per-thread spill cap.
    pub fn exec_requirements(&self, threads: u32) -> BlockRequirements {
        let own = self.config.vr_end_registers.max(self.config.spec_k);
        let regs = (16 + 4 * own + 2 * self.config.spec_k).min(255) as u32;
        BlockRequirements {
            threads,
            shared_bytes: self.table.shared_footprint_bytes()
                + threads as usize * self.shared_bytes_per_thread(),
            regs_per_thread: regs,
        }
    }

    /// Per-block resources of the verification & recovery kernels (the
    /// `T_v&r` phase): the hot table, the staged `VR^others` queues, and
    /// registers for the full record window (VR^end + VR^others, 4 registers
    /// per record) plus loop state.
    pub fn vr_requirements(&self, threads: u32) -> BlockRequirements {
        let records =
            self.config.vr_end_registers.max(self.config.spec_k) + self.config.vr_others_registers;
        let regs = (24 + 4 * records).min(255) as u32;
        BlockRequirements {
            threads,
            shared_bytes: self.table.shared_footprint_bytes()
                + threads as usize * self.shared_bytes_per_thread(),
            regs_per_thread: regs,
        }
    }

    /// Per-block resources of the enumerative kernels: the hot table in
    /// shared memory and a register per live state mapping entry (clamped —
    /// big machines spill the map to local memory rather than registers).
    pub fn enumerative_requirements(&self, threads: u32) -> BlockRequirements {
        let live = (self.table.dfa().n_states() as usize).min(120);
        BlockRequirements {
            threads,
            shared_bytes: self.table.shared_footprint_bytes(),
            regs_per_thread: (16 + 2 * live).min(255) as u32,
        }
    }

    /// Per-block resources of the SFA mapping kernels: the hot table in
    /// shared memory plus one live-path slot set per thread — 4 bytes per
    /// distinct live state (clamped at 64; wider mappings spill to local
    /// memory) and a 16-byte epoch/indirection header. Registers hold the
    /// dedup cursor set, clamped like the enumerative map.
    pub fn sfa_requirements(&self, threads: u32) -> BlockRequirements {
        let width = (self.table.dfa().n_states() as usize).min(64);
        BlockRequirements {
            threads,
            shared_bytes: self.table.shared_footprint_bytes() + threads as usize * (4 * width + 16),
            regs_per_thread: (16 + 2 * width.min(120)).min(255) as u32,
        }
    }

    /// The block partition the VR-based schemes launch for `n_threads`
    /// chunk-owning threads: blocks as wide as the occupancy calculator lets
    /// the verification kernel be on this device.
    pub fn vr_dims(&self, n_threads: usize) -> Vec<BlockDim> {
        let width = fit_block_width(self.spec, |w| self.vr_requirements(w))
            .expect("Job::new checked launchability");
        block_dims_width(width as usize, n_threads)
    }
}

/// Runs `kind` on `job` and returns the outcome.
pub fn run_scheme(kind: SchemeKind, job: &Job<'_>) -> RunOutcome {
    match kind {
        SchemeKind::Sequential => sequential::run(job),
        SchemeKind::Naive => naive::run(job),
        SchemeKind::Enumerative => enumerative::run(job),
        SchemeKind::Pm => pm::run(job),
        SchemeKind::Sre => sre::run(job),
        SchemeKind::Rr => rr::run(job),
        SchemeKind::Nf => nf::run(job),
        SchemeKind::Sfa => sfa::run(job),
    }
}
