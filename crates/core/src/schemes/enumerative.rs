//! Fully enumerative data-parallel FSM execution (Mytkowicz et al. [23]).
//!
//! Each thread computes its chunk's *complete* transition function — the end
//! state for every possible start state — so connecting chunks afterwards is
//! a pure function composition that can never miss. This is the
//! zero-speculation upper bound on redundancy (`k = |Q|`), useful as a
//! correctness oracle and to show why speculation is needed at all: the
//! execution phase costs |Q| table lookups per input byte.

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    block_dims_width, fit_block_width, launch_blocks_auto, launch_grid, BlockDim,
    BlockRequirements, GridKernel, KernelStats, Phase, RoundKernel, RoundOutcome, ThreadCtx,
};

use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::stitch::fold_grid;
use crate::schemes::Job;
use crate::table::DeviceTable;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    let chunks = job.chunks();
    let n = chunks.len();
    let n_states = job.table.dfa().n_states();

    let mut exec = ExecKernel {
        job,
        table: job.table,
        input: job.input,
        chunks: &chunks,
        maps: vec![Vec::new(); n],
        counts: vec![Vec::new(); n],
        count_matches: job.config.count_matches,
        n_states,
    };
    let exec_stats = launch_grid(job.spec, n, &mut exec);
    let maps = exec.maps;
    let count_maps = exec.counts;

    // Merge: per-block parallel function composition (log2(B) rounds; each
    // thread composes |Q| entries), then one compose round per extra block to
    // fold the block functions together — kept as a cost model; the final
    // walk below is the same composition restricted to the ground-truth path.
    let mut verify = KernelStats::default();
    if n > 1 {
        // The same occupancy-fitted width the exec grid used, so the merge
        // cost model sees the real block partition.
        let width = fit_block_width(job.spec, |w| job.enumerative_requirements(w))
            .expect("Job::new checked launchability");
        let dims = block_dims_width(width as usize, n);
        let mut merges: Vec<(usize, ComposeKernel)> = dims
            .iter()
            .filter(|d| d.len() > 1)
            .map(|d| {
                (
                    d.len(),
                    ComposeKernel {
                        q: u64::from(n_states),
                        rounds_left: d.len().next_power_of_two().ilog2(),
                    },
                )
            })
            .collect();
        if !merges.is_empty() {
            fold_grid(&mut verify, &launch_blocks_auto(job.spec, &mut merges));
        }
        if dims.len() > 1 {
            let mut fold = ComposeKernel {
                q: u64::from(n_states),
                rounds_left: dims.len().next_power_of_two().ilog2(),
            };
            // One thread per block function; the compose cost is modelled by
            // the round count, so a grid wider than one block (n > capacity²)
            // still fits by folding more functions per thread.
            let width = dims.len().min(job.spec.max_threads_per_block as usize);
            verify.merge_sequential(&gspecpal_gpu::launch(job.spec, width, &mut fold));
        }
    }

    // Ground-truth walk through the per-chunk functions (host side; the
    // device paid for it in the compose rounds).
    let mut ends = Vec::with_capacity(n);
    let mut cur = job.table.dfa().start();
    let mut total_matches = 0u64;
    for (map, cmap) in maps.iter().zip(&count_maps) {
        total_matches += cmap[cur as usize];
        cur = map[cur as usize];
        ends.push(cur);
    }

    let checks = (n - 1) as u64;
    RunOutcome {
        scheme: SchemeKind::Enumerative,
        end_state: cur,
        accepted: job.table.dfa().is_accepting(cur),
        chunk_ends: ends,
        predict: KernelStats::default(),
        execute: exec_stats,
        verify,
        verification_checks: checks,
        verification_matches: checks,
        match_count: job.config.count_matches.then_some(total_matches),
        frontier_trace: Vec::new(),
    }
}

struct ExecKernel<'a, 'j> {
    job: &'a Job<'a>,
    table: &'a DeviceTable<'j>,
    input: &'a [u8],
    chunks: &'a [Range<usize>],
    maps: Vec<Vec<StateId>>,
    counts: Vec<Vec<u64>>,
    count_matches: bool,
    n_states: u32,
}

/// One grid block of the enumerative execution: chunks are independent, so a
/// block is a disjoint window of the per-chunk function tables.
struct ExecBlock<'s, 'j> {
    table: &'s DeviceTable<'j>,
    input: &'s [u8],
    chunks: &'s [Range<usize>],
    base: usize,
    maps: &'s mut [Vec<StateId>],
    counts: &'s mut [Vec<u64>],
    count_matches: bool,
    n_states: u32,
}

impl RoundKernel for ExecBlock<'_, '_> {
    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let rel = tid - self.base;
        let mut states: Vec<StateId> = (0..self.n_states).collect();
        let mut counts = vec![0u64; self.n_states as usize];
        self.table.run_chunk_multi_with(
            ctx,
            self.input,
            self.chunks[tid].clone(),
            &mut states,
            &mut counts,
            self.count_matches,
        );
        self.maps[rel] = states;
        self.counts[rel] = counts;
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }
}

impl<'j> GridKernel for ExecKernel<'_, 'j> {
    type Block<'s>
        = ExecBlock<'s, 'j>
    where
        Self: 's;

    fn requirements(&self, width: u32) -> BlockRequirements {
        self.job.enumerative_requirements(width)
    }

    fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<ExecBlock<'s, 'j>> {
        let mut maps: &'s mut [Vec<StateId>] = &mut self.maps;
        let mut counts: &'s mut [Vec<u64>] = &mut self.counts;
        let mut out = Vec::with_capacity(dims.len());
        for dim in dims {
            let (m, m_rest) = maps.split_at_mut(dim.len());
            let (c, c_rest) = counts.split_at_mut(dim.len());
            maps = m_rest;
            counts = c_rest;
            out.push(ExecBlock {
                table: self.table,
                input: self.input,
                chunks: self.chunks,
                base: dim.tids.start,
                maps: m,
                counts: c,
                count_matches: self.count_matches,
                n_states: self.n_states,
            });
        }
        out
    }
}

struct ComposeKernel {
    q: u64,
    rounds_left: u32,
}

impl RoundKernel for ComposeKernel {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        // One |Q|-entry function map staged through shared memory per round.
        BlockRequirements { threads, shared_bytes: 4 * self.q as usize, regs_per_thread: 32 }
    }

    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        // Compose |Q| entries through shared memory.
        ctx.shared(self.q);
        ctx.alu(self.q);
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.rounds_left -= 1;
        self.rounds_left > 0
    }

    /// Function composition connects already-executed chunks: verification
    /// work, never input re-execution.
    fn phase(&self) -> Phase {
        Phase::Verify
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SchemeConfig;
    use crate::run::SchemeKind;
    use crate::schemes::{run_scheme, Job};
    use crate::table::DeviceTable;
    use gspecpal_fsm::examples::{div7, fig4_dfa};
    use gspecpal_gpu::DeviceSpec;

    #[test]
    fn enumerative_exact_and_recovery_free() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"110101011001".repeat(8);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Enumerative, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.recovery_runs(), 0);
        assert!((out.runtime_accuracy() - 1.0).abs() < 1e-12);
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s, "chunk {i}");
        }
    }

    #[test]
    fn enumerative_exact_across_block_boundaries() {
        let d = div7();
        let spec = DeviceSpec::test_unit(); // 64-thread blocks
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"110101011001".repeat(50);
        let config = SchemeConfig { n_chunks: 150, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Enumerative, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.recovery_runs(), 0);
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s, "chunk {i}");
        }
    }

    #[test]
    fn enumerative_costs_scale_with_state_count() {
        let spec = DeviceSpec::test_unit();
        let input: Vec<u8> = b"ab /* x */ cd".repeat(8);
        let config = SchemeConfig { n_chunks: 4, ..SchemeConfig::default() };

        let d4 = fig4_dfa(); // 4 states
        let t4 = DeviceTable::transformed(&d4, d4.n_states());
        let job4 = Job::new(&spec, &t4, &input, config).unwrap();
        let out4 = run_scheme(SchemeKind::Enumerative, &job4);

        let d7 = div7(); // 7 states
        let t7 = DeviceTable::transformed(&d7, d7.n_states());
        let job7 = Job::new(&spec, &t7, &input, config).unwrap();
        let out7 = run_scheme(SchemeKind::Enumerative, &job7);

        assert!(out7.execute.shared_accesses > out4.execute.shared_accesses);
    }
}
