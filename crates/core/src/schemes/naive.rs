//! Algorithm 2: default speculative DFA parallelization with *sequential*
//! verification and recovery.
//!
//! After the parallel spec-1 execution, a single walker visits chunks in
//! order: if the predecessor's verified end state matches the chunk's
//! speculated start, the chunk's result is reused; otherwise the chunk is
//! re-executed — one thread active, all others idle. This is the
//! under-utilization the paper's aggressive recovery attacks.

use gspecpal_fsm::StateId;
use gspecpal_gpu::{launch, RoundKernel, RoundOutcome, ThreadCtx};

use crate::records::VrStore;
use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::common::exec_phase;
use crate::schemes::Job;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    let phase = exec_phase(job, 1);
    let n = phase.chunks.len();
    let mut kernel = VerifyKernel {
        job,
        chunks: &phase.chunks,
        vr: phase.vr,
        ends: phase.ends,
        counts: phase.counts,
        cursor: 1,
        checks: 0,
        matches: 0,
        frontier_trace: Vec::new(),
    };
    let verify = if n > 1 {
        launch(job.spec, n, &mut kernel)
    } else {
        Default::default()
    };
    let end_state = *kernel.ends.last().expect("at least one chunk");
    RunOutcome {
        scheme: SchemeKind::Naive,
        end_state,
        accepted: job.table.dfa().is_accepting(end_state),
        chunk_ends: kernel.ends,
        predict: phase.predict_stats,
        execute: phase.exec_stats,
        verify,
        verification_checks: kernel.checks,
        verification_matches: kernel.matches,
        match_count: job.config.count_matches.then(|| kernel.counts.iter().sum()),
        frontier_trace: kernel.frontier_trace,
    }
}

struct VerifyKernel<'a, 'j> {
    job: &'a Job<'j>,
    chunks: &'a [std::ops::Range<usize>],
    vr: VrStore,
    /// ends[i] becomes the *verified* end state of chunk i once the cursor
    /// passes it.
    ends: Vec<StateId>,
    counts: Vec<u64>,
    cursor: usize,
    checks: u64,
    matches: u64,
    frontier_trace: Vec<u32>,
}

impl RoundKernel for VerifyKernel<'_, '_> {
    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        if tid != self.cursor {
            return RoundOutcome::IDLE;
        }
        // Receive the verified end state of the predecessor chunk.
        let end_p = self.ends[tid - 1];
        ctx.shuffle(1);
        self.checks += 1;
        match self.vr.scan(ctx, tid, end_p) {
            Some(rec) => {
                self.matches += 1;
                self.ends[tid] = rec.end;
                self.counts[tid] = rec.matches;
                RoundOutcome::ACTIVE
            }
            None => {
                // Must-be-done recovery: re-execute from the verified state.
                let t0 = ctx.cycles();
                let run = self.job.table.run_chunk_with(
                    ctx,
                    self.job.input,
                    self.chunks[tid].clone(),
                    end_p,
                    self.job.config.count_matches,
                );
                ctx.credit_recovery(t0);
                self.ends[tid] = run.end;
                self.counts[tid] = run.matches;
                RoundOutcome::RECOVERING
            }
        }
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.cursor += 1;
        self.frontier_trace.push(self.cursor as u32);
        self.cursor < self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SchemeConfig;
    use crate::run::SchemeKind;
    use crate::schemes::{run_scheme, Job};
    use crate::table::DeviceTable;
    use gspecpal_fsm::examples::{div7, fig4_dfa};
    use gspecpal_gpu::DeviceSpec;

    #[test]
    fn naive_is_exact_on_nonconvergent_machine() {
        // div7 defeats prediction, so naive recovers on ~6/7 of chunks — and
        // must still be exact.
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(8);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Naive, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert!(out.recovery_runs() > 0, "div7 must trigger recoveries");
        // Sequential recovery: exactly one thread active per recovery round.
        assert!((out.avg_active_threads_during_recovery() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn naive_is_exact_on_convergent_machine() {
        let d = fig4_dfa();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"a /* xx */ b // /*y*/ ".repeat(8);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Naive, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.accepted, d.accepts(&input));
    }
}
