//! Algorithm 2: default speculative DFA parallelization with *sequential*
//! verification and recovery.
//!
//! After the parallel spec-1 execution, a walker visits chunks in order: if
//! the predecessor's verified end state matches the chunk's speculated
//! start, the chunk's result is reused; otherwise the chunk is re-executed —
//! one thread active, all others idle. This is the under-utilization the
//! paper's aggressive recovery attacks.
//!
//! The walk communicates through shared memory, so at grid scale each block
//! walks its own chunk window from a block-level speculated incoming state
//! (all blocks in parallel, one walker per block) and the boundary stitch
//! validates the seams afterwards — see [`crate::schemes::stitch`].

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    launch_blocks_auto, BlockDim, BlockRequirements, FaultDomain, KernelStats, Phase, RoundKernel,
    RoundOutcome, ThreadCtx,
};

use crate::records::{VrRecord, VrSlice};
use crate::recovery::{apply_grid_recovery, BlockRecoveryCtx};
use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::common::exec_phase;
use crate::schemes::stitch::{fold_grid, stitch_blocks};
use crate::schemes::Job;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    let phase = exec_phase(job, 1);
    let chunks = phase.chunks;
    let mut vr = phase.vr;
    let mut ends = phase.ends;
    let mut counts = phase.counts;
    let n = chunks.len();

    let mut verify = KernelStats::default();
    let mut checks = 0u64;
    let mut matches = 0u64;
    let mut frontier_trace = Vec::new();

    if n > 1 {
        let dims = job.vr_dims(n);
        let incomings: Vec<StateId> =
            dims.iter().map(|d| if d.index == 0 { 0 } else { ends[d.tids.start - 1] }).collect();
        let lens: Vec<usize> = dims.iter().map(BlockDim::len).collect();
        {
            let vr_slices = vr.split_lens(&lens);
            let mut e_rest: &mut [StateId] = &mut ends;
            let mut c_rest: &mut [u64] = &mut counts;
            let mut blocks: Vec<(usize, NaiveBlock<'_, '_>)> = Vec::with_capacity(dims.len());
            for (dim, vr_slice) in dims.iter().zip(vr_slices) {
                let (e, er) = e_rest.split_at_mut(dim.len());
                let (c, cr) = c_rest.split_at_mut(dim.len());
                e_rest = er;
                c_rest = cr;
                blocks.push((
                    dim.len(),
                    NaiveBlock {
                        job,
                        chunks: &chunks,
                        base: dim.tids.start,
                        n_local: dim.len(),
                        incoming: incomings[dim.index],
                        vr: vr_slice,
                        ends: e,
                        counts: c,
                        cursor: usize::from(dim.index == 0),
                        recovered: false,
                        checks: 0,
                        matches: 0,
                        frontier_trace: Vec::new(),
                    },
                ));
            }
            let mut grid = launch_blocks_auto(job.spec, &mut blocks);
            // Fault overlay on the walk: a struck block retries with backoff
            // and, on exhaustion (or a tripped misspeculation ladder),
            // degrades to a sequential re-walk of its chunk window from its
            // speculated incoming state.
            let ctxs: Vec<BlockRecoveryCtx> = dims
                .iter()
                .map(|d| BlockRecoveryCtx {
                    window: chunks[d.tids.start].start..chunks[d.tids.end - 1].end,
                    start: incomings[d.index],
                    checks: blocks[d.index].1.checks,
                    matches: blocks[d.index].1.matches,
                })
                .collect();
            apply_grid_recovery(job, FaultDomain::Verify, &mut grid, &ctxs);
            fold_grid(&mut verify, &grid);
            for (_, block) in blocks {
                checks += block.checks;
                matches += block.matches;
                frontier_trace.extend_from_slice(&block.frontier_trace);
            }
        }
        let stitched =
            stitch_blocks(job, &chunks, &dims, &incomings, &mut vr, &mut ends, &mut counts);
        verify.merge_sequential(&stitched.stats);
        checks += stitched.checks;
        matches += stitched.matches;
    }

    let end_state = *ends.last().expect("at least one chunk");
    RunOutcome {
        scheme: SchemeKind::Naive,
        end_state,
        accepted: job.table.dfa().is_accepting(end_state),
        chunk_ends: ends,
        predict: phase.predict_stats,
        execute: phase.exec_stats,
        verify,
        verification_checks: checks,
        verification_matches: matches,
        match_count: job.config.count_matches.then(|| counts.iter().sum()),
        frontier_trace,
    }
}

/// One block's sequential walk over its chunk window. `ends`/`counts` are
/// the block's slices (relative indexing); record accesses go through the
/// block's [`VrSlice`] by global chunk id.
struct NaiveBlock<'a, 'j> {
    job: &'a Job<'j>,
    chunks: &'a [Range<usize>],
    base: usize,
    n_local: usize,
    /// Verified (block 0) or block-speculated incoming end state for the
    /// block's first chunk.
    incoming: StateId,
    vr: VrSlice<'a>,
    /// ends[i] becomes the (block-relative) verified end state of local
    /// chunk i once the cursor passes it.
    ends: &'a mut [StateId],
    counts: &'a mut [u64],
    cursor: usize,
    /// Whether the round in flight re-executed its chunk (the cursor thread
    /// sets this every round, so it always describes the current round).
    recovered: bool,
    checks: u64,
    matches: u64,
    frontier_trace: Vec<u32>,
}

impl RoundKernel for NaiveBlock<'_, '_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.vr_requirements(threads)
    }

    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        if tid != self.cursor {
            return RoundOutcome::IDLE;
        }
        let rel = self.cursor;
        // Receive the verified end state of the predecessor chunk (the
        // block's incoming speculation for the first local chunk).
        let end_p = if rel == 0 { self.incoming } else { self.ends[rel - 1] };
        ctx.shuffle(1);
        self.checks += 1;
        match self.vr.scan(ctx, self.base + rel, end_p) {
            Some(rec) => {
                self.matches += 1;
                self.recovered = false;
                self.ends[rel] = rec.end;
                self.counts[rel] = rec.matches;
                RoundOutcome::ACTIVE
            }
            None => {
                self.recovered = true;
                // Must-be-done recovery: re-execute from the verified state.
                let t0 = ctx.cycles();
                let run = self.job.table.run_chunk_with(
                    ctx,
                    self.job.input,
                    self.chunks[self.base + rel].clone(),
                    end_p,
                    self.job.config.count_matches,
                );
                ctx.credit_recovery(t0);
                self.vr.push_own(
                    self.base + rel,
                    VrRecord { start: end_p, end: run.end, matches: run.matches },
                );
                self.ends[rel] = run.end;
                self.counts[rel] = run.matches;
                RoundOutcome::RECOVERING
            }
        }
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.cursor += 1;
        self.frontier_trace.push((self.base + self.cursor) as u32);
        self.cursor < self.n_local
    }

    /// A walk round is verification (record reuse) unless the cursor had to
    /// re-execute its chunk, which makes the whole round recovery time.
    fn phase(&self) -> Phase {
        if self.recovered {
            Phase::Recovery
        } else {
            Phase::Verify
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SchemeConfig;
    use crate::run::SchemeKind;
    use crate::schemes::{run_scheme, Job};
    use crate::table::DeviceTable;
    use gspecpal_fsm::examples::{div7, fig4_dfa};
    use gspecpal_gpu::DeviceSpec;

    #[test]
    fn naive_is_exact_on_nonconvergent_machine() {
        // div7 defeats prediction, so naive recovers on ~6/7 of chunks — and
        // must still be exact.
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(8);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Naive, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert!(out.recovery_runs() > 0, "div7 must trigger recoveries");
        // Sequential recovery: exactly one thread active per recovery round.
        assert!((out.avg_active_threads_during_recovery() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn naive_is_exact_on_convergent_machine() {
        let d = fig4_dfa();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"a /* xx */ b // /*y*/ ".repeat(8);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Naive, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.accepted, d.accepts(&input));
    }

    #[test]
    fn naive_is_exact_across_block_boundaries() {
        let d = div7();
        let spec = DeviceSpec::test_unit(); // 64-thread blocks
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(50);
        let config = SchemeConfig { n_chunks: 200, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Naive, &job);
        assert_eq!(out.end_state, d.run(&input));
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s, "chunk {i}");
        }
    }
}
