//! Block-boundary stitching for grid-scale verification (and the shared
//! grid-stats folding helper).
//!
//! A single thread block can host at most `max_threads_per_block` chunks,
//! and the verification kernels are *cooperative*: threads exchange end
//! states through shared memory and `__syncthreads()`, neither of which
//! crosses block boundaries on real hardware. Scaling past one block
//! therefore extends the paper's speculation one level up: each block runs
//! its verification loop assuming the *speculated* exec-phase end of its
//! predecessor chunk as the incoming state (block-level speculation), and a
//! host-driven pass afterwards validates the block boundaries.
//!
//! Two stitch policies exist ([`StitchPolicy`]):
//!
//! * **Sequential** — the original left-to-right seam walk: one dependent
//!   launch per mispredicted block, `O(B)` seam checks on the critical path.
//! * **Tree** — the default: seams compose pair-wise in `log2(B)` rounds,
//!   the multi-block analogue of PM's tree merge. In the round with span
//!   `s`, clusters of `s` blocks are already internally consistent with
//!   their leading block's speculated incoming state (the exec/verify
//!   phases establish this for `s = 1`); the seams between cluster pairs
//!   are checked *concurrently* (one thread per seam), and only a cluster
//!   whose leader's speculation disagrees with its left neighbour's now-
//!   known true boundary state is re-resolved — from the true state, with
//!   record hits settling chunks for the price of a scan, misses running a
//!   must-be-done recovery, and re-resolution stopping early when the
//!   rewritten end state converges with the old one (everything downstream
//!   already chains from it). Mismatched clusters at the same level are
//!   disjoint chunk ranges, so their fix-ups run as concurrent one-thread
//!   blocks, waves sized by the occupancy calculator.
//!
//! When a block's speculated incoming state turns out right (the common
//! case on convergent machines, and guaranteed for block 0), its results
//! are already exact and the stitch costs a seam check. All re-execution is
//! charged through the same simulator as chunk-level recovery.

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    launch, launch_blocks_auto, launch_grid, BlockDim, BlockRequirements, GridKernel, GridStats,
    KernelStats, Phase, RoundKernel, RoundOutcome, ThreadCtx,
};

use crate::config::StitchPolicy;
use crate::records::{VrRecord, VrSlice, VrStore};
use crate::schemes::Job;

/// Folds a heterogeneous grid launch into one sequential-equivalent stats
/// record (counters summed, event streams concatenated in block order,
/// cycles = the grid's wave-scheduled completion time, per-phase cycles from
/// each wave's gating block, occupancy shape attached) and merges it into
/// `verify` as a back-to-back kernel.
pub(crate) fn fold_grid(verify: &mut KernelStats, grid: &GridStats) {
    verify.merge_sequential(&grid.fold());
}

/// What the boundary stitch did: its simulated cost plus the verification
/// checks it performed while re-resolving mispredicted blocks.
pub(crate) struct StitchOutcome {
    pub stats: KernelStats,
    pub checks: u64,
    pub matches: u64,
}

/// Validates every block boundary under the job's [`StitchPolicy`].
/// `incomings[b]` is the state block `b` speculated as its incoming;
/// `ends`/`counts` hold the per-chunk results the blocks produced under that
/// speculation and are rewritten in place for blocks whose speculation
/// missed.
pub(crate) fn stitch_blocks(
    job: &Job<'_>,
    chunks: &[Range<usize>],
    dims: &[BlockDim],
    incomings: &[StateId],
    vr: &mut VrStore,
    ends: &mut [StateId],
    counts: &mut [u64],
) -> StitchOutcome {
    if dims.len() <= 1 {
        return StitchOutcome { stats: KernelStats::default(), checks: 0, matches: 0 };
    }
    match job.config.stitch {
        StitchPolicy::Sequential => {
            stitch_sequential(job, chunks, dims, incomings, vr, ends, counts)
        }
        StitchPolicy::Tree => stitch_tree(job, chunks, dims, incomings, vr, ends, counts),
    }
}

/// The original left-to-right seam walk: one dependent one-thread launch per
/// mispredicted block.
fn stitch_sequential(
    job: &Job<'_>,
    chunks: &[Range<usize>],
    dims: &[BlockDim],
    incomings: &[StateId],
    vr: &mut VrStore,
    ends: &mut [StateId],
    counts: &mut [u64],
) -> StitchOutcome {
    let mut out = StitchOutcome { stats: KernelStats::default(), checks: 0, matches: 0 };
    for dim in &dims[1..] {
        let lo = dim.tids.start;
        let true_in = ends[lo - 1];
        if true_in == incomings[dim.index] {
            continue; // Block speculation verified: results already exact.
        }
        let mut kernel = StitchKernel {
            job,
            chunks,
            vr,
            end: dim.tids.end,
            cursor: lo,
            state: true_in,
            ends,
            counts,
            checks: 0,
            matches: 0,
        };
        let stats = launch(job.spec, 1, &mut kernel);
        out.checks += kernel.checks;
        out.matches += kernel.matches;
        out.stats.merge_sequential(&stats);
    }
    out
}

/// Pair-wise tree stitch: `log2(B)` rounds of concurrent seam checks, with
/// mismatched clusters re-resolved as concurrent one-thread fix-up blocks.
fn stitch_tree(
    job: &Job<'_>,
    chunks: &[Range<usize>],
    dims: &[BlockDim],
    incomings: &[StateId],
    vr: &mut VrStore,
    ends: &mut [StateId],
    counts: &mut [u64],
) -> StitchOutcome {
    let b = dims.len();
    let n = chunks.len();
    let mut out = StitchOutcome { stats: KernelStats::default(), checks: 0, matches: 0 };
    let mut span = 1usize;
    while span < b {
        // Seams between cluster pairs: the leading block of every odd
        // cluster at this level. All seams are independent and checked in
        // one concurrent launch (one thread per seam).
        let seams: Vec<usize> = (span..b).step_by(2 * span).collect();
        out.stats.merge_sequential(&launch_grid(job.spec, seams.len(), &mut SeamGrid));

        // Host-side mirror of the seam comparisons: a cluster whose leader
        // speculated the (now known) true boundary state is composed for
        // free; the rest are re-resolved from the true state.
        let mut fixups: Vec<(usize, usize, StateId)> = Vec::new();
        for &right in &seams {
            let lo = dims[right].tids.start;
            let true_in = ends[lo - 1];
            if true_in == incomings[right] {
                continue;
            }
            let last_block = (right + span).min(b) - 1;
            fixups.push((lo, dims[last_block].tids.end, true_in));
        }

        if !fixups.is_empty() {
            // Mismatched clusters are disjoint chunk ranges; cover `0..n`
            // with alternating gap/fix-up segments so the record store and
            // result arrays split into disjoint views.
            let mut lens: Vec<usize> = Vec::new();
            let mut is_fix: Vec<bool> = Vec::new();
            let mut pos = 0usize;
            for &(lo, hi, _) in &fixups {
                if lo > pos {
                    lens.push(lo - pos);
                    is_fix.push(false);
                }
                lens.push(hi - lo);
                is_fix.push(true);
                pos = hi;
            }
            if pos < n {
                lens.push(n - pos);
                is_fix.push(false);
            }
            let vr_slices = vr.split_lens(&lens);
            let mut e_rest: &mut [StateId] = ends;
            let mut c_rest: &mut [u64] = counts;
            let mut fix_iter = fixups.iter();
            let mut blocks: Vec<(usize, TreeFixup<'_, '_>)> = Vec::with_capacity(fixups.len());
            for ((&len, &fix), vr_slice) in lens.iter().zip(&is_fix).zip(vr_slices) {
                let (e, er) = e_rest.split_at_mut(len);
                let (c, cr) = c_rest.split_at_mut(len);
                e_rest = er;
                c_rest = cr;
                if fix {
                    let &(lo, _, true_in) = fix_iter.next().expect("one fixup per fix segment");
                    blocks.push((
                        1,
                        TreeFixup {
                            job,
                            chunks,
                            vr: vr_slice,
                            base: lo,
                            len,
                            state: true_in,
                            ends: e,
                            counts: c,
                            cursor: 0,
                            done: false,
                            checks: 0,
                            matches: 0,
                        },
                    ));
                }
            }
            let grid = launch_blocks_auto(job.spec, &mut blocks);
            fold_grid(&mut out.stats, &grid);
            for (_, k) in blocks {
                out.checks += k.checks;
                out.matches += k.matches;
            }
        }
        span *= 2;
    }
    out
}

/// Device cost of one round of concurrent seam checks: each thread receives
/// its left neighbour's boundary state and compares it against the cluster
/// leader's speculation.
struct SeamGrid;

struct SeamBlock;

impl RoundKernel for SeamBlock {
    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        ctx.shuffle(1);
        ctx.alu(1);
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }

    fn phase(&self) -> Phase {
        Phase::Stitch
    }
}

impl GridKernel for SeamGrid {
    type Block<'s> = SeamBlock;

    fn split(&mut self, dims: &[BlockDim]) -> Vec<SeamBlock> {
        dims.iter().map(|_| SeamBlock).collect()
    }
}

/// One-thread re-resolution of a mispredicted cluster's chunks from the true
/// incoming state (tree policy): record hits are reused, misses re-executed
/// (recovery), and the walk stops early once the rewritten end state equals
/// the previous one — everything downstream already chains from it.
/// `ends`/`counts` are the cluster's slices (relative indexing); record
/// accesses go through the disjoint [`VrSlice`] by global chunk id.
struct TreeFixup<'a, 'j> {
    job: &'a Job<'j>,
    chunks: &'a [Range<usize>],
    vr: VrSlice<'a>,
    base: usize,
    len: usize,
    state: StateId,
    ends: &'a mut [StateId],
    counts: &'a mut [u64],
    cursor: usize,
    done: bool,
    checks: u64,
    matches: u64,
}

impl RoundKernel for TreeFixup<'_, '_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.vr_requirements(threads)
    }

    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let rel = self.cursor;
        let cid = self.base + rel;
        // Receive the verified end state of the predecessor chunk.
        ctx.shuffle(1);
        self.checks += 1;
        let old_end = self.ends[rel];
        let outcome = match self.vr.scan(ctx, cid, self.state) {
            Some(rec) => {
                self.matches += 1;
                self.ends[rel] = rec.end;
                self.counts[rel] = rec.matches;
                RoundOutcome::ACTIVE
            }
            None => {
                // Must-be-done recovery from the verified state.
                let t0 = ctx.cycles();
                let run = self.job.table.run_chunk_with(
                    ctx,
                    self.job.input,
                    self.chunks[cid].clone(),
                    self.state,
                    self.job.config.count_matches,
                );
                ctx.credit_recovery(t0);
                self.vr.push_own(
                    cid,
                    VrRecord { start: self.state, end: run.end, matches: run.matches },
                );
                self.ends[rel] = run.end;
                self.counts[rel] = run.matches;
                RoundOutcome::RECOVERING
            }
        };
        self.state = self.ends[rel];
        if self.state == old_end {
            // Converged: downstream chunks already chain from this state.
            self.done = true;
        }
        outcome
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.cursor += 1;
        !self.done && self.cursor < self.len
    }

    /// All fix-up work — record reuse and re-execution alike — is stitch
    /// time: it exists only because block seams must be validated.
    fn phase(&self) -> Phase {
        Phase::Stitch
    }
}

/// One-thread re-resolution of a mispredicted block's chunks from the true
/// incoming state (sequential policy): record hits are reused, misses
/// re-executed (recovery).
struct StitchKernel<'a, 'j> {
    job: &'a Job<'j>,
    chunks: &'a [Range<usize>],
    vr: &'a mut VrStore,
    end: usize,
    cursor: usize,
    state: StateId,
    ends: &'a mut [StateId],
    counts: &'a mut [u64],
    checks: u64,
    matches: u64,
}

impl RoundKernel for StitchKernel<'_, '_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.vr_requirements(threads)
    }

    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let cid = self.cursor;
        // Receive the verified end state of the predecessor chunk.
        ctx.shuffle(1);
        self.checks += 1;
        let outcome = match self.vr.scan(ctx, cid, self.state) {
            Some(rec) => {
                self.matches += 1;
                self.ends[cid] = rec.end;
                self.counts[cid] = rec.matches;
                RoundOutcome::ACTIVE
            }
            None => {
                // Must-be-done recovery from the verified state.
                let t0 = ctx.cycles();
                let run = self.job.table.run_chunk_with(
                    ctx,
                    self.job.input,
                    self.chunks[cid].clone(),
                    self.state,
                    self.job.config.count_matches,
                );
                ctx.credit_recovery(t0);
                self.vr.push_own(
                    cid,
                    VrRecord { start: self.state, end: run.end, matches: run.matches },
                );
                self.ends[cid] = run.end;
                self.counts[cid] = run.matches;
                RoundOutcome::RECOVERING
            }
        };
        self.state = self.ends[cid];
        outcome
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.cursor += 1;
        self.cursor < self.end
    }

    /// All seam-walk work — record reuse and re-execution alike — is stitch
    /// time: it exists only because block seams must be validated.
    fn phase(&self) -> Phase {
        Phase::Stitch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeConfig;
    use crate::table::DeviceTable;
    use gspecpal_fsm::combinators::keyword_dfa;
    use gspecpal_fsm::examples::div7;
    use gspecpal_fsm::Dfa;
    use gspecpal_gpu::{block_dims_width, DeviceSpec};

    /// Builds a B-block scenario over `width`-chunk blocks where every block
    /// past the first speculated the wrong incoming state `wrong`: per-chunk
    /// ends are what each block would have produced chaining from `wrong`
    /// (block 0 chains from the true start), and the stitch must rewrite
    /// them to the true chain. Returns the dims and the fabricated
    /// (incomings, ends, counts).
    #[allow(clippy::type_complexity)]
    fn wrong_block_scenario(
        d: &Dfa,
        input: &[u8],
        chunks: &[Range<usize>],
        width: usize,
        wrong: StateId,
    ) -> (Vec<BlockDim>, Vec<StateId>, Vec<StateId>, Vec<u64>) {
        let dims = block_dims_width(width, chunks.len());
        let mut ends = vec![0; chunks.len()];
        for dim in &dims {
            let mut s = if dim.index == 0 { d.start() } else { wrong };
            for cid in dim.tids.clone() {
                s = d.run_from(s, &input[chunks[cid].clone()]);
                ends[cid] = s;
            }
        }
        let incomings: Vec<StateId> =
            dims.iter().map(|d| if d.index == 0 { 0 } else { wrong }).collect();
        let counts = vec![0u64; chunks.len()];
        (dims, incomings, ends, counts)
    }

    fn truth_chain(d: &Dfa, input: &[u8], chunks: &[Range<usize>]) -> Vec<StateId> {
        let mut s = d.start();
        chunks
            .iter()
            .map(|r| {
                s = d.run_from(s, &input[r.clone()]);
                s
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn stitch_with(
        policy: StitchPolicy,
        d: &Dfa,
        table: &DeviceTable<'_>,
        spec: &DeviceSpec,
        input: &[u8],
        chunks: &[Range<usize>],
        width: usize,
        wrong: StateId,
    ) -> (Vec<StateId>, StitchOutcome) {
        let config =
            SchemeConfig { n_chunks: chunks.len(), stitch: policy, ..SchemeConfig::default() };
        let job = Job::new(spec, table, input, config).unwrap();
        let (dims, incomings, mut ends, mut counts) =
            wrong_block_scenario(d, input, chunks, width, wrong);
        let mut vr = VrStore::new(chunks.len(), 16, 16);
        let out = stitch_blocks(&job, chunks, &dims, &incomings, &mut vr, &mut ends, &mut counts);
        (ends, out)
    }

    /// Both policies repair an all-wrong block speculation to the exact
    /// sequential chain. div7's per-byte transition is a permutation of the
    /// state set, so a wrong incoming state *never* converges away — every
    /// fabricated chunk end is genuinely wrong and must be rewritten.
    #[test]
    fn both_policies_repair_wrong_speculation_exactly() {
        let d = div7();
        let spec = DeviceSpec::rtx3090();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"1101010110010111".repeat(64);
        let n_chunks = 64;
        let chunks = crate::partition::partition(input.len(), n_chunks);
        let wrong = 3;
        let truth = truth_chain(&d, &input, &chunks);
        // Sanity: the scenario is a real mispredict, not accidental truth.
        let (_, _, fabricated, _) = wrong_block_scenario(&d, &input, &chunks, 8, wrong);
        assert_ne!(fabricated, truth, "scenario must corrupt the chain");
        for policy in [StitchPolicy::Sequential, StitchPolicy::Tree] {
            let (ends, out) = stitch_with(policy, &d, &table, &spec, &input, &chunks, 8, wrong);
            assert_eq!(ends, truth, "{policy:?}");
            assert!(out.checks > 0, "{policy:?} must have re-resolved chunks");
        }
    }

    /// The tree stitch's cycle cost grows ~logarithmically in the block
    /// count while the sequential walk grows linearly. The scenario is the
    /// paper's common case on a convergent machine: every block speculated a
    /// wrong incoming state, but the machine converged inside the block's
    /// first chunk, so the per-chunk ends are already exact — only the seam
    /// validation (one re-run per mispredicted cluster, converging
    /// immediately) remains. Sequential pays one dependent re-resolution per
    /// seam; the tree pays one *concurrent* fix-up round per level.
    #[test]
    fn tree_stitch_cycles_grow_sublinearly_in_blocks() {
        let d = keyword_dfa(&[b"attack", b"worm"]).unwrap();
        let spec = DeviceSpec::rtx3090();
        let table = DeviceTable::transformed(&d, d.n_states());
        // A state the blocks never actually end in (deep keyword prefix),
        // so every seam check sees a mispredict.
        let wrong = d.n_states() - 1;
        let cycles = |policy: StitchPolicy, n_blocks: usize| {
            let n_chunks = 8 * n_blocks;
            let input = b"benign traffic attack packet worm xx ".repeat(n_chunks);
            let chunks = crate::partition::partition(input.len(), n_chunks);
            let truth = truth_chain(&d, &input, &chunks);
            assert_ne!(truth[chunks.len() / 8 - 1], wrong, "seams must mispredict");
            let config = SchemeConfig { n_chunks, stitch: policy, ..SchemeConfig::default() };
            let job = Job::new(&spec, &table, &input, config).unwrap();
            let dims = block_dims_width(8, n_chunks);
            let incomings: Vec<StateId> =
                dims.iter().map(|d| if d.index == 0 { 0 } else { wrong }).collect();
            // Convergent machine: the blocks' results are exact despite the
            // wrong speculation — the stitch still has to prove it.
            let mut ends = truth.clone();
            let mut counts = vec![0u64; n_chunks];
            let mut vr = VrStore::new(n_chunks, 16, 16);
            let out =
                stitch_blocks(&job, &chunks, &dims, &incomings, &mut vr, &mut ends, &mut counts);
            assert_eq!(ends, truth, "{policy:?} {n_blocks} blocks");
            out.stats.cycles
        };
        let seq_8 = cycles(StitchPolicy::Sequential, 8);
        let seq_64 = cycles(StitchPolicy::Sequential, 64);
        let tree_8 = cycles(StitchPolicy::Tree, 8);
        let tree_64 = cycles(StitchPolicy::Tree, 64);
        // Sequential: 8x the mispredicted seams => ~8x the cycles.
        assert!(seq_64 >= 6 * seq_8, "sequential grows linearly ({seq_8} -> {seq_64})");
        // Tree: 3 more rounds (log2 64 vs log2 8), not 8x the work.
        assert!(tree_64 <= 4 * tree_8, "tree grows ~log ({tree_8} -> {tree_64})");
        assert!(tree_64 < seq_64, "tree beats sequential at scale ({tree_64} vs {seq_64})");
    }

    /// Correct block speculation costs only the seam checks — no chunk is
    /// rewritten under either policy.
    #[test]
    fn correct_speculation_is_free_of_recovery() {
        let d = keyword_dfa(&[b"attack"]).unwrap();
        let spec = DeviceSpec::rtx3090();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input = b"benign attack stream data ".repeat(16);
        let chunks = crate::partition::partition(input.len(), 32);
        let truth = truth_chain(&d, &input, &chunks);
        for policy in [StitchPolicy::Sequential, StitchPolicy::Tree] {
            let config = SchemeConfig { n_chunks: 32, stitch: policy, ..SchemeConfig::default() };
            let job = Job::new(&spec, &table, &input, config).unwrap();
            let dims = block_dims_width(8, 32);
            // Every block speculated exactly right.
            let incomings: Vec<StateId> = dims
                .iter()
                .map(|d| if d.index == 0 { 0 } else { truth[d.tids.start - 1] })
                .collect();
            let mut ends = truth.clone();
            let mut counts = vec![0u64; 32];
            let mut vr = VrStore::new(32, 16, 16);
            let out =
                stitch_blocks(&job, &chunks, &dims, &incomings, &mut vr, &mut ends, &mut counts);
            assert_eq!(ends, truth, "{policy:?}");
            assert_eq!(out.stats.recovery_runs, 0, "{policy:?}");
        }
    }
}
