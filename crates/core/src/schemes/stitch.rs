//! Block-boundary stitching for grid-scale verification (and the shared
//! grid-stats folding helper).
//!
//! A single thread block can host at most `max_threads_per_block` chunks,
//! and the verification kernels are *cooperative*: threads exchange end
//! states through shared memory and `__syncthreads()`, neither of which
//! crosses block boundaries on real hardware. Scaling past one block
//! therefore extends the paper's speculation one level up: each block runs
//! its verification loop assuming the *speculated* exec-phase end of its
//! predecessor chunk as the incoming state (block-level speculation), and a
//! sequential host-driven pass afterwards validates the block boundaries in
//! order — exactly the shape of Algorithm 2's sequential walk, lifted from
//! chunks to blocks.
//!
//! When a block's speculated incoming state turns out right (the common
//! case on convergent machines, and guaranteed for block 0), its results
//! are already exact and the stitch costs nothing. When it was wrong, the
//! block's chunks are re-resolved in order from the true incoming state: a
//! record hit in `VR` settles a chunk for the price of a scan, a miss is a
//! must-be-done re-execution by a single thread — the same economics as
//! chunk-level recovery, charged through the same simulator.

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    launch, BlockDim, GridStats, KernelStats, RoundKernel, RoundOutcome, ThreadCtx,
};

use crate::records::{VrRecord, VrStore};
use crate::schemes::Job;

/// Folds a heterogeneous grid launch into one sequential-equivalent stats
/// record (counters summed, event streams concatenated in block order,
/// cycles = the grid's wave-scheduled completion time) and merges it into
/// `verify` as a back-to-back kernel.
pub(crate) fn fold_grid(verify: &mut KernelStats, grid: &GridStats) {
    let mut combined = KernelStats::default();
    for block in &grid.blocks {
        combined.absorb_block(block);
    }
    combined.cycles = grid.cycles;
    verify.merge_sequential(&combined);
}

/// What the boundary stitch did: its simulated cost plus the verification
/// checks it performed while re-resolving mispredicted blocks.
pub(crate) struct StitchOutcome {
    pub stats: KernelStats,
    pub checks: u64,
    pub matches: u64,
}

/// Validates every block boundary in order. `incomings[b]` is the state
/// block `b` speculated as its incoming; `ends`/`counts` hold the per-chunk
/// results the blocks produced under that speculation and are rewritten in
/// place for blocks whose speculation missed.
pub(crate) fn stitch_blocks(
    job: &Job<'_>,
    chunks: &[Range<usize>],
    dims: &[BlockDim],
    incomings: &[StateId],
    vr: &mut VrStore,
    ends: &mut [StateId],
    counts: &mut [u64],
) -> StitchOutcome {
    let mut out = StitchOutcome { stats: KernelStats::default(), checks: 0, matches: 0 };
    for dim in &dims[1..] {
        let lo = dim.tids.start;
        let true_in = ends[lo - 1];
        if true_in == incomings[dim.index] {
            continue; // Block speculation verified: results already exact.
        }
        let mut kernel = StitchKernel {
            job,
            chunks,
            vr,
            end: dim.tids.end,
            cursor: lo,
            state: true_in,
            ends,
            counts,
            checks: 0,
            matches: 0,
        };
        let stats = launch(job.spec, 1, &mut kernel);
        out.checks += kernel.checks;
        out.matches += kernel.matches;
        out.stats.merge_sequential(&stats);
    }
    out
}

/// One-thread re-resolution of a mispredicted block's chunks from the true
/// incoming state: record hits are reused, misses re-executed (recovery).
struct StitchKernel<'a, 'j> {
    job: &'a Job<'j>,
    chunks: &'a [Range<usize>],
    vr: &'a mut VrStore,
    end: usize,
    cursor: usize,
    state: StateId,
    ends: &'a mut [StateId],
    counts: &'a mut [u64],
    checks: u64,
    matches: u64,
}

impl RoundKernel for StitchKernel<'_, '_> {
    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let cid = self.cursor;
        // Receive the verified end state of the predecessor chunk.
        ctx.shuffle(1);
        self.checks += 1;
        let outcome = match self.vr.scan(ctx, cid, self.state) {
            Some(rec) => {
                self.matches += 1;
                self.ends[cid] = rec.end;
                self.counts[cid] = rec.matches;
                RoundOutcome::ACTIVE
            }
            None => {
                // Must-be-done recovery from the verified state.
                let t0 = ctx.cycles();
                let run = self.job.table.run_chunk_with(
                    ctx,
                    self.job.input,
                    self.chunks[cid].clone(),
                    self.state,
                    self.job.config.count_matches,
                );
                ctx.credit_recovery(t0);
                self.vr.push_own(
                    cid,
                    VrRecord { start: self.state, end: run.end, matches: run.matches },
                );
                self.ends[cid] = run.end;
                self.counts[cid] = run.matches;
                RoundOutcome::RECOVERING
            }
        };
        self.state = self.ends[cid];
        outcome
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.cursor += 1;
        self.cursor < self.end
    }
}
