//! Single-thread sequential execution — the ground-truth reference.
//!
//! One device thread consumes the entire input (Algorithm 1's
//! `FSM_Processing`). Everything a speculative scheme produces must agree
//! with this.

use gspecpal_fsm::StateId;
use gspecpal_gpu::{launch, KernelStats, RoundKernel, RoundOutcome, ThreadCtx};

use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::Job;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    let chunks = job.chunks();
    let mut kernel = SeqKernel { job, chunk_ends: Vec::with_capacity(chunks.len()), matches: 0 };
    let exec = launch(job.spec, 1, &mut kernel);
    let end_state = *kernel.chunk_ends.last().expect("at least one chunk");
    RunOutcome {
        scheme: SchemeKind::Sequential,
        end_state,
        accepted: job.table.dfa().is_accepting(end_state),
        chunk_ends: kernel.chunk_ends,
        predict: KernelStats::default(),
        execute: exec,
        verify: KernelStats::default(),
        verification_checks: 0,
        verification_matches: 0,
        match_count: job.config.count_matches.then_some(kernel.matches),
        frontier_trace: Vec::new(),
    }
}

struct SeqKernel<'a, 'j> {
    job: &'a Job<'j>,
    chunk_ends: Vec<StateId>,
    matches: u64,
}

impl RoundKernel for SeqKernel<'_, '_> {
    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        debug_assert_eq!(tid, 0);
        let mut s = self.job.table.dfa().start();
        for range in self.job.chunks() {
            let run = self.job.table.run_chunk_with(
                ctx,
                self.job.input,
                range,
                s,
                self.job.config.count_matches,
            );
            s = run.end;
            self.matches += run.matches;
            self.chunk_ends.push(s);
        }
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SchemeConfig;
    use crate::run::SchemeKind;
    use crate::schemes::{run_scheme, Job};
    use crate::table::DeviceTable;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::DeviceSpec;

    #[test]
    fn sequential_matches_host_run() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"110101011".repeat(11);
        let config = SchemeConfig { n_chunks: 4, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Sequential, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.accepted, d.accepts(&input));
        assert_eq!(out.chunk_ends.len(), 4);
        // Chunk ends are the prefix states at each boundary.
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s);
        }
        assert_eq!(out.verification_checks, 0);
        assert!(out.execute.cycles > 0);
    }
}
