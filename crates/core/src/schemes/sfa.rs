//! Simultaneous Finite Automata (Sin'ya & Matsuzaki \[24\]).
//!
//! The data-parallel rival to speculation: each thread computes its chunk's
//! *complete* state→state mapping, and mappings compose associatively, so
//! connecting chunks is pure function composition — no misprediction, no
//! recovery phase, at the price of up-to-|Q|-fold execution work.
//!
//! Two things separate this from the enumerative reference engine
//! ([`crate::schemes::enumerative`]):
//!
//! * **Effective-width shrinking.** The |Q| simultaneous paths of a chunk
//!   merge whenever two of them reach the same state — merged paths share
//!   their entire suffix, so the walk deduplicates the live path set every
//!   byte and steps only the *distinct* survivors. On hot-state-dominated
//!   FSMs (the regime the paper's frequency transform targets) the live set
//!   collapses into the few hot attractor states within a handful of bytes,
//!   so the per-byte cost is the *effective mapping width*, not |Q| — and
//!   because the transform ranks those survivors first, their rows sit in
//!   shared memory. On permutation-heavy machines nothing merges and the
//!   full |Q|-fold cost stands; that is the honest crossover the selector
//!   reasons about.
//! * **Seam composition on the grid.** Connecting blocks generalizes the
//!   [`crate::config::StitchPolicy::Tree`] stitch from composing *states*
//!   to composing *mappings*: in-block chunk mappings fold pair-wise in
//!   log2(width) rounds, then block mappings compose across seams —
//!   log2(B) concurrent rounds under the tree policy, B−1 dependent
//!   launches under the sequential one. Every seam "check" succeeds by
//!   construction (function composition cannot miss), so the whole phase
//!   is charged to [`Phase::Stitch`] and [`Phase::Recovery`] stays empty
//!   on fault-free runs.
//!
//! Fault handling needs no degradation ladder: a corrupted mapping is
//! poisoned and simply *re-derived* — the mapping is a pure function of
//! (table, chunk bytes), so recomputing it restores the exact result, and
//! the re-derivation cost lands in [`Phase::Recovery`].

use std::ops::Range;

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    block_dims_width, launch, launch_blocks_auto, launch_grid, try_launch_grid_unfolded, BlockDim,
    BlockRequirements, FaultDomain, GridKernel, KernelStats, Phase, RoundKernel, RoundOutcome,
    ThreadCtx,
};

use crate::config::StitchPolicy;
use crate::recovery::fault_charges;
use crate::run::{RunOutcome, SchemeKind};
use crate::schemes::stitch::fold_grid;
use crate::schemes::Job;
use crate::table::DeviceTable;

/// Composes two chunk mappings: `inner` is the earlier chunk, `outer` the
/// later one, and the result maps a state *entering* the inner chunk to the
/// state *leaving* the outer one. This is the seam operation of the SFA
/// stitch; it is associative (function composition), which is what makes
/// the log2(B) tree order legal — the property tests pin it down.
pub fn compose_mappings(inner: &[StateId], outer: &[StateId]) -> Vec<StateId> {
    inner.iter().map(|&s| outer[s as usize]).collect()
}

/// One chunk's derived transition function.
struct Derived {
    /// `map[q]` = end state of the chunk when entered in state `q`.
    map: Vec<StateId>,
    /// `counts[q]` = accepting-state visits along that path (zeros when
    /// match counting is off).
    counts: Vec<u64>,
    /// Distinct live paths surviving at the chunk's end — the effective
    /// mapping width the composition kernels pay for.
    eff_width: u32,
}

/// Walks `range` once, maintaining the full state→state mapping with
/// converged-path deduplication. Device cost per byte: one input load
/// (shared across paths, like the spec-k kernel), one table step per
/// *distinct* live path, and one compare per path for the convergence
/// check; each merge epoch additionally pays the |Q|-entry indirection
/// rewrite, and the chunk ends with one |Q|-entry write-back of the
/// assembled mapping.
fn derive_mapping(
    table: &DeviceTable<'_>,
    ctx: &mut ThreadCtx<'_>,
    input: &[u8],
    range: Range<usize>,
    count_matches: bool,
) -> Derived {
    let n = table.dfa().n_states() as usize;
    // Distinct live paths (state + matches since the path's creation).
    let mut paths: Vec<StateId> = (0..n as StateId).collect();
    let mut path_matches: Vec<u64> = vec![0; n];
    // Per original start state: which live path it rides, and its match
    // offset relative to that path's own counter.
    let mut ptr: Vec<u32> = (0..n as u32).collect();
    let mut offset: Vec<i64> = vec![0; n];
    // Generation-stamped duplicate detector (no per-byte clearing).
    let mut seen: Vec<u32> = vec![0; n];
    let mut stamp: Vec<u64> = vec![0; n];
    let mut generation = 0u64;
    let mut new_idx: Vec<u32> = vec![0; n];
    let mut delta: Vec<i64> = vec![0; n];

    for pos in range {
        let b = table.load_input(ctx, input, pos);
        for (s, m) in paths.iter_mut().zip(path_matches.iter_mut()) {
            *s = table.step(ctx, *s, b);
            if count_matches {
                ctx.alu(1);
                *m += u64::from(table.dfa().is_accepting(*s));
            }
        }
        ctx.alu(1); // loop bookkeeping

        if paths.len() > 1 {
            // Convergence check: one compare per live path.
            ctx.alu(paths.len() as u64);
            generation += 1;
            let mut merged = false;
            for (i, &s) in paths.iter().enumerate() {
                if stamp[s as usize] == generation {
                    merged = true;
                } else {
                    stamp[s as usize] = generation;
                    seen[s as usize] = i as u32;
                }
            }
            if merged {
                // Compact survivors in place; duplicates record their match
                // delta against the surviving twin.
                let live = paths.len();
                let mut w = 0usize;
                for i in 0..live {
                    let first = seen[paths[i] as usize] as usize;
                    if first == i {
                        new_idx[i] = w as u32;
                        paths[w] = paths[i];
                        path_matches[w] = path_matches[i];
                        delta[i] = 0;
                        w += 1;
                    } else {
                        // Duplicate: merges into the (already compacted)
                        // survivor; riders keep the invariant
                        // offset[q] + matches(path of q) = true matches by
                        // absorbing the counter difference.
                        new_idx[i] = new_idx[first];
                        delta[i] =
                            path_matches[i] as i64 - path_matches[new_idx[first] as usize] as i64;
                    }
                }
                paths.truncate(w);
                path_matches.truncate(w);
                // Merge epoch: rewrite the |Q|-entry indirection. Each merge
                // strictly shrinks the live set, so at most |Q|−1 epochs
                // ever run per chunk.
                ctx.alu(n as u64);
                for q in 0..n {
                    let p = ptr[q] as usize;
                    offset[q] += delta[p];
                    ptr[q] = new_idx[p];
                }
            }
        }
    }

    // Final write-back: assemble the per-start-state mapping from the
    // surviving paths through the indirection.
    ctx.alu(n as u64);
    let map: Vec<StateId> = ptr.iter().map(|&p| paths[p as usize]).collect();
    let counts: Vec<u64> = ptr
        .iter()
        .zip(&offset)
        .map(|(&p, &off)| (off + path_matches[p as usize] as i64) as u64)
        .collect();
    Derived { map, counts, eff_width: paths.len() as u32 }
}

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    let chunks = job.chunks();
    let n = chunks.len();
    let n_states = job.table.dfa().n_states();

    let mut exec = SfaExecKernel {
        job,
        table: job.table,
        input: job.input,
        chunks: &chunks,
        maps: vec![Vec::new(); n],
        counts: vec![Vec::new(); n],
        widths: vec![0; n],
        count_matches: job.config.count_matches,
    };
    let (grid, width) = try_launch_grid_unfolded(job.spec, n, &mut exec)
        .unwrap_or_else(|e| panic!("launch_grid: {e}"));
    let dims = block_dims_width(width as usize, n);
    let mut exec_stats = grid.fold();
    // Fault overlay, SFA-flavoured: aborted and watchdog-killed launches
    // price through the shared retry ladder like every other scheme, but a
    // block that exhausts its budget *re-derives its chunks' mappings* —
    // SFA's bottom rung is still exact by construction, so there is no
    // degradation-to-sequential. The driver serializes the relaunch charges
    // after the grid, so their `Phase::Recovery` attribution survives wave
    // folding at any occupancy.
    if let Some(plan) = job.config.faults {
        if plan.any_faults() {
            let rc = &job.config.recovery;
            let mut overlay = KernelStats::default();
            let mut charged = false;
            for (b, bs) in grid.blocks.iter().enumerate() {
                let Some(c) = fault_charges(&plan, rc, FaultDomain::Exec, b, bs.cycles) else {
                    continue;
                };
                charged = true;
                overlay.cycles += c.lost;
                overlay.profile.get_mut(Phase::Recovery).cycles += c.lost;
                overlay.recovery_cycles += c.lost;
                overlay.fault_cycles += c.lost;
                overlay.fault_retries += c.retries;
                overlay.fault_watchdog_kills += c.kills;
                if c.degraded {
                    let mut k = SfaRederiveWindow {
                        job,
                        chunks: &chunks,
                        cursor: dims[b].tids.start,
                        end: dims[b].tids.end,
                    };
                    let walk = launch(job.spec, 1, &mut k);
                    overlay.fault_cycles += walk.cycles;
                    overlay.fault_degraded_blocks += 1;
                    overlay.merge_sequential(&walk);
                }
            }
            if charged {
                exec_stats.merge_sequential(&overlay);
            }
        }
    }
    let mut maps = exec.maps;
    let mut count_maps = exec.counts;
    let mut widths = exec.widths;

    let mut verify = KernelStats::default();

    // Mapping corruption: a struck chunk's function table is poisoned and
    // re-derived. SFA never needs the degradation-to-sequential ladder here
    // — the mapping is a pure function of (table, chunk bytes), so the
    // re-derivation restores the exact fault-free result, and its cycles
    // land in `Phase::Recovery`.
    if let Some(plan) = job.config.faults {
        if plan.corrupt_permille > 0 {
            let mut rederives: Vec<(usize, SfaRederive<'_>)> = Vec::new();
            for cid in 0..n {
                if plan.corrupts(cid) {
                    maps[cid].clear();
                    maps[cid].resize(n_states as usize, StateId::MAX);
                    count_maps[cid].fill(u64::MAX);
                    rederives
                        .push((1, SfaRederive { job, cid, range: chunks[cid].clone(), out: None }));
                }
            }
            if !rederives.is_empty() {
                fold_grid(&mut verify, &launch_blocks_auto(job.spec, &mut rederives));
                for (_, k) in rederives {
                    let d = k.out.expect("re-derivation ran");
                    maps[k.cid] = d.map;
                    count_maps[k.cid] = d.counts;
                    widths[k.cid] = d.eff_width;
                }
            }
        }
    }

    // Seam composition: the tree stitch generalized from states to
    // mappings. In-block chunk mappings fold pair-wise (log2(width)
    // rounds, each thread composing `w` effective entries through shared
    // memory), then block mappings compose across seams per the stitch
    // policy. All of it is `Phase::Stitch`: it exists only to connect
    // already-executed chunks.
    if n > 1 {
        let mut merges: Vec<(usize, SfaComposeKernel)> = dims
            .iter()
            .filter(|d| d.len() > 1)
            .map(|d| {
                let w = block_width(&widths, d);
                (d.len(), SfaComposeKernel { w, rounds_left: d.len().next_power_of_two().ilog2() })
            })
            .collect();
        if !merges.is_empty() {
            fold_grid(&mut verify, &launch_blocks_auto(job.spec, &mut merges));
        }
        let b = dims.len();
        if b > 1 {
            let w = widths.iter().copied().max().unwrap_or(1).max(1) as u64;
            match job.config.stitch {
                StitchPolicy::Tree => {
                    let mut span = 1usize;
                    while span < b {
                        let seams = (span..b).step_by(2 * span).count();
                        verify.merge_sequential(&launch_grid(
                            job.spec,
                            seams,
                            &mut SeamComposeGrid { w },
                        ));
                        span *= 2;
                    }
                }
                StitchPolicy::Sequential => {
                    for _ in 1..b {
                        verify.merge_sequential(&launch(
                            job.spec,
                            1,
                            &mut SfaComposeKernel { w, rounds_left: 1 },
                        ));
                    }
                }
            }
        }
    }

    // Ground-truth walk through the per-chunk functions (host side; the
    // device paid for it in the composition rounds above).
    let mut ends = Vec::with_capacity(n);
    let mut cur = job.table.dfa().start();
    let mut total_matches = 0u64;
    for (map, cmap) in maps.iter().zip(&count_maps) {
        total_matches += cmap[cur as usize];
        cur = map[cur as usize];
        ends.push(cur);
    }

    // Every seam composition succeeds by construction.
    let checks = (n - 1) as u64;
    RunOutcome {
        scheme: SchemeKind::Sfa,
        end_state: cur,
        accepted: job.table.dfa().is_accepting(cur),
        chunk_ends: ends,
        predict: KernelStats::default(),
        execute: exec_stats,
        verify,
        verification_checks: checks,
        verification_matches: checks,
        match_count: job.config.count_matches.then_some(total_matches),
        frontier_trace: Vec::new(),
    }
}

/// Effective composition width of one block: the widest surviving mapping
/// among its chunks (composition walks the left operand's live paths).
fn block_width(widths: &[u32], dim: &BlockDim) -> u64 {
    widths[dim.tids.clone()].iter().copied().max().unwrap_or(1).max(1) as u64
}

struct SfaExecKernel<'a, 'j> {
    job: &'a Job<'a>,
    table: &'a DeviceTable<'j>,
    input: &'a [u8],
    chunks: &'a [Range<usize>],
    maps: Vec<Vec<StateId>>,
    counts: Vec<Vec<u64>>,
    widths: Vec<u32>,
    count_matches: bool,
}

/// One grid block of the SFA execution: chunks are independent, so a block
/// is a disjoint window of the per-chunk function tables.
struct SfaExecBlock<'s, 'j> {
    job: &'s Job<'s>,
    table: &'s DeviceTable<'j>,
    input: &'s [u8],
    chunks: &'s [Range<usize>],
    base: usize,
    maps: &'s mut [Vec<StateId>],
    counts: &'s mut [Vec<u64>],
    widths: &'s mut [u32],
    count_matches: bool,
}

impl RoundKernel for SfaExecBlock<'_, '_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.sfa_requirements(threads)
    }

    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let rel = tid - self.base;
        let d = derive_mapping(
            self.table,
            ctx,
            self.input,
            self.chunks[tid].clone(),
            self.count_matches,
        );
        self.maps[rel] = d.map;
        self.counts[rel] = d.counts;
        self.widths[rel] = d.eff_width;
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }
}

impl<'j> GridKernel for SfaExecKernel<'_, 'j> {
    type Block<'s>
        = SfaExecBlock<'s, 'j>
    where
        Self: 's;

    fn requirements(&self, width: u32) -> BlockRequirements {
        self.job.sfa_requirements(width)
    }

    fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<SfaExecBlock<'s, 'j>> {
        let mut maps: &'s mut [Vec<StateId>] = &mut self.maps;
        let mut counts: &'s mut [Vec<u64>] = &mut self.counts;
        let mut widths: &'s mut [u32] = &mut self.widths;
        let mut out = Vec::with_capacity(dims.len());
        for dim in dims {
            let (m, m_rest) = maps.split_at_mut(dim.len());
            let (c, c_rest) = counts.split_at_mut(dim.len());
            let (w, w_rest) = widths.split_at_mut(dim.len());
            maps = m_rest;
            counts = c_rest;
            widths = w_rest;
            out.push(SfaExecBlock {
                job: self.job,
                table: self.table,
                input: self.input,
                chunks: self.chunks,
                base: dim.tids.start,
                maps: m,
                counts: c,
                widths: w,
                count_matches: self.count_matches,
            });
        }
        out
    }
}

/// One-thread re-derivation of a corrupted chunk's mapping: the same dedup
/// walk the exec phase ran, credited as recovery.
struct SfaRederive<'a> {
    job: &'a Job<'a>,
    cid: usize,
    range: Range<usize>,
    out: Option<Derived>,
}

impl RoundKernel for SfaRederive<'_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.sfa_requirements(threads)
    }

    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let t0 = ctx.cycles();
        let d = derive_mapping(
            self.job.table,
            ctx,
            self.job.input,
            self.range.clone(),
            self.job.config.count_matches,
        );
        ctx.credit_recovery(t0);
        self.out = Some(d);
        RoundOutcome::RECOVERING
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }

    fn phase(&self) -> Phase {
        Phase::Recovery
    }
}

/// The degradation ladder's bottom rung, SFA-flavoured: one thread
/// re-derives every chunk mapping in the struck block's window, one chunk
/// per round. The mapping is a pure function of (table, chunk bytes), so
/// the result is exact by construction — no fall-back to a sequential
/// walk — and every cycle is recovery.
struct SfaRederiveWindow<'a> {
    job: &'a Job<'a>,
    chunks: &'a [Range<usize>],
    cursor: usize,
    end: usize,
}

impl RoundKernel for SfaRederiveWindow<'_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        self.job.sfa_requirements(threads)
    }

    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let t0 = ctx.cycles();
        let _ = derive_mapping(
            self.job.table,
            ctx,
            self.job.input,
            self.chunks[self.cursor].clone(),
            self.job.config.count_matches,
        );
        ctx.credit_recovery(t0);
        RoundOutcome::RECOVERING
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.cursor += 1;
        self.cursor < self.end
    }

    fn phase(&self) -> Phase {
        Phase::Recovery
    }
}

/// Pair-wise mapping composition: log2 rounds, each thread folding `w`
/// effective entries through shared memory.
struct SfaComposeKernel {
    w: u64,
    rounds_left: u32,
}

impl RoundKernel for SfaComposeKernel {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        // One w-entry function map staged through shared memory per round.
        BlockRequirements { threads, shared_bytes: 4 * self.w as usize, regs_per_thread: 32 }
    }

    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        ctx.shared(self.w);
        ctx.alu(self.w);
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        self.rounds_left -= 1;
        self.rounds_left > 0
    }

    /// Mapping composition connects already-executed chunks across block
    /// seams: stitch work, never input re-execution.
    fn phase(&self) -> Phase {
        Phase::Stitch
    }
}

/// One tree round of concurrent seam compositions: each thread receives the
/// neighbouring cluster's mapping and composes `w` effective entries.
struct SeamComposeGrid {
    w: u64,
}

struct SeamComposeBlock {
    w: u64,
}

impl RoundKernel for SeamComposeBlock {
    fn round(&mut self, _tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        ctx.shuffle(1);
        ctx.shared(self.w);
        ctx.alu(self.w);
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }

    fn phase(&self) -> Phase {
        Phase::Stitch
    }
}

impl GridKernel for SeamComposeGrid {
    type Block<'s> = SeamComposeBlock;

    fn split(&mut self, dims: &[BlockDim]) -> Vec<SeamComposeBlock> {
        dims.iter().map(|_| SeamComposeBlock { w: self.w }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeConfig;
    use crate::run::SchemeKind;
    use crate::schemes::{run_scheme, Job};
    use crate::table::DeviceTable;
    use gspecpal_fsm::combinators::keyword_dfa;
    use gspecpal_fsm::examples::{div7, fig4_dfa};
    use gspecpal_gpu::DeviceSpec;

    #[test]
    fn sfa_exact_and_recovery_free() {
        let d = div7();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"110101011001".repeat(8);
        let config = SchemeConfig { n_chunks: 8, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Sfa, &job);
        assert_eq!(out.end_state, d.run(&input));
        assert_eq!(out.recovery_runs(), 0);
        assert!((out.runtime_accuracy() - 1.0).abs() < 1e-12);
        let mut s = d.start();
        for (i, r) in job.chunks().into_iter().enumerate() {
            s = d.run_from(s, &input[r]);
            assert_eq!(out.chunk_ends[i], s, "chunk {i}");
        }
    }

    #[test]
    fn sfa_exact_across_block_boundaries_under_both_policies() {
        let d = div7();
        let spec = DeviceSpec::test_unit(); // 64-thread blocks
        let table = DeviceTable::transformed(&d, d.n_states());
        let input: Vec<u8> = b"110101011001".repeat(50);
        for stitch in [StitchPolicy::Tree, StitchPolicy::Sequential] {
            let config = SchemeConfig { n_chunks: 150, stitch, ..SchemeConfig::default() };
            let job = Job::new(&spec, &table, &input, config).unwrap();
            let out = run_scheme(SchemeKind::Sfa, &job);
            assert_eq!(out.end_state, d.run(&input), "{stitch:?}");
            assert_eq!(out.recovery_runs(), 0, "{stitch:?}");
            let mut s = d.start();
            for (i, r) in job.chunks().into_iter().enumerate() {
                s = d.run_from(s, &input[r]);
                assert_eq!(out.chunk_ends[i], s, "{stitch:?} chunk {i}");
            }
        }
    }

    #[test]
    fn sfa_counts_matches_exactly() {
        let d = keyword_dfa(&[b"abc", b"bca"]).unwrap();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input = b"abcabcxxbcabca".repeat(31);
        let config = SchemeConfig { n_chunks: 37, count_matches: true, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Sfa, &job);
        assert_eq!(out.match_count, Some(d.count_matches(&input)));
    }

    /// Converged paths stop costing: on a keyword machine (collapses to a
    /// handful of live states within a few bytes) the SFA walk's table work
    /// is a small multiple of the sequential walk's, not |Q|-fold — while
    /// the never-converging div7 permutation pays the full factor.
    #[test]
    fn dedup_shrinks_effective_width_on_convergent_machines() {
        let spec = DeviceSpec::test_unit();
        let config = SchemeConfig { n_chunks: 4, ..SchemeConfig::default() };

        let kw = keyword_dfa(&[b"attack", b"overflow", b"exploit"]).unwrap();
        let tk = DeviceTable::transformed(&kw, kw.n_states());
        let input = b"mostly benign bytes with an attack somewhere ".repeat(16);
        let job = Job::new(&spec, &tk, &input, config).unwrap();
        let sfa = run_scheme(SchemeKind::Sfa, &job);
        let seq = run_scheme(SchemeKind::Sequential, &job);
        let q = u64::from(kw.n_states());
        assert!(
            sfa.execute.shared_accesses + sfa.execute.global_transactions
                < q * (seq.execute.shared_accesses + seq.execute.global_transactions) / 2,
            "convergent machine must shed most of the |Q|={q} factor \
             (sfa {} vs seq {})",
            sfa.execute.shared_accesses + sfa.execute.global_transactions,
            seq.execute.shared_accesses + seq.execute.global_transactions,
        );

        let d7 = div7();
        let t7 = DeviceTable::transformed(&d7, d7.n_states());
        let input7: Vec<u8> = b"1101010110010111".repeat(45);
        let job7 = Job::new(&spec, &t7, &input7, config).unwrap();
        let sfa7 = run_scheme(SchemeKind::Sfa, &job7);
        let seq7 = run_scheme(SchemeKind::Sequential, &job7);
        assert!(
            sfa7.execute.shared_accesses >= 6 * seq7.execute.shared_accesses,
            "permutation machine keeps ~|Q|-fold table work"
        );
    }

    #[test]
    fn compose_mappings_is_function_composition() {
        let inner = vec![2, 0, 1, 3];
        let outer = vec![1, 3, 0, 2];
        assert_eq!(compose_mappings(&inner, &outer), vec![0, 1, 3, 2]);
    }

    #[test]
    fn sfa_stitch_cycles_land_in_stitch_phase() {
        let d = fig4_dfa();
        let spec = DeviceSpec::test_unit();
        let table = DeviceTable::transformed(&d, d.n_states());
        let input = b"ab /* comment */ cd ".repeat(40);
        let config = SchemeConfig { n_chunks: 150, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &input, config).unwrap();
        let out = run_scheme(SchemeKind::Sfa, &job);
        let profile = out.phase_profile();
        assert!(profile.get(Phase::Stitch).cycles > 0, "seam composition is stitch work");
        assert_eq!(profile.get(Phase::Recovery).cycles, 0, "no recovery without faults");
        assert_eq!(profile.total_cycles(), out.total_cycles(), "partition is exact");
    }
}
