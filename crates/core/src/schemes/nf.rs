//! NF: Nearest-First based aggressive speculative recovery (Algorithm 5).
//!
//! The paper's second heuristic, for input-sensitive speculation: instead of
//! spreading verified threads round-robin, `NF_Sched` drains the speculation
//! queue of the chunk *right after the frontier* first, then the next, and
//! so on — concentrating recovery effort where it is needed soonest. Because
//! consecutive threads (often whole warps) land on the same chunk, their
//! input loads coalesce, which is why NF's per-chunk recovery cost beats
//! RR's despite activating more threads (Fig 9).

use crate::run::RunOutcome;
use crate::schemes::vr_kernel::{run_with_policy, RecoveryPolicy};
use crate::schemes::Job;

pub(crate) fn run(job: &Job<'_>) -> RunOutcome {
    run_with_policy(job, RecoveryPolicy::NearestFirst)
}
