//! Parallel scheme selection (§IV-D, Figure 6).
//!
//! GSpecPal picks among PM/SRE/RR/NF with a coarse decision tree over two
//! factors: the *quality of speculation* (spec-1 / spec-k accuracy measured
//! on a small training slice, and whether that accuracy is input-sensitive)
//! and the *FSM convergence property* (unique states remaining after 10
//! transitions from all states). The paper reports 80.6% selection accuracy
//! with ≤3% mean loss against the oracle; the harness regenerates both
//! numbers on the synthetic suite.

use gspecpal_fsm::profile::{convergence_profile, ConvergenceProfile};
use gspecpal_fsm::Dfa;

use crate::predict::lookback_queue;
use crate::run::SchemeKind;

/// Offline profile of one (FSM, training slice) pair — the inputs to the
/// decision tree, and the per-FSM columns of Table II.
#[derive(Clone, Debug)]
pub struct SelectorProfile {
    /// Fraction of training boundaries where the top-1 lookback state was
    /// the true start state (Table II `accuracy(spec-1)`).
    pub spec1_accuracy: f64,
    /// Fraction where the truth ranked in the top k = 4
    /// (Table II `accuracy(spec-4)`).
    pub spec4_accuracy: f64,
    /// Highest rank (1-based) at which the truth appeared across the
    /// training boundaries — how deep a recovery has to dig.
    pub worst_truth_rank: usize,
    /// Spread of per-portion spec-1 accuracy: `max - min` across the
    /// training portions. Large spread = highly input-sensitive speculation.
    pub accuracy_spread: f64,
    /// Convergence profile (10-step unique-state count, Table II
    /// `#uniqStates(10 trans.)`).
    pub convergence: ConvergenceProfile,
    /// Number of machine states (context for the convergence threshold).
    pub n_states: u32,
    /// Wall-clock seconds the profiling itself took (Table II last column).
    pub profiling_seconds: f64,
}

/// Decision thresholds (the coarse-grained tree of Fig 6).
#[derive(Clone, Copy, Debug)]
pub struct Selector {
    /// Spec accuracy considered "high" (tree root, orange nodes).
    pub high_accuracy: f64,
    /// Accuracy spread above which the *tree* prefers NF over RR. Kept
    /// permissive: leaning towards NF on a noisy spread is nearly free
    /// (RR and NF are close), while missing real sensitivity is costly.
    pub sensitivity_spread: f64,
    /// Stricter spread above which an FSM is *reported* as having highly
    /// input-sensitive speculation (the Table II column).
    pub report_spread: f64,
    /// Number of boundaries sampled from the training slice.
    pub boundaries: usize,
    /// Portions the training slice is split into for the sensitivity check.
    pub portions: usize,
    /// Lookback window length (must match the runtime predictor).
    pub lookback: usize,
    /// Transition steps for convergence profiling (the paper uses 10).
    pub convergence_steps: usize,
    /// Live-path width (10-step unique-state count) below which SFA's
    /// |Q|-fold execution has collapsed enough to out-run speculative
    /// recovery on non-convergent machines: SFA's per-byte cost is the
    /// *effective* mapping width, and beyond a couple dozen simultaneous
    /// paths the redundancy eats the speedup budget.
    pub sfa_max_width: f64,
    /// State count above which the width-many simultaneous table rows no
    /// longer fit the shared-memory hot set — every SFA path then pays
    /// global-memory transitions and the mapping walk loses to aggressive
    /// speculative recovery even at moderate width.
    pub sfa_max_states: u32,
    /// State count below which SFA is pointless: a tiny machine bounds the
    /// truth rank by |Q|, so speculative recovery is shallow and cheap while
    /// the mapping walk still pays the full width factor.
    pub sfa_min_states: u32,
}

impl Default for Selector {
    fn default() -> Self {
        Selector {
            high_accuracy: 0.9,
            sensitivity_spread: 0.35,
            report_spread: 0.55,
            boundaries: 256,
            portions: 16,
            lookback: 2,
            convergence_steps: 10,
            sfa_max_width: 24.0,
            sfa_max_states: 1024,
            sfa_min_states: 16,
        }
    }
}

impl Selector {
    /// Collects the offline profile of `dfa` over `training` (the paper uses
    /// a randomly selected 1 MB slice, 0.5% of each input group).
    pub fn profile(&self, dfa: &Dfa, training: &[u8]) -> SelectorProfile {
        let t0 = std::time::Instant::now();
        let boundaries = self.boundaries.max(self.portions).min(training.len().max(1));

        // One sequential pass gives the ground-truth state at every position.
        let trace = dfa.run_trace(dfa.start(), training);

        let mut per_portion_hits = vec![0u32; self.portions];
        let mut per_portion_total = vec![0u32; self.portions];
        let mut spec1_hits = 0u32;
        let mut spec4_hits = 0u32;
        let mut worst_rank = 1usize;
        let mut total = 0u32;
        for b in 0..boundaries {
            // Boundary positions spread evenly, skipping position 0.
            let pos = (b + 1) * training.len() / (boundaries + 1);
            if pos < self.lookback || pos == 0 || pos > training.len() {
                continue;
            }
            let truth = trace[pos - 1];
            let queue = lookback_queue(dfa, &training[pos - self.lookback..pos]);
            let rank = queue.rank_of(truth).expect("containment property") + 1;
            total += 1;
            worst_rank = worst_rank.max(rank);
            let portion = (pos * self.portions / training.len().max(1)).min(self.portions - 1);
            per_portion_total[portion] += 1;
            if rank == 1 {
                spec1_hits += 1;
                per_portion_hits[portion] += 1;
            }
            if rank <= 4 {
                spec4_hits += 1;
            }
        }

        let spec1_accuracy =
            if total == 0 { 0.0 } else { f64::from(spec1_hits) / f64::from(total) };
        let spec4_accuracy =
            if total == 0 { 0.0 } else { f64::from(spec4_hits) / f64::from(total) };
        let portion_accs: Vec<f64> = per_portion_hits
            .iter()
            .zip(&per_portion_total)
            .filter(|&(_, &t)| t > 0)
            .map(|(&h, &t)| f64::from(h) / f64::from(t))
            .collect();
        let accuracy_spread = match (
            portion_accs.iter().cloned().fold(f64::INFINITY, f64::min),
            portion_accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        ) {
            (lo, hi) if lo.is_finite() && hi.is_finite() => hi - lo,
            _ => 0.0,
        };

        // An odd sample count that does not divide the portion count, so the
        // sampled windows cannot alias with a regime-switching input's
        // segment structure (which would make a half-convergent machine look
        // fully convergent or fully non-convergent).
        let convergence = convergence_profile(dfa, training, self.convergence_steps, 11);

        SelectorProfile {
            spec1_accuracy,
            spec4_accuracy,
            worst_truth_rank: worst_rank,
            accuracy_spread,
            convergence,
            n_states: dfa.n_states(),
            profiling_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// The Figure 6 decision tree.
    ///
    /// Orange nodes (speculation quality) first, gray nodes (convergence)
    /// second:
    ///
    /// * spec-1 already high → no redundancy needed; recovery is rare. Bind
    ///   threads to chunks if end-forwarding works (SRE), otherwise keep the
    ///   aggressive coverage of RR for the rare deep miss.
    /// * strong convergence → forwarded end states are accurate and spec-k's
    ///   α_k redundancy is pure overhead: SRE.
    /// * non-convergent but spec-4 high → PM's enumerative speculation
    ///   covers the truth while every recovery-based scheme pays expensive
    ///   must-be-done rounds: PM.
    /// * everything poor → aggressive recovery is mandatory; input-sensitive
    ///   speculation favours NF's frontier-flooding, otherwise RR's even
    ///   spread — unless the machine sits in SFA's window (moderate
    ///   effective width, table small enough to stay shared-memory
    ///   resident), where computing the full mapping beats speculating
    ///   wrongly and recovering forever.
    pub fn select(&self, p: &SelectorProfile) -> SchemeKind {
        self.select_explained(p).0
    }

    /// Like [`Selector::select`], also returning the branch of the decision
    /// tree that fired (for logs and the framework report).
    pub fn select_explained(&self, p: &SelectorProfile) -> (SchemeKind, String) {
        let converges = p.convergence.converges_strongly(p.n_states);
        if p.spec1_accuracy >= self.high_accuracy {
            if converges {
                (
                    SchemeKind::Sre,
                    format!(
                        "spec-1 accuracy {:.0}% is high and the FSM converges \
                         ({:.1} unique states after {} steps): end-state \
                         forwarding handles the rare miss",
                        p.spec1_accuracy * 100.0,
                        p.convergence.mean_unique_states,
                        p.convergence.steps
                    ),
                )
            } else {
                (
                    SchemeKind::Rr,
                    format!(
                        "spec-1 accuracy {:.0}% is high but the FSM does not \
                         converge: keep aggressive coverage for the rare deep miss",
                        p.spec1_accuracy * 100.0
                    ),
                )
            }
        } else if converges {
            (
                SchemeKind::Sre,
                format!(
                    "strong convergence ({:.1} unique states after {} steps): \
                     forwarded end states are the ground truth, spec-k \
                     redundancy would be pure overhead",
                    p.convergence.mean_unique_states, p.convergence.steps
                ),
            )
        } else if p.spec4_accuracy >= self.high_accuracy {
            (
                SchemeKind::Pm,
                format!(
                    "spec-4 accuracy {:.0}% covers the truth: enumerative \
                     speculation wins, recovery would be waste",
                    p.spec4_accuracy * 100.0
                ),
            )
        } else if p.accuracy_spread >= self.sensitivity_spread {
            (
                SchemeKind::Nf,
                format!(
                    "speculation is input-sensitive (accuracy spread {:.0}%): \
                     flood the chunks right after the frontier",
                    p.accuracy_spread * 100.0
                ),
            )
        } else if p.n_states >= self.sfa_min_states
            && p.n_states <= self.sfa_max_states
            && p.convergence.mean_unique_states <= self.sfa_max_width
        {
            (
                SchemeKind::Sfa,
                format!(
                    "speculation uniformly poor (spec-4 {:.0}%) but the live \
                     path set stays narrow ({:.1} unique states after {} \
                     steps) and the {}-state table stays resident: compute \
                     the full mapping instead of speculating",
                    p.spec4_accuracy * 100.0,
                    p.convergence.mean_unique_states,
                    p.convergence.steps,
                    p.n_states
                ),
            )
        } else {
            (
                SchemeKind::Rr,
                format!(
                    "speculation uniformly poor (spec-4 {:.0}%, worst truth \
                     rank {}): spread recovery round-robin over all rear chunks",
                    p.spec4_accuracy * 100.0,
                    p.worst_truth_rank
                ),
            )
        }
    }

    /// Whether a profile counts as "highly input-sensitive" (Table II
    /// column; stricter than the tree's NF-vs-RR preference).
    pub fn is_input_sensitive(&self, p: &SelectorProfile) -> bool {
        p.accuracy_spread >= self.report_spread
    }

    /// Predicted speculation accuracy at depth `k` — the spec-k cost
    /// surface's accuracy leg. Interpolates between the two measured points
    /// (spec-1, spec-4) and extrapolates towards certainty at
    /// `worst_truth_rank`, where the containment property guarantees a hit.
    /// Monotone in `k` by construction.
    pub fn speck_accuracy(&self, p: &SelectorProfile, spec_k: usize) -> f64 {
        let k = spec_k.max(1) as f64;
        let acc = if k <= 1.0 {
            p.spec1_accuracy
        } else if k <= 4.0 {
            p.spec1_accuracy + (p.spec4_accuracy - p.spec1_accuracy).max(0.0) * (k - 1.0) / 3.0
        } else {
            let worst = (p.worst_truth_rank.max(5)) as f64;
            p.spec4_accuracy
                + (1.0 - p.spec4_accuracy).max(0.0) * ((k - 4.0) / (worst - 4.0)).min(1.0)
        };
        acc.clamp(0.0, 1.0)
    }

    /// The spec-k cost surface: predicted execution + verification/recovery
    /// work of running `scheme` at speculation depth `spec_k`, in
    /// milli-transitions per input byte (1000 = one sequential transition
    /// per byte, the floor every chunked scheme pays).
    ///
    /// This is a coarse integer surface, not a simulation: redundant
    /// execution is charged linearly (spec-k paths for PM, the live mapping
    /// width for SFA, |Q| for the enumerative reference) and expected
    /// recovery is the miss probability at depth `spec_k` times a
    /// per-scheme re-execution factor (sequential recovery is the most
    /// expensive, aggressive round-robin/nearest-first spread the cheapest,
    /// convergent end-state forwarding nearly free). Deterministic: pure
    /// integer rounding of the profile's measured ratios.
    pub fn speck_cost_surface(
        &self,
        p: &SelectorProfile,
        scheme: SchemeKind,
        spec_k: usize,
    ) -> u64 {
        const BASE: f64 = 1000.0;
        let miss1 = 1.0 - self.speck_accuracy(p, 1);
        let miss_k = 1.0 - self.speck_accuracy(p, spec_k);
        let converges = p.convergence.converges_strongly(p.n_states);
        let cost = match scheme {
            SchemeKind::Sequential => BASE,
            // Sequential recovery re-walks every missed chunk, one at a time.
            SchemeKind::Naive => BASE + miss1 * 4.0 * BASE,
            SchemeKind::Enumerative => BASE * f64::from(p.n_states.min(120)),
            // spec-k redundant paths: each extra lane adds a small linear
            // verification cost, while recovery is only paid for the
            // residual misses the enumeration did not cover — so deeper
            // speculation pays exactly until the accuracy curve flattens.
            SchemeKind::Pm => {
                BASE * (1.0 + 0.08 * (spec_k.max(1) - 1) as f64) + miss_k * 2.0 * BASE
            }
            // End-state forwarding: when chunks converge the rear threads
            // skip almost their whole range, so even the base scan shrinks;
            // when they do not, recovery crawls (repeated speculation).
            SchemeKind::Sre => {
                if converges {
                    0.3 * BASE + miss1 * 0.1 * BASE
                } else {
                    BASE + miss1 * 3.0 * BASE
                }
            }
            // Aggressive recovery amortizes the re-execution over all rear
            // threads; NF's frontier flooding pulls slightly ahead exactly
            // when speculation quality is input-sensitive.
            SchemeKind::Rr => BASE + miss1 * 0.9 * BASE,
            SchemeKind::Nf => {
                let factor = if p.accuracy_spread >= self.sensitivity_spread { 0.75 } else { 1.0 };
                BASE + miss1 * factor * BASE
            }
            // The mapping walk pays the live width every byte, a per-chunk
            // burn-in while the walk narrows from the full state set down
            // to that width, plus a steep residency penalty outside the
            // shared-memory window.
            SchemeKind::Sfa => {
                let width = p.convergence.mean_unique_states.max(1.0);
                let burn_in = 0.1 * p.convergence.steps.min(32) as f64;
                let resident =
                    p.n_states >= self.sfa_min_states && p.n_states <= self.sfa_max_states;
                BASE * (width + burn_in) + if resident { 0.0 } else { 64.0 * BASE }
            }
        };
        cost.round() as u64
    }

    /// Scores every candidate `(scheme, spec-k)` launch configuration over
    /// the cost surface and returns them cheapest-first — except that the
    /// Figure 6 decision tree's pick (at its best spec-k) is always ranked
    /// first, so consumers that trust the ranking start exactly where §IV
    /// would have started and the surface only *extends* the offline
    /// selector. Ties and order are deterministic: candidates are generated
    /// in a fixed order and sorted by a stable key.
    pub fn score_choices(&self, p: &SelectorProfile) -> Vec<ScoredChoice> {
        let (tree_pick, _) = self.select_explained(p);
        let mut choices: Vec<ScoredChoice> = Vec::new();
        for spec_k in SPEC_K_GRID {
            choices.push(ScoredChoice {
                scheme: SchemeKind::Pm,
                spec_k,
                predicted_millicost: self.speck_cost_surface(p, SchemeKind::Pm, spec_k),
            });
        }
        for scheme in [SchemeKind::Sre, SchemeKind::Rr, SchemeKind::Nf, SchemeKind::Sfa] {
            choices.push(ScoredChoice {
                scheme,
                spec_k: 4,
                predicted_millicost: self.speck_cost_surface(p, scheme, 4),
            });
        }
        choices.sort_by_key(|c| (c.predicted_millicost, c.spec_k));
        // Hoist the decision tree's scheme (its cheapest spec-k variant) to
        // the front: rank 0 is §IV's answer by construction.
        let lead = choices
            .iter()
            .position(|c| c.scheme == tree_pick)
            .expect("every selectable scheme is a candidate");
        let lead = choices.remove(lead);
        choices.insert(0, lead);
        choices
    }
}

/// Speculation depths the spec-k cost surface sweeps for PM (the paper's
/// Fig 3 grid, minus the redundant k = 6 point).
pub const SPEC_K_GRID: [usize; 4] = [1, 2, 4, 8];

/// One candidate launch configuration with its predicted cost on the
/// [`Selector::speck_cost_surface`] — the reusable scored-decision API the
/// online controller (and any other consumer) ranks and explores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScoredChoice {
    /// The execution scheme.
    pub scheme: SchemeKind,
    /// Speculation depth (meaningful for PM; the paper's default elsewhere).
    pub spec_k: usize,
    /// Predicted cost in milli-transitions per input byte (1000 = the
    /// sequential floor).
    pub predicted_millicost: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::combinators::{keyword_dfa, product, slow_chain_dfa, ProductAccept};
    use gspecpal_fsm::examples::{div7, mod_counter, ones_counter};

    fn binary_input(len: usize) -> Vec<u8> {
        // Deterministic pseudo-random binary stream.
        let mut x = 0x12345678u32;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                if x & 0x10000 != 0 {
                    b'1'
                } else {
                    b'0'
                }
            })
            .collect()
    }

    #[test]
    fn convergent_keyword_machine_selects_sre_or_better() {
        let d = keyword_dfa(&[b"attack", b"overflow"]).unwrap();
        let training = b"mostly benign traffic with an attack or overflow rarely ".repeat(40);
        let sel = Selector::default();
        let p = sel.profile(&d, &training);
        // Keyword machines converge within a couple of bytes: spec-1 is
        // mostly right (boundaries inside a keyword have a few candidates)
        // and convergence strong.
        assert!(p.spec1_accuracy > 0.5, "spec1 = {}", p.spec1_accuracy);
        assert!(p.convergence.converges_strongly(d.n_states()));
        assert_eq!(sel.select(&p), SchemeKind::Sre);
    }

    #[test]
    fn small_counter_selects_pm() {
        // Truth uniformly in a 4-deep queue: spec-1 poor, spec-4 perfect.
        let d = ones_counter(4, &[0]);
        let training = binary_input(4096);
        let sel = Selector::default();
        let p = sel.profile(&d, &training);
        assert!(p.spec4_accuracy >= 0.9, "spec4 = {}", p.spec4_accuracy);
        assert!(p.spec1_accuracy < 0.9);
        assert_eq!(sel.select(&p), SchemeKind::Pm);
    }

    #[test]
    fn div7_selects_aggressive_recovery() {
        let d = div7();
        let training = binary_input(4096);
        let sel = Selector::default();
        let p = sel.profile(&d, &training);
        // 7 equally-likely residues: spec-4 covers only 4/7.
        assert!(p.spec4_accuracy < 0.9, "spec4 = {}", p.spec4_accuracy);
        assert!(!p.convergence.converges_strongly(d.n_states()));
        let s = sel.select(&p);
        assert!(s == SchemeKind::Rr || s == SchemeKind::Nf, "selected {s}");
    }

    #[test]
    fn slow_chain_selects_sre() {
        // 2-byte lookback can't resolve the chain, but 10 junk bytes retreat
        // it (by 2 rungs each) to the root, so end-forwarding works.
        let d = slow_chain_dfa(b"abcdefghijkl", 2).unwrap();
        let training = b"zzzzzqqqqqppppprrrrrsssss".repeat(60);
        let sel = Selector::default();
        let p = sel.profile(&d, &training);
        assert!(p.convergence.converges_strongly(d.n_states()));
        assert_eq!(sel.select(&p), SchemeKind::Sre);
    }

    #[test]
    fn sliding_window_selects_sre() {
        // The Tier-B primitive: total convergence after 3 symbols, but a
        // 2-byte lookback leaves |alphabet|+1 uniform candidates.
        let d = gspecpal_fsm::combinators::sliding_window_dfa(b"aeiostnr", 3, b"aaa").unwrap();
        let training = b"the sonorous notes rise and retreat in unison ".repeat(30);
        let sel = Selector::default();
        let p = sel.profile(&d, &training);
        assert!(p.spec4_accuracy < 0.9, "spec4 = {}", p.spec4_accuracy);
        assert!(p.convergence.converges_strongly(d.n_states()));
        assert_eq!(sel.select(&p), SchemeKind::Sre);
    }

    #[test]
    fn counter_product_is_not_convergent() {
        let kw = keyword_dfa(&[b"ab"]).unwrap();
        let ctr = mod_counter(11, &[0]);
        let d = product(&kw, &ctr, ProductAccept::First).unwrap();
        let training = binary_input(4096);
        let sel = Selector::default();
        let p = sel.profile(&d, &training);
        assert!(!p.convergence.converges_strongly(d.n_states()));
    }

    #[test]
    fn high_spec1_branches_on_convergence() {
        // Synthetic profiles drive the two spec-1-high leaves directly.
        let sel = Selector::default();
        let conv = gspecpal_fsm::profile::ConvergenceProfile {
            steps: 10,
            mean_unique_states: 1.0,
            min_unique_states: 1,
            max_unique_states: 1,
        };
        let nonconv = gspecpal_fsm::profile::ConvergenceProfile {
            steps: 10,
            mean_unique_states: 9.0,
            min_unique_states: 9,
            max_unique_states: 9,
        };
        let base = SelectorProfile {
            spec1_accuracy: 0.95,
            spec4_accuracy: 0.99,
            worst_truth_rank: 2,
            accuracy_spread: 0.1,
            convergence: conv,
            n_states: 100,
            profiling_seconds: 0.0,
        };
        assert_eq!(sel.select(&base), SchemeKind::Sre);
        let hard = SelectorProfile { convergence: nonconv, ..base.clone() };
        assert_eq!(sel.select(&hard), SchemeKind::Rr);
        // Explanations name the branch.
        let (_, why) = sel.select_explained(&hard);
        assert!(why.contains("does not converge"), "{why}");
    }

    #[test]
    fn sensitivity_branch_prefers_nf() {
        let sel = Selector::default();
        // Wide live set (40 paths), so the SFA leaf stays out of the way and
        // the flat-spread variant falls through to RR.
        let nonconv = gspecpal_fsm::profile::ConvergenceProfile {
            steps: 10,
            mean_unique_states: 40.0,
            min_unique_states: 40,
            max_unique_states: 40,
        };
        let p = SelectorProfile {
            spec1_accuracy: 0.1,
            spec4_accuracy: 0.4,
            worst_truth_rank: 14,
            accuracy_spread: 0.8,
            convergence: nonconv,
            n_states: 500,
            profiling_seconds: 0.0,
        };
        assert_eq!(sel.select(&p), SchemeKind::Nf);
        let flat = SelectorProfile { accuracy_spread: 0.05, ..p };
        assert_eq!(sel.select(&flat), SchemeKind::Rr);
    }

    #[test]
    fn sfa_leaf_fires_on_narrow_resident_machines_only() {
        let sel = Selector::default();
        let narrow = gspecpal_fsm::profile::ConvergenceProfile {
            steps: 10,
            mean_unique_states: 17.0,
            min_unique_states: 16,
            max_unique_states: 18,
        };
        let p = SelectorProfile {
            spec1_accuracy: 0.05,
            spec4_accuracy: 0.23,
            worst_truth_rank: 33,
            accuracy_spread: 0.15,
            convergence: narrow,
            n_states: 450,
            profiling_seconds: 0.0,
        };
        assert_eq!(sel.select(&p), SchemeKind::Sfa);
        let (_, why) = sel.select_explained(&p);
        assert!(why.contains("full mapping"), "{why}");
        // Table spills the shared-memory hot set: recovery wins back.
        assert_eq!(sel.select(&SelectorProfile { n_states: 5000, ..p.clone() }), SchemeKind::Rr);
        // Tiny machine: truth rank is bounded by |Q|, recovery is shallow.
        assert_eq!(sel.select(&SelectorProfile { n_states: 7, ..p.clone() }), SchemeKind::Rr);
        // Wide live set: the |Q|-fold work stands and SFA loses.
        let wide = gspecpal_fsm::profile::ConvergenceProfile {
            steps: 10,
            mean_unique_states: 60.0,
            min_unique_states: 60,
            max_unique_states: 60,
        };
        assert_eq!(sel.select(&SelectorProfile { convergence: wide, ..p }), SchemeKind::Rr);
    }

    #[test]
    fn score_choices_leads_with_tree_pick() {
        let sel = Selector::default();
        let d = keyword_dfa(&[b"attack", b"overflow"]).unwrap();
        let training = b"mostly benign traffic with an attack or overflow rarely ".repeat(40);
        let p = sel.profile(&d, &training);
        let choices = sel.score_choices(&p);
        assert_eq!(choices[0].scheme, sel.select(&p));
        // The tail is sorted cheapest-first and covers PM's whole spec-k grid.
        for w in choices[1..].windows(2) {
            assert!(w[0].predicted_millicost <= w[1].predicted_millicost);
        }
        for k in SPEC_K_GRID {
            assert!(choices.iter().any(|c| c.scheme == SchemeKind::Pm && c.spec_k == k));
        }
        // Pure function of the profile: identical on re-evaluation.
        assert_eq!(choices, sel.score_choices(&p));
    }

    #[test]
    fn speck_surface_tracks_accuracy() {
        let sel = Selector::default();
        let conv = gspecpal_fsm::profile::ConvergenceProfile {
            steps: 10,
            mean_unique_states: 9.0,
            min_unique_states: 9,
            max_unique_states: 9,
        };
        let p = SelectorProfile {
            spec1_accuracy: 0.2,
            spec4_accuracy: 0.95,
            worst_truth_rank: 8,
            accuracy_spread: 0.1,
            convergence: conv,
            n_states: 100,
            profiling_seconds: 0.0,
        };
        // Accuracy is monotone in k and reaches certainty at the worst rank.
        assert!(sel.speck_accuracy(&p, 1) <= sel.speck_accuracy(&p, 2));
        assert!(sel.speck_accuracy(&p, 2) <= sel.speck_accuracy(&p, 4));
        assert!(sel.speck_accuracy(&p, 4) <= sel.speck_accuracy(&p, 8));
        assert!((sel.speck_accuracy(&p, 8) - 1.0).abs() < 1e-9);
        // PM's verification leg grows linearly with k, so past the coverage
        // knee deeper speculation only adds redundancy; before the knee it
        // pays, because avoided recovery dwarfs the extra lane.
        let c1 = sel.speck_cost_surface(&p, SchemeKind::Pm, 1);
        let c4 = sel.speck_cost_surface(&p, SchemeKind::Pm, 4);
        let c8 = sel.speck_cost_surface(&p, SchemeKind::Pm, 8);
        assert!(c4 < c1, "{c4} vs {c1}");
        assert!(c8 > c4, "{c8} vs {c4}");
        // Non-convergent SRE pays crawling recovery; RR amortizes it.
        let sre = sel.speck_cost_surface(&p, SchemeKind::Sre, 4);
        let rr = sel.speck_cost_surface(&p, SchemeKind::Rr, 4);
        assert!(sre > rr, "{sre} vs {rr}");
    }

    #[test]
    fn profile_reports_worst_rank() {
        let d = div7();
        let training = binary_input(2048);
        let p = Selector::default().profile(&d, &training);
        assert!(p.worst_truth_rank >= 1);
        assert!(p.worst_truth_rank <= 7);
        assert!(p.profiling_seconds >= 0.0);
    }
}
