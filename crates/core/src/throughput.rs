//! Throughput-oriented stream-level parallelism (Algorithm 1, lines 2-3).
//!
//! Most prior GPU FSM engines assign *whole streams* to threads: thousands
//! of independent inputs keep the device busy and aggregate throughput is
//! excellent, but the response time of any single stream is a full
//! sequential scan (§II-B: such designs "ignore the peak performance, i.e.,
//! the response time of running over a single input stream"). This module
//! implements that classic design so the trade-off against GSpecPal's
//! latency-sensitive chunk parallelism can be measured rather than asserted
//! — see the `motivation` experiment in `gspecpal-bench`.

use gspecpal_fsm::StateId;
use gspecpal_gpu::{
    launch_blocks_auto, try_launch_grid_detailed, BlockDim, BlockRequirements, DeviceSpec,
    GridKernel, KernelStats, RoundKernel, RoundOutcome, ThreadCtx,
};

use crate::table::DeviceTable;

/// Block resources of a stream-scanning kernel: the hot transition table in
/// shared memory plus a small per-thread register state (cursor, state,
/// stream bounds).
fn stream_requirements(table: &DeviceTable<'_>, threads: u32) -> BlockRequirements {
    BlockRequirements { threads, shared_bytes: table.shared_footprint_bytes(), regs_per_thread: 32 }
}

/// Result of a stream-parallel batch run.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// Verified end state of each stream.
    pub end_states: Vec<StateId>,
    /// Accept decision per stream.
    pub accepted: Vec<bool>,
    /// Kernel statistics. `stats.cycles` is the batch completion time: the
    /// slowest stream of the last scheduling wave gates the kernel.
    pub stats: KernelStats,
    /// Total bytes consumed across all streams.
    pub total_bytes: usize,
    /// Cycle at which each stream's scan actually finished, on the batch
    /// timeline: the start of its block's scheduling wave plus its thread's
    /// own clock. Individual streams complete (and could be delivered)
    /// before the batch does — this is what honest per-stream latency
    /// percentiles are computed from. Always `≤ stats.cycles` per entry,
    /// with at least one stream in the last wave reaching close to the gate.
    pub stream_cycles: Vec<u64>,
}

impl BatchOutcome {
    /// Aggregate throughput in bytes per simulated cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.stats.cycles == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.stats.cycles as f64
        }
    }

    /// Batch response time: the cycle the *whole* batch (and therefore its
    /// synchronous caller) completes. Individual streams finish earlier —
    /// see [`BatchOutcome::stream_cycles`] for the measured per-stream
    /// completion times this gate is the maximum of.
    pub fn response_cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// The measured completion cycle of the slowest stream — equals
    /// [`BatchOutcome::response_cycles`] up to end-of-kernel bookkeeping
    /// (the final barrier), never exceeds it.
    pub fn slowest_stream_cycles(&self) -> u64 {
        self.stream_cycles.iter().copied().max().unwrap_or(0)
    }
}

/// Runs `streams` over the same machine, one device thread per stream —
/// stream-level parallelism exactly as throughput-oriented engines do.
/// Batches larger than one block become a grid of full blocks scheduled in
/// SM waves; [`run_stream_parallel_grid`] exposes the block size explicitly.
pub fn run_stream_parallel(
    spec: &DeviceSpec,
    table: &DeviceTable<'_>,
    streams: &[&[u8]],
) -> BatchOutcome {
    assert!(!streams.is_empty(), "need at least one stream");
    let mut kernel = StreamKernel {
        table,
        streams,
        end_states: vec![0; streams.len()],
        scan_cycles: vec![0; streams.len()],
    };
    let detail = try_launch_grid_detailed(spec, streams.len(), &mut kernel)
        .unwrap_or_else(|e| panic!("launch_grid: {e}"));
    let accepted = kernel.end_states.iter().map(|&s| table.dfa().is_accepting(s)).collect();
    // Place each stream on the batch timeline: its block's wave start plus
    // its own thread clock at scan completion.
    let wave_starts = detail.wave_starts();
    let per_wave =
        detail.stats.shape.as_ref().map(|s| s.blocks_per_wave.max(1) as usize).unwrap_or(1);
    let width = detail.width.max(1) as usize;
    let stream_cycles = kernel
        .scan_cycles
        .iter()
        .enumerate()
        .map(|(i, &scan)| wave_starts[(i / width) / per_wave] + scan)
        .collect();
    BatchOutcome {
        end_states: kernel.end_states,
        accepted,
        stats: detail.stats,
        total_bytes: streams.iter().map(|s| s.len()).sum(),
        stream_cycles,
    }
}

/// Like [`run_stream_parallel`] for batches larger than one block: streams
/// are sharded into blocks of `threads_per_block` which the device schedules
/// onto its SMs in occupancy-sized waves (the full-device throughput
/// configuration of the engines §II-B describes).
pub fn run_stream_parallel_grid(
    spec: &DeviceSpec,
    table: &DeviceTable<'_>,
    streams: &[&[u8]],
    threads_per_block: usize,
) -> BatchOutcome {
    assert!(!streams.is_empty(), "need at least one stream");
    let tpb = threads_per_block.clamp(1, spec.max_threads_per_block as usize);
    let mut blocks: Vec<(usize, StreamKernel<'_, '_>)> = streams
        .chunks(tpb)
        .map(|shard| {
            (
                shard.len(),
                StreamKernel {
                    table,
                    streams: shard,
                    end_states: vec![0; shard.len()],
                    scan_cycles: vec![0; shard.len()],
                },
            )
        })
        .collect();
    let grid = launch_blocks_auto(spec, &mut blocks);

    // Wave starts: prefix sums of each wave's gating (max) block cycles.
    let per_wave = grid.blocks_per_wave.max(1) as usize;
    let mut wave_starts = Vec::with_capacity(grid.blocks.len().div_ceil(per_wave));
    let mut t = 0u64;
    for wave in grid.blocks.chunks(per_wave) {
        wave_starts.push(t);
        t += wave.iter().map(|b| b.cycles).max().unwrap_or(0);
    }

    let mut end_states = Vec::with_capacity(streams.len());
    let mut stream_cycles = Vec::with_capacity(streams.len());
    for (shard_idx, (_, k)) in blocks.iter().enumerate() {
        end_states.extend_from_slice(&k.end_states);
        let start = wave_starts[shard_idx / per_wave];
        stream_cycles.extend(k.scan_cycles.iter().map(|&scan| start + scan));
    }
    let accepted = end_states.iter().map(|&s| table.dfa().is_accepting(s)).collect();
    // Fold the grid totals into a single KernelStats for uniform reporting.
    let stats = grid.fold();
    BatchOutcome {
        end_states,
        accepted,
        stats,
        total_bytes: streams.iter().map(|s| s.len()).sum(),
        stream_cycles,
    }
}

struct StreamKernel<'a, 'j> {
    table: &'a DeviceTable<'j>,
    streams: &'a [&'a [u8]],
    end_states: Vec<StateId>,
    /// Each stream's thread clock when its scan returned — the stream's
    /// completion time relative to its block's start.
    scan_cycles: Vec<u64>,
}

impl RoundKernel for StreamKernel<'_, '_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        stream_requirements(self.table, threads)
    }

    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let stream = self.streams[tid];
        self.end_states[tid] =
            self.table.run_chunk(ctx, stream, 0..stream.len(), self.table.dfa().start());
        self.scan_cycles[tid] = ctx.cycles();
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }
}

/// One grid block's slice of a [`StreamKernel`]: streams `base..base+len`,
/// addressed by global thread id.
struct StreamBlock<'s> {
    table: &'s DeviceTable<'s>,
    base: usize,
    streams: &'s [&'s [u8]],
    end_states: &'s mut [StateId],
    scan_cycles: &'s mut [u64],
}

impl RoundKernel for StreamBlock<'_> {
    fn requirements(&self, threads: u32) -> BlockRequirements {
        stream_requirements(self.table, threads)
    }

    fn round(&mut self, tid: usize, ctx: &mut ThreadCtx<'_>) -> RoundOutcome {
        let stream = self.streams[tid - self.base];
        self.end_states[tid - self.base] =
            self.table.run_chunk(ctx, stream, 0..stream.len(), self.table.dfa().start());
        self.scan_cycles[tid - self.base] = ctx.cycles();
        RoundOutcome::ACTIVE
    }

    fn after_sync(&mut self, _round: u64) -> bool {
        false
    }
}

impl GridKernel for StreamKernel<'_, '_> {
    type Block<'s>
        = StreamBlock<'s>
    where
        Self: 's;

    fn requirements(&self, width: u32) -> BlockRequirements {
        stream_requirements(self.table, width)
    }

    fn split<'s>(&'s mut self, dims: &[BlockDim]) -> Vec<StreamBlock<'s>> {
        let mut ends: &'s mut [StateId] = &mut self.end_states;
        let mut scans: &'s mut [u64] = &mut self.scan_cycles;
        let mut out = Vec::with_capacity(dims.len());
        for dim in dims {
            let (mine, rest) = ends.split_at_mut(dim.len());
            ends = rest;
            let (my_scans, rest) = scans.split_at_mut(dim.len());
            scans = rest;
            out.push(StreamBlock {
                table: self.table,
                base: dim.tids.start,
                streams: &self.streams[dim.tids.start..dim.tids.end],
                end_states: mine,
                scan_cycles: my_scans,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchemeConfig;
    use crate::run::SchemeKind;
    use crate::schemes::{run_scheme, Job};
    use gspecpal_fsm::examples::div7;

    fn streams_of(base: &[u8], n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| base.repeat(8 + i % 4)).collect()
    }

    #[test]
    fn stream_parallel_is_exact_per_stream() {
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let streams = streams_of(b"11010101", 16);
        let refs: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
        let out = run_stream_parallel(&DeviceSpec::test_unit(), &table, &refs);
        for (i, s) in refs.iter().enumerate() {
            assert_eq!(out.end_states[i], d.run(s), "stream {i}");
            assert_eq!(out.accepted[i], d.accepts(s), "stream {i}");
        }
        assert_eq!(out.total_bytes, refs.iter().map(|s| s.len()).sum::<usize>());
    }

    #[test]
    fn throughput_beats_latency_mode_on_aggregate_but_not_response() {
        // The paper's §II-B trade-off, measured: processing B streams with
        // one thread each finishes the *batch* quickly, but a single
        // stream's response time equals the whole sequential scan — which
        // chunk-parallel speculation beats by an order of magnitude.
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let spec = DeviceSpec::test_unit();
        let stream: Vec<u8> = b"110101011001".repeat(300);
        let copies: Vec<&[u8]> = (0..32).map(|_| stream.as_slice()).collect();

        // Throughput mode: 32 streams at once.
        let batch = run_stream_parallel(&spec, &table, &copies);

        // Latency mode: one stream, chunk-parallel.
        let config = SchemeConfig { n_chunks: 32, ..SchemeConfig::default() };
        let job = Job::new(&spec, &table, &stream, config).unwrap();
        let single = run_scheme(SchemeKind::Nf, &job);
        assert_eq!(single.end_state, batch.end_states[0]);

        // Aggregate throughput: batch wins (it amortizes everything).
        let latency_mode_throughput = stream.len() as f64 / single.total_cycles() as f64;
        assert!(
            batch.bytes_per_cycle() > latency_mode_throughput,
            "batch {:.3} B/cy vs latency-mode {:.3} B/cy",
            batch.bytes_per_cycle(),
            latency_mode_throughput
        );

        // Response time of one stream: chunk parallelism wins big.
        assert!(
            single.total_cycles() * 2 < batch.response_cycles(),
            "speculative {} vs stream-parallel {}",
            single.total_cycles(),
            batch.response_cycles()
        );
    }

    #[test]
    fn grid_batches_agree_with_block_batches() {
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 4;
        let streams = streams_of(b"1101", 40);
        let refs: Vec<&[u8]> = streams.iter().map(|s| s.as_slice()).collect();
        // Shard into blocks of 8 threads; the occupancy calculator decides
        // how many ride each SM per wave.
        let grid = run_stream_parallel_grid(&spec, &table, &refs, 8);
        for (i, s) in refs.iter().enumerate() {
            assert_eq!(grid.end_states[i], d.run(s), "stream {i}");
        }
        // One big block gives the same answers.
        let block = run_stream_parallel(&spec, &table, &refs);
        assert_eq!(grid.end_states, block.end_states);
        assert_eq!(grid.total_bytes, block.total_bytes);
    }

    #[test]
    fn grid_waves_serialize() {
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 1;
        // Only one block may be resident at a time, so 4 blocks of 1 thread
        // on 1 SM serialize into 4 waves.
        spec.max_blocks_per_sm = 1;
        let stream: Vec<u8> = b"10".repeat(500);
        let refs: Vec<&[u8]> = (0..4).map(|_| stream.as_slice()).collect();
        let four_waves = run_stream_parallel_grid(&spec, &table, &refs, 1);
        // 1 block of 4 threads: a single wave.
        let one_wave = run_stream_parallel_grid(&spec, &table, &refs, 4);
        assert!(four_waves.stats.cycles > 3 * one_wave.stats.cycles);
    }

    #[test]
    fn zero_cycle_outcomes_report_zero_throughput() {
        // A fabricated zero-cycle batch must not divide by zero: throughput
        // degrades to 0.0 and the response time is the (zero) kernel time.
        let out = BatchOutcome {
            end_states: vec![0],
            accepted: vec![false],
            stats: KernelStats::default(),
            total_bytes: 1024,
            stream_cycles: vec![0],
        };
        assert_eq!(out.bytes_per_cycle(), 0.0);
        assert_eq!(out.response_cycles(), 0);
        assert_eq!(out.slowest_stream_cycles(), 0);
    }

    #[test]
    #[should_panic(expected = "need at least one stream")]
    fn empty_batches_are_rejected() {
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let _ = run_stream_parallel(&DeviceSpec::test_unit(), &table, &[]);
    }

    #[test]
    #[should_panic(expected = "need at least one stream")]
    fn empty_grid_batches_are_rejected() {
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let _ = run_stream_parallel_grid(&DeviceSpec::test_unit(), &table, &[], 8);
    }

    #[test]
    fn zero_length_streams_scan_to_the_start_state() {
        // Streams may be empty even though the batch may not: a zero-byte
        // stream ends where it starts, contributes no bytes, and the batch's
        // cycle count stays positive (the round + barrier still happen), so
        // bytes_per_cycle stays finite.
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let empty: &[u8] = b"";
        let some: &[u8] = b"110101";
        let out = run_stream_parallel(&DeviceSpec::test_unit(), &table, &[empty, some]);
        assert_eq!(out.end_states[0], d.start());
        assert_eq!(out.end_states[1], d.run(some));
        assert_eq!(out.total_bytes, some.len());
        assert!(out.response_cycles() > 0);
        assert!(out.bytes_per_cycle().is_finite());
    }

    #[test]
    fn uneven_streams_gate_on_the_longest() {
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let spec = DeviceSpec::test_unit();
        let short: Vec<u8> = b"10".repeat(10);
        let long: Vec<u8> = b"10".repeat(2000);
        let out = run_stream_parallel(&spec, &table, &[&short, &long]);
        let solo = run_stream_parallel(&spec, &table, &[&long]);
        // The short stream cannot make the batch faster than the long one.
        assert!(out.stats.cycles >= solo.stats.cycles);
    }

    #[test]
    fn stream_completion_is_measured_not_asserted() {
        // The slowest-stream-gates-the-batch claim, now checked against
        // measured per-stream clocks: the short stream's thread finishes
        // far earlier than the long one's, no stream outlives the batch,
        // and the slowest stream is what the batch waits for.
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let spec = DeviceSpec::test_unit();
        let short: Vec<u8> = b"10".repeat(10);
        let long: Vec<u8> = b"10".repeat(2000);
        let out = run_stream_parallel(&spec, &table, &[&short, &long]);
        assert_eq!(out.stream_cycles.len(), 2);
        assert!(
            out.stream_cycles[0] * 10 < out.stream_cycles[1],
            "short {} vs long {}",
            out.stream_cycles[0],
            out.stream_cycles[1]
        );
        assert!(out.slowest_stream_cycles() <= out.response_cycles());
        // The gate is the slowest stream up to end-of-kernel bookkeeping
        // (one final barrier's worth of cycles).
        assert!(out.response_cycles() - out.slowest_stream_cycles() <= spec.barrier_latency);
    }

    #[test]
    fn later_waves_complete_later() {
        let d = div7();
        let table = DeviceTable::transformed(&d, d.n_states());
        let mut spec = DeviceSpec::test_unit();
        spec.n_sms = 1;
        spec.max_blocks_per_sm = 1;
        // 4 equal streams in 1-thread blocks on 1 SM: 4 serialized waves,
        // so completions must be strictly increasing.
        let stream: Vec<u8> = b"10".repeat(500);
        let refs: Vec<&[u8]> = (0..4).map(|_| stream.as_slice()).collect();
        let out = run_stream_parallel_grid(&spec, &table, &refs, 1);
        for pair in out.stream_cycles.windows(2) {
            assert!(pair[0] < pair[1], "wave completions {:?}", out.stream_cycles);
        }
        assert!(out.slowest_stream_cycles() <= out.stats.cycles);
    }
}
