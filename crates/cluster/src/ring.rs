//! Consistent hashing: which device owns which machine (FSM).
//!
//! The router shards streams onto devices *by machine*, because a batch
//! runs one machine's table: co-locating a machine's streams is what makes
//! batches fill and its transition table stay residency-hot on one device.
//! Consistent hashing gives the placement two properties worth testing:
//!
//! * **Determinism** — placement is a pure function of `(machine id,
//!   device set, vnodes)`. No clock, no RNG state, no arrival order.
//! * **Minimal remapping** — removing a device moves only the machines it
//!   owned; adding a device moves machines only *onto* the new device,
//!   about `1/N` of them in expectation. Everything else stays put, which
//!   is what keeps residency caches warm across fleet changes.
//!
//! Hashing is [`splitmix64`] over `(device id, replica)` for the ring
//! points and over the machine id for lookups — fixed, seedless, and
//! portable, so placements are byte-stable across hosts and reruns. The
//! two families are domain-separated (the point input carries a high tag
//! bit): without it, machine `m < vnodes` hashes identically to device 0's
//! replica-`m` point and every small machine id lands on device 0.

/// The 64-bit finalizer of the splitmix64 generator: a fixed, well-mixed,
/// invertible hash. Public so tests and experiments can predict placement.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over device indices.
///
/// Each device contributes `vnodes` points at
/// `splitmix64(1 << 63 | device << 16 | replica)` (the tag bit keeps the
/// point inputs disjoint from machine-id inputs); a machine routes to the
/// device owning the first point at or after `splitmix64(machine)`,
/// wrapping at the top of the hash space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, device)`, sorted by point. Ties are impossible in practice
    /// (distinct splitmix64 inputs) but break deterministically by device.
    points: Vec<(u64, usize)>,
    vnodes: usize,
    devices: Vec<usize>,
}

impl HashRing {
    /// Builds a ring over devices `0..n_devices`, each with `vnodes`
    /// points. Panics if either is zero.
    pub fn new(n_devices: usize, vnodes: usize) -> Self {
        Self::over((0..n_devices).collect(), vnodes)
    }

    fn over(devices: Vec<usize>, vnodes: usize) -> Self {
        assert!(!devices.is_empty(), "a ring needs at least one device");
        assert!(vnodes > 0, "a ring needs at least one point per device");
        let mut points: Vec<(u64, usize)> = devices
            .iter()
            .flat_map(|&d| {
                (0..vnodes).map(move |r| (splitmix64(1 << 63 | (d as u64) << 16 | r as u64), d))
            })
            .collect();
        points.sort_unstable();
        HashRing { points, vnodes, devices }
    }

    /// The device that owns `machine`.
    pub fn route(&self, machine: usize) -> usize {
        let h = splitmix64(machine as u64);
        let idx = match self.points.binary_search(&(h, 0)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        };
        self.points[idx].1
    }

    /// The ring with `device` removed — how the router re-shards around a
    /// whole-device outage. Panics when removing the last device.
    pub fn without(&self, device: usize) -> HashRing {
        let remaining: Vec<usize> = self.devices.iter().copied().filter(|&d| d != device).collect();
        HashRing::over(remaining, self.vnodes)
    }

    /// The ring with `device` added (no-op if already present) — the other
    /// half of the minimal-remapping law.
    pub fn with_device(&self, device: usize) -> HashRing {
        let mut devices = self.devices.clone();
        if !devices.contains(&device) {
            devices.push(device);
            devices.sort_unstable();
        }
        HashRing::over(devices, self.vnodes)
    }

    /// Devices on the ring, ascending.
    pub fn devices(&self) -> &[usize] {
        &self.devices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_a_pure_function() {
        let ring = HashRing::new(4, 32);
        for m in 0..200 {
            assert_eq!(ring.route(m), ring.route(m));
            assert_eq!(ring.route(m), HashRing::new(4, 32).route(m));
            assert!(ring.devices().contains(&ring.route(m)));
        }
    }

    #[test]
    fn every_device_owns_some_machines() {
        let ring = HashRing::new(3, 64);
        let mut owned = [0usize; 3];
        for m in 0..3000 {
            owned[ring.route(m)] += 1;
        }
        for (d, n) in owned.iter().enumerate() {
            assert!(*n > 0, "device {d} owns nothing");
            // With 64 vnodes the split should be within a factor of ~3 of
            // fair share — loose, but catches a broken hash outright.
            assert!(*n > 3000 / 9, "device {d} owns only {n} of 3000");
        }
    }

    #[test]
    fn small_machine_ids_spread_across_devices() {
        // Regression pin: machine ids below `vnodes` must not all collide
        // onto device 0 (they would without hash domain separation, since
        // machine m and device 0's replica m share the raw input m).
        let ring = HashRing::new(3, 64);
        let routes: Vec<usize> = (0..16).map(|m| ring.route(m)).collect();
        assert!(routes.iter().any(|&d| d != routes[0]), "all of {routes:?} on one device");
    }

    #[test]
    fn removing_a_device_moves_only_its_machines() {
        let ring = HashRing::new(5, 32);
        let shrunk = ring.without(2);
        for m in 0..2000 {
            let before = ring.route(m);
            if before != 2 {
                assert_eq!(shrunk.route(m), before, "machine {m} moved needlessly");
            } else {
                assert_ne!(shrunk.route(m), 2);
            }
        }
    }

    #[test]
    fn adding_a_device_moves_machines_only_onto_it() {
        let small = HashRing::new(4, 32);
        let grown = small.with_device(4);
        let mut moved = 0;
        for m in 0..2000 {
            if grown.route(m) != small.route(m) {
                assert_eq!(grown.route(m), 4, "machine {m} moved to an old device");
                moved += 1;
            }
        }
        // Expect about 1/5 of machines on the new device; allow 2x slack.
        assert!(moved > 0 && moved < 2 * 2000 / 5, "moved {moved} of 2000");
    }

    #[test]
    fn remove_then_add_restores_the_original_ring() {
        let ring = HashRing::new(4, 16);
        assert_eq!(ring.without(1).with_device(1), ring);
    }
}
