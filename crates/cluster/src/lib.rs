//! Fleet serving for GSpecPal: many heterogeneous devices behind one
//! deterministic router.
//!
//! The single-device engine ([`gspecpal_serve`]) already answers "what
//! does one GPU do with this trace". This crate scales the question to a
//! *fleet*: N devices of mixed capability ([`ClusterDevice`] — an A100 on
//! NVLink next to an RTX 3090 or T4 on PCIe), each running the unmodified
//! engine on its own timeline, fed by a [`Router`] that consistent-hashes
//! streams by machine (FSM) onto device shards ([`HashRing`]).
//!
//! Fleet-level mechanisms layered on the demux:
//!
//! * **Transition-table residency** — each device's LRU over table bytes
//!   (see [`gspecpal_serve::ServeConfig::residency`]); the fleet report
//!   merges hit/miss/eviction counters across devices.
//! * **Rebalancing under skew** ([`RebalanceConfig`]) — at an epoch
//!   boundary the router migrates hot machines off the most loaded device,
//!   pricing each table transfer on the slower of the two attach links
//!   ([`gspecpal_gpu::LinkSpec`]).
//! * **Priority classes** — deadline-class machines preempt bulk kernels
//!   at wave boundaries on whichever device they land on (see
//!   [`gspecpal_serve::ServeConfig::preempt`]); the fleet report splits
//!   delivery percentiles by class.
//! * **Whole-device outage** ([`DeviceOutage`]) — arrivals re-shard over
//!   the surviving ring with minimal remapping.
//! * **Checkpoint failover** ([`FailoverConfig`]) — crash-consistent
//!   outage recovery: the victim checkpoints periodically
//!   ([`gspecpal_serve::serve_until_crash`]), its last checkpoint is
//!   finalized into a durable report and migrated to survivors over their
//!   attach links (real `Phase::Transfer` pricing with capped-exponential
//!   retry), and orphan streams are replayed on the surviving ring —
//!   [`ClusterReport::lost_streams`] is provably zero, versus the legacy
//!   model that silently completes a dead device's in-flight work.
//!
//! Everything is exact integer arithmetic over the same cost model as the
//! rest of the repo: a [`ClusterReport`] is bit-identical across host
//! thread counts and reruns, and each device's slice of it equals serving
//! that device's sub-trace standalone ([`run_cluster`] composability).
//! [`run_cluster_source`] is the streaming twin — bounded memory at
//! million-stream scale when paired with
//! [`gspecpal_serve::ReportDetail::Bounded`].

#![warn(missing_docs)]

pub mod fleet;
pub mod report;
pub mod ring;

pub use fleet::{
    run_cluster, run_cluster_source, ClusterConfig, ClusterDevice, DeviceOutage, FailoverConfig,
    FleetMachine, RebalanceConfig, Router,
};
pub use report::{ClusterReport, DeviceReport, FailoverReport, RouterStats};
pub use ring::{splitmix64, HashRing};

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::examples::{div7, mod_counter, ones_counter};
    use gspecpal_fsm::Dfa;
    use gspecpal_serve::{
        IterSource, PriorityClass, ResidencyConfig, ServeConfig, ServeError, StreamArrival, Trace,
    };

    fn fleet_dfas() -> Vec<Dfa> {
        vec![div7(), mod_counter(5, &[0]), ones_counter(3, &[1]), mod_counter(11, &[3])]
    }

    fn fleet_machines(dfas: &[Dfa]) -> Vec<FleetMachine<'_>> {
        dfas.iter()
            .map(|dfa| FleetMachine { dfa, training: b"10", class: PriorityClass::Bulk })
            .collect()
    }

    fn test_devices(n: usize) -> Vec<ClusterDevice> {
        (0..n).map(|_| ClusterDevice::test_unit()).collect()
    }

    fn spread_trace(streams: usize, machines: usize) -> Trace {
        Trace::synthetic(7, streams, machines, 25, 8..64, b"01")
    }

    #[test]
    fn every_stream_lands_on_exactly_one_device() {
        let dfas = fleet_dfas();
        let trace = spread_trace(60, dfas.len());
        let report = run_cluster(
            &test_devices(3),
            &fleet_machines(&dfas),
            &trace,
            &ClusterConfig::default(),
        )
        .unwrap();
        assert_eq!(report.streams, 60);
        let per_device: usize = report.devices.iter().map(|d| d.report.streams).sum();
        assert_eq!(per_device, 60);
        assert_eq!(report.devices.len(), 3);
        assert!(report.makespan_cycles > 0);
        assert!(report.exact_latency);
        assert!(report.delivery.max > 0);
    }

    #[test]
    fn batch_and_streaming_paths_agree_bit_for_bit() {
        let dfas = fleet_dfas();
        let trace = spread_trace(48, dfas.len());
        let devices = test_devices(3);
        let machines = fleet_machines(&dfas);
        let cfg = ClusterConfig {
            serve: ServeConfig {
                residency: Some(ResidencyConfig { capacity_bytes: 4096 }),
                ..ServeConfig::default()
            },
            ..ClusterConfig::default()
        };
        let batch = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
        let streamed = run_cluster_source(
            &devices,
            &machines,
            IterSource(trace.arrivals().iter().cloned()),
            &cfg,
        )
        .unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn heterogeneous_devices_disagree_on_speed_but_not_answers() {
        let dfas = fleet_dfas();
        let trace = spread_trace(40, dfas.len());
        let machines = fleet_machines(&dfas);
        let hetero = vec![
            ClusterDevice::a100_nvlink(),
            ClusterDevice::rtx3090_pcie(),
            ClusterDevice::t4_pcie(),
        ];
        let report = run_cluster(&hetero, &machines, &trace, &ClusterConfig::default()).unwrap();
        for dev in &report.devices {
            assert_eq!(dev.report.recovery.shed_streams, 0, "{}", dev.device);
        }
        // The router's demux is device-independent, so the same arrivals
        // land on the same shards as on a homogeneous fleet.
        let homo =
            run_cluster(&test_devices(3), &machines, &trace, &ClusterConfig::default()).unwrap();
        for (h, t) in report.devices.iter().zip(&homo.devices) {
            assert_eq!(h.report.streams, t.report.streams);
            assert_eq!(h.report.accepted, t.report.accepted);
            assert_eq!(h.report.end_states, t.report.end_states);
        }
    }

    #[test]
    fn an_outage_reroutes_only_the_failed_devices_arrivals() {
        let dfas = fleet_dfas();
        let machines = fleet_machines(&dfas);
        let devices = test_devices(3);
        let trace = spread_trace(80, dfas.len());
        let base = run_cluster(&devices, &machines, &trace, &ClusterConfig::default()).unwrap();
        let victim = (0..3).max_by_key(|&d| base.devices[d].report.streams).expect("three devices");
        let cfg = ClusterConfig {
            outage: Some(DeviceOutage { device: victim, at_cycle: 0 }),
            ..ClusterConfig::default()
        };
        let failed = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
        assert_eq!(failed.devices[victim].report.streams, 0, "dead device still fed");
        assert_eq!(failed.router.rerouted_streams as usize, base.devices[victim].report.streams);
        assert_eq!(failed.streams, 80);
    }

    #[test]
    fn skewed_load_triggers_priced_migrations() {
        let dfas = fleet_dfas();
        let machines = fleet_machines(&dfas);
        let devices = test_devices(2);
        // Everything before the epoch hammers machines 0 and 1; the ring
        // with 2 devices and default vnodes may co-locate them, and the
        // rebalancer must split whatever it observed.
        let arrivals: Vec<StreamArrival> = (0..40)
            .map(|i| StreamArrival {
                arrival_cycle: i * 10,
                machine: (i % 2) as usize,
                bytes: b"01".repeat(64),
            })
            .chain((0..40).map(|i| StreamArrival {
                arrival_cycle: 2000 + i * 10,
                machine: (i % 2) as usize,
                bytes: b"01".repeat(64),
            }))
            .collect();
        let trace = Trace::from_arrivals(arrivals);
        let cfg = ClusterConfig {
            rebalance: Some(RebalanceConfig { epoch_cycles: 1000 }),
            ..ClusterConfig::default()
        };
        let report = run_cluster(&devices, &machines, &trace, &cfg).unwrap();
        let ring = HashRing::new(2, cfg.vnodes);
        if ring.route(0) == ring.route(1) {
            assert!(report.router.migrations > 0, "skew observed but nothing moved");
            assert!(report.router.migration_bytes > 0);
            assert!(report.router.migration_cycles > 0);
            assert!(report.makespan_cycles >= 1000 + report.router.migration_cycles);
        } else {
            // Placement already splits the hot pair — nothing to fix.
            assert_eq!(report.router.migrations, 0);
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_fleets() {
        let dfas = fleet_dfas();
        let machines = fleet_machines(&dfas);
        let trace = spread_trace(4, dfas.len());
        let bad = |devices: &[ClusterDevice], cfg: &ClusterConfig| {
            matches!(
                run_cluster(devices, &machines, &trace, cfg),
                Err(ServeError::InvalidConfig { .. })
            )
        };
        assert!(bad(&[], &ClusterConfig::default()));
        assert!(bad(&test_devices(2), &ClusterConfig { vnodes: 0, ..ClusterConfig::default() }));
        assert!(bad(
            &test_devices(2),
            &ClusterConfig {
                outage: Some(DeviceOutage { device: 5, at_cycle: 0 }),
                ..ClusterConfig::default()
            }
        ));
        assert!(bad(
            &test_devices(1),
            &ClusterConfig {
                outage: Some(DeviceOutage { device: 0, at_cycle: 0 }),
                ..ClusterConfig::default()
            }
        ));
        let empty: Vec<FleetMachine<'_>> = Vec::new();
        assert!(matches!(
            run_cluster(&test_devices(1), &empty, &trace, &ClusterConfig::default()),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn a_machine_id_off_the_fleet_is_an_unknown_machine_error() {
        let dfas = fleet_dfas();
        let machines = fleet_machines(&dfas);
        let trace = Trace::from_arrivals(vec![StreamArrival {
            arrival_cycle: 0,
            machine: dfas.len(),
            bytes: b"01".to_vec(),
        }]);
        assert!(matches!(
            run_cluster(&test_devices(2), &machines, &trace, &ClusterConfig::default()),
            Err(ServeError::UnknownMachine { machine, .. }) if machine == dfas.len()
        ));
    }
}
