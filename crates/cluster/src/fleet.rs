//! The fleet runner: N heterogeneous devices behind a consistent-hash
//! router, each running the single-device serve engine on its own
//! timeline.
//!
//! A cluster run is a *demultiplex*: the router assigns every arrival to
//! one device (a pure function of its machine id and the fleet state at
//! its arrival cycle), and each device serves its share with the ordinary
//! [`gspecpal_serve`] engine — same batching, same residency LRU, same
//! preemption, same fault plan, same bit-determinism. Nothing about a
//! device's simulation depends on any other device, which is the
//! composability law the tests pin: a device's slice of the cluster report
//! is byte-identical to serving its sub-trace standalone.
//!
//! On top of the demux the router models two fleet events:
//!
//! * **Rebalancing** ([`RebalanceConfig`]) — at the epoch boundary the
//!   router looks at the bytes each device received so far and greedily
//!   migrates the hottest machines off the most loaded device until the
//!   load spread stops improving. Each migration ships the machine's
//!   transition table across the interconnect, priced by the *slower* of
//!   the two devices' links ([`LinkSpec::slower_of`]); the total migration
//!   time floors the fleet makespan.
//! * **Whole-device outage** ([`DeviceOutage`]) — from the outage cycle
//!   on, arrivals routed at the dead device re-shard over the surviving
//!   ring ([`HashRing::without`]), touching nobody else's placement.
//! * **Checkpoint failover** ([`FailoverConfig`]) — the crash-consistent
//!   twin of the outage path: the victim runs under periodic
//!   checkpointing ([`gspecpal_serve::serve_until_crash`]) and dies at
//!   the outage cycle with its in-flight state *recovered*, not
//!   fictionally completed. Its last checkpoint is finalized into a
//!   durable report, shipped to the survivors over their attach links
//!   (priced as real `Phase::Transfer` H2D copies, with
//!   capped-exponential retry on migration-copy failure), and every
//!   orphan stream — checkpointed-but-undispatched or routed to the
//!   victim after its last checkpoint — is replayed where the surviving
//!   ring routes it. No stream is lost
//!   ([`ClusterReport::lost_streams`] is zero), and the price shows up
//!   in the [`crate::FailoverReport`] counters instead of being waved
//!   away.

use std::sync::mpsc;

use gspecpal_fsm::Dfa;
use gspecpal_gpu::{
    backoff_cycles, fault_coord, link_transfer_stats, DeviceSpec, FaultDomain, KernelStats,
    LinkSpec,
};
use gspecpal_serve::{
    finalize_checkpoint, serve, serve_source, serve_until_crash, IterSource, PriorityClass,
    ReportDetail, ServeConfig, ServeError, ServeMachine, ServeReport, StreamArrival, Trace,
    TraceSource, MAX_ARRIVAL_CYCLE,
};

use crate::report::{assemble, ClusterReport, FailoverReport, RouterStats};
use crate::ring::HashRing;

/// One device in the fleet: its compute model and how it attaches to the
/// interconnect.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterDevice {
    /// The device's cost model (occupancy, latencies, copy engines).
    pub spec: DeviceSpec,
    /// The device's attach link, governing migration transfers to and from
    /// it.
    pub link: LinkSpec,
}

impl ClusterDevice {
    /// An RTX 3090 on PCIe 4.0 — the workstation-class shard.
    pub fn rtx3090_pcie() -> Self {
        ClusterDevice { spec: DeviceSpec::rtx3090(), link: LinkSpec::pcie4() }
    }

    /// An A100 on NVLink 3 — the datacenter-class shard.
    pub fn a100_nvlink() -> Self {
        ClusterDevice { spec: DeviceSpec::a100(), link: LinkSpec::nvlink3() }
    }

    /// A T4 on PCIe 3.0 — the small inference-class shard.
    pub fn t4_pcie() -> Self {
        ClusterDevice { spec: DeviceSpec::t4(), link: LinkSpec::pcie3() }
    }

    /// The unit-test device on the unit-test link.
    pub fn test_unit() -> Self {
        ClusterDevice { spec: DeviceSpec::test_unit(), link: LinkSpec::test_unit() }
    }
}

/// One machine (FSM) the fleet serves, device-agnostic: each device
/// prepares its own [`ServeMachine`] from this (table sized for *its*
/// shared memory), so heterogeneous devices coexist naturally.
#[derive(Clone, Copy, Debug)]
pub struct FleetMachine<'a> {
    /// The machine's automaton (already frequency-permuted; see
    /// [`ServeMachine::prepare`]).
    pub dfa: &'a Dfa,
    /// Training bytes the per-device selector profiles on.
    pub training: &'a [u8],
    /// Scheduling class of the machine's batches (see
    /// [`gspecpal_serve::ServeConfig::preempt`]).
    pub class: PriorityClass,
}

/// When and how the router rebalances placement under skew.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// The epoch boundary: the first arrival at or after this cycle
    /// triggers one rebalancing pass over the loads observed so far.
    pub epoch_cycles: u64,
}

/// A whole-device failure: from `at_cycle` on, the device receives no new
/// arrivals (work already routed to it still completes — the simulator
/// models losing *capacity*, not losing in-flight results).
#[derive(Clone, Copy, Debug)]
pub struct DeviceOutage {
    /// The failed device's index.
    pub device: usize,
    /// First cycle at which arrivals re-shard around it.
    pub at_cycle: u64,
}

/// Crash-consistent failover for the outage device: checkpoint cadence on
/// the doomed engine and the retry schedule for shipping its state to
/// survivors. Only takes effect when [`ClusterConfig::outage`] is also
/// set — without an outage there is no crash to recover from and the run
/// is identical to the plain path.
#[derive(Clone, Copy, Debug)]
pub struct FailoverConfig {
    /// Take a checkpoint every this many formed batches (at least 1). The
    /// fresh engine is always checkpointed before any dispatch, so a
    /// resume point exists even when the crash precedes the first batch.
    pub checkpoint_every_batches: usize,
    /// Failed migration copies are retried at most this many times; the
    /// attempt after the last retry is forced through (a real control
    /// plane escalates transports rather than dropping streams).
    pub migration_max_retries: u32,
    /// Base of the capped-exponential backoff between migration-copy
    /// retries (see [`gspecpal_gpu::backoff_cycles`]).
    pub migration_backoff_base_cycles: u64,
    /// Cap of that backoff schedule.
    pub migration_backoff_cap_cycles: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            checkpoint_every_batches: 4,
            migration_max_retries: 3,
            migration_backoff_base_cycles: 2_000,
            migration_backoff_cap_cycles: 64_000,
        }
    }
}

/// Fleet-level configuration around the per-device [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Ring points per device. More vnodes spread machines more evenly;
    /// fewer make placement coarser (and collisions — two hot machines on
    /// one device — more likely, which is what rebalancing is for).
    pub vnodes: usize,
    /// The configuration every device serves under (policy, residency,
    /// preemption, fault plan, detail).
    pub serve: ServeConfig,
    /// Rebalancing under skew; `None` pins the initial placement for the
    /// whole run (static sharding).
    pub rebalance: Option<RebalanceConfig>,
    /// Whole-device failure injection; `None` keeps every device up.
    pub outage: Option<DeviceOutage>,
    /// Crash-consistent recovery of the outage device's in-flight state;
    /// `None` keeps the legacy capacity-loss model (the victim's admitted
    /// streams complete anyway, counted by
    /// [`ClusterReport::lost_streams`]). Batch path
    /// ([`run_cluster`]) only.
    pub failover: Option<FailoverConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            vnodes: 32,
            serve: ServeConfig::default(),
            rebalance: None,
            outage: None,
            failover: None,
        }
    }
}

/// The deterministic stream router: consistent hashing by machine id, plus
/// the rebalance override map and the outage re-shard. Public so tests can
/// reproduce the demux and verify per-device composability.
#[derive(Clone, Debug)]
pub struct Router {
    ring: HashRing,
    survivors: Option<HashRing>,
    outage: Option<DeviceOutage>,
    rebalance: Option<RebalanceConfig>,
    links: Vec<LinkSpec>,
    /// Device-global table bytes per machine — what a migration ships.
    footprints: Vec<u64>,
    /// Bytes each machine has contributed so far (pre-epoch: the evidence
    /// the rebalance decision is made from).
    machine_bytes: Vec<u64>,
    overrides: Vec<Option<usize>>,
    rebalanced: bool,
    /// What the router did, for the cluster report.
    pub stats: RouterStats,
}

impl Router {
    /// Builds the router for `devices`, machines with the given table
    /// `footprints` (bytes; see [`ServeMachine::table_footprint_bytes`]),
    /// under `cfg`.
    pub fn new(devices: &[ClusterDevice], footprints: Vec<u64>, cfg: &ClusterConfig) -> Router {
        let ring = HashRing::new(devices.len(), cfg.vnodes);
        let survivors = cfg.outage.map(|o| ring.without(o.device));
        Router {
            ring,
            survivors,
            outage: cfg.outage,
            rebalance: cfg.rebalance,
            links: devices.iter().map(|d| d.link.clone()).collect(),
            machine_bytes: vec![0; footprints.len()],
            overrides: vec![None; footprints.len()],
            footprints,
            rebalanced: false,
            stats: RouterStats::default(),
        }
    }

    /// Routes one arrival: the device that serves `bytes` bytes for
    /// `machine` arriving at `cycle`. Mutates the router's load accounting
    /// and, at the epoch boundary, performs the rebalancing pass.
    pub fn route(&mut self, machine: usize, cycle: u64, bytes: usize) -> usize {
        if let Some(rb) = self.rebalance {
            if !self.rebalanced && cycle >= rb.epoch_cycles {
                self.rebalance_now(rb.epoch_cycles);
            }
            if !self.rebalanced {
                self.machine_bytes[machine] += bytes as u64;
            }
        }
        let mut device = match self.overrides[machine] {
            Some(d) => d,
            None => self.ring.route(machine),
        };
        if let (Some(outage), Some(survivors)) = (self.outage, &self.survivors) {
            if cycle >= outage.at_cycle && device == outage.device {
                device = survivors.route(machine);
                self.stats.rerouted_streams += 1;
            } else if device == outage.device {
                // Routed onto the device that is going to die: lost on
                // real hardware unless failover recovers it.
                self.stats.doomed_streams += 1;
            }
        }
        device
    }

    /// The greedy epoch rebalance: repeatedly move the heaviest machine
    /// that fits from the most loaded device to the least loaded one,
    /// while doing so strictly shrinks the spread. Each move is charged a
    /// table transfer over the slower of the two attach links.
    fn rebalance_now(&mut self, epoch: u64) {
        self.rebalanced = true;
        let n = self.links.len();
        let mut device_load = vec![0u64; n];
        let mut placed: Vec<usize> =
            (0..self.machine_bytes.len()).map(|m| self.ring.route(m)).collect();
        for (m, &b) in self.machine_bytes.iter().enumerate() {
            device_load[placed[m]] += b;
        }
        loop {
            let hi = (0..n).max_by_key(|&d| (device_load[d], d)).expect("nonempty fleet");
            let lo = (0..n).min_by_key(|&d| (device_load[d], d)).expect("nonempty fleet");
            // The heaviest machine on `hi` whose move strictly lowers the
            // peak: after the move `lo` must still sit below `hi`'s old
            // load, else we only traded one hotspot for another.
            let candidate = (0..placed.len())
                .filter(|&m| placed[m] == hi && self.machine_bytes[m] > 0)
                .filter(|&m| device_load[lo] + self.machine_bytes[m] < device_load[hi])
                .max_by_key(|&m| (self.machine_bytes[m], m));
            let Some(m) = candidate else { break };
            device_load[hi] -= self.machine_bytes[m];
            device_load[lo] += self.machine_bytes[m];
            placed[m] = lo;
            self.overrides[m] = Some(lo);
            let table = self.footprints[m];
            let link = self.links[hi].slower_of(&self.links[lo], table as usize);
            self.stats.migrations += 1;
            self.stats.migration_bytes += table;
            self.stats.migration_cycles += link.copy_cycles(table as usize);
        }
        self.stats.rebalance_epoch = if self.stats.migrations > 0 { epoch } else { 0 };
    }
}

fn validate(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'_>],
    cfg: &ClusterConfig,
) -> Result<(), ServeError> {
    if devices.is_empty() {
        return Err(ServeError::InvalidConfig {
            field: "devices",
            problem: "a cluster needs at least one device".into(),
        });
    }
    if fleet.is_empty() {
        return Err(ServeError::InvalidConfig {
            field: "machines",
            problem: "a cluster needs at least one machine".into(),
        });
    }
    if cfg.vnodes == 0 {
        return Err(ServeError::InvalidConfig {
            field: "vnodes",
            problem: "needs at least one ring point per device".into(),
        });
    }
    if let Some(o) = cfg.outage {
        if o.device >= devices.len() {
            return Err(ServeError::InvalidConfig {
                field: "outage",
                problem: format!("device {} out of range ({})", o.device, devices.len()),
            });
        }
        if devices.len() == 1 {
            return Err(ServeError::InvalidConfig {
                field: "outage",
                problem: "cannot fail the only device".into(),
            });
        }
    }
    if let Some(fo) = cfg.failover {
        if fo.checkpoint_every_batches == 0 {
            return Err(ServeError::InvalidConfig {
                field: "failover",
                problem: "checkpoint cadence needs at least one batch between checkpoints".into(),
            });
        }
    }
    // The per-device engine re-validates `cfg.serve` itself on every
    // `serve` / `serve_source` call, so fleet validation stops here.
    Ok(())
}

/// Prepares every fleet machine for every device: entry `[d][m]` is
/// machine `m`'s table and selector pick sized for device `d`. Arrivals
/// keep their global machine ids on every device, so the demux never
/// renumbers anything.
fn prepare_all<'a>(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'a>],
) -> Vec<Vec<ServeMachine<'a>>> {
    devices
        .iter()
        .map(|d| {
            fleet
                .iter()
                .map(|m| ServeMachine::prepare(&d.spec, m.dfa, m.training).with_class(m.class))
                .collect()
        })
        .collect()
}

/// Serves `trace` on the fleet: routes every arrival, runs each device's
/// sub-trace through the single-device engine, and assembles the
/// [`ClusterReport`]. Deterministic and bit-identical across host thread
/// counts and reruns — the router is a pure function and the per-device
/// engines already guarantee it for their shares.
pub fn run_cluster(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'_>],
    trace: &Trace,
    cfg: &ClusterConfig,
) -> Result<ClusterReport, ServeError> {
    validate(devices, fleet, cfg)?;
    let machines = prepare_all(devices, fleet);
    let footprints: Vec<u64> =
        machines[0].iter().map(|m| m.table_footprint_bytes() as u64).collect();
    let mut router = Router::new(devices, footprints, cfg);
    let mut shares: Vec<Vec<StreamArrival>> = vec![Vec::new(); devices.len()];
    for a in trace.arrivals() {
        if a.machine >= fleet.len() {
            return Err(ServeError::UnknownMachine {
                stream: shares.iter().map(Vec::len).sum(),
                machine: a.machine,
                n_machines: fleet.len(),
            });
        }
        let d = router.route(a.machine, a.arrival_cycle, a.bytes.len());
        shares[d].push(a.clone());
    }
    if let (Some(outage), Some(fo)) = (cfg.outage, cfg.failover) {
        return failover_cluster(devices, fleet, cfg, outage, fo, shares, &router, &machines);
    }
    let mut reports = Vec::with_capacity(devices.len());
    let mut classes: Vec<Vec<PriorityClass>> = Vec::with_capacity(devices.len());
    for (d, share) in shares.into_iter().enumerate() {
        classes.push(share.iter().map(|a| fleet[a.machine].class).collect());
        let sub = Trace::from_arrivals(share);
        reports.push(serve(&devices[d].spec, &machines[d], &sub, &cfg.serve)?);
    }
    let lost = router.stats.doomed_streams;
    Ok(assemble(devices, reports, Some(&classes), router.stats, lost, FailoverReport::default()))
}

/// The crash-consistent twin of the outage path. The victim serves its
/// share under periodic checkpointing and dies at the outage cycle; its
/// last checkpoint becomes a durable report plus the orphan streams
/// (checkpointed-but-undispatched, or routed to the victim after its last
/// checkpoint — the router's journal). The checkpoint ships to every
/// survivor that must replay orphans, over that survivor's attach link,
/// with capped-exponential retry on copy failure, and the orphans are
/// replayed where the surviving ring routes them — stamped no earlier
/// than the migration's completion, so recovery latency is paid, not
/// hidden. Stream conservation is exact: `lost_streams` is zero.
#[allow(clippy::too_many_arguments)]
fn failover_cluster(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'_>],
    cfg: &ClusterConfig,
    outage: DeviceOutage,
    fo: FailoverConfig,
    mut shares: Vec<Vec<StreamArrival>>,
    router: &Router,
    machines: &[Vec<ServeMachine<'_>>],
) -> Result<ClusterReport, ServeError> {
    let victim = outage.device;
    let victim_share = std::mem::take(&mut shares[victim]);
    let fed: usize = shares.iter().map(Vec::len).sum::<usize>() + victim_share.len();
    let crash = serve_until_crash(
        &devices[victim].spec,
        &machines[victim],
        IterSource(victim_share.iter().cloned()),
        &cfg.serve,
        fo.checkpoint_every_batches,
        outage.at_cycle,
    )?;
    let mut failover = FailoverReport {
        checkpoints_taken: crash.checkpoints_taken,
        checkpoint_bytes: crash.checkpoint_bytes,
        ..FailoverReport::default()
    };
    let mut orphans: Vec<StreamArrival> = Vec::new();
    let mut blob: Vec<u8> = Vec::new();
    let victim_report;
    let victim_classes: Vec<PriorityClass>;
    if let Some(report) = crash.completed {
        // The crash struck an idle device after its whole share finished:
        // nothing in flight, nothing to migrate.
        victim_classes = victim_share.iter().map(|a| fleet[a.machine].class).collect();
        victim_report = *report;
    } else {
        let ck = crash.checkpoint.expect("the batch-0 checkpoint always survives");
        blob = ck.encode();
        let (durable, window) =
            finalize_checkpoint(&devices[victim].spec, &machines[victim], &cfg.serve, &ck)?;
        orphans = window;
        orphans.extend(victim_share[ck.streams_pulled()..].iter().cloned());
        victim_classes =
            victim_share[..durable.streams].iter().map(|a| fleet[a.machine].class).collect();
        victim_report = durable;
    }

    // Orphans re-shard over the surviving ring, exactly like post-outage
    // arrivals do.
    let survivors = router.survivors.as_ref().expect("an outage implies a survivor ring");
    let mut orphan_shares: Vec<Vec<StreamArrival>> = vec![Vec::new(); devices.len()];
    for a in orphans {
        let d = survivors.route(a.machine);
        orphan_shares[d].push(a);
    }

    // Ship the checkpoint to every survivor that replays orphans, priced
    // on its attach link as Phase::Transfer H2D traffic. A failed copy
    // backs off and retries; the attempt after the retry budget is forced
    // through (the control plane escalates rather than dropping streams)
    // with every attempt and backoff still paid for.
    let plan = cfg.serve.scheme_config.faults;
    let mut transfer_charges: Vec<Option<KernelStats>> = vec![None; devices.len()];
    for (d, dest) in orphan_shares.iter_mut().enumerate() {
        if dest.is_empty() {
            continue;
        }
        let mut delta = 0u64;
        let mut attempt = 0u32;
        let mut charge = KernelStats::default();
        loop {
            let stats = link_transfer_stats(&devices[d].link, &devices[d].spec, blob.len());
            delta += stats.cycles;
            charge.merge_sequential(&stats);
            let failed =
                plan.is_some_and(|p| p.copy_fails(FaultDomain::H2d, fault_coord(d), attempt));
            if failed && attempt < fo.migration_max_retries {
                failover.migration_retries += 1;
                delta += backoff_cycles(
                    fo.migration_backoff_base_cycles,
                    fo.migration_backoff_cap_cycles,
                    attempt,
                );
                attempt += 1;
            } else {
                break;
            }
        }
        failover.replay_cycles += delta;
        failover.migrations_replayed += dest.len() as u64;
        transfer_charges[d] = Some(charge);
        // An orphan only becomes servable once the survivor holds the
        // checkpoint: re-stamp it no earlier than the migration's end
        // (clamped to the clock bound the serve layer enforces).
        let ready = outage.at_cycle.saturating_add(delta).min(MAX_ARRIVAL_CYCLE);
        for a in dest.iter_mut() {
            a.arrival_cycle = a.arrival_cycle.max(ready);
        }
    }

    let mut victim_report = Some(victim_report);
    let mut reports = Vec::with_capacity(devices.len());
    let mut classes: Vec<Vec<PriorityClass>> = Vec::with_capacity(devices.len());
    for (d, mut share) in shares.into_iter().enumerate() {
        if d == victim {
            reports.push(victim_report.take().expect("one victim"));
            classes.push(victim_classes.clone());
            continue;
        }
        share.append(&mut orphan_shares[d]);
        let sub = Trace::from_arrivals(share);
        classes.push(sub.arrivals().iter().map(|a| fleet[a.machine].class).collect());
        let mut report = serve(&devices[d].spec, &machines[d], &sub, &cfg.serve)?;
        if let Some(charge) = transfer_charges[d].take() {
            match cfg.serve.detail {
                ReportDetail::Full => report.stats.merge_sequential(&charge),
                ReportDetail::Bounded => report.stats.merge_sequential_compact(&charge),
            }
        }
        reports.push(report);
    }
    let served: u64 = reports.iter().map(|r| r.streams as u64).sum();
    let lost = (fed as u64).saturating_sub(served);
    Ok(assemble(devices, reports, Some(&classes), router.stats, lost, failover))
}

/// A [`TraceSource`] fed by a bounded channel — each device thread's view
/// of its share of the stream.
struct ChannelSource(mpsc::Receiver<StreamArrival>);

impl TraceSource for ChannelSource {
    fn next_arrival(&mut self) -> Option<StreamArrival> {
        self.0.recv().ok()
    }
}

/// Streams per-device channel depth: deep enough to keep device threads
/// busy, shallow enough that resident memory stays bounded by
/// `devices × depth` arrivals, not the trace length.
const CHANNEL_DEPTH: usize = 1024;

/// The streaming twin of [`run_cluster`]: pulls arrivals from `source` one
/// at a time, routes each, and hands it to the owning device's engine
/// thread over a bounded channel. Memory is bounded by the channel depths
/// and each engine's admission queue — pair with
/// [`gspecpal_serve::ReportDetail::Bounded`] to serve millions of streams.
/// Produces bit-identical reports to [`run_cluster`] on the same arrivals:
/// each device consumes exactly the same sub-sequence either way.
pub fn run_cluster_source<S: TraceSource>(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'_>],
    mut source: S,
    cfg: &ClusterConfig,
) -> Result<ClusterReport, ServeError> {
    validate(devices, fleet, cfg)?;
    if cfg.failover.is_some() {
        return Err(ServeError::InvalidConfig {
            field: "failover",
            problem: "checkpoint failover replays orphans from the batch path's routing journal; \
                      the streaming path keeps no journal, so run it through run_cluster"
                .into(),
        });
    }
    let machines = prepare_all(devices, fleet);
    let footprints: Vec<u64> =
        machines[0].iter().map(|m| m.table_footprint_bytes() as u64).collect();
    let mut router = Router::new(devices, footprints, cfg);
    let mut classes: Vec<Vec<PriorityClass>> = vec![Vec::new(); devices.len()];
    let (results, router) =
        std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(devices.len());
            let mut handles = Vec::with_capacity(devices.len());
            for (d, dev) in devices.iter().enumerate() {
                let (tx, rx) = mpsc::sync_channel::<StreamArrival>(CHANNEL_DEPTH);
                senders.push(tx);
                let machines_d = &machines[d];
                let serve_cfg = &cfg.serve;
                handles.push(scope.spawn(move || {
                    serve_source(&dev.spec, machines_d, ChannelSource(rx), serve_cfg)
                }));
            }
            let mut stream = 0usize;
            let mut feed_error = None;
            while let Some(a) = source.next_arrival() {
                if a.machine >= fleet.len() {
                    feed_error = Some(ServeError::UnknownMachine {
                        stream,
                        machine: a.machine,
                        n_machines: fleet.len(),
                    });
                    break;
                }
                let d = router.route(a.machine, a.arrival_cycle, a.bytes.len());
                let class = fleet[a.machine].class;
                if senders[d].send(a).is_err() {
                    // The device engine bailed (its error surfaces below);
                    // stop feeding so the rest of the fleet can drain.
                    break;
                }
                classes[d].push(class);
                stream += 1;
            }
            drop(senders);
            let results: Vec<Result<ServeReport, ServeError>> =
                handles.into_iter().map(|h| h.join().expect("device engine panicked")).collect();
            (feed_error.map_or(results, |e| vec![Err(e)]), router)
        });
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        reports.push(r?);
    }
    let lost = router.stats.doomed_streams;
    Ok(assemble(devices, reports, Some(&classes), router.stats, lost, FailoverReport::default()))
}
