//! The fleet runner: N heterogeneous devices behind a consistent-hash
//! router, each running the single-device serve engine on its own
//! timeline.
//!
//! A cluster run is a *demultiplex*: the router assigns every arrival to
//! one device (a pure function of its machine id and the fleet state at
//! its arrival cycle), and each device serves its share with the ordinary
//! [`gspecpal_serve`] engine — same batching, same residency LRU, same
//! preemption, same fault plan, same bit-determinism. Nothing about a
//! device's simulation depends on any other device, which is the
//! composability law the tests pin: a device's slice of the cluster report
//! is byte-identical to serving its sub-trace standalone.
//!
//! On top of the demux the router models two fleet events:
//!
//! * **Rebalancing** ([`RebalanceConfig`]) — at the epoch boundary the
//!   router looks at the bytes each device received so far and greedily
//!   migrates the hottest machines off the most loaded device until the
//!   load spread stops improving. Each migration ships the machine's
//!   transition table across the interconnect, priced by the *slower* of
//!   the two devices' links ([`LinkSpec::slower_of`]); the total migration
//!   time floors the fleet makespan.
//! * **Whole-device outage** ([`DeviceOutage`]) — from the outage cycle
//!   on, arrivals routed at the dead device re-shard over the surviving
//!   ring ([`HashRing::without`]), touching nobody else's placement.

use std::sync::mpsc;

use gspecpal_fsm::Dfa;
use gspecpal_gpu::{DeviceSpec, LinkSpec};
use gspecpal_serve::{
    serve, serve_source, PriorityClass, ServeConfig, ServeError, ServeMachine, ServeReport,
    StreamArrival, Trace, TraceSource,
};

use crate::report::{assemble, ClusterReport, RouterStats};
use crate::ring::HashRing;

/// One device in the fleet: its compute model and how it attaches to the
/// interconnect.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterDevice {
    /// The device's cost model (occupancy, latencies, copy engines).
    pub spec: DeviceSpec,
    /// The device's attach link, governing migration transfers to and from
    /// it.
    pub link: LinkSpec,
}

impl ClusterDevice {
    /// An RTX 3090 on PCIe 4.0 — the workstation-class shard.
    pub fn rtx3090_pcie() -> Self {
        ClusterDevice { spec: DeviceSpec::rtx3090(), link: LinkSpec::pcie4() }
    }

    /// An A100 on NVLink 3 — the datacenter-class shard.
    pub fn a100_nvlink() -> Self {
        ClusterDevice { spec: DeviceSpec::a100(), link: LinkSpec::nvlink3() }
    }

    /// A T4 on PCIe 3.0 — the small inference-class shard.
    pub fn t4_pcie() -> Self {
        ClusterDevice { spec: DeviceSpec::t4(), link: LinkSpec::pcie3() }
    }

    /// The unit-test device on the unit-test link.
    pub fn test_unit() -> Self {
        ClusterDevice { spec: DeviceSpec::test_unit(), link: LinkSpec::test_unit() }
    }
}

/// One machine (FSM) the fleet serves, device-agnostic: each device
/// prepares its own [`ServeMachine`] from this (table sized for *its*
/// shared memory), so heterogeneous devices coexist naturally.
#[derive(Clone, Copy, Debug)]
pub struct FleetMachine<'a> {
    /// The machine's automaton (already frequency-permuted; see
    /// [`ServeMachine::prepare`]).
    pub dfa: &'a Dfa,
    /// Training bytes the per-device selector profiles on.
    pub training: &'a [u8],
    /// Scheduling class of the machine's batches (see
    /// [`gspecpal_serve::ServeConfig::preempt`]).
    pub class: PriorityClass,
}

/// When and how the router rebalances placement under skew.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceConfig {
    /// The epoch boundary: the first arrival at or after this cycle
    /// triggers one rebalancing pass over the loads observed so far.
    pub epoch_cycles: u64,
}

/// A whole-device failure: from `at_cycle` on, the device receives no new
/// arrivals (work already routed to it still completes — the simulator
/// models losing *capacity*, not losing in-flight results).
#[derive(Clone, Copy, Debug)]
pub struct DeviceOutage {
    /// The failed device's index.
    pub device: usize,
    /// First cycle at which arrivals re-shard around it.
    pub at_cycle: u64,
}

/// Fleet-level configuration around the per-device [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Ring points per device. More vnodes spread machines more evenly;
    /// fewer make placement coarser (and collisions — two hot machines on
    /// one device — more likely, which is what rebalancing is for).
    pub vnodes: usize,
    /// The configuration every device serves under (policy, residency,
    /// preemption, fault plan, detail).
    pub serve: ServeConfig,
    /// Rebalancing under skew; `None` pins the initial placement for the
    /// whole run (static sharding).
    pub rebalance: Option<RebalanceConfig>,
    /// Whole-device failure injection; `None` keeps every device up.
    pub outage: Option<DeviceOutage>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig { vnodes: 32, serve: ServeConfig::default(), rebalance: None, outage: None }
    }
}

/// The deterministic stream router: consistent hashing by machine id, plus
/// the rebalance override map and the outage re-shard. Public so tests can
/// reproduce the demux and verify per-device composability.
#[derive(Clone, Debug)]
pub struct Router {
    ring: HashRing,
    survivors: Option<HashRing>,
    outage: Option<DeviceOutage>,
    rebalance: Option<RebalanceConfig>,
    links: Vec<LinkSpec>,
    /// Device-global table bytes per machine — what a migration ships.
    footprints: Vec<u64>,
    /// Bytes each machine has contributed so far (pre-epoch: the evidence
    /// the rebalance decision is made from).
    machine_bytes: Vec<u64>,
    overrides: Vec<Option<usize>>,
    rebalanced: bool,
    /// What the router did, for the cluster report.
    pub stats: RouterStats,
}

impl Router {
    /// Builds the router for `devices`, machines with the given table
    /// `footprints` (bytes; see [`ServeMachine::table_footprint_bytes`]),
    /// under `cfg`.
    pub fn new(devices: &[ClusterDevice], footprints: Vec<u64>, cfg: &ClusterConfig) -> Router {
        let ring = HashRing::new(devices.len(), cfg.vnodes);
        let survivors = cfg.outage.map(|o| ring.without(o.device));
        Router {
            ring,
            survivors,
            outage: cfg.outage,
            rebalance: cfg.rebalance,
            links: devices.iter().map(|d| d.link.clone()).collect(),
            machine_bytes: vec![0; footprints.len()],
            overrides: vec![None; footprints.len()],
            footprints,
            rebalanced: false,
            stats: RouterStats::default(),
        }
    }

    /// Routes one arrival: the device that serves `bytes` bytes for
    /// `machine` arriving at `cycle`. Mutates the router's load accounting
    /// and, at the epoch boundary, performs the rebalancing pass.
    pub fn route(&mut self, machine: usize, cycle: u64, bytes: usize) -> usize {
        if let Some(rb) = self.rebalance {
            if !self.rebalanced && cycle >= rb.epoch_cycles {
                self.rebalance_now(rb.epoch_cycles);
            }
            if !self.rebalanced {
                self.machine_bytes[machine] += bytes as u64;
            }
        }
        let mut device = match self.overrides[machine] {
            Some(d) => d,
            None => self.ring.route(machine),
        };
        if let (Some(outage), Some(survivors)) = (self.outage, &self.survivors) {
            if cycle >= outage.at_cycle && device == outage.device {
                device = survivors.route(machine);
                self.stats.rerouted_streams += 1;
            }
        }
        device
    }

    /// The greedy epoch rebalance: repeatedly move the heaviest machine
    /// that fits from the most loaded device to the least loaded one,
    /// while doing so strictly shrinks the spread. Each move is charged a
    /// table transfer over the slower of the two attach links.
    fn rebalance_now(&mut self, epoch: u64) {
        self.rebalanced = true;
        let n = self.links.len();
        let mut device_load = vec![0u64; n];
        let mut placed: Vec<usize> =
            (0..self.machine_bytes.len()).map(|m| self.ring.route(m)).collect();
        for (m, &b) in self.machine_bytes.iter().enumerate() {
            device_load[placed[m]] += b;
        }
        loop {
            let hi = (0..n).max_by_key(|&d| (device_load[d], d)).expect("nonempty fleet");
            let lo = (0..n).min_by_key(|&d| (device_load[d], d)).expect("nonempty fleet");
            // The heaviest machine on `hi` whose move strictly lowers the
            // peak: after the move `lo` must still sit below `hi`'s old
            // load, else we only traded one hotspot for another.
            let candidate = (0..placed.len())
                .filter(|&m| placed[m] == hi && self.machine_bytes[m] > 0)
                .filter(|&m| device_load[lo] + self.machine_bytes[m] < device_load[hi])
                .max_by_key(|&m| (self.machine_bytes[m], m));
            let Some(m) = candidate else { break };
            device_load[hi] -= self.machine_bytes[m];
            device_load[lo] += self.machine_bytes[m];
            placed[m] = lo;
            self.overrides[m] = Some(lo);
            let table = self.footprints[m];
            let link = self.links[hi].slower_of(&self.links[lo], table as usize);
            self.stats.migrations += 1;
            self.stats.migration_bytes += table;
            self.stats.migration_cycles += link.copy_cycles(table as usize);
        }
        self.stats.rebalance_epoch = if self.stats.migrations > 0 { epoch } else { 0 };
    }
}

fn validate(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'_>],
    cfg: &ClusterConfig,
) -> Result<(), ServeError> {
    if devices.is_empty() {
        return Err(ServeError::InvalidConfig {
            field: "devices",
            problem: "a cluster needs at least one device".into(),
        });
    }
    if fleet.is_empty() {
        return Err(ServeError::InvalidConfig {
            field: "machines",
            problem: "a cluster needs at least one machine".into(),
        });
    }
    if cfg.vnodes == 0 {
        return Err(ServeError::InvalidConfig {
            field: "vnodes",
            problem: "needs at least one ring point per device".into(),
        });
    }
    if let Some(o) = cfg.outage {
        if o.device >= devices.len() {
            return Err(ServeError::InvalidConfig {
                field: "outage",
                problem: format!("device {} out of range ({})", o.device, devices.len()),
            });
        }
        if devices.len() == 1 {
            return Err(ServeError::InvalidConfig {
                field: "outage",
                problem: "cannot fail the only device".into(),
            });
        }
    }
    // The per-device engine re-validates `cfg.serve` itself on every
    // `serve` / `serve_source` call, so fleet validation stops here.
    Ok(())
}

/// Prepares every fleet machine for every device: entry `[d][m]` is
/// machine `m`'s table and selector pick sized for device `d`. Arrivals
/// keep their global machine ids on every device, so the demux never
/// renumbers anything.
fn prepare_all<'a>(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'a>],
) -> Vec<Vec<ServeMachine<'a>>> {
    devices
        .iter()
        .map(|d| {
            fleet
                .iter()
                .map(|m| ServeMachine::prepare(&d.spec, m.dfa, m.training).with_class(m.class))
                .collect()
        })
        .collect()
}

/// Serves `trace` on the fleet: routes every arrival, runs each device's
/// sub-trace through the single-device engine, and assembles the
/// [`ClusterReport`]. Deterministic and bit-identical across host thread
/// counts and reruns — the router is a pure function and the per-device
/// engines already guarantee it for their shares.
pub fn run_cluster(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'_>],
    trace: &Trace,
    cfg: &ClusterConfig,
) -> Result<ClusterReport, ServeError> {
    validate(devices, fleet, cfg)?;
    let machines = prepare_all(devices, fleet);
    let footprints: Vec<u64> =
        machines[0].iter().map(|m| m.table_footprint_bytes() as u64).collect();
    let mut router = Router::new(devices, footprints, cfg);
    let mut shares: Vec<Vec<StreamArrival>> = vec![Vec::new(); devices.len()];
    for a in trace.arrivals() {
        if a.machine >= fleet.len() {
            return Err(ServeError::UnknownMachine {
                stream: shares.iter().map(Vec::len).sum(),
                machine: a.machine,
                n_machines: fleet.len(),
            });
        }
        let d = router.route(a.machine, a.arrival_cycle, a.bytes.len());
        shares[d].push(a.clone());
    }
    let mut reports = Vec::with_capacity(devices.len());
    let mut classes: Vec<Vec<PriorityClass>> = Vec::with_capacity(devices.len());
    for (d, share) in shares.into_iter().enumerate() {
        classes.push(share.iter().map(|a| fleet[a.machine].class).collect());
        let sub = Trace::from_arrivals(share);
        reports.push(serve(&devices[d].spec, &machines[d], &sub, &cfg.serve)?);
    }
    Ok(assemble(devices, reports, Some(&classes), router.stats))
}

/// A [`TraceSource`] fed by a bounded channel — each device thread's view
/// of its share of the stream.
struct ChannelSource(mpsc::Receiver<StreamArrival>);

impl TraceSource for ChannelSource {
    fn next_arrival(&mut self) -> Option<StreamArrival> {
        self.0.recv().ok()
    }
}

/// Streams per-device channel depth: deep enough to keep device threads
/// busy, shallow enough that resident memory stays bounded by
/// `devices × depth` arrivals, not the trace length.
const CHANNEL_DEPTH: usize = 1024;

/// The streaming twin of [`run_cluster`]: pulls arrivals from `source` one
/// at a time, routes each, and hands it to the owning device's engine
/// thread over a bounded channel. Memory is bounded by the channel depths
/// and each engine's admission queue — pair with
/// [`gspecpal_serve::ReportDetail::Bounded`] to serve millions of streams.
/// Produces bit-identical reports to [`run_cluster`] on the same arrivals:
/// each device consumes exactly the same sub-sequence either way.
pub fn run_cluster_source<S: TraceSource>(
    devices: &[ClusterDevice],
    fleet: &[FleetMachine<'_>],
    mut source: S,
    cfg: &ClusterConfig,
) -> Result<ClusterReport, ServeError> {
    validate(devices, fleet, cfg)?;
    let machines = prepare_all(devices, fleet);
    let footprints: Vec<u64> =
        machines[0].iter().map(|m| m.table_footprint_bytes() as u64).collect();
    let mut router = Router::new(devices, footprints, cfg);
    let mut classes: Vec<Vec<PriorityClass>> = vec![Vec::new(); devices.len()];
    let (results, router) =
        std::thread::scope(|scope| {
            let mut senders = Vec::with_capacity(devices.len());
            let mut handles = Vec::with_capacity(devices.len());
            for (d, dev) in devices.iter().enumerate() {
                let (tx, rx) = mpsc::sync_channel::<StreamArrival>(CHANNEL_DEPTH);
                senders.push(tx);
                let machines_d = &machines[d];
                let serve_cfg = &cfg.serve;
                handles.push(scope.spawn(move || {
                    serve_source(&dev.spec, machines_d, ChannelSource(rx), serve_cfg)
                }));
            }
            let mut stream = 0usize;
            let mut feed_error = None;
            while let Some(a) = source.next_arrival() {
                if a.machine >= fleet.len() {
                    feed_error = Some(ServeError::UnknownMachine {
                        stream,
                        machine: a.machine,
                        n_machines: fleet.len(),
                    });
                    break;
                }
                let d = router.route(a.machine, a.arrival_cycle, a.bytes.len());
                let class = fleet[a.machine].class;
                if senders[d].send(a).is_err() {
                    // The device engine bailed (its error surfaces below);
                    // stop feeding so the rest of the fleet can drain.
                    break;
                }
                classes[d].push(class);
                stream += 1;
            }
            drop(senders);
            let results: Vec<Result<ServeReport, ServeError>> =
                handles.into_iter().map(|h| h.join().expect("device engine panicked")).collect();
            (feed_error.map_or(results, |e| vec![Err(e)]), router)
        });
    let mut reports = Vec::with_capacity(results.len());
    for r in results {
        reports.push(r?);
    }
    Ok(assemble(devices, reports, Some(&classes), router.stats))
}
