//! Fleet-level reporting: per-device [`ServeReport`]s plus the aggregates
//! a fleet operator reads first — fleet latency percentiles, residency hit
//! rate, migration traffic, and load imbalance.
//!
//! Everything is integer-valued and assembled by deterministic folds over
//! the (already bit-identical) per-device reports, so a [`ClusterReport`]
//! is bit-identical across host thread counts and reruns — `PartialEq` on
//! the whole struct is the test.

use gspecpal_serve::{LatencySummary, PriorityClass, ResidencyReport, ServeReport, StreamOutcome};

use crate::fleet::ClusterDevice;

/// What the router did during the run: rebalancing migrations and outage
/// rerouting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Machines migrated at the rebalance epoch.
    pub migrations: u64,
    /// Transition-table bytes those migrations shipped across the fabric.
    pub migration_bytes: u64,
    /// Cycles the migrations took, priced on the slower attach link of each
    /// source/destination pair. Floors the fleet makespan when nonzero.
    pub migration_cycles: u64,
    /// The epoch cycle at which migrations ran (0 when none did).
    pub rebalance_epoch: u64,
    /// Arrivals re-sharded off a failed device.
    pub rerouted_streams: u64,
    /// Arrivals routed onto the outage device *before* it failed. Without
    /// failover these are the streams a real crash would destroy (the
    /// legacy model completes them anyway — see
    /// [`ClusterReport::lost_streams`]); with failover they are exactly
    /// the streams the checkpoint-and-replay path must conserve.
    pub doomed_streams: u64,
}

/// What the failover path did: checkpointing on the doomed device,
/// checkpoint migration to survivors, and orphan replay. All zeros when
/// [`crate::ClusterConfig::failover`] is off or no outage was configured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FailoverReport {
    /// Checkpoints the victim took before the crash (at least one — the
    /// fresh engine is checkpointed before any dispatch).
    pub checkpoints_taken: u64,
    /// Total encoded bytes of those checkpoints — the durable-storage
    /// write traffic the checkpoint cadence costs.
    pub checkpoint_bytes: u64,
    /// Orphan streams (in the checkpoint's admission window, or routed to
    /// the victim after its last checkpoint) replayed on survivors.
    pub migrations_replayed: u64,
    /// Migration copy attempts that failed and were retried under the
    /// capped-exponential backoff schedule.
    pub migration_retries: u64,
    /// Cycles spent shipping the victim's checkpoint to survivors over
    /// their attach links, including every failed attempt and backoff.
    /// Orphans only become servable on a survivor once its copy lands, so
    /// these cycles delay replay directly.
    pub replay_cycles: u64,
}

/// One device's slice of the cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceReport {
    /// `"<device>/<link>"`, e.g. `"a100/nvlink3"`.
    pub device: String,
    /// The device's ordinary single-device report over its sub-trace —
    /// byte-identical to serving that sub-trace standalone.
    pub report: ServeReport,
}

/// The full result of serving a trace on the fleet.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterReport {
    /// Every device's slice, in device-index order.
    pub devices: Vec<DeviceReport>,
    /// Streams routed fleet-wide (= trace length).
    pub streams: usize,
    /// Fleet wall-clock: the slowest device's makespan, floored by the
    /// rebalance migrations (`rebalance_epoch + migration_cycles`) when any
    /// ran — tables in flight are capacity nobody can use.
    pub makespan_cycles: u64,
    /// Fleet-wide delivery percentiles over all served streams. Exact when
    /// every device retained per-stream latencies
    /// ([`gspecpal_serve::ReportDetail::Full`]); otherwise a field-wise
    /// upper bound over the per-device summaries (see `exact_latency`).
    pub delivery: LatencySummary,
    /// Delivery percentiles of bulk-class streams alone (all zeros when the
    /// fleet path could not attribute streams to classes — see
    /// `exact_latency`).
    pub bulk_delivery: LatencySummary,
    /// Delivery percentiles of deadline-class streams alone (all zeros when
    /// unattributable).
    pub deadline_delivery: LatencySummary,
    /// Whether `delivery` (and the class splits) were computed exactly from
    /// per-stream latencies, or upper-bounded from per-device summaries
    /// (the streaming / [`gspecpal_serve::ReportDetail::Bounded`] path).
    pub exact_latency: bool,
    /// All devices' residency-LRU counters, merged.
    pub residency: ResidencyReport,
    /// Deadline-over-bulk preemptions fleet-wide.
    pub preemptions: u64,
    /// Total cycles those preemptions delayed bulk kernels by.
    pub preempted_cycles: u64,
    /// Streams shed fleet-wide, for any reason.
    pub shed_streams: u64,
    /// Peak-to-mean device busy-cycle ratio in permille: 1000 is a
    /// perfectly level fleet, 2000 means the hottest device did twice the
    /// mean work. 1000 when no device did any work.
    pub imbalance_permille: u64,
    /// Migration and rerouting activity.
    pub router: RouterStats,
    /// Streams whose results the fleet did not actually produce on live
    /// hardware. Zero on a healthy fleet. Under an outage *without*
    /// failover this counts the arrivals already routed to the victim when
    /// it died — the legacy model completes them anyway, and this counter
    /// makes that fiction measurable instead of silent. With failover it
    /// must be zero: every doomed stream is either in the victim's durable
    /// checkpoint report or replayed on a survivor.
    pub lost_streams: u64,
    /// Checkpoint / migration / replay counters of the failover path.
    pub failover: FailoverReport,
}

impl ClusterReport {
    /// Residency hit rate across the fleet, in permille.
    pub fn residency_hit_permille(&self) -> u64 {
        self.residency.hit_permille()
    }
}

/// Folds per-device reports into the fleet report. `classes[d][i]` is the
/// priority class of device `d`'s `i`-th admitted stream (sub-trace
/// order); `None` (the streaming path) skips the per-class split.
pub(crate) fn assemble(
    devices: &[ClusterDevice],
    reports: Vec<ServeReport>,
    classes: Option<&[Vec<PriorityClass>]>,
    router: RouterStats,
    lost_streams: u64,
    failover: FailoverReport,
) -> ClusterReport {
    let streams: usize = reports.iter().map(|r| r.streams).sum();
    let device_makespan = reports.iter().map(|r| r.makespan_cycles).max().unwrap_or(0);
    let migration_floor =
        if router.migrations > 0 { router.rebalance_epoch + router.migration_cycles } else { 0 };

    let mut residency = ResidencyReport::default();
    let mut preemptions = 0;
    let mut preempted_cycles = 0;
    let mut shed_streams = 0;
    for r in &reports {
        residency.merge(&r.residency);
        preemptions += r.preemptions;
        preempted_cycles += r.preempted_cycles;
        shed_streams += r.recovery.shed_streams;
    }

    // Exact fleet percentiles need every served stream's latency, which
    // only `ReportDetail::Full` retains.
    let exact_latency = reports.iter().all(|r| r.latencies.len() == r.streams);
    let (delivery, bulk_delivery, deadline_delivery) = if exact_latency {
        let mut all = Vec::with_capacity(streams);
        let mut bulk = Vec::new();
        let mut deadline = Vec::new();
        for (d, r) in reports.iter().enumerate() {
            for (i, &lat) in r.latencies.iter().enumerate() {
                if r.outcomes[i] != StreamOutcome::Served {
                    continue;
                }
                all.push(lat);
                if let Some(classes) = classes {
                    match classes[d][i] {
                        PriorityClass::Bulk => bulk.push(lat),
                        PriorityClass::Deadline => deadline.push(lat),
                    }
                }
            }
        }
        (
            LatencySummary::from_latencies(&all),
            LatencySummary::from_latencies(&bulk),
            LatencySummary::from_latencies(&deadline),
        )
    } else {
        // Field-wise maximum over the devices is a sound upper bound for
        // every percentile (each device's p99 bounds its streams'
        // contribution); the class split is unattributable here.
        let bound = reports.iter().map(|r| r.delivery).fold(LatencySummary::default(), |acc, s| {
            LatencySummary {
                p50: acc.p50.max(s.p50),
                p95: acc.p95.max(s.p95),
                p99: acc.p99.max(s.p99),
                max: acc.max.max(s.max),
            }
        });
        (bound, LatencySummary::default(), LatencySummary::default())
    };

    let loads: Vec<u64> = reports.iter().map(|r| r.stats.cycles).collect();
    let total: u128 = loads.iter().map(|&c| c as u128).sum();
    let peak = *loads.iter().max().expect("nonempty fleet") as u128;
    // An idle fleet (total 0) reads as perfectly balanced: 1000‰.
    let imbalance_permille =
        (peak * 1000 * loads.len() as u128).checked_div(total).unwrap_or(1000) as u64;

    ClusterReport {
        devices: devices
            .iter()
            .zip(reports)
            .map(|(d, report)| DeviceReport {
                device: format!("{}/{}", d.spec.name, d.link.name),
                report,
            })
            .collect(),
        streams,
        makespan_cycles: device_makespan.max(migration_floor),
        delivery,
        bulk_delivery,
        deadline_delivery,
        exact_latency,
        residency,
        preemptions,
        preempted_cycles,
        shed_streams,
        imbalance_permille,
        router,
        lost_streams,
        failover,
    }
}
