//! The serving pipeline: admission, batching, transfer charging, and
//! copy/compute overlap.
//!
//! # Model
//!
//! Arrivals are admitted in trace order into a bounded queue
//! (`max_queue_depth` slots). The dispatcher repeatedly takes a batch from
//! the queue head — a contiguous same-machine run, closed by the active
//! [`BatchPolicy`] — and schedules it as three operations on the device
//! timeline:
//!
//! ```text
//!  H2D engine   ──[copy inputs k]──────[copy inputs k+1]─────────────
//!  compute      ────────────[kernel k]───────────[kernel k+1]───────
//!  D2H engine   ──────────────────────[results k]────────[results k+1]
//! ```
//!
//! With overlap enabled the three queues advance independently, so batch
//! *k+1*'s input copy rides under batch *k*'s kernel (double buffering:
//! inputs stage into one of two `device_mem_bytes / 2` buffers, so copy
//! *k+1* must also wait for kernel *k−1* to release its buffer). With
//! overlap disabled, every operation funnels through one serialized queue.
//!
//! # Backpressure
//!
//! A stream occupies a queue slot from admission until its batch's input
//! copy *starts* (the slot is the host-side staging entry; once DMA begins
//! the stream belongs to the device). When the queue is full, admission of
//! stream *n* waits for the slot of stream *n − max_queue_depth* — the wait
//! is counted per stream in
//! [`ServeReport::backpressure_events`]/[`backpressure_wait_cycles`].
//! Batches never exceed the queue depth, so slot releases are always known
//! by the time they are needed and the simulation stays a single forward
//! pass.
//!
//! # Execution modes
//!
//! Each batch runs either **stream-parallel** (one device thread per
//! stream, via [`gspecpal::throughput::run_stream_parallel`]) or
//! **chunk-parallel** (the machine's selector-chosen speculative scheme per
//! stream, back to back). The dispatcher estimates both and picks the
//! cheaper: a batch of many comparable streams saturates the device in
//! stream mode; a batch dominated by one long stream wants chunked
//! speculation.
//!
//! # Scale
//!
//! The engine behind [`serve`] is [`serve_source`]: it *pulls* arrivals
//! from a [`TraceSource`] in admission order and never materializes the
//! trace. Every piece of engine state is bounded by the queue depth and
//! the pipeline depth, not the stream count:
//!
//! * the admission window holds at most one batch plus one look-ahead
//!   arrival; a stream's bytes are dropped as soon as its batch is charged;
//! * slot releases live in a ring of the last `max_queue_depth` entries
//!   (admission of stream `k` only ever consults stream
//!   `k − max_queue_depth`);
//! * queue-depth samples fold through a small pending-event heap
//!   (`DepthTracker`) instead of a sort over every admission;
//! * overlap efficiency is computed incrementally over the retained
//!   pipeline window (`OverlapMeter`) instead of a quadratic sweep over
//!   all batch records.
//!
//! Under [`ReportDetail::Full`] (the default, and what [`serve`] uses) the
//! per-stream and per-batch vectors are still collected, and the report is
//! byte-identical to the historical one. Under [`ReportDetail::Bounded`]
//! those vectors stay empty and the report's memory is O(1) in the stream
//! count: summaries come from [`LatencySketch`]es past
//! [`crate::report::EXACT_SUMMARY_MAX`] served streams, merged kernel
//! stats drop their per-round event streams
//! ([`KernelStats::merge_sequential_compact`]), and the queue-depth peak is
//! tracked without the samples.
//!
//! [`ServeReport::backpressure_events`]: crate::ServeReport::backpressure_events
//! [`backpressure_wait_cycles`]: crate::ServeReport::backpressure_wait_cycles

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use gspecpal::table::{DeviceTable, TableLayout};
use gspecpal::throughput::run_stream_parallel;
use gspecpal::{run_scheme, Job, SchemeConfig, SchemeKind, Selector};
use gspecpal_fsm::Dfa;
use gspecpal_gpu::{
    backoff_cycles, fault_coord, fit_block_width, max_resident_blocks, transfer_stats,
    BlockRequirements, DeviceSpec, DeviceTimeline, FaultDomain, FaultPlan, KernelStats, Span,
};

use crate::controller::{
    AdaptiveController, BatchObservation, ControllerConfig, DecisionRecord, LaunchChoice,
    MachineArmState,
};
use crate::error::ServeError;
use crate::policy::{BatchPolicy, PriorityClass};
use crate::report::{
    BatchRecord, ExecMode, LatencySummary, ServeReport, StreamOutcome, EXACT_SUMMARY_MAX,
};
use crate::sketch::LatencySketch;
use crate::source::TraceSource;
use crate::trace::{StreamArrival, Trace};

/// One servable machine: its device-resident table, the scheme the
/// selector picked for it, and the scored candidate arms the adaptive
/// controller may re-select among.
#[derive(Clone, Debug)]
pub struct ServeMachine<'a> {
    table: DeviceTable<'a>,
    scheme: SchemeKind,
    /// SFA's effective mapping width on this machine (1 for everything
    /// else's purposes; see [`ServeMachine::chunk_work_factor_for`]).
    sfa_width: u64,
    arms: Vec<LaunchChoice>,
    class: PriorityClass,
}

impl<'a> ServeMachine<'a> {
    /// Prepares `dfa` for serving on `spec`: profiles it on `training` with
    /// the Fig 6 selector to pick the execution scheme, and sizes the
    /// hot-row table for the device. `dfa` must already be
    /// frequency-permuted (see `gspecpal_fsm::TransformedDfa`) so hot rows
    /// are the low state ids. The same profile also scores the candidate
    /// launch arms the adaptive controller explores (arm 0 = the Fig 6
    /// pick, then the spec-k surface cheapest-first, then the offline
    /// pick's sequential-stitch variant).
    pub fn prepare(spec: &DeviceSpec, dfa: &'a Dfa, training: &[u8]) -> Self {
        let selector = Selector::default();
        let profile = selector.profile(dfa, training);
        let scheme = selector.select(&profile);
        // SFA's per-byte work is its effective mapping width, measured
        // during profiling as the surviving unique-state count.
        let sfa_width = (profile.convergence.mean_unique_states.ceil() as u64).max(1);
        let mut arms: Vec<LaunchChoice> = selector
            .score_choices(&profile)
            .into_iter()
            .map(|c| LaunchChoice {
                scheme: c.scheme,
                spec_k: c.spec_k,
                stitch: gspecpal::StitchPolicy::Tree,
                predicted_millicost: c.predicted_millicost,
            })
            .collect();
        // The stitch axis: the offline pick with the left-to-right seam
        // walk, predicted marginally worse than its tree-stitch twin.
        arms.push(LaunchChoice {
            stitch: gspecpal::StitchPolicy::Sequential,
            predicted_millicost: arms[0].predicted_millicost + 1,
            ..arms[0]
        });
        let hot = DeviceTable::hot_rows_for_device(dfa, TableLayout::Transformed, spec);
        ServeMachine {
            table: DeviceTable::transformed(dfa, hot),
            scheme,
            sfa_width,
            arms,
            class: PriorityClass::Bulk,
        }
    }

    /// Like [`ServeMachine::prepare`] with the scheme pinned — for tests
    /// and ablations that bypass the selector. Without a profile, SFA's
    /// chunk work is estimated at the machine's full (clamped) width, and
    /// the controller sees a single arm (spec-k 0 = inherit the run's
    /// config), so adaptive runs degenerate to the pinned scheme.
    pub fn with_scheme(spec: &DeviceSpec, dfa: &'a Dfa, scheme: SchemeKind) -> Self {
        let sfa_width = u64::from(dfa.n_states()).clamp(1, 64);
        let arms = vec![LaunchChoice {
            scheme,
            spec_k: 0,
            stitch: gspecpal::StitchPolicy::Tree,
            predicted_millicost: match scheme {
                SchemeKind::Sfa => 1000 * sfa_width,
                _ => 1000,
            },
        }];
        let hot = DeviceTable::hot_rows_for_device(dfa, TableLayout::Transformed, spec);
        ServeMachine {
            table: DeviceTable::transformed(dfa, hot),
            scheme,
            sfa_width,
            arms,
            class: PriorityClass::Bulk,
        }
    }

    /// Returns the machine with its scheduling class set. Classes only
    /// matter under [`ServeConfig::preempt`]; the default is
    /// [`PriorityClass::Bulk`].
    pub fn with_class(mut self, class: PriorityClass) -> Self {
        self.class = class;
        self
    }

    /// The machine's scheduling class.
    pub fn class(&self) -> PriorityClass {
        self.class
    }

    /// Device-global bytes the machine's full transition table occupies —
    /// what a residency miss copies (see [`ResidencyConfig`]) and what
    /// fleet routers weigh when placing machines.
    pub fn table_footprint_bytes(&self) -> usize {
        self.table.global_footprint_bytes()
    }

    /// The scheme the selector chose.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// The machine's candidate launch arms (arm 0 = the offline pick).
    pub fn arms(&self) -> &[LaunchChoice] {
        &self.arms
    }

    /// Estimated per-byte work multiplier of a chunk-parallel scan with the
    /// chosen scheme, relative to a one-state sequential walk. 1 for the
    /// speculative schemes; SFA pays its effective mapping width. The batch
    /// estimator scales the chunk-parallel cost estimate by this factor so
    /// a wide-mapping machine is not mis-routed away from stream-parallel
    /// execution.
    pub fn chunk_work_factor(&self) -> u64 {
        self.chunk_work_factor_for(self.scheme)
    }

    /// [`ServeMachine::chunk_work_factor`] for an arbitrary scheme — what
    /// the estimator charges when the adaptive controller overrides the
    /// static pick.
    pub fn chunk_work_factor_for(&self, scheme: SchemeKind) -> u64 {
        match scheme {
            SchemeKind::Sfa => self.sfa_width,
            _ => 1,
        }
    }

    /// The machine's device table.
    pub fn table(&self) -> &DeviceTable<'a> {
        &self.table
    }
}

/// Retry, load-shedding and circuit-breaker policy for the serving
/// pipeline.
///
/// Copy retries only ever fire under a fault plan
/// ([`gspecpal::SchemeConfig::faults`] — the same plan drives kernel-side
/// and copy-engine injection, on independently salted domains); shedding
/// and the breaker are off by default, so the default config is
/// behaviourally identical to a pipeline without any recovery machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeRecoveryConfig {
    /// Retries per host↔device copy after its first failed attempt. A batch
    /// whose copy budget runs out is abandoned and its streams shed.
    pub copy_max_retries: u32,
    /// Backoff before copy retry `a` (0-based) is `min(base << a, cap)`
    /// cycles on the engine clock.
    pub copy_backoff_base_cycles: u64,
    /// Cap on the copy retry backoff.
    pub copy_backoff_cap_cycles: u64,
    /// Shed a head-of-queue stream whose admission wait exceeded this many
    /// cycles instead of dispatching it (deadline-based load shedding).
    /// 0 disables shedding.
    pub shed_wait_cycles: u64,
    /// Consecutive failed batches that trip the circuit breaker. Once open
    /// it stays open: every remaining stream is shed as
    /// [`StreamOutcome::ShedBreakerOpen`]. 0 disables the breaker.
    pub breaker_failure_threshold: u32,
}

impl Default for ServeRecoveryConfig {
    fn default() -> Self {
        ServeRecoveryConfig {
            copy_max_retries: 2,
            copy_backoff_base_cycles: 32,
            copy_backoff_cap_cycles: 1024,
            shed_wait_cycles: 0,
            breaker_failure_threshold: 0,
        }
    }
}

/// How much per-stream and per-batch detail a serve run retains.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReportDetail {
    /// Keep every per-stream and per-batch vector. This is the historical
    /// behaviour and the default; memory grows with the trace.
    #[default]
    Full,
    /// Bounded memory, independent of the stream count: per-stream vectors
    /// (`latencies`, `end_states`, `accepted`, `outcomes`), batch records,
    /// queue-depth samples, and the merged stats' per-round event streams
    /// are all dropped. Summaries, sketches, the queue-depth peak
    /// ([`ServeReport::peak_queue`]) and every scalar counter are kept, and
    /// remain bit-identical to what the `Full` report would aggregate to.
    Bounded,
}

/// Configuration of the per-device transition-table residency LRU.
///
/// When set on [`ServeConfig::residency`], the engine models device
/// global memory for transition tables as an LRU of `capacity_bytes`: a
/// batch whose machine's table
/// ([`DeviceTable::global_footprint_bytes`](gspecpal::table::DeviceTable::global_footprint_bytes))
/// is not resident charges a real H2D copy of the table before its kernel
/// may start (cycles in `Phase::Transfer` — the phase partition stays
/// exact), evicting least-recently-used tables until it fits. A table
/// larger than the whole capacity is never cached: every one of its
/// batches re-uploads it. Residency copies are not subject to the fault
/// plan (only batch input/result copies are).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResidencyConfig {
    /// Device global-memory budget for resident transition tables, in
    /// bytes. Must be at least 1.
    pub capacity_bytes: usize,
}

/// Serving-pipeline configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Whether copies and compute may overlap (dual copy engines + double
    /// buffering). Disabling serializes every operation — the baseline the
    /// overlap win is measured against.
    pub overlap: bool,
    /// Device memory reserved for staging batch inputs; halved into two
    /// buffers for double buffering. A batch's inputs must fit one buffer.
    pub device_mem_bytes: usize,
    /// Host-side admission queue depth; a full queue backpressures
    /// arrivals. Also the hard cap on streams per batch (a batch is drawn
    /// from the queue).
    pub max_queue_depth: usize,
    /// Result payload copied device→host per stream (end state + accept
    /// flag + match count).
    pub d2h_bytes_per_stream: usize,
    /// Estimated fixed overhead per stream of a chunk-parallel run
    /// (predict + verify ramp), used only by the execution-mode heuristic.
    pub chunk_overhead_cycles: u64,
    /// Base configuration for chunk-parallel runs (`n_chunks` is clamped to
    /// each stream's length).
    pub scheme_config: SchemeConfig,
    /// Retry / shedding / breaker policy (inert at its defaults).
    pub recovery: ServeRecoveryConfig,
    /// How much detail the report retains (full vectors vs bounded
    /// memory).
    pub detail: ReportDetail,
    /// Online autotuning: when set, an [`AdaptiveController`] re-selects
    /// scheme, spec-k, and stitch policy per (machine, batch) from observed
    /// batch costs, starting from each machine's offline pick. `None` (the
    /// default) serves every batch with the static selector choice — the
    /// historical behaviour, byte for byte.
    pub controller: Option<ControllerConfig>,
    /// Transition-table residency modeling. `None` (the default) assumes
    /// every machine's table is permanently device-resident — the
    /// historical behaviour, byte for byte. See [`ResidencyConfig`].
    pub residency: Option<ResidencyConfig>,
    /// Preemptive deadline classes: when `true`, a batch for a
    /// [`PriorityClass::Deadline`] machine may split the in-flight bulk
    /// kernel at its next wave boundary (chunk-parallel kernels yield at
    /// stream completions, stream-parallel kernels at grid wave
    /// boundaries) instead of queueing behind it; the displaced bulk waves
    /// resume afterwards and the bulk batch's completion slides back by
    /// exactly the preemptor's duration. Requires `overlap` (a serialized
    /// device has no separate compute queue to preempt). Default `false` —
    /// the historical FIFO compute queue, byte for byte.
    pub preempt: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: BatchPolicy::Fifo { batch: 8 },
            overlap: true,
            device_mem_bytes: 1 << 20,
            max_queue_depth: 64,
            d2h_bytes_per_stream: 8,
            chunk_overhead_cycles: 64,
            scheme_config: SchemeConfig::default(),
            recovery: ServeRecoveryConfig::default(),
            detail: ReportDetail::Full,
            controller: None,
            residency: None,
            preempt: false,
        }
    }
}

impl ServeConfig {
    /// Bytes one input staging buffer holds.
    pub fn buffer_bytes(&self) -> usize {
        self.device_mem_bytes / 2
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.buffer_bytes() == 0 {
            return Err(ServeError::InvalidConfig {
                field: "device_mem_bytes",
                problem: format!(
                    "must be at least 2 (two staging buffers), got {}",
                    self.device_mem_bytes
                ),
            });
        }
        if self.max_queue_depth == 0 {
            return Err(ServeError::InvalidConfig {
                field: "max_queue_depth",
                problem: "must be at least 1".into(),
            });
        }
        if self.policy.max_streams() == 0 {
            return Err(ServeError::InvalidConfig {
                field: "policy",
                problem: format!("{} batch cap must be at least 1", self.policy.name()),
            });
        }
        if self.residency.is_some_and(|r| r.capacity_bytes == 0) {
            return Err(ServeError::InvalidConfig {
                field: "residency",
                problem: "capacity_bytes must be at least 1".into(),
            });
        }
        if self.preempt && !self.overlap {
            return Err(ServeError::InvalidConfig {
                field: "preempt",
                problem: "preemption needs a separate compute queue (set overlap = true)".into(),
            });
        }
        Ok(())
    }
}

/// The occupancy-target batch size of [`BatchPolicy::Adaptive`]: how many
/// one-thread-per-stream scans fill the device (fitted block width ×
/// resident blocks per SM × SMs).
fn occupancy_target(spec: &DeviceSpec, table: &DeviceTable<'_>) -> usize {
    let req = |w: u32| BlockRequirements {
        threads: w,
        shared_bytes: table.shared_footprint_bytes(),
        regs_per_thread: 32,
    };
    match fit_block_width(spec, req) {
        Ok(width) => {
            let resident = max_resident_blocks(spec, &req(width)).max(1);
            // Each factor fits in u32, so the product always fits in u128 —
            // but on a 32-bit host it can exceed usize, so widen first and
            // saturate instead of wrapping (the target is a batch-size cap;
            // saturating just means "as large a batch as the policy
            // allows").
            let target = u128::from(width) * u128::from(resident) * u128::from(spec.n_sms.max(1));
            usize::try_from(target).unwrap_or(usize::MAX)
        }
        Err(_) => 1,
    }
}

/// Result of executing one batch's kernels (before transfers).
struct BatchExec {
    stats: KernelStats,
    /// Per-stream scan-completion offset from kernel start.
    completions: Vec<u64>,
    end_states: Vec<gspecpal_fsm::StateId>,
    accepted: Vec<bool>,
    mode: ExecMode,
    /// Speculation checks performed across the batch's verifications.
    checks: u64,
    /// Checks that found a matching record (predictor hits).
    matches: u64,
}

/// Executes one batch's streams on `machine`, choosing stream- or
/// chunk-parallel execution by estimated cost. When the adaptive
/// controller hands down a `choice`, its scheme/spec-k/stitch override the
/// machine's static pick on the chunk-parallel path (stream-parallel scans
/// have no speculation to steer).
fn execute_batch(
    spec: &DeviceSpec,
    machine: &ServeMachine<'_>,
    streams: &[&[u8]],
    cfg: &ServeConfig,
    choice: Option<&LaunchChoice>,
) -> BatchExec {
    let scheme = choice.map_or(machine.scheme, |c| c.scheme);
    let nc = cfg.scheme_config.n_chunks.max(1);
    let chunk_est: u64 = streams
        .iter()
        .map(|s| {
            (s.len().div_ceil(nc)) as u64 * machine.chunk_work_factor_for(scheme)
                + cfg.chunk_overhead_cycles
        })
        .sum();
    let stream_est = streams.iter().map(|s| s.len() as u64).max().unwrap_or(0);
    if chunk_est < stream_est {
        if let Some(exec) = execute_chunk_parallel(spec, machine, streams, cfg, choice) {
            return exec;
        }
    }
    execute_stream_parallel(spec, machine, streams)
}

fn execute_stream_parallel(
    spec: &DeviceSpec,
    machine: &ServeMachine<'_>,
    streams: &[&[u8]],
) -> BatchExec {
    let out = run_stream_parallel(spec, &machine.table, streams);
    BatchExec {
        stats: out.stats,
        completions: out.stream_cycles,
        end_states: out.end_states,
        accepted: out.accepted,
        mode: ExecMode::StreamParallel,
        checks: 0,
        matches: 0,
    }
}

/// Runs each stream chunk-parallel with the machine's scheme (or the
/// controller's override), back to back on the compute queue. Returns
/// `None` if any stream's job cannot be built (the caller falls back to
/// stream-parallel execution).
fn execute_chunk_parallel(
    spec: &DeviceSpec,
    machine: &ServeMachine<'_>,
    streams: &[&[u8]],
    cfg: &ServeConfig,
    choice: Option<&LaunchChoice>,
) -> Option<BatchExec> {
    let dfa = machine.table.dfa();
    let scheme = choice.map_or(machine.scheme, |c| c.scheme);
    let mut stats = KernelStats::default();
    let mut completions = Vec::with_capacity(streams.len());
    let mut end_states = Vec::with_capacity(streams.len());
    let mut accepted = Vec::with_capacity(streams.len());
    let mut checks = 0u64;
    let mut matches = 0u64;
    let mut clock = 0u64;
    for stream in streams {
        if stream.is_empty() {
            // An empty stream ends where it starts and costs nothing.
            end_states.push(dfa.start());
            accepted.push(dfa.is_accepting(dfa.start()));
            completions.push(clock);
            continue;
        }
        let mut sc = cfg.scheme_config;
        sc.n_chunks = sc.n_chunks.min(stream.len()).max(1);
        if let Some(c) = choice {
            if c.spec_k > 0 {
                sc.spec_k = c.spec_k;
            }
            sc.stitch = c.stitch;
        }
        let job = Job::new(spec, &machine.table, stream, sc).ok()?;
        let out = run_scheme(scheme, &job);
        stats.merge_sequential(&out.predict);
        stats.merge_sequential(&out.execute);
        stats.merge_sequential(&out.verify);
        checks += out.verification_checks;
        matches += out.verification_matches;
        clock += out.total_cycles();
        completions.push(clock);
        end_states.push(out.end_state);
        accepted.push(out.accepted);
    }
    debug_assert_eq!(stats.cycles, clock, "stage merge must reproduce the batch clock");
    Some(BatchExec {
        stats,
        completions,
        end_states,
        accepted,
        mode: ExecMode::ChunkParallel,
        checks,
        matches,
    })
}

/// Which copy engine a transfer runs on.
#[derive(Clone, Copy)]
enum CopyDir {
    H2d,
    D2h,
}

/// The copy-channel fault context: the run's plan plus its retry/backoff
/// budget, bundled so the retry scheduler takes one handle.
struct CopyFaults<'a> {
    plan: &'a FaultPlan,
    rcfg: &'a ServeRecoveryConfig,
}

/// Schedules one logical copy, retrying failed attempts (per the fault
/// plan, keyed on the batch index) with capped exponential backoff. Every
/// attempt — failed or not — occupies its engine for the full transfer and
/// is charged into the collected stats, so the phase partition of
/// engine-busy cycles stays exact. Returns the successful attempt's span,
/// or `None` when the retry budget is exhausted.
fn copy_with_retries(
    timeline: &mut DeviceTimeline,
    dir: CopyDir,
    batch_idx: usize,
    mut ready: u64,
    stats: &KernelStats,
    faults: &CopyFaults<'_>,
    col: &mut Collector,
) -> Option<Span> {
    let domain = match dir {
        CopyDir::H2d => FaultDomain::H2d,
        CopyDir::D2h => FaultDomain::D2h,
    };
    let rcfg = faults.rcfg;
    for attempt in 0..=rcfg.copy_max_retries {
        let span = match dir {
            CopyDir::H2d => timeline.h2d(ready, stats.cycles),
            CopyDir::D2h => timeline.d2h(ready, stats.cycles),
        };
        col.merge_stats(stats);
        if !faults.plan.copy_fails(domain, fault_coord(batch_idx), attempt) {
            return Some(span);
        }
        col.report.recovery.fault_cycles += span.duration();
        if attempt < rcfg.copy_max_retries {
            col.report.recovery.copy_retries += 1;
            let wait = backoff_cycles(
                rcfg.copy_backoff_base_cycles,
                rcfg.copy_backoff_cap_cycles,
                attempt,
            );
            col.report.recovery.fault_cycles += wait;
            ready = span.end.saturating_add(wait);
        }
    }
    None
}

/// Pulls and validates arrivals from a [`TraceSource`]: machine bounds,
/// staging-buffer fit, and arrival-cycle monotonicity — the same checks
/// [`serve`] applies up front, enforced lazily as the stream is consumed.
struct Puller<S> {
    source: S,
    n_machines: usize,
    buffer_bytes: usize,
    /// Streams pulled so far — the admission index of the *next* pull.
    pulled: usize,
    last_cycle: u64,
}

impl<S: TraceSource> Puller<S> {
    fn pull(&mut self, col: &mut Collector) -> Result<Option<StreamArrival>, ServeError> {
        let Some(a) = self.source.next_arrival() else { return Ok(None) };
        if a.machine >= self.n_machines {
            return Err(ServeError::UnknownMachine {
                stream: self.pulled,
                machine: a.machine,
                n_machines: self.n_machines,
            });
        }
        if a.bytes.len() > self.buffer_bytes {
            return Err(ServeError::StreamTooLarge {
                stream: self.pulled,
                bytes: a.bytes.len(),
                buffer_bytes: self.buffer_bytes,
            });
        }
        if a.arrival_cycle < self.last_cycle {
            return Err(ServeError::NonMonotonicTrace {
                stream: self.pulled,
                cycle: a.arrival_cycle,
                prev: self.last_cycle,
            });
        }
        self.last_cycle = a.arrival_cycle;
        self.pulled += 1;
        col.on_pull(&a);
        Ok(Some(a))
    }

    /// Tops the admission window up to `n` arrivals; `false` when the
    /// source ran dry first.
    fn fill(
        &mut self,
        window: &mut VecDeque<StreamArrival>,
        col: &mut Collector,
        n: usize,
    ) -> Result<bool, ServeError> {
        while window.len() < n {
            match self.pull(col)? {
                Some(a) => window.push_back(a),
                None => return Ok(false),
            }
        }
        Ok(true)
    }
}

/// The last `max_queue_depth` slot-release cycles, by admission index.
/// Admission of stream `k` waits on the release of stream `k − depth`, and
/// batches never exceed the queue depth, so this window always covers every
/// release the forward pass can still ask for.
struct ReleaseRing {
    depth: usize,
    /// Total releases pushed (one per stream whose fate is sealed).
    released: usize,
    recent: VecDeque<u64>,
}

impl ReleaseRing {
    fn new(depth: usize) -> Self {
        ReleaseRing { depth, released: 0, recent: VecDeque::new() }
    }

    fn push(&mut self, t: u64) {
        self.recent.push_back(t);
        self.released += 1;
        if self.recent.len() > self.depth {
            self.recent.pop_front();
        }
    }

    /// Release cycle of stream `k` (admission index); `k` must be within
    /// the last `depth` released streams.
    fn get(&self, k: usize) -> u64 {
        let first_retained = self.released - self.recent.len();
        self.recent[k - first_retained]
    }

    /// The floor of the current release window: every future admission is
    /// `max(arrival, release(k − depth))`, and that release is either still
    /// in this window or newer (hence ≥ its own admission, ≥ this floor by
    /// induction) — so the window minimum lower-bounds every future
    /// admission once the window is full. `None` while fewer than `depth`
    /// streams have released (earlier admissions are unfloored, so only
    /// arrival monotonicity bounds the future).
    fn floor(&self) -> Option<u64> {
        if self.released >= self.depth {
            self.recent.iter().copied().min()
        } else {
            None
        }
    }
}

/// Incremental queue-depth sampling: +1 at each admission, −1 when the
/// stream's slot releases, one `(cycle, depth)` sample per distinct event
/// cycle — the streaming replacement for sorting every event at the end of
/// the run.
///
/// # Tie-break
///
/// At equal cycles, releases apply *before* admissions: a slot freed at
/// cycle `t` is available to the stream admitted at `t` (that admission
/// was, after all, computed as `max(arrival, release)`). This order makes
/// the sampled depth provably ≤ `max_queue_depth`: after all events at any
/// cycle `t`, every stream admitted at or before `t` beyond the first
/// `depth` has seen its predecessor's slot release (`release(k − depth) ≤
/// admit(k) ≤ t`), so at most `depth` streams are ever in flight. Within a
/// cycle the running count may transiently dip negative (a release whose
/// admission is later in the same group), which is why the invariants are
/// asserted at group boundaries, not per event. Samples are unchanged by
/// the intra-cycle order — only the boundary values are emitted.
///
/// # Memory
///
/// Events are folded out of the pending heap as soon as they are final.
/// Finality is subtle because admissions are *not* monotone: a batch
/// abandoned on a failed input copy releases its slots at the requested
/// copy cycle, which can precede an earlier batch's post-queueing release
/// and drag later admissions backwards. Each `record` therefore carries an
/// explicit `bound` the caller proves no future event can undercut —
/// `arrival.max(release-window floor)` (see [`ReleaseRing::floor`]):
/// arrivals are monotone, and every future admission is floored by a
/// release still in (or newer than) the current window. Everything
/// strictly below the bound is sampled immediately, so the heap only holds
/// events near the admission frontier — O(queue depth + batch size), not
/// O(streams).
struct DepthTracker {
    /// Min-heap of `(cycle, kind)` with kind −1 = release, +1 = admission,
    /// so releases pop first at equal cycles.
    pending: BinaryHeap<Reverse<(u64, i8)>>,
    depth: i64,
    /// Cycle of the currently open (not yet sampled) event group.
    group: Option<u64>,
    samples: Vec<(u64, usize)>,
    keep_samples: bool,
    peak: usize,
    cap: usize,
    /// Whether any breaker-shed stream contributed an `(admit, release)` =
    /// `(0, 0)` pair. Net-zero, so it is tracked as a flag and folded in at
    /// the end instead of being enqueued (by then the cycle-0 group may
    /// already be closed).
    zero_pairs: bool,
}

impl DepthTracker {
    fn new(keep_samples: bool, cap: usize) -> Self {
        DepthTracker {
            pending: BinaryHeap::new(),
            depth: 0,
            group: None,
            samples: Vec::new(),
            keep_samples,
            peak: 0,
            cap,
            zero_pairs: false,
        }
    }

    /// Records one stream's admission and slot-release cycles, then folds
    /// out everything pending at or below `bound`. Must be called in
    /// admission order; `release ≥ admit ≥ bound`, and the caller
    /// guarantees every future event is ≥ `bound` (see the type docs).
    fn record(&mut self, admit: u64, release: u64, bound: u64) {
        debug_assert!(release >= admit, "a slot cannot release before its stream admits");
        debug_assert!(admit >= bound, "recording an event below the finality bound");
        self.pending.push(Reverse((admit, 1)));
        self.pending.push(Reverse((release, -1)));
        self.drain(bound);
    }

    /// A breaker-shed stream: admit = release = 0, net-zero depth.
    fn zero_pair(&mut self) {
        self.zero_pairs = true;
    }

    /// Applies every pending event at or below `bound` (all such events are
    /// final — see the type docs). Events *at* the bound leave their group
    /// open, since future events may still share the cycle.
    fn drain(&mut self, bound: u64) {
        while let Some(&Reverse((t, kind))) = self.pending.peek() {
            if t > bound {
                break;
            }
            self.pending.pop();
            if self.group != Some(t) {
                self.close_group();
                self.group = Some(t);
            }
            self.depth += i64::from(kind);
        }
    }

    fn close_group(&mut self) {
        let Some(t) = self.group.take() else { return };
        debug_assert!(self.depth >= 0, "net queue depth at a cycle boundary is never negative");
        let d = self.depth.max(0) as usize;
        debug_assert!(
            d <= self.cap,
            "sampled queue depth {d} exceeds max_queue_depth {}",
            self.cap
        );
        self.peak = self.peak.max(d);
        if self.keep_samples {
            self.samples.push((t, d));
        }
    }

    /// Flushes everything and returns `(samples, peak)`.
    fn finish(mut self) -> (Vec<(u64, usize)>, usize) {
        self.drain(u64::MAX);
        self.close_group();
        if self.zero_pairs && self.keep_samples && self.samples.first().is_none_or(|&(t, _)| t != 0)
        {
            // The breaker pairs all sit at cycle 0; if no real event shares
            // that cycle they form their own net-zero sample at the front.
            self.samples.insert(0, (0, 0));
        }
        (self.samples, self.peak)
    }
}

/// Incremental copy/compute overlap accounting — the streaming replacement
/// for the quadratic every-copy × every-compute sweep, exact because the
/// three device queues are each serial:
///
/// * a compute can be retired once `min(h2d.end, d2h.end)` of the newest
///   batch has passed its end — no future copy starts earlier than either
///   engine's last end, so the overlap it could add is zero;
/// * a copy that ends by its batch's compute end can never reach a future
///   compute (computes are serial, so the next one starts later still);
///   copies that outlive their compute stay pending and collect overlap
///   against each new compute as it registers.
///
/// Only successful batches register, matching the historical metric. The
/// retained windows are O(pipeline depth), not O(batches).
#[derive(Default)]
struct OverlapMeter {
    computes: VecDeque<Span>,
    pending_copies: VecDeque<Span>,
    copy_busy: u64,
    hidden: u64,
}

impl OverlapMeter {
    fn record(&mut self, h2d: Span, compute: Span, d2h: Span) {
        // Credit copies from earlier batches that ride under this kernel,
        // then retire the ones that can no longer reach a future kernel.
        self.hidden += self.pending_copies.iter().map(|c| c.overlap(&compute)).sum::<u64>();
        while self.pending_copies.front().is_some_and(|c| c.end <= compute.end) {
            self.pending_copies.pop_front();
        }
        self.computes.push_back(compute);
        for copy in [h2d, d2h] {
            self.copy_busy += copy.duration();
            self.hidden += self.computes.iter().map(|k| copy.overlap(k)).sum::<u64>();
            if copy.end > compute.end {
                self.pending_copies.push_back(copy);
            }
        }
        let copy_low = h2d.end.min(d2h.end);
        while self.computes.front().is_some_and(|k| k.end <= copy_low) {
            self.computes.pop_front();
        }
    }

    /// Share of copy-engine busy cycles spent under an active kernel, in
    /// permille.
    fn efficiency_permille(&self) -> u64 {
        (self.hidden * 1000).checked_div(self.copy_busy).unwrap_or(0)
    }
}

/// Streams served latencies into either an exact vector or, past
/// [`EXACT_SUMMARY_MAX`] under bounded detail, a [`LatencySketch`]. The
/// spill is invisible in the result: [`LatencySummary::from_latencies`]
/// routes large exact sets through the identical sketch, and sketch
/// contents are insertion-order independent.
struct LatencyAcc {
    exact: Vec<u64>,
    sketch: Option<LatencySketch>,
    spill: bool,
}

impl LatencyAcc {
    fn new(spill: bool) -> Self {
        LatencyAcc { exact: Vec::new(), sketch: None, spill }
    }

    fn push(&mut self, v: u64) {
        if let Some(s) = &mut self.sketch {
            s.record(v);
            return;
        }
        self.exact.push(v);
        if self.spill && self.exact.len() > EXACT_SUMMARY_MAX {
            let mut s = LatencySketch::new();
            for &x in &self.exact {
                s.record(x);
            }
            self.exact = Vec::new();
            self.sketch = Some(s);
        }
    }

    /// The summary plus whether a sketch (and thus its error bound) was
    /// involved.
    fn summarize(&self) -> (LatencySummary, bool) {
        match &self.sketch {
            Some(s) => (LatencySummary::from_sketch(s), true),
            None => {
                (LatencySummary::from_latencies(&self.exact), self.exact.len() > EXACT_SUMMARY_MAX)
            }
        }
    }
}

/// Accumulates the report as stream fates are decided, in admission order.
/// Under [`ReportDetail::Full`] the per-stream vectors fill exactly as the
/// historical batch-indexed writes did; under [`ReportDetail::Bounded`]
/// they stay empty and only counters, summaries and sketches grow.
struct Collector {
    full: bool,
    report: ServeReport,
    delivery: LatencyAcc,
    kernel: LatencyAcc,
}

impl Collector {
    fn new(cfg: &ServeConfig) -> Self {
        let full = cfg.detail == ReportDetail::Full;
        Collector {
            full,
            report: ServeReport {
                policy: cfg.policy.name(),
                overlap: cfg.overlap,
                ..ServeReport::default()
            },
            delivery: LatencyAcc::new(!full),
            kernel: LatencyAcc::new(!full),
        }
    }

    fn on_pull(&mut self, a: &StreamArrival) {
        self.report.streams += 1;
        self.report.total_bytes += a.bytes.len();
    }

    fn served(
        &mut self,
        latency: u64,
        kernel_latency: u64,
        end_state: gspecpal_fsm::StateId,
        accepted: bool,
    ) {
        if self.full {
            self.report.latencies.push(latency);
            self.report.end_states.push(end_state);
            self.report.accepted.push(accepted);
            self.report.outcomes.push(StreamOutcome::Served);
        }
        self.delivery.push(latency);
        self.kernel.push(kernel_latency);
    }

    fn shed(&mut self, outcome: StreamOutcome) {
        if self.full {
            self.report.latencies.push(0);
            self.report.end_states.push(0);
            self.report.accepted.push(false);
            self.report.outcomes.push(outcome);
        }
        self.report.recovery.shed_streams += 1;
    }

    fn merge_stats(&mut self, stats: &KernelStats) {
        if self.full {
            self.report.stats.merge_sequential(stats);
        } else {
            self.report.stats.merge_sequential_compact(stats);
        }
    }
}

/// The outcome of one table-residency lookup.
enum TableTouch {
    /// The table is resident; nothing to charge.
    Hit,
    /// The table must be uploaded (`copy_bytes` over the H2D engine) after
    /// evicting `evictions` colder tables.
    Miss { copy_bytes: usize, evictions: u64 },
}

/// The per-device transition-table LRU (see [`ResidencyConfig`]). Keyed by
/// machine id; byte-accounted with each machine's global table footprint.
struct ResidencyLru {
    capacity: usize,
    used: usize,
    /// Resident machine ids, least recently used first.
    order: VecDeque<usize>,
    resident: Vec<bool>,
    bytes: Vec<usize>,
}

impl ResidencyLru {
    fn new(capacity: usize, machines: &[ServeMachine<'_>]) -> Self {
        ResidencyLru {
            capacity,
            used: 0,
            order: VecDeque::new(),
            resident: vec![false; machines.len()],
            bytes: machines.iter().map(|m| m.table.global_footprint_bytes()).collect(),
        }
    }

    /// Rebuilds an LRU from its resident-order snapshot (least recently
    /// used first); `used` and the residency flags re-derive from the
    /// order and the machines' table footprints. `None` when the order is
    /// not a valid resident set (out-of-range id, duplicate, over budget).
    fn from_order(capacity: usize, machines: &[ServeMachine<'_>], order: &[usize]) -> Option<Self> {
        let mut lru = ResidencyLru::new(capacity, machines);
        for &m in order {
            if m >= lru.resident.len() || lru.resident[m] {
                return None;
            }
            lru.resident[m] = true;
            lru.used += lru.bytes[m];
            lru.order.push_back(m);
        }
        if lru.used > capacity {
            return None;
        }
        Some(lru)
    }

    fn touch(&mut self, m: usize) -> TableTouch {
        if self.resident[m] {
            if let Some(pos) = self.order.iter().position(|&x| x == m) {
                self.order.remove(pos);
            }
            self.order.push_back(m);
            return TableTouch::Hit;
        }
        let b = self.bytes[m];
        if b > self.capacity {
            // Never cacheable: every batch re-uploads, nothing is evicted
            // for it.
            return TableTouch::Miss { copy_bytes: b, evictions: 0 };
        }
        let mut evictions = 0;
        while self.used + b > self.capacity {
            let lru = self.order.pop_front().expect("over-budget LRU must hold a table");
            self.resident[lru] = false;
            self.used -= self.bytes[lru];
            evictions += 1;
        }
        self.resident[m] = true;
        self.used += b;
        self.order.push_back(m);
        TableTouch::Miss { copy_bytes: b, evictions }
    }
}

/// Manual compute-queue cursor for preempt mode. Like
/// [`gspecpal_gpu::Engine`], but owned by the serve layer so an *open*
/// bulk kernel's end can still be stretched when a deadline kernel splits
/// it — a hardware engine's schedule is append-only.
#[derive(Default)]
struct ComputeCursor {
    free: u64,
    horizon: u64,
}

impl ComputeCursor {
    fn schedule(&mut self, ready: u64, duration: u64) -> Span {
        let start = ready.max(self.free);
        let span = Span { start, end: start + duration };
        self.free = span.end;
        self.horizon = self.horizon.max(span.end);
        span
    }
}

/// A dispatched batch whose result copy and stream fates are deferred: in
/// preempt mode the latest bulk kernel stays "open" — preemptible — until
/// another bulk kernel queues behind it (or the run ends), because only
/// the tail of the compute queue can still be split without rewriting
/// already-scheduled work.
struct PendingClose {
    batch_idx: usize,
    first_stream: usize,
    machine_id: usize,
    scheme: SchemeKind,
    mode: ExecMode,
    count: usize,
    bytes: usize,
    h2d: Span,
    compute: Span,
    /// Remaining preemption points inside `compute`, absolute cycles,
    /// ascending.
    points: Vec<u64>,
    completions: Vec<u64>,
    end_states: Vec<gspecpal_fsm::StateId>,
    accepted: Vec<bool>,
    d2h_stats: KernelStats,
    arrival_cycles: Vec<u64>,
}

/// One deferred report-side effect of closing a batch. Ops replay in
/// admission order through [`Sink`] so per-stream vectors stay
/// admission-indexed even when preemption closes batches out of dispatch
/// order.
enum SinkOp {
    Served { latency: u64, kernel_latency: u64, end_state: gspecpal_fsm::StateId, accepted: bool },
    Shed(StreamOutcome),
    Dispatched,
    Meter { h2d: Span, compute: Span, d2h: Span },
    Batch(Box<BatchRecord>),
}

/// Write-through by default; buffering while a bulk kernel is open so the
/// fates of batches that close under it (deadline preemptors, sheds) are
/// replayed *after* the open batch's own — i.e. back in admission order.
/// In non-preempt mode `buffering` is never set and every op applies
/// immediately, which keeps the historical path byte-identical.
struct Sink {
    buffering: bool,
    buf: Vec<SinkOp>,
}

impl Sink {
    fn push(&mut self, op: SinkOp, col: &mut Collector, meter: &mut OverlapMeter) {
        if self.buffering {
            self.buf.push(op);
        } else {
            Sink::apply(op, col, meter);
        }
    }

    fn flush(&mut self, col: &mut Collector, meter: &mut OverlapMeter) {
        self.buffering = false;
        for op in std::mem::take(&mut self.buf) {
            Sink::apply(op, col, meter);
        }
    }

    fn apply(op: SinkOp, col: &mut Collector, meter: &mut OverlapMeter) {
        match op {
            SinkOp::Served { latency, kernel_latency, end_state, accepted } => {
                col.served(latency, kernel_latency, end_state, accepted);
            }
            SinkOp::Shed(outcome) => col.shed(outcome),
            SinkOp::Dispatched => col.report.batches_dispatched += 1,
            SinkOp::Meter { h2d, compute, d2h } => meter.record(h2d, compute, d2h),
            SinkOp::Batch(record) => col.report.batches.push(*record),
        }
    }
}

/// Absolute-cycle wave boundaries inside a freshly scheduled kernel —
/// where a deadline-class kernel may cut in. Chunk-parallel batches yield
/// between streams (their natural kernel boundaries); stream-parallel
/// batches yield at the grid's wave boundaries (equal quanta of the
/// merged span, one per occupancy wave).
fn preempt_points(exec: &BatchExec, compute: Span) -> Vec<u64> {
    let dur = compute.duration();
    if dur == 0 {
        return Vec::new();
    }
    match exec.mode {
        ExecMode::ChunkParallel => exec
            .completions
            .iter()
            .copied()
            .filter(|&c| c > 0 && c < dur)
            .map(|c| compute.start + c)
            .collect(),
        ExecMode::StreamParallel => {
            let waves = u64::from(exec.stats.shape.as_ref().map_or(1, |s| s.waves.max(1)));
            let quantum = dur / waves;
            if waves < 2 || quantum == 0 {
                return Vec::new();
            }
            (1..waves).map(|i| compute.start + i * quantum).collect()
        }
    }
}

/// Schedules a deadline-class kernel in preempt mode: split the open bulk
/// kernel at its first remaining wave boundary at or after `ready` if
/// there is one, else queue behind the compute cursor as usual. Splitting
/// slides the bulk kernel's remaining waves (and their completions, and
/// its buffer release) back by the preemptor's duration.
#[allow(clippy::too_many_arguments)]
fn preempt_or_queue(
    open: &mut Option<PendingClose>,
    cq: &mut ComputeCursor,
    buffer_free: &mut [u64; 2],
    ready: u64,
    duration: u64,
    col: &mut Collector,
) -> Span {
    if duration > 0 {
        if let Some(ob) = open.as_mut() {
            if let Some(pos) = ob.points.iter().position(|&p| p >= ready) {
                let boundary = ob.points[pos];
                let span = Span { start: boundary, end: boundary + duration };
                ob.points.drain(..=pos);
                for p in &mut ob.points {
                    *p += duration;
                }
                for c in &mut ob.completions {
                    if ob.compute.start + *c > boundary {
                        *c += duration;
                    }
                }
                ob.compute.end += duration;
                let slot = &mut buffer_free[ob.batch_idx % 2];
                *slot = (*slot).max(ob.compute.end);
                cq.free = cq.free.max(ob.compute.end);
                cq.horizon = cq.horizon.max(ob.compute.end);
                col.report.preemptions += 1;
                col.report.preempted_cycles += duration;
                return span;
            }
        }
    }
    cq.schedule(ready, duration)
}

/// Schedules a batch's result copy and seals its stream fates — the tail
/// of the dispatch sequence, shared by the immediate (historical) path and
/// the deferred-close path of preempt mode. Returns whether the batch
/// failed (result copy retry budget exhausted).
fn close_pending(
    pc: PendingClose,
    timeline: &mut DeviceTimeline,
    faults: &CopyFaults<'_>,
    col: &mut Collector,
    meter: &mut OverlapMeter,
    sink: &mut Sink,
) -> bool {
    match copy_with_retries(
        timeline,
        CopyDir::D2h,
        pc.batch_idx,
        pc.compute.end,
        &pc.d2h_stats,
        faults,
        col,
    ) {
        None => {
            // The kernel ran but its results never reached the host: the
            // streams are shed with default entries.
            for _ in 0..pc.count {
                sink.push(SinkOp::Shed(StreamOutcome::ShedCopyFailure), col, meter);
            }
            true
        }
        Some(d2h) => {
            for i in 0..pc.count {
                let latency = d2h.end - pc.arrival_cycles[i];
                let kernel_latency = pc.compute.start + pc.completions[i] - pc.arrival_cycles[i];
                sink.push(
                    SinkOp::Served {
                        latency,
                        kernel_latency,
                        end_state: pc.end_states[i],
                        accepted: pc.accepted[i],
                    },
                    col,
                    meter,
                );
            }
            sink.push(SinkOp::Dispatched, col, meter);
            sink.push(SinkOp::Meter { h2d: pc.h2d, compute: pc.compute, d2h }, col, meter);
            if col.full {
                sink.push(
                    SinkOp::Batch(Box::new(BatchRecord {
                        first_stream: pc.first_stream,
                        streams: pc.count,
                        machine: pc.machine_id,
                        scheme: pc.scheme,
                        mode: pc.mode,
                        bytes: pc.bytes,
                        h2d: pc.h2d,
                        compute: pc.compute,
                        d2h,
                    })),
                    col,
                    meter,
                );
            }
            false
        }
    }
}

/// Serves `trace` on `machines` under `cfg`, returning the full
/// [`ServeReport`]. Fails up front (before any simulation) when the
/// configuration is inconsistent, an arrival names an unknown machine, or a
/// stream cannot fit one staging buffer. Delegates to the streaming engine
/// behind [`serve_source`], replaying the trace in admission order — the
/// two produce byte-identical reports.
pub fn serve(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    trace: &Trace,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    let buffer_bytes = cfg.buffer_bytes();
    for (i, a) in trace.arrivals().iter().enumerate() {
        if a.machine >= machines.len() {
            return Err(ServeError::UnknownMachine {
                stream: i,
                machine: a.machine,
                n_machines: machines.len(),
            });
        }
        if a.bytes.len() > buffer_bytes {
            return Err(ServeError::StreamTooLarge {
                stream: i,
                bytes: a.bytes.len(),
                buffer_bytes,
            });
        }
    }
    run_engine(spec, machines, trace.source(), cfg)
}

/// Serves arrivals pulled from `source` — the streaming entry point.
///
/// Unlike [`serve`], the trace is never materialized: resident memory is
/// bounded by the admission queue and pipeline depth (plus, under
/// [`ReportDetail::Full`], the report's own per-stream vectors — pass
/// [`ReportDetail::Bounded`] to bound those too). Validation (machine
/// bounds, staging-buffer fit, arrival monotonicity) happens lazily as
/// arrivals are pulled, so an invalid arrival deep in a stream fails the
/// run only when reached.
pub fn serve_source<S: TraceSource>(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    source: S,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    run_engine(spec, machines, source, cfg)
}

fn run_engine<S: TraceSource>(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    source: S,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    let mut engine = Engine::new(spec, machines, source, cfg);
    while engine.step()? {}
    Ok(engine.finish())
}

/// Admission cycle of stream `k`: its arrival, floored by the release of
/// the stream whose queue slot it reuses (`k − depth`).
fn admit_at(depth: usize, ring: &ReleaseRing, arrival: u64, k: usize) -> u64 {
    if k >= depth {
        arrival.max(ring.get(k - depth))
    } else {
        arrival
    }
}

/// The engine's entire mutable state at a quiescent inter-batch boundary —
/// what [`crate::checkpoint`] serializes into an
/// [`crate::checkpoint::EngineCheckpoint`]. Fields mirror the engine's
/// internals one-to-one; everything configuration-derived (the fault plan,
/// detail flags, queue depth, controller arm lists, residency footprints)
/// is deliberately absent and rebuilt by [`Engine::restore`] from the same
/// `ServeConfig` and machine list, which the checkpoint layer fingerprints.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct EngineSnapshot {
    /// Streams pulled from the source (the resume point's skip count).
    pub(crate) pulled: usize,
    /// Last pulled arrival cycle (the monotonicity cursor).
    pub(crate) last_cycle: u64,
    /// Admission index of the window head.
    pub(crate) next: usize,
    /// Batches formed so far (including abandoned ones).
    pub(crate) batch_idx: usize,
    /// Consecutive failed batches toward the circuit breaker.
    pub(crate) breaker_consecutive: u32,
    /// When each double buffer frees for its next input copy.
    pub(crate) buffer_free: [u64; 2],
    /// Preempt-mode compute cursor: next-free cycle.
    pub(crate) cq_free: u64,
    /// Preempt-mode compute cursor: horizon.
    pub(crate) cq_horizon: u64,
    /// Device timeline queue frontiers `[h2d, compute, d2h]`.
    pub(crate) frontiers: [u64; 3],
    /// Pulled-but-undispatched arrivals (the admission window).
    pub(crate) window: Vec<StreamArrival>,
    /// Total slot releases pushed into the release ring.
    pub(crate) ring_released: usize,
    /// The ring's retained release cycles, oldest first.
    pub(crate) ring_recent: Vec<u64>,
    /// The depth tracker's pending events `(cycle, kind)`, canonically
    /// sorted (the heap's multiset is its state; layout is not).
    pub(crate) depth_pending: Vec<(u64, i8)>,
    /// Running queue depth at the tracker's sampling frontier.
    pub(crate) depth_depth: i64,
    /// Cycle of the tracker's open (unsampled) event group.
    pub(crate) depth_group: Option<u64>,
    /// Queue-depth samples emitted so far (full detail only).
    pub(crate) depth_samples: Vec<(u64, usize)>,
    /// Peak sampled queue depth so far.
    pub(crate) depth_peak: usize,
    /// Whether any breaker-shed net-zero pair was recorded.
    pub(crate) depth_zero_pairs: bool,
    /// The overlap meter's retained compute spans.
    pub(crate) meter_computes: Vec<Span>,
    /// The overlap meter's copies still pending against future computes.
    pub(crate) meter_pending_copies: Vec<Span>,
    /// Copy-engine busy cycles accumulated.
    pub(crate) meter_copy_busy: u64,
    /// Copy cycles hidden under kernels so far.
    pub(crate) meter_hidden: u64,
    /// Resident machine ids of the table LRU, least recently used first
    /// (`None` when residency modeling is off).
    pub(crate) residency_order: Option<Vec<usize>>,
    /// Adaptive-controller dynamic state: per machine, the decided-batch
    /// counter and each arm's (cost window, observation count).
    pub(crate) controller: Option<Vec<MachineArmState>>,
    /// The report accumulated so far (finalization fields still default).
    pub(crate) report: ServeReport,
    /// Delivery-latency accumulator: exact values collected so far.
    pub(crate) delivery_exact: Vec<u64>,
    /// Delivery-latency accumulator: the sketch, once spilled.
    pub(crate) delivery_sketch: Option<LatencySketch>,
    /// Kernel-latency accumulator: exact values collected so far.
    pub(crate) kernel_exact: Vec<u64>,
    /// Kernel-latency accumulator: the sketch, once spilled.
    pub(crate) kernel_sketch: Option<LatencySketch>,
}

/// The streaming serve engine behind [`serve`] and [`serve_source`],
/// factored into an explicit state machine so a run can be suspended and
/// resumed: [`Engine::step`] forms and dispatches exactly one batch (one
/// iteration of the historical dispatch loop), and between steps — when
/// [`Engine::quiescent`] holds — the engine's entire mutable state is
/// capturable as an [`EngineSnapshot`] and reconstructible with
/// [`Engine::restore`]. `run_engine` (and with it `serve`/`serve_source`)
/// is `new` + step-to-dry + [`Engine::finish`], so the resumable engine
/// *is* the production path, not a parallel implementation — which is what
/// makes the checkpoint layer's bit-identity guarantee structural instead
/// of aspirational.
pub(crate) struct Engine<'e, 'm, S> {
    spec: &'e DeviceSpec,
    machines: &'e [ServeMachine<'m>],
    cfg: &'e ServeConfig,
    breaker_consecutive: u32,
    timeline: DeviceTimeline,
    controller: Option<AdaptiveController>,
    col: Collector,
    depths: DepthTracker,
    meter: OverlapMeter,
    residency: Option<ResidencyLru>,
    sink: Sink,
    open: Option<PendingClose>,
    cq: ComputeCursor,
    fails: Vec<bool>,
    puller: Puller<S>,
    /// Pulled-but-undispatched arrivals: at most one batch plus one
    /// look-ahead stream.
    window: VecDeque<StreamArrival>,
    ring: ReleaseRing,
    /// Reused per batch: the drained arrivals and their admission cycles.
    batch_arrivals: Vec<StreamArrival>,
    batch_admits: Vec<u64>,
    /// When each double buffer becomes free for the next input copy.
    buffer_free: [u64; 2],
    /// Admission index of the window head.
    next: usize,
    batch_idx: usize,
}

impl<'e, 'm, S: TraceSource> Engine<'e, 'm, S> {
    /// A fresh engine at cycle 0, about to pull the first arrival.
    pub(crate) fn new(
        spec: &'e DeviceSpec,
        machines: &'e [ServeMachine<'m>],
        source: S,
        cfg: &'e ServeConfig,
    ) -> Self {
        let col = Collector::new(cfg);
        let full = col.full;
        Engine {
            spec,
            machines,
            cfg,
            breaker_consecutive: 0,
            timeline: DeviceTimeline::new(cfg.overlap),
            // The adaptive controller is fed from this single sequential
            // forward pass over bit-deterministic batch stats, so its
            // decisions inherit the engine's thread-count independence for
            // free.
            controller: cfg.controller.as_ref().map(|cc| {
                AdaptiveController::new(
                    cc.clone(),
                    machines.iter().map(|m| m.arms.clone()).collect(),
                )
            }),
            col,
            depths: DepthTracker::new(full, cfg.max_queue_depth),
            meter: OverlapMeter::default(),
            residency: cfg.residency.map(|rc| ResidencyLru::new(rc.capacity_bytes, machines)),
            // Report-side effects route through the sink: write-through
            // normally, buffered while a bulk kernel is open in preempt
            // mode (so fates replay in admission order once it closes).
            sink: Sink { buffering: false, buf: Vec::new() },
            // Preempt-mode state: the open (still preemptible) bulk batch,
            // the manual compute cursor, and the batch failures sealed
            // this iteration.
            open: None,
            cq: ComputeCursor::default(),
            fails: Vec::new(),
            puller: Puller {
                source,
                n_machines: machines.len(),
                buffer_bytes: cfg.buffer_bytes(),
                pulled: 0,
                last_cycle: 0,
            },
            window: VecDeque::new(),
            ring: ReleaseRing::new(cfg.max_queue_depth),
            batch_arrivals: Vec::new(),
            batch_admits: Vec::new(),
            buffer_free: [0u64; 2],
            next: 0,
            batch_idx: 0,
        }
    }

    /// Whether the engine sits at a checkpointable boundary: no open
    /// (still-preemptible) bulk kernel, no buffered report effects, and no
    /// batch failures awaiting the breaker fold. Always true between steps
    /// outside preempt mode; under [`ServeConfig::preempt`] a bulk kernel
    /// stays open across steps, so the engine may never quiesce before the
    /// trace runs dry.
    pub(crate) fn quiescent(&self) -> bool {
        self.open.is_none()
            && !self.sink.buffering
            && self.sink.buf.is_empty()
            && self.fails.is_empty()
    }

    /// The pipeline horizon so far: the latest cycle any device queue (or
    /// the preempt-mode compute cursor) is busy until.
    pub(crate) fn horizon(&self) -> u64 {
        self.timeline.horizon().max(self.cq.horizon)
    }

    /// Batches formed so far, including abandoned ones.
    pub(crate) fn batches_formed(&self) -> usize {
        self.batch_idx
    }

    /// Forms and dispatches one batch (or sheds the head-of-queue stream,
    /// or trips the breaker and drains the trace). Returns `Ok(false)` when
    /// the run is over — source dry or breaker open — after which
    /// [`Engine::finish`] seals the report. One call is exactly one
    /// iteration of the historical `run_engine` dispatch loop, so stepping
    /// until `Ok(false)` reproduces the uninterrupted run byte for byte.
    pub(crate) fn step(&mut self) -> Result<bool, ServeError> {
        let spec = self.spec;
        let machines = self.machines;
        let cfg = self.cfg;
        let depth = cfg.max_queue_depth;
        let buffer_bytes = cfg.buffer_bytes();
        // One fault plan drives both kernel-side and copy-engine injection;
        // the zero plan never fails a copy, so the retry loops are exact
        // no-ops without one.
        let plan = cfg.scheme_config.faults.unwrap_or_default();
        let rcfg = &cfg.recovery;
        let copy_faults = CopyFaults { plan: &plan, rcfg };
        let Engine {
            breaker_consecutive,
            timeline,
            controller,
            col,
            depths,
            meter,
            residency,
            sink,
            open,
            cq,
            fails,
            puller,
            window,
            ring,
            batch_arrivals,
            batch_admits,
            buffer_free,
            next,
            batch_idx,
            ..
        } = self;

        if !puller.fill(window, col, 1)? {
            return Ok(false);
        }
        let head_arrival = window[0].arrival_cycle;
        let first_admit = admit_at(depth, ring, head_arrival, *next);
        // Load shedding: a head-of-queue stream that already waited past
        // the shedding deadline is dropped instead of dispatched — a
        // structured outcome, not an error.
        if rcfg.shed_wait_cycles > 0 {
            let wait = first_admit - head_arrival;
            if wait > rcfg.shed_wait_cycles {
                let bound = head_arrival.max(ring.floor().unwrap_or(0));
                ring.push(first_admit);
                depths.record(first_admit, first_admit, bound);
                col.report.backpressure_events += 1;
                col.report.backpressure_wait_cycles += wait;
                sink.push(SinkOp::Shed(StreamOutcome::ShedDeadline), col, meter);
                window.pop_front();
                *next += 1;
                return Ok(true);
            }
        }
        let machine_id = window[0].machine;
        let machine = &machines[machine_id];
        // Candidate cap: the policy's target, never beyond the queue depth
        // (a batch is drawn from the queue).
        let cap = match cfg.policy {
            BatchPolicy::Adaptive { max_batch } => {
                occupancy_target(spec, &machine.table).clamp(1, max_batch)
            }
            ref p => p.max_streams(),
        }
        .min(depth);

        // Grow the batch from the queue head, pulling one look-ahead
        // arrival at a time.
        batch_admits.clear();
        let mut bytes = 0usize;
        let mut t_close = 0u64;
        let deadline = match cfg.policy {
            BatchPolicy::Deadline { max_wait, .. } => Some(first_admit.saturating_add(max_wait)),
            _ => None,
        };
        loop {
            let count = batch_admits.len();
            if count >= cap || !puller.fill(window, col, count + 1)? {
                break;
            }
            let a = &window[count];
            if a.machine != machine_id {
                break; // a batch runs one machine's table
            }
            if bytes + a.bytes.len() > buffer_bytes {
                break; // staging buffer is full
            }
            let t = admit_at(depth, ring, a.arrival_cycle, *next + count);
            if count > 0 {
                if let Some(d) = deadline {
                    if t > d {
                        // The oldest stream's wait budget is spent: ship the
                        // partial batch at the deadline instead of waiting.
                        t_close = t_close.max(d);
                        break;
                    }
                }
                if let BatchPolicy::Adaptive { .. } = cfg.policy {
                    // Work-conserving: if waiting for this arrival would
                    // leave the device idle, ship what we have.
                    let backlog = timeline.h2d_free_at().max(buffer_free[*batch_idx % 2]);
                    if t > t_close.max(backlog) {
                        break;
                    }
                }
            }
            bytes += a.bytes.len();
            t_close = t_close.max(t);
            batch_admits.push(t);
        }
        let count = batch_admits.len();
        debug_assert!(count > 0, "a batch always takes at least the head stream");
        batch_arrivals.clear();
        batch_arrivals.extend(window.drain(..count));

        // Schedule the three pipeline operations. Copies retry under the
        // fault plan; a batch whose retry budget runs out is abandoned and
        // its streams shed (no result, no `BatchRecord`).
        let h2d_stats = transfer_stats(spec, bytes);
        let d2h_stats = transfer_stats(spec, cfg.d2h_bytes_per_stream * count);
        let h2d_ready = t_close.max(buffer_free[*batch_idx % 2]);
        match copy_with_retries(
            timeline,
            CopyDir::H2d,
            *batch_idx,
            h2d_ready,
            &h2d_stats,
            &copy_faults,
            col,
        ) {
            None => {
                // Inputs never reached the device: the queue slot still
                // frees when the first DMA attempt began, but the streams
                // are shed and the staging buffer holds nothing.
                let floor = ring.floor().unwrap_or(0);
                for i in 0..count {
                    ring.push(h2d_ready);
                    depths.record(
                        batch_admits[i],
                        h2d_ready,
                        batch_arrivals[i].arrival_cycle.max(floor),
                    );
                    let wait = batch_admits[i] - batch_arrivals[i].arrival_cycle;
                    if wait > 0 {
                        col.report.backpressure_events += 1;
                        col.report.backpressure_wait_cycles += wait;
                    }
                    sink.push(SinkOp::Shed(StreamOutcome::ShedCopyFailure), col, meter);
                }
                fails.push(true);
            }
            Some(h2d) => {
                // Table residency: a miss uploads the machine's table right
                // after the inputs; the kernel waits for both.
                let table_ready = match residency.as_mut() {
                    Some(lru) => match lru.touch(machine_id) {
                        TableTouch::Hit => {
                            col.report.residency.hits += 1;
                            h2d.end
                        }
                        TableTouch::Miss { copy_bytes, evictions } => {
                            col.report.residency.misses += 1;
                            col.report.residency.evictions += evictions;
                            col.report.residency.copied_bytes += copy_bytes as u64;
                            let tstats = transfer_stats(spec, copy_bytes);
                            let tspan = timeline.h2d(h2d.end, tstats.cycles);
                            col.merge_stats(&tstats);
                            tspan.end
                        }
                    },
                    None => h2d.end,
                };
                let streams: Vec<&[u8]> =
                    batch_arrivals.iter().map(|a| a.bytes.as_slice()).collect();
                // Decide once the batch is committed to the device (the
                // inputs are on board), observe as soon as its kernels are
                // charged — even if the result copy later fails, the cost
                // was real and the controller must learn from it.
                let decision = controller.as_mut().map(|c| c.decide(machine_id));
                let choice = decision.map(|d| d.choice);
                let exec = execute_batch(spec, machine, &streams, cfg, choice.as_ref());
                let deadline_class = machine.class == PriorityClass::Deadline;
                if cfg.preempt && !deadline_class {
                    // A new bulk kernel seals the previously open one: only
                    // the tail of the compute queue is still preemptible.
                    if let Some(ob) = open.take() {
                        sink.buffering = false;
                        let failed = close_pending(ob, timeline, &copy_faults, col, meter, sink);
                        sink.flush(col, meter);
                        fails.push(failed);
                    }
                }
                let compute = if !cfg.preempt {
                    timeline.compute(table_ready, exec.stats.cycles)
                } else if deadline_class {
                    preempt_or_queue(open, cq, buffer_free, table_ready, exec.stats.cycles, col)
                } else {
                    cq.schedule(table_ready, exec.stats.cycles)
                };
                col.merge_stats(&exec.stats);
                if let (Some(c), Some(d)) = (controller.as_mut(), decision) {
                    let obs = BatchObservation::from_stats(
                        &exec.stats,
                        exec.checks,
                        exec.matches,
                        bytes as u64,
                        exec.mode == ExecMode::ChunkParallel,
                    );
                    c.observe(machine_id, d.arm, &obs);
                    col.report.decisions_made += 1;
                    if d.explore {
                        col.report.explore_decisions += 1;
                    }
                    if col.report.decisions.len() < c.max_decisions() {
                        col.report.decisions.push(DecisionRecord {
                            batch: *batch_idx,
                            machine: machine_id,
                            arm: d.arm,
                            choice: d.choice,
                            explore: d.explore,
                            observation: obs,
                        });
                    }
                }
                // The input buffer frees once the kernel has consumed it;
                // batch `batch_idx + 2` reuses it. In preempt mode a split
                // bulk kernel may have pushed this slot further already.
                let slot = &mut buffer_free[*batch_idx % 2];
                *slot = (*slot).max(compute.end);
                let floor = ring.floor().unwrap_or(0);
                for i in 0..count {
                    ring.push(h2d.start);
                    depths.record(
                        batch_admits[i],
                        h2d.start,
                        batch_arrivals[i].arrival_cycle.max(floor),
                    );
                    let wait = batch_admits[i] - batch_arrivals[i].arrival_cycle;
                    if wait > 0 {
                        col.report.backpressure_events += 1;
                        col.report.backpressure_wait_cycles += wait;
                    }
                }
                let points = if cfg.preempt && !deadline_class {
                    preempt_points(&exec, compute)
                } else {
                    Vec::new()
                };
                let pc = PendingClose {
                    batch_idx: *batch_idx,
                    first_stream: *next,
                    machine_id,
                    scheme: choice.map_or(machine.scheme, |c| c.scheme),
                    mode: exec.mode,
                    count,
                    bytes,
                    h2d,
                    compute,
                    points,
                    completions: exec.completions,
                    end_states: exec.end_states,
                    accepted: exec.accepted,
                    d2h_stats,
                    arrival_cycles: batch_arrivals
                        .iter()
                        .take(count)
                        .map(|a| a.arrival_cycle)
                        .collect(),
                };
                if cfg.preempt && !deadline_class {
                    // Defer the close: a deadline batch may still split this
                    // kernel. Report-side effects buffer until it seals so
                    // stream fates replay in admission order.
                    *open = Some(pc);
                    sink.buffering = true;
                } else {
                    fails.push(close_pending(pc, timeline, &copy_faults, col, meter, sink));
                }
            }
        }
        *next += count;
        *batch_idx += 1;
        let mut tripped = false;
        for failed in fails.drain(..) {
            if failed {
                col.report.recovery.failed_batches += 1;
                *breaker_consecutive += 1;
                if rcfg.breaker_failure_threshold > 0
                    && *breaker_consecutive >= rcfg.breaker_failure_threshold
                {
                    tripped = true;
                    break;
                }
            } else {
                *breaker_consecutive = 0;
            }
        }
        if tripped {
            // The breaker stays open for the rest of the trace: every
            // not-yet-dispatched stream is shed without touching the
            // device — first the look-ahead already pulled, then the
            // rest of the source, still pulled (and validated, and
            // counted) one arrival at a time.
            col.report.recovery.breaker_trips += 1;
            loop {
                let more = match window.pop_front() {
                    Some(_) => true,
                    None => puller.pull(col)?.is_some(),
                };
                if !more {
                    break;
                }
                depths.zero_pair();
                sink.push(SinkOp::Shed(StreamOutcome::ShedBreakerOpen), col, meter);
            }
            return Ok(false);
        }
        Ok(true)
    }

    /// Seals the run and builds the final [`ServeReport`]: closes a
    /// still-open bulk kernel, flushes buffered report effects, and fills
    /// the finalization-only fields (makespan, summaries, queue-depth
    /// samples, overlap efficiency, recovery counter folds).
    pub(crate) fn finish(self) -> ServeReport {
        let Engine { cfg, mut timeline, mut col, depths, mut meter, mut sink, open, cq, .. } = self;
        let plan = cfg.scheme_config.faults.unwrap_or_default();
        let copy_faults = CopyFaults { plan: &plan, rcfg: &cfg.recovery };
        // A bulk kernel may still be open when the trace runs dry (or the
        // breaker tripped): seal it now and replay everything buffered
        // under it — preemptors' fates, breaker sheds — back in admission
        // order.
        if let Some(ob) = open {
            sink.buffering = false;
            if close_pending(ob, &mut timeline, &copy_faults, &mut col, &mut meter, &mut sink) {
                col.report.recovery.failed_batches += 1;
            }
        }
        sink.flush(&mut col, &mut meter);
        debug_assert!(sink.buf.is_empty(), "every buffered report effect must have flushed");

        let Collector { mut report, delivery, kernel, .. } = col;
        report.makespan_cycles = timeline.horizon().max(cq.horizon);
        // Latency summaries describe delivered results only; shed streams
        // keep zeroed per-stream entries and are excluded.
        let (delivery_summary, delivery_sketched) = delivery.summarize();
        let (kernel_summary, kernel_sketched) = kernel.summarize();
        report.delivery = delivery_summary;
        report.kernel_latency = kernel_summary;
        report.latency_error_permille =
            if delivery_sketched || kernel_sketched { LatencySketch::ERROR_PERMILLE } else { 0 };
        let (samples, peak) = depths.finish();
        report.queue_depth = samples;
        report.peak_queue = peak;
        report.overlap_efficiency_permille = meter.efficiency_permille();
        // Fold the kernel-side fault counters (accumulated through the
        // stats merges) into the recovery report; copy-side counters are
        // already there.
        report.recovery.block_retries = report.stats.fault_retries;
        report.recovery.watchdog_kills = report.stats.fault_watchdog_kills;
        report.recovery.degraded_blocks = report.stats.fault_degraded_blocks;
        report.recovery.fault_cycles += report.stats.fault_cycles;
        report
    }

    /// Captures the engine's entire mutable state. Callers must be at a
    /// quiescent inter-batch boundary ([`Engine::quiescent`]); everything
    /// not captured is either configuration-derived or provably empty at
    /// such a boundary (the open kernel, the sink buffer, the undrained
    /// failure list, the per-batch scratch vectors).
    pub(crate) fn snapshot(&self) -> EngineSnapshot {
        debug_assert!(self.quiescent(), "snapshots are taken between batches only");
        let mut depth_pending: Vec<(u64, i8)> = self.depths.pending.iter().map(|r| r.0).collect();
        // The heap's internal layout depends on insertion history; its
        // multiset is the state. Sorting canonicalizes the encoding, and a
        // heap rebuilt from any permutation of the same multiset drains
        // identically (equal keys are indistinguishable).
        depth_pending.sort_unstable();
        EngineSnapshot {
            pulled: self.puller.pulled,
            last_cycle: self.puller.last_cycle,
            next: self.next,
            batch_idx: self.batch_idx,
            breaker_consecutive: self.breaker_consecutive,
            buffer_free: self.buffer_free,
            cq_free: self.cq.free,
            cq_horizon: self.cq.horizon,
            frontiers: self.timeline.queue_frontiers(),
            window: self.window.iter().cloned().collect(),
            ring_released: self.ring.released,
            ring_recent: self.ring.recent.iter().copied().collect(),
            depth_pending,
            depth_depth: self.depths.depth,
            depth_group: self.depths.group,
            depth_samples: self.depths.samples.clone(),
            depth_peak: self.depths.peak,
            depth_zero_pairs: self.depths.zero_pairs,
            meter_computes: self.meter.computes.iter().copied().collect(),
            meter_pending_copies: self.meter.pending_copies.iter().copied().collect(),
            meter_copy_busy: self.meter.copy_busy,
            meter_hidden: self.meter.hidden,
            residency_order: self.residency.as_ref().map(|l| l.order.iter().copied().collect()),
            controller: self.controller.as_ref().map(AdaptiveController::export_state),
            report: self.col.report.clone(),
            delivery_exact: self.col.delivery.exact.clone(),
            delivery_sketch: self.col.delivery.sketch.clone(),
            kernel_exact: self.col.kernel.exact.clone(),
            kernel_sketch: self.col.kernel.sketch.clone(),
        }
    }

    /// Rebuilds an engine from a snapshot, the inverse of
    /// [`Engine::snapshot`] for the same `spec`/`machines`/`cfg` and a
    /// `source` already advanced past the snapshot's `pulled` arrivals.
    /// Structural inconsistencies (a snapshot from a different
    /// configuration, or corrupt-but-checksummed state) are rejected as
    /// [`ServeError::CorruptCheckpoint`] — never a panic.
    pub(crate) fn restore(
        spec: &'e DeviceSpec,
        machines: &'e [ServeMachine<'m>],
        source: S,
        cfg: &'e ServeConfig,
        snap: &EngineSnapshot,
    ) -> Result<Self, ServeError> {
        let corrupt = |what: &'static str| ServeError::CorruptCheckpoint { offset: 0, what };
        let full = cfg.detail == ReportDetail::Full;
        let depth = cfg.max_queue_depth;
        let buffer_bytes = cfg.buffer_bytes();
        if snap.ring_recent.len() > depth || snap.ring_released < snap.ring_recent.len() {
            return Err(corrupt("release ring inconsistent with max_queue_depth"));
        }
        if snap.ring_released != snap.next {
            return Err(corrupt("release count inconsistent with the admission cursor"));
        }
        if snap.next.checked_add(snap.window.len()) != Some(snap.pulled) {
            return Err(corrupt("admission window inconsistent with the pull cursor"));
        }
        for a in &snap.window {
            if a.machine >= machines.len() {
                return Err(corrupt("window arrival names an unknown machine"));
            }
            if a.bytes.len() > buffer_bytes {
                return Err(corrupt("window arrival exceeds the staging buffer"));
            }
            if a.arrival_cycle > snap.last_cycle {
                return Err(corrupt("window arrival beyond the source cursor"));
            }
        }
        if full && (snap.delivery_sketch.is_some() || snap.kernel_sketch.is_some()) {
            return Err(corrupt("latency sketch present under full report detail"));
        }
        let mut controller = cfg.controller.as_ref().map(|cc| {
            AdaptiveController::new(cc.clone(), machines.iter().map(|m| m.arms.clone()).collect())
        });
        match (controller.as_mut(), snap.controller.as_ref()) {
            (None, None) => {}
            (Some(c), Some(state)) => {
                if !c.import_state(state) {
                    return Err(corrupt("controller state shape does not match the machine arms"));
                }
            }
            _ => return Err(corrupt("controller state presence does not match the config")),
        }
        let residency = match (cfg.residency, snap.residency_order.as_ref()) {
            (None, None) => None,
            (Some(rc), Some(order)) => Some(
                ResidencyLru::from_order(rc.capacity_bytes, machines, order)
                    .ok_or_else(|| corrupt("residency LRU order is not a valid resident set"))?,
            ),
            _ => return Err(corrupt("residency state presence does not match the config")),
        };
        let col = Collector {
            full,
            report: {
                let mut r = snap.report.clone();
                // Config-derived statics: pin to this run's config (the
                // checkpoint layer's fingerprint guarantees they match the
                // original's anyway).
                r.policy = cfg.policy.name();
                r.overlap = cfg.overlap;
                r
            },
            delivery: LatencyAcc {
                exact: snap.delivery_exact.clone(),
                sketch: snap.delivery_sketch.clone(),
                spill: !full,
            },
            kernel: LatencyAcc {
                exact: snap.kernel_exact.clone(),
                sketch: snap.kernel_sketch.clone(),
                spill: !full,
            },
        };
        Ok(Engine {
            spec,
            machines,
            cfg,
            breaker_consecutive: snap.breaker_consecutive,
            timeline: DeviceTimeline::from_frontiers(cfg.overlap, snap.frontiers),
            controller,
            col,
            depths: DepthTracker {
                pending: snap.depth_pending.iter().map(|&e| Reverse(e)).collect(),
                depth: snap.depth_depth,
                group: snap.depth_group,
                samples: snap.depth_samples.clone(),
                keep_samples: full,
                peak: snap.depth_peak,
                cap: depth,
                zero_pairs: snap.depth_zero_pairs,
            },
            meter: OverlapMeter {
                computes: snap.meter_computes.iter().copied().collect(),
                pending_copies: snap.meter_pending_copies.iter().copied().collect(),
                copy_busy: snap.meter_copy_busy,
                hidden: snap.meter_hidden,
            },
            residency,
            sink: Sink { buffering: false, buf: Vec::new() },
            open: None,
            cq: ComputeCursor { free: snap.cq_free, horizon: snap.cq_horizon },
            fails: Vec::new(),
            puller: Puller {
                source,
                n_machines: machines.len(),
                buffer_bytes,
                pulled: snap.pulled,
                last_cycle: snap.last_cycle,
            },
            window: snap.window.iter().cloned().collect(),
            ring: ReleaseRing {
                depth,
                released: snap.ring_released,
                recent: snap.ring_recent.iter().copied().collect(),
            },
            batch_arrivals: Vec::new(),
            batch_admits: Vec::new(),
            buffer_free: snap.buffer_free,
            next: snap.next,
            batch_idx: snap.batch_idx,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{IterSource, SyntheticSource};
    use gspecpal_fsm::examples::div7;

    /// The historical sort-everything queue-depth sampler, kept as the
    /// reference the incremental [`DepthTracker`] is checked against.
    /// `release_first` selects the equal-cycle tie-break; samples are
    /// per-cycle-group boundaries, so both orders yield identical samples —
    /// which is exactly why the tie-break fix preserves committed
    /// baselines.
    fn reference_depth_samples(pairs: &[(u64, u64)], release_first: bool) -> Vec<(u64, usize)> {
        let mut events: Vec<(u64, i8)> =
            pairs.iter().flat_map(|&(a, r)| [(a, 1i8), (r, -1i8)]).collect();
        if release_first {
            events.sort_by_key(|&(t, kind)| (t, kind));
        } else {
            events.sort_by_key(|&(t, kind)| (t, Reverse(kind)));
        }
        let mut samples = Vec::new();
        let mut depth = 0i64;
        for (i, &(t, kind)) in events.iter().enumerate() {
            depth += i64::from(kind);
            if i + 1 == events.len() || events[i + 1].0 != t {
                samples.push((t, depth as usize));
            }
        }
        samples
    }

    /// The historical quadratic overlap metric, kept as the reference for
    /// [`OverlapMeter`].
    fn reference_overlap_efficiency(batches: &[BatchRecord]) -> u64 {
        let copies: Vec<Span> = batches.iter().flat_map(|b| [b.h2d, b.d2h]).collect();
        let copy_busy: u64 = copies.iter().map(Span::duration).sum();
        if copy_busy == 0 {
            return 0;
        }
        let hidden: u64 =
            copies.iter().map(|c| batches.iter().map(|b| c.overlap(&b.compute)).sum::<u64>()).sum();
        hidden * 1000 / copy_busy
    }

    fn machine(spec: &DeviceSpec, dfa: &'static Dfa) -> ServeMachine<'static> {
        ServeMachine::prepare(spec, dfa, &b"110100".repeat(64))
    }

    fn leaked_div7() -> &'static Dfa {
        Box::leak(Box::new(div7()))
    }

    #[test]
    fn occupancy_target_saturates_instead_of_wrapping() {
        // Adversarial spec: every occupancy factor near its u32 ceiling, so
        // width × resident × n_sms vastly exceeds u32 (and a 32-bit usize).
        // The old `usize` product silently wrapped on 32-bit hosts; the
        // widened computation must agree with the exact u128 product
        // (clamped to usize) instead.
        let mut spec = DeviceSpec::test_unit();
        spec.warp_size = 1 << 8;
        spec.max_threads_per_block = 1 << 16;
        spec.max_threads_per_sm = u32::MAX;
        spec.registers_per_sm = u32::MAX;
        spec.shared_mem_bytes = usize::MAX / 2;
        spec.max_blocks_per_sm = u32::MAX;
        spec.n_sms = u32::MAX;
        let dfa = div7();
        let m = ServeMachine::with_scheme(&spec, &dfa, SchemeKind::Naive);
        let req = |w: u32| BlockRequirements {
            threads: w,
            shared_bytes: m.table().shared_footprint_bytes(),
            regs_per_thread: 32,
        };
        let width = fit_block_width(&spec, req).unwrap();
        let resident = max_resident_blocks(&spec, &req(width)).max(1);
        let exact = u128::from(width) * u128::from(resident) * u128::from(spec.n_sms);
        assert!(exact > u128::from(u32::MAX), "the test must actually exceed 32 bits");
        let expected = usize::try_from(exact).unwrap_or(usize::MAX);
        assert_eq!(occupancy_target(&spec, m.table()), expected);
    }

    #[test]
    fn depth_tracker_matches_the_sorted_reference() {
        // Generate a valid admission history exactly the way the pipeline
        // does: monotone arrivals, admit(k) = max(arrival, release(k−d)),
        // release ≥ admit — with plenty of equal-cycle collisions.
        let depth = 4usize;
        let mut state = 7u64;
        let mut rng = move |n: u64| {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            (state >> 33) % n
        };
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut arrivals: Vec<u64> = Vec::new();
        let mut arrival = 0u64;
        for k in 0..500usize {
            arrival += rng(3); // mostly-bursty: forces release/admit ties
            let floor = if k >= depth { pairs[k - depth].1 } else { 0 };
            let admit = arrival.max(floor);
            // Jittered releases make both releases and admissions
            // non-monotone — the failed-copy shape that rules out a
            // watermark bound.
            let release = admit + rng(5);
            pairs.push((admit, release));
            arrivals.push(arrival);
        }
        let mut tracker = DepthTracker::new(true, depth);
        for (k, &(a, r)) in pairs.iter().enumerate() {
            // The engine's finality bound: arrival (monotone) maxed with
            // the release-window floor.
            let floor = if k >= depth {
                pairs[k - depth..k].iter().map(|&(_, rel)| rel).min().unwrap()
            } else {
                0
            };
            tracker.record(a, r, arrivals[k].max(floor));
        }
        let (samples, peak) = tracker.finish();
        let reference = reference_depth_samples(&pairs, true);
        assert_eq!(samples, reference);
        assert_eq!(peak, reference.iter().map(|&(_, d)| d).max().unwrap());
        // The tie-break is invisible at cycle-group boundaries: the old
        // admissions-first order produced the very same samples.
        assert_eq!(reference, reference_depth_samples(&pairs, false));
        // And with releases applied first, the peak respects the queue cap.
        assert!(peak <= depth, "peak {peak} exceeds queue depth {depth}");
    }

    #[test]
    fn equal_cycle_ties_keep_the_sampled_peak_within_the_queue_depth() {
        // A burst: every arrival at cycle 0, queue depth 4. Admission of
        // stream k (k ≥ 4) lands exactly on the release cycle of stream
        // k − 4, so every sample after the first batch is an equal-cycle
        // release/admission tie — the case the tie-break pins down.
        let spec = DeviceSpec::test_unit();
        let dfa = leaked_div7();
        let m = machine(&spec, dfa);
        let trace = Trace::from_arrivals(
            (0..24)
                .map(|_| StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(12) })
                .collect(),
        );
        let cfg = ServeConfig {
            policy: BatchPolicy::Fifo { batch: 2 },
            max_queue_depth: 4,
            ..ServeConfig::default()
        };
        let report = serve(&spec, std::slice::from_ref(&m), &trace, &cfg).unwrap();
        assert!(report.backpressure_events > 0, "a burst this deep must backpressure");
        assert!(
            report.queue_depth.iter().all(|&(_, d)| d <= 4),
            "sampled depth exceeds max_queue_depth: {:?}",
            report.queue_depth
        );
        assert!(report.peak_queue_depth() <= 4);
        assert_eq!(report.peak_queue, report.queue_depth.iter().map(|&(_, d)| d).max().unwrap());
    }

    #[test]
    fn overlap_meter_matches_the_quadratic_reference() {
        let spec = DeviceSpec::test_unit();
        let dfa = leaked_div7();
        let m = machine(&spec, dfa);
        for (overlap, seed) in [(true, 3u64), (false, 3), (true, 11), (false, 11)] {
            let trace = Trace::synthetic(seed, 40, 1, 25, 8..96, b"01");
            let cfg = ServeConfig {
                policy: BatchPolicy::Fifo { batch: 4 },
                overlap,
                ..ServeConfig::default()
            };
            let report = serve(&spec, std::slice::from_ref(&m), &trace, &cfg).unwrap();
            assert_eq!(
                report.overlap_efficiency_permille,
                reference_overlap_efficiency(&report.batches),
                "overlap={overlap} seed={seed}"
            );
        }
    }

    #[test]
    fn overlap_meter_matches_the_reference_under_copy_faults() {
        // Failed batches leave gaps in the successful-batch sequence; the
        // incremental meter must still agree with the quadratic sweep over
        // the surviving records.
        let spec = DeviceSpec::test_unit();
        let dfa = leaked_div7();
        let m = machine(&spec, dfa);
        let trace = Trace::synthetic(5, 60, 1, 10, 8..64, b"01");
        let scheme_config =
            SchemeConfig { faults: Some(FaultPlan::chaos(42, 400)), ..SchemeConfig::default() };
        let cfg = ServeConfig {
            policy: BatchPolicy::Fifo { batch: 4 },
            scheme_config,
            recovery: ServeRecoveryConfig { copy_max_retries: 0, ..ServeRecoveryConfig::default() },
            ..ServeConfig::default()
        };
        let report = serve(&spec, std::slice::from_ref(&m), &trace, &cfg).unwrap();
        assert!(report.recovery.failed_batches > 0, "the chaos plan must fail some batches");
        assert_eq!(
            report.overlap_efficiency_permille,
            reference_overlap_efficiency(&report.batches)
        );
    }

    #[test]
    fn serve_source_matches_serve_byte_for_byte() {
        let spec = DeviceSpec::test_unit();
        let dfa = leaked_div7();
        let m = machine(&spec, dfa);
        let machines = std::slice::from_ref(&m);
        let scheme_config =
            SchemeConfig { faults: Some(FaultPlan::chaos(9, 300)), ..SchemeConfig::default() };
        let configs = [
            ServeConfig { policy: BatchPolicy::Fifo { batch: 4 }, ..ServeConfig::default() },
            ServeConfig {
                policy: BatchPolicy::Deadline { batch: 8, max_wait: 40 },
                overlap: false,
                ..ServeConfig::default()
            },
            ServeConfig {
                policy: BatchPolicy::Adaptive { max_batch: 16 },
                ..ServeConfig::default()
            },
            ServeConfig {
                policy: BatchPolicy::Fifo { batch: 4 },
                scheme_config,
                recovery: ServeRecoveryConfig {
                    copy_max_retries: 1,
                    shed_wait_cycles: 200,
                    breaker_failure_threshold: 2,
                    ..ServeRecoveryConfig::default()
                },
                max_queue_depth: 8,
                ..ServeConfig::default()
            },
        ];
        for (i, cfg) in configs.iter().enumerate() {
            let trace = Trace::synthetic(100 + i as u64, 60, 1, 20, 8..80, b"01");
            let from_trace = serve(&spec, machines, &trace, cfg).unwrap();
            let from_source =
                serve_source(&spec, machines, IterSource(trace.arrivals().iter().cloned()), cfg)
                    .unwrap();
            assert_eq!(from_trace, from_source, "config {i}: streaming engine must not drift");
        }
    }

    #[test]
    fn bounded_detail_drops_vectors_but_keeps_aggregates() {
        let spec = DeviceSpec::test_unit();
        let dfa = leaked_div7();
        let m = machine(&spec, dfa);
        let trace = Trace::synthetic(21, 50, 1, 15, 8..64, b"01");
        let full_cfg =
            ServeConfig { policy: BatchPolicy::Fifo { batch: 4 }, ..ServeConfig::default() };
        let bounded_cfg = ServeConfig { detail: ReportDetail::Bounded, ..full_cfg.clone() };
        let full = serve(&spec, std::slice::from_ref(&m), &trace, &full_cfg).unwrap();
        let bounded = serve(&spec, std::slice::from_ref(&m), &trace, &bounded_cfg).unwrap();
        // The unbounded vectors are gone...
        assert!(bounded.latencies.is_empty());
        assert!(bounded.end_states.is_empty());
        assert!(bounded.accepted.is_empty());
        assert!(bounded.outcomes.is_empty());
        assert!(bounded.batches.is_empty());
        assert!(bounded.queue_depth.is_empty());
        assert!(bounded.stats.active_per_round.is_empty());
        assert!(bounded.stats.round_durations.is_empty());
        // ...and every aggregate matches the full run exactly.
        assert_eq!(bounded.streams, full.streams);
        assert_eq!(bounded.total_bytes, full.total_bytes);
        assert_eq!(bounded.makespan_cycles, full.makespan_cycles);
        assert_eq!(bounded.delivery, full.delivery);
        assert_eq!(bounded.kernel_latency, full.kernel_latency);
        assert_eq!(bounded.latency_error_permille, full.latency_error_permille);
        assert_eq!(bounded.stats.cycles, full.stats.cycles);
        assert_eq!(bounded.stats.rounds, full.stats.rounds);
        assert_eq!(bounded.stats.profile, full.stats.profile);
        assert_eq!(bounded.overlap_efficiency_permille, full.overlap_efficiency_permille);
        assert_eq!(bounded.backpressure_events, full.backpressure_events);
        assert_eq!(bounded.backpressure_wait_cycles, full.backpressure_wait_cycles);
        assert_eq!(bounded.recovery, full.recovery);
        assert_eq!(bounded.batches_dispatched, full.batches.len() as u64);
        assert_eq!(bounded.peak_queue, full.peak_queue_depth());
        assert_eq!(bounded.served_streams(), full.served_streams());
    }

    #[test]
    fn bounded_streaming_run_summarizes_past_the_exact_threshold() {
        // Enough served streams to cross EXACT_SUMMARY_MAX, fed from a
        // generator — the million-stream shape in miniature. Short streams
        // keep the simulated work tiny.
        let spec = DeviceSpec::test_unit();
        let dfa = leaked_div7();
        let m = machine(&spec, dfa);
        let n = EXACT_SUMMARY_MAX + 500;
        let cfg = ServeConfig {
            policy: BatchPolicy::Fifo { batch: 32 },
            detail: ReportDetail::Bounded,
            ..ServeConfig::default()
        };
        let source = SyntheticSource::new(77, n, 1, 3, 4..10, b"01");
        let report = serve_source(&spec, std::slice::from_ref(&m), source, &cfg).unwrap();
        assert_eq!(report.streams, n);
        assert_eq!(report.served_streams(), n);
        assert_eq!(
            report.latency_error_permille,
            LatencySketch::ERROR_PERMILLE,
            "past the exact threshold the summary must carry the sketch bound"
        );
        assert!(report.delivery.p50 > 0);
        assert!(report.delivery.max >= report.delivery.p99);
        // And the streaming run agrees with the materialized one.
        let trace = Trace::synthetic(77, n, 1, 3, 4..10, b"01");
        let materialized = serve(
            &spec,
            std::slice::from_ref(&m),
            &trace,
            &ServeConfig { detail: ReportDetail::Bounded, ..cfg },
        )
        .unwrap();
        assert_eq!(report, materialized);
    }

    #[test]
    fn invalid_arrivals_fail_the_streaming_run_when_reached() {
        let spec = DeviceSpec::test_unit();
        let dfa = leaked_div7();
        let m = machine(&spec, dfa);
        let cfg = ServeConfig::default();
        let bad_machine = vec![
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: vec![b'1'; 4] },
            StreamArrival { arrival_cycle: 5, machine: 9, bytes: vec![b'1'; 4] },
        ];
        let err = serve_source(
            &spec,
            std::slice::from_ref(&m),
            IterSource(bad_machine.into_iter()),
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err, ServeError::UnknownMachine { stream: 1, machine: 9, n_machines: 1 });
        let non_monotone = vec![
            StreamArrival { arrival_cycle: 10, machine: 0, bytes: vec![b'1'; 4] },
            StreamArrival { arrival_cycle: 3, machine: 0, bytes: vec![b'1'; 4] },
        ];
        let err = serve_source(
            &spec,
            std::slice::from_ref(&m),
            IterSource(non_monotone.into_iter()),
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err, ServeError::NonMonotonicTrace { stream: 1, cycle: 3, prev: 10 });
    }
}
