//! The serving pipeline: admission, batching, transfer charging, and
//! copy/compute overlap.
//!
//! # Model
//!
//! Arrivals are admitted in trace order into a bounded queue
//! (`max_queue_depth` slots). The dispatcher repeatedly takes a batch from
//! the queue head — a contiguous same-machine run, closed by the active
//! [`BatchPolicy`] — and schedules it as three operations on the device
//! timeline:
//!
//! ```text
//!  H2D engine   ──[copy inputs k]──────[copy inputs k+1]─────────────
//!  compute      ────────────[kernel k]───────────[kernel k+1]───────
//!  D2H engine   ──────────────────────[results k]────────[results k+1]
//! ```
//!
//! With overlap enabled the three queues advance independently, so batch
//! *k+1*'s input copy rides under batch *k*'s kernel (double buffering:
//! inputs stage into one of two `device_mem_bytes / 2` buffers, so copy
//! *k+1* must also wait for kernel *k−1* to release its buffer). With
//! overlap disabled, every operation funnels through one serialized queue.
//!
//! # Backpressure
//!
//! A stream occupies a queue slot from admission until its batch's input
//! copy *starts* (the slot is the host-side staging entry; once DMA begins
//! the stream belongs to the device). When the queue is full, admission of
//! stream *n* waits for the slot of stream *n − max_queue_depth* — the wait
//! is counted per stream in
//! [`ServeReport::backpressure_events`]/[`backpressure_wait_cycles`].
//! Batches never exceed the queue depth, so slot releases are always known
//! by the time they are needed and the simulation stays a single forward
//! pass.
//!
//! # Execution modes
//!
//! Each batch runs either **stream-parallel** (one device thread per
//! stream, via [`gspecpal::throughput::run_stream_parallel`]) or
//! **chunk-parallel** (the machine's selector-chosen speculative scheme per
//! stream, back to back). The dispatcher estimates both and picks the
//! cheaper: a batch of many comparable streams saturates the device in
//! stream mode; a batch dominated by one long stream wants chunked
//! speculation.
//!
//! [`ServeReport::backpressure_events`]: crate::ServeReport::backpressure_events
//! [`backpressure_wait_cycles`]: crate::ServeReport::backpressure_wait_cycles

use gspecpal::table::{DeviceTable, TableLayout};
use gspecpal::throughput::run_stream_parallel;
use gspecpal::{run_scheme, Job, SchemeConfig, SchemeKind, Selector};
use gspecpal_fsm::Dfa;
use gspecpal_gpu::{
    backoff_cycles, fit_block_width, max_resident_blocks, transfer_stats, BlockRequirements,
    DeviceSpec, DeviceTimeline, FaultDomain, FaultPlan, KernelStats, Span,
};

use crate::error::ServeError;
use crate::policy::BatchPolicy;
use crate::report::{BatchRecord, ExecMode, LatencySummary, ServeReport, StreamOutcome};
use crate::trace::Trace;

/// One servable machine: its device-resident table and the scheme the
/// selector picked for it.
#[derive(Clone, Debug)]
pub struct ServeMachine<'a> {
    table: DeviceTable<'a>,
    scheme: SchemeKind,
}

impl<'a> ServeMachine<'a> {
    /// Prepares `dfa` for serving on `spec`: profiles it on `training` with
    /// the Fig 6 selector to pick the execution scheme, and sizes the
    /// hot-row table for the device. `dfa` must already be
    /// frequency-permuted (see `gspecpal_fsm::TransformedDfa`) so hot rows
    /// are the low state ids.
    pub fn prepare(spec: &DeviceSpec, dfa: &'a Dfa, training: &[u8]) -> Self {
        let selector = Selector::default();
        let profile = selector.profile(dfa, training);
        let scheme = selector.select(&profile);
        let hot = DeviceTable::hot_rows_for_device(dfa, TableLayout::Transformed, spec);
        ServeMachine { table: DeviceTable::transformed(dfa, hot), scheme }
    }

    /// Like [`ServeMachine::prepare`] with the scheme pinned — for tests
    /// and ablations that bypass the selector.
    pub fn with_scheme(spec: &DeviceSpec, dfa: &'a Dfa, scheme: SchemeKind) -> Self {
        let hot = DeviceTable::hot_rows_for_device(dfa, TableLayout::Transformed, spec);
        ServeMachine { table: DeviceTable::transformed(dfa, hot), scheme }
    }

    /// The scheme the selector chose.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// The machine's device table.
    pub fn table(&self) -> &DeviceTable<'a> {
        &self.table
    }
}

/// Retry, load-shedding and circuit-breaker policy for the serving
/// pipeline.
///
/// Copy retries only ever fire under a fault plan
/// ([`gspecpal::SchemeConfig::faults`] — the same plan drives kernel-side
/// and copy-engine injection, on independently salted domains); shedding
/// and the breaker are off by default, so the default config is
/// behaviourally identical to a pipeline without any recovery machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeRecoveryConfig {
    /// Retries per host↔device copy after its first failed attempt. A batch
    /// whose copy budget runs out is abandoned and its streams shed.
    pub copy_max_retries: u32,
    /// Backoff before copy retry `a` (0-based) is `min(base << a, cap)`
    /// cycles on the engine clock.
    pub copy_backoff_base_cycles: u64,
    /// Cap on the copy retry backoff.
    pub copy_backoff_cap_cycles: u64,
    /// Shed a head-of-queue stream whose admission wait exceeded this many
    /// cycles instead of dispatching it (deadline-based load shedding).
    /// 0 disables shedding.
    pub shed_wait_cycles: u64,
    /// Consecutive failed batches that trip the circuit breaker. Once open
    /// it stays open: every remaining stream is shed as
    /// [`StreamOutcome::ShedBreakerOpen`]. 0 disables the breaker.
    pub breaker_failure_threshold: u32,
}

impl Default for ServeRecoveryConfig {
    fn default() -> Self {
        ServeRecoveryConfig {
            copy_max_retries: 2,
            copy_backoff_base_cycles: 32,
            copy_backoff_cap_cycles: 1024,
            shed_wait_cycles: 0,
            breaker_failure_threshold: 0,
        }
    }
}

/// Serving-pipeline configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Whether copies and compute may overlap (dual copy engines + double
    /// buffering). Disabling serializes every operation — the baseline the
    /// overlap win is measured against.
    pub overlap: bool,
    /// Device memory reserved for staging batch inputs; halved into two
    /// buffers for double buffering. A batch's inputs must fit one buffer.
    pub device_mem_bytes: usize,
    /// Host-side admission queue depth; a full queue backpressures
    /// arrivals. Also the hard cap on streams per batch (a batch is drawn
    /// from the queue).
    pub max_queue_depth: usize,
    /// Result payload copied device→host per stream (end state + accept
    /// flag + match count).
    pub d2h_bytes_per_stream: usize,
    /// Estimated fixed overhead per stream of a chunk-parallel run
    /// (predict + verify ramp), used only by the execution-mode heuristic.
    pub chunk_overhead_cycles: u64,
    /// Base configuration for chunk-parallel runs (`n_chunks` is clamped to
    /// each stream's length).
    pub scheme_config: SchemeConfig,
    /// Retry / shedding / breaker policy (inert at its defaults).
    pub recovery: ServeRecoveryConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: BatchPolicy::Fifo { batch: 8 },
            overlap: true,
            device_mem_bytes: 1 << 20,
            max_queue_depth: 64,
            d2h_bytes_per_stream: 8,
            chunk_overhead_cycles: 64,
            scheme_config: SchemeConfig::default(),
            recovery: ServeRecoveryConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Bytes one input staging buffer holds.
    pub fn buffer_bytes(&self) -> usize {
        self.device_mem_bytes / 2
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.buffer_bytes() == 0 {
            return Err(ServeError::InvalidConfig {
                field: "device_mem_bytes",
                problem: format!(
                    "must be at least 2 (two staging buffers), got {}",
                    self.device_mem_bytes
                ),
            });
        }
        if self.max_queue_depth == 0 {
            return Err(ServeError::InvalidConfig {
                field: "max_queue_depth",
                problem: "must be at least 1".into(),
            });
        }
        if self.policy.max_streams() == 0 {
            return Err(ServeError::InvalidConfig {
                field: "policy",
                problem: format!("{} batch cap must be at least 1", self.policy.name()),
            });
        }
        Ok(())
    }
}

/// The occupancy-target batch size of [`BatchPolicy::Adaptive`]: how many
/// one-thread-per-stream scans fill the device (fitted block width ×
/// resident blocks per SM × SMs).
fn occupancy_target(spec: &DeviceSpec, table: &DeviceTable<'_>) -> usize {
    let req = |w: u32| BlockRequirements {
        threads: w,
        shared_bytes: table.shared_footprint_bytes(),
        regs_per_thread: 32,
    };
    match fit_block_width(spec, req) {
        Ok(width) => {
            let resident = max_resident_blocks(spec, &req(width)).max(1);
            (width as usize) * (resident as usize) * (spec.n_sms.max(1) as usize)
        }
        Err(_) => 1,
    }
}

/// Result of executing one batch's kernels (before transfers).
struct BatchExec {
    stats: KernelStats,
    /// Per-stream scan-completion offset from kernel start.
    completions: Vec<u64>,
    end_states: Vec<gspecpal_fsm::StateId>,
    accepted: Vec<bool>,
    mode: ExecMode,
}

/// Executes one batch's streams on `machine`, choosing stream- or
/// chunk-parallel execution by estimated cost.
fn execute_batch(
    spec: &DeviceSpec,
    machine: &ServeMachine<'_>,
    streams: &[&[u8]],
    cfg: &ServeConfig,
) -> BatchExec {
    let nc = cfg.scheme_config.n_chunks.max(1);
    let chunk_est: u64 =
        streams.iter().map(|s| (s.len().div_ceil(nc)) as u64 + cfg.chunk_overhead_cycles).sum();
    let stream_est = streams.iter().map(|s| s.len() as u64).max().unwrap_or(0);
    if chunk_est < stream_est {
        if let Some(exec) = execute_chunk_parallel(spec, machine, streams, cfg) {
            return exec;
        }
    }
    execute_stream_parallel(spec, machine, streams)
}

fn execute_stream_parallel(
    spec: &DeviceSpec,
    machine: &ServeMachine<'_>,
    streams: &[&[u8]],
) -> BatchExec {
    let out = run_stream_parallel(spec, &machine.table, streams);
    BatchExec {
        stats: out.stats,
        completions: out.stream_cycles,
        end_states: out.end_states,
        accepted: out.accepted,
        mode: ExecMode::StreamParallel,
    }
}

/// Runs each stream chunk-parallel with the machine's scheme, back to back
/// on the compute queue. Returns `None` if any stream's job cannot be built
/// (the caller falls back to stream-parallel execution).
fn execute_chunk_parallel(
    spec: &DeviceSpec,
    machine: &ServeMachine<'_>,
    streams: &[&[u8]],
    cfg: &ServeConfig,
) -> Option<BatchExec> {
    let dfa = machine.table.dfa();
    let mut stats = KernelStats::default();
    let mut completions = Vec::with_capacity(streams.len());
    let mut end_states = Vec::with_capacity(streams.len());
    let mut accepted = Vec::with_capacity(streams.len());
    let mut clock = 0u64;
    for stream in streams {
        if stream.is_empty() {
            // An empty stream ends where it starts and costs nothing.
            end_states.push(dfa.start());
            accepted.push(dfa.is_accepting(dfa.start()));
            completions.push(clock);
            continue;
        }
        let mut sc = cfg.scheme_config;
        sc.n_chunks = sc.n_chunks.min(stream.len()).max(1);
        let job = Job::new(spec, &machine.table, stream, sc).ok()?;
        let out = run_scheme(machine.scheme, &job);
        stats.merge_sequential(&out.predict);
        stats.merge_sequential(&out.execute);
        stats.merge_sequential(&out.verify);
        clock += out.total_cycles();
        completions.push(clock);
        end_states.push(out.end_state);
        accepted.push(out.accepted);
    }
    debug_assert_eq!(stats.cycles, clock, "stage merge must reproduce the batch clock");
    Some(BatchExec { stats, completions, end_states, accepted, mode: ExecMode::ChunkParallel })
}

/// Which copy engine a transfer runs on.
#[derive(Clone, Copy)]
enum CopyDir {
    H2d,
    D2h,
}

/// The copy-channel fault context: the run's plan plus its retry/backoff
/// budget, bundled so the retry scheduler takes one handle.
struct CopyFaults<'a> {
    plan: &'a FaultPlan,
    rcfg: &'a ServeRecoveryConfig,
}

/// Schedules one logical copy, retrying failed attempts (per the fault
/// plan, keyed on the batch index) with capped exponential backoff. Every
/// attempt — failed or not — occupies its engine for the full transfer and
/// is charged into `report.stats`, so the phase partition of engine-busy
/// cycles stays exact. Returns the successful attempt's span, or `None`
/// when the retry budget is exhausted.
fn copy_with_retries(
    timeline: &mut DeviceTimeline,
    dir: CopyDir,
    batch_idx: usize,
    mut ready: u64,
    stats: &KernelStats,
    faults: &CopyFaults<'_>,
    report: &mut ServeReport,
) -> Option<Span> {
    let domain = match dir {
        CopyDir::H2d => FaultDomain::H2d,
        CopyDir::D2h => FaultDomain::D2h,
    };
    let rcfg = faults.rcfg;
    for attempt in 0..=rcfg.copy_max_retries {
        let span = match dir {
            CopyDir::H2d => timeline.h2d(ready, stats.cycles),
            CopyDir::D2h => timeline.d2h(ready, stats.cycles),
        };
        report.stats.merge_sequential(stats);
        if !faults.plan.copy_fails(domain, batch_idx as u64, attempt) {
            return Some(span);
        }
        report.recovery.fault_cycles += span.duration();
        if attempt < rcfg.copy_max_retries {
            report.recovery.copy_retries += 1;
            let wait = backoff_cycles(
                rcfg.copy_backoff_base_cycles,
                rcfg.copy_backoff_cap_cycles,
                attempt,
            );
            report.recovery.fault_cycles += wait;
            ready = span.end.saturating_add(wait);
        }
    }
    None
}

/// Serves `trace` on `machines` under `cfg`, returning the full
/// [`ServeReport`]. Fails up front (before any simulation) when the
/// configuration is inconsistent, an arrival names an unknown machine, or a
/// stream cannot fit one staging buffer.
pub fn serve(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    trace: &Trace,
    cfg: &ServeConfig,
) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    let arrivals = trace.arrivals();
    let buffer_bytes = cfg.buffer_bytes();
    for (i, a) in arrivals.iter().enumerate() {
        if a.machine >= machines.len() {
            return Err(ServeError::UnknownMachine {
                stream: i,
                machine: a.machine,
                n_machines: machines.len(),
            });
        }
        if a.bytes.len() > buffer_bytes {
            return Err(ServeError::StreamTooLarge {
                stream: i,
                bytes: a.bytes.len(),
                buffer_bytes,
            });
        }
    }

    let n = arrivals.len();
    let depth = cfg.max_queue_depth;
    // One fault plan drives both kernel-side and copy-engine injection; the
    // zero plan never fails a copy, so the retry loops are exact no-ops
    // without one.
    let plan = cfg.scheme_config.faults.unwrap_or_default();
    let rcfg = &cfg.recovery;
    let copy_faults = CopyFaults { plan: &plan, rcfg };
    let mut breaker_consecutive = 0u32;
    let mut timeline = DeviceTimeline::new(cfg.overlap);
    let mut report = ServeReport {
        policy: cfg.policy.name(),
        overlap: cfg.overlap,
        streams: n,
        total_bytes: trace.total_bytes(),
        latencies: vec![0; n],
        end_states: vec![0; n],
        accepted: vec![false; n],
        outcomes: vec![StreamOutcome::Served; n],
        ..ServeReport::default()
    };
    let mut kernel_latencies = vec![0u64; n];
    // Queue-slot release cycle per dispatched stream (its batch's H2D
    // start); admission of stream `k` waits on slot `k - depth`.
    let mut slot_release = vec![0u64; n];
    let mut admit_cycle = vec![0u64; n];
    // When each double buffer becomes free for the next input copy.
    let mut buffer_free = [0u64; 2];
    let admit = |k: usize, slot_release: &[u64]| -> u64 {
        let arrival = arrivals[k].arrival_cycle;
        if k >= depth {
            arrival.max(slot_release[k - depth])
        } else {
            arrival
        }
    };

    let mut next = 0usize;
    let mut batch_idx = 0usize;
    while next < n {
        // Load shedding: a head-of-queue stream that already waited past
        // the shedding deadline is dropped instead of dispatched — a
        // structured outcome, not an error.
        if rcfg.shed_wait_cycles > 0 {
            let t = admit(next, &slot_release);
            let wait = t - arrivals[next].arrival_cycle;
            if wait > rcfg.shed_wait_cycles {
                admit_cycle[next] = t;
                slot_release[next] = t;
                report.backpressure_events += 1;
                report.backpressure_wait_cycles += wait;
                report.outcomes[next] = StreamOutcome::ShedDeadline;
                report.recovery.shed_streams += 1;
                next += 1;
                continue;
            }
        }
        let machine_id = arrivals[next].machine;
        let machine = &machines[machine_id];
        // Candidate cap: the policy's target, never beyond the queue depth
        // (a batch is drawn from the queue).
        let cap = match cfg.policy {
            BatchPolicy::Adaptive { max_batch } => {
                occupancy_target(spec, &machine.table).clamp(1, max_batch)
            }
            ref p => p.max_streams(),
        }
        .min(depth);

        // Grow the batch from the queue head.
        let mut count = 0usize;
        let mut bytes = 0usize;
        let mut t_close = 0u64;
        let first_admit = admit(next, &slot_release);
        let deadline = match cfg.policy {
            BatchPolicy::Deadline { max_wait, .. } => Some(first_admit.saturating_add(max_wait)),
            _ => None,
        };
        while next + count < n && count < cap {
            let k = next + count;
            if arrivals[k].machine != machine_id {
                break; // a batch runs one machine's table
            }
            if bytes + arrivals[k].bytes.len() > buffer_bytes {
                break; // staging buffer is full
            }
            let t = admit(k, &slot_release);
            if count > 0 {
                if let Some(d) = deadline {
                    if t > d {
                        // The oldest stream's wait budget is spent: ship the
                        // partial batch at the deadline instead of waiting.
                        t_close = t_close.max(d);
                        break;
                    }
                }
                if let BatchPolicy::Adaptive { .. } = cfg.policy {
                    // Work-conserving: if waiting for this arrival would
                    // leave the device idle, ship what we have.
                    let backlog = timeline.h2d_free_at().max(buffer_free[batch_idx % 2]);
                    if t > t_close.max(backlog) {
                        break;
                    }
                }
            }
            admit_cycle[k] = t;
            t_close = t_close.max(t);
            bytes += arrivals[k].bytes.len();
            count += 1;
        }
        debug_assert!(count > 0, "a batch always takes at least the head stream");

        // Schedule the three pipeline operations. Copies retry under the
        // fault plan; a batch whose retry budget runs out is abandoned and
        // its streams shed (no result, no `BatchRecord`).
        let h2d_stats = transfer_stats(spec, bytes);
        let d2h_stats = transfer_stats(spec, cfg.d2h_bytes_per_stream * count);
        let h2d_ready = t_close.max(buffer_free[batch_idx % 2]);
        let mut batch_failed = true;
        match copy_with_retries(
            &mut timeline,
            CopyDir::H2d,
            batch_idx,
            h2d_ready,
            &h2d_stats,
            &copy_faults,
            &mut report,
        ) {
            None => {
                // Inputs never reached the device: the queue slot still
                // frees when the first DMA attempt began, but the streams
                // are shed and the staging buffer holds nothing.
                for k in next..next + count {
                    slot_release[k] = h2d_ready;
                    let wait = admit_cycle[k] - arrivals[k].arrival_cycle;
                    if wait > 0 {
                        report.backpressure_events += 1;
                        report.backpressure_wait_cycles += wait;
                    }
                    report.outcomes[k] = StreamOutcome::ShedCopyFailure;
                    report.recovery.shed_streams += 1;
                }
            }
            Some(h2d) => {
                let streams: Vec<&[u8]> =
                    arrivals[next..next + count].iter().map(|a| a.bytes.as_slice()).collect();
                let exec = execute_batch(spec, machine, &streams, cfg);
                let compute = timeline.compute(h2d.end, exec.stats.cycles);
                report.stats.merge_sequential(&exec.stats);
                // The input buffer frees once the kernel has consumed it;
                // batch `batch_idx + 2` reuses it.
                buffer_free[batch_idx % 2] = compute.end;
                for k in next..next + count {
                    slot_release[k] = h2d.start;
                    let wait = admit_cycle[k] - arrivals[k].arrival_cycle;
                    if wait > 0 {
                        report.backpressure_events += 1;
                        report.backpressure_wait_cycles += wait;
                    }
                }
                match copy_with_retries(
                    &mut timeline,
                    CopyDir::D2h,
                    batch_idx,
                    compute.end,
                    &d2h_stats,
                    &copy_faults,
                    &mut report,
                ) {
                    None => {
                        // The kernel ran but its results never reached the
                        // host: the streams are shed with default entries.
                        for k in next..next + count {
                            report.outcomes[k] = StreamOutcome::ShedCopyFailure;
                            report.recovery.shed_streams += 1;
                        }
                    }
                    Some(d2h) => {
                        batch_failed = false;
                        for (i, k) in (next..next + count).enumerate() {
                            report.latencies[k] = d2h.end - arrivals[k].arrival_cycle;
                            kernel_latencies[k] =
                                compute.start + exec.completions[i] - arrivals[k].arrival_cycle;
                            report.end_states[k] = exec.end_states[i];
                            report.accepted[k] = exec.accepted[i];
                        }
                        report.batches.push(BatchRecord {
                            first_stream: next,
                            streams: count,
                            machine: machine_id,
                            scheme: machine.scheme,
                            mode: exec.mode,
                            bytes,
                            h2d,
                            compute,
                            d2h,
                        });
                    }
                }
            }
        }
        next += count;
        batch_idx += 1;
        if batch_failed {
            report.recovery.failed_batches += 1;
            breaker_consecutive += 1;
            if rcfg.breaker_failure_threshold > 0
                && breaker_consecutive >= rcfg.breaker_failure_threshold
            {
                // The breaker stays open for the rest of the trace: every
                // not-yet-dispatched stream is shed without touching the
                // device.
                report.recovery.breaker_trips += 1;
                for k in next..n {
                    report.outcomes[k] = StreamOutcome::ShedBreakerOpen;
                    report.recovery.shed_streams += 1;
                }
                break;
            }
        } else {
            breaker_consecutive = 0;
        }
    }

    report.makespan_cycles = timeline.horizon();
    // Latency summaries describe delivered results only; shed streams keep
    // zeroed per-stream entries and are excluded here.
    let served = |lat: &[u64], outcomes: &[StreamOutcome]| -> Vec<u64> {
        lat.iter()
            .zip(outcomes)
            .filter(|(_, o)| **o == StreamOutcome::Served)
            .map(|(l, _)| *l)
            .collect()
    };
    report.delivery = LatencySummary::from_latencies(&served(&report.latencies, &report.outcomes));
    report.kernel_latency =
        LatencySummary::from_latencies(&served(&kernel_latencies, &report.outcomes));
    report.queue_depth = queue_depth_samples(&admit_cycle, &slot_release);
    report.overlap_efficiency_permille = overlap_efficiency(&report.batches);
    // Fold the kernel-side fault counters (accumulated through the stats
    // merges) into the recovery report; copy-side counters are already
    // there.
    report.recovery.block_retries = report.stats.fault_retries;
    report.recovery.watchdog_kills = report.stats.fault_watchdog_kills;
    report.recovery.degraded_blocks = report.stats.fault_degraded_blocks;
    report.recovery.fault_cycles += report.stats.fault_cycles;
    Ok(report)
}

/// Queue depth over time: +1 at each admission, −1 when a stream's batch
/// starts its input copy; one `(cycle, depth)` sample per distinct event
/// cycle. Admissions sort before releases at the same cycle (a stream
/// admitted and instantly dispatched still passes through the queue), so
/// the running depth never goes negative.
fn queue_depth_samples(admit: &[u64], release: &[u64]) -> Vec<(u64, usize)> {
    let mut events: Vec<(u64, i64)> =
        admit.iter().map(|&t| (t, 1i64)).chain(release.iter().map(|&t| (t, -1i64))).collect();
    events.sort_unstable_by_key(|&(t, delta)| (t, std::cmp::Reverse(delta)));
    let mut samples = Vec::new();
    let mut depth = 0i64;
    for (i, &(t, delta)) in events.iter().enumerate() {
        depth += delta;
        debug_assert!(depth >= 0, "queue depth can never go negative");
        if i + 1 == events.len() || events[i + 1].0 != t {
            samples.push((t, depth as usize));
        }
    }
    samples
}

/// Share of copy-engine busy cycles spent under an active kernel, in
/// permille.
fn overlap_efficiency(batches: &[BatchRecord]) -> u64 {
    let copies: Vec<Span> = batches.iter().flat_map(|b| [b.h2d, b.d2h]).collect();
    let copy_busy: u64 = copies.iter().map(Span::duration).sum();
    if copy_busy == 0 {
        return 0;
    }
    let hidden: u64 =
        copies.iter().map(|c| batches.iter().map(|b| c.overlap(&b.compute)).sum::<u64>()).sum();
    hidden * 1000 / copy_busy
}
