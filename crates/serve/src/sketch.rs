//! Fixed-budget deterministic latency sketches.
//!
//! A [`LatencySketch`] summarizes an arbitrarily large multiset of `u64`
//! cycle latencies in constant memory, with a *documented, provable*
//! relative error bound on every quantile — the piece that lets a
//! million-stream serve run report percentiles without materializing (let
//! alone sorting) a million-entry vector.
//!
//! # Design: log-linear histogram, not centroids
//!
//! The sketch is an HDR-histogram-style log-linear bucket array: values
//! below 2^[`SUB_BUCKET_BITS`] get one bucket each (exact), and every
//! octave above that is split into 2^[`SUB_BUCKET_BITS`] equal-width
//! sub-buckets. Quantiles walk the cumulative counts with the same
//! nearest-rank rule as the exact path and report the bucket's *upper*
//! bound, clamped to the exact running maximum.
//!
//! A t-digest reaches a similar budget/accuracy point with mergeable
//! centroids, but centroid positions depend on insertion and merge order —
//! poison for this repo's bit-determinism invariant (reports must be
//! byte-identical across rayon pool sizes). Bucket counters are plain
//! integer sums: insertion order, merge order, and merge tree shape are
//! all invisible by construction, which is the determinism argument in
//! one sentence. The budget is fixed at [`LatencySketch::BUCKETS`] `u64`
//! counters (~114 KiB), independent of the stream count.
//!
//! # Error bound
//!
//! A bucket in octave `e ≥ SUB_BUCKET_BITS` spans `width = 2^(e - SUB_BUCKET_BITS)`
//! values starting at `low ≥ 2^e`, so reporting the bucket's upper bound
//! overstates a quantile `q` by at most `width - 1 < low / 2^SUB_BUCKET_BITS ≤
//! q / 2^SUB_BUCKET_BITS`. With 8 sub-bucket bits the relative error is
//! strictly below 2^-8 ≈ 0.39% — reported conservatively as
//! [`LatencySketch::ERROR_PERMILLE`] (4‰). Values below 2^8 are exact, and
//! the maximum is tracked exactly on the side.

/// Sub-bucket resolution: each octave splits into `2^SUB_BUCKET_BITS`
/// buckets, and values below `2^SUB_BUCKET_BITS` are exact.
pub const SUB_BUCKET_BITS: u32 = 8;

const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// A constant-memory, merge-order-independent quantile sketch over `u64`
/// latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencySketch {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for LatencySketch {
    fn default() -> Self {
        LatencySketch::new()
    }
}

impl LatencySketch {
    /// Number of bucket counters: one per value below `2^SUB_BUCKET_BITS`,
    /// plus `2^SUB_BUCKET_BITS` per octave from there to the top of the
    /// `u64` range.
    pub const BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

    /// Guaranteed upper bound on the relative quantile error, in permille.
    /// The true bound is `2^-SUB_BUCKET_BITS` (< 3.91‰); 4‰ is the
    /// conservative integer form reports carry.
    pub const ERROR_PERMILLE: u64 = 4;

    /// An empty sketch.
    pub fn new() -> Self {
        LatencySketch { counts: vec![0; Self::BUCKETS], total: 0, min: u64::MAX, max: 0 }
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact maximum of the recorded values (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Bucket index of `v`: identity below `2^SUB_BUCKET_BITS`, log-linear
    /// above.
    #[inline]
    fn bucket(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros(); // >= SUB_BUCKET_BITS
            let shift = exp - SUB_BUCKET_BITS;
            let mantissa = (v >> shift) as usize - SUB_BUCKETS;
            ((exp - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + mantissa
        }
    }

    /// Largest value mapping to bucket `b` — the representative quantiles
    /// report (before clamping to the exact max).
    #[inline]
    fn bucket_upper(b: usize) -> u64 {
        let group = b / SUB_BUCKETS;
        let mantissa = (b % SUB_BUCKETS) as u64;
        if group == 0 {
            mantissa
        } else {
            let shift = group as u32 - 1;
            let low = (SUB_BUCKETS as u64 + mantissa) << shift;
            // Parenthesized so the top bucket (upper bound u64::MAX) does
            // not transiently overflow past 2^64.
            low + ((1u64 << shift) - 1)
        }
    }

    /// Records one latency.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another sketch into this one. Pure counter addition:
    /// commutative and associative, so any merge tree over any partition of
    /// the data yields the identical sketch — the property that keeps
    /// reports bit-identical across rayon pool sizes.
    pub fn merge(&mut self, other: &LatencySketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The sketch's entire state, for checkpoint encoding: the bucket
    /// counters, the recorded-value total, and the raw running min/max
    /// (`min` is `u64::MAX` on an empty sketch — the sentinel is part of
    /// the state and must round-trip as-is).
    pub(crate) fn raw_parts(&self) -> (&[u64], u64, u64, u64) {
        (&self.counts, self.total, self.min, self.max)
    }

    /// Rebuilds a sketch from [`LatencySketch::raw_parts`]. Returns `None`
    /// when the parts are inconsistent (wrong bucket count, or counters
    /// that do not sum to `total`) — a decoded checkpoint must never
    /// produce a sketch the recording path could not have.
    pub(crate) fn from_raw_parts(counts: Vec<u64>, total: u64, min: u64, max: u64) -> Option<Self> {
        if counts.len() != Self::BUCKETS {
            return None;
        }
        let mut sum = 0u64;
        for &c in &counts {
            sum = sum.checked_add(c)?;
        }
        if sum != total {
            return None;
        }
        Some(LatencySketch { counts, total, min, max })
    }

    /// Nearest-rank `pct`-th percentile (`pct` in 1..=100), mirroring the
    /// exact path's rule `rank = max(ceil(pct·n / 100), 1)`. Returns the
    /// containing bucket's upper bound clamped to the exact maximum, so the
    /// result never understates the true quantile and overstates it by less
    /// than `2^-SUB_BUCKET_BITS` relative. Returns 0 on an empty sketch.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (pct * self.total).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(b).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = LatencySketch::new();
        for v in 0..SUB_BUCKETS as u64 {
            s.record(v);
        }
        assert_eq!(s.percentile(50), 127);
        assert_eq!(s.percentile(100), 255);
        assert_eq!(s.max(), 255);
        // Below 2^SUB_BUCKET_BITS every bucket holds one value.
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(LatencySketch::bucket(v), v as usize);
            assert_eq!(LatencySketch::bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn buckets_tile_the_u64_range_contiguously() {
        // Every octave boundary must land at the start of a fresh bucket and
        // every bucket's upper bound must map back to itself.
        for v in [255u64, 256, 257, 511, 512, 1 << 20, u64::MAX / 2, u64::MAX] {
            let b = LatencySketch::bucket(v);
            assert!(b < LatencySketch::BUCKETS, "bucket({v}) = {b} out of range");
            assert!(LatencySketch::bucket_upper(b) >= v);
            assert_eq!(LatencySketch::bucket(LatencySketch::bucket_upper(b)), b);
        }
        assert_eq!(LatencySketch::bucket(256), 256, "first log bucket follows the linear range");
        assert_eq!(LatencySketch::bucket(u64::MAX) + 1, LatencySketch::BUCKETS);
    }

    #[test]
    fn relative_error_is_within_the_documented_bound() {
        let mut s = LatencySketch::new();
        let mut values: Vec<u64> = Vec::new();
        let mut state = 99u64;
        for _ in 0..10_000 {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let v = (state >> 16) % 1_000_000;
            values.push(v);
            s.record(v);
        }
        values.sort_unstable();
        for pct in [1u64, 10, 50, 90, 95, 99, 100] {
            let rank = (pct * values.len() as u64).div_ceil(100).max(1);
            let exact = values[rank as usize - 1];
            let sketched = s.percentile(pct);
            assert!(sketched >= exact, "p{pct}: {sketched} understates exact {exact}");
            // width - 1 < exact / 2^SUB_BUCKET_BITS, so integer division is
            // a valid bound check.
            assert!(
                sketched - exact <= exact / (1 << SUB_BUCKET_BITS),
                "p{pct}: {sketched} vs exact {exact} exceeds the 2^-{SUB_BUCKET_BITS} bound",
            );
        }
    }

    #[test]
    fn merge_is_order_independent() {
        let values: Vec<u64> = (0..5_000).map(|i| (i * 2_654_435_761u64) % 100_000).collect();
        // One sketch fed sequentially...
        let mut whole = LatencySketch::new();
        for &v in &values {
            whole.record(v);
        }
        // ...vs chunked sketches merged in forward and reverse order.
        let sketch_of = |chunk: &[u64]| {
            let mut s = LatencySketch::new();
            for &v in chunk {
                s.record(v);
            }
            s
        };
        let chunks: Vec<LatencySketch> = values.chunks(137).map(sketch_of).collect();
        let mut forward = LatencySketch::new();
        for c in &chunks {
            forward.merge(c);
        }
        let mut reverse = LatencySketch::new();
        for c in chunks.iter().rev() {
            reverse.merge(c);
        }
        assert_eq!(forward, whole);
        assert_eq!(reverse, whole);
    }

    #[test]
    fn empty_sketch_reports_zeros() {
        let s = LatencySketch::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(50), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn max_is_exact_even_when_bucketed() {
        let mut s = LatencySketch::new();
        s.record(1_000_003);
        assert_eq!(s.percentile(100), 1_000_003, "upper bound clamps to the exact max");
        assert_eq!(s.max(), 1_000_003);
    }
}
