//! What a serve run reports: latency percentiles, throughput, queue
//! behaviour, and copy/compute overlap efficiency.
//!
//! Everything in a [`ServeReport`] is integer-valued and derived from the
//! deterministic timeline, so reports from the same trace and configuration
//! are bit-identical regardless of host thread count — `PartialEq` on the
//! whole report is the determinism test.

use gspecpal::SchemeKind;
use gspecpal_fsm::StateId;
use gspecpal_gpu::{KernelStats, Span};

use crate::controller::DecisionRecord;
use crate::sketch::LatencySketch;

/// Largest latency set summarized by an exact sort. Above this,
/// [`LatencySummary::from_latencies`] routes through a [`LatencySketch`]
/// (error bound [`LatencySketch::ERROR_PERMILLE`]) so summary cost and
/// memory stay bounded at million-stream scale. The threshold comfortably
/// exceeds every committed benchmark's stream count, which is what keeps
/// the committed `BENCH_serve.json` baselines byte-identical.
pub const EXACT_SUMMARY_MAX: usize = 4096;

/// How a batch was executed on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// One device thread per stream ([`gspecpal::throughput`]): the
    /// throughput-oriented layout, best for many comparable streams.
    StreamParallel,
    /// Chunk-parallel speculation per stream (the paper's latency-sensitive
    /// layout), streams back to back: best when a batch is dominated by one
    /// long stream.
    ChunkParallel,
}

impl ExecMode {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ExecMode::StreamParallel => "stream_parallel",
            ExecMode::ChunkParallel => "chunk_parallel",
        }
    }
}

/// Nearest-rank latency percentiles over a set of per-stream latencies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst stream.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes `latencies` (need not be sorted; empty input gives all
    /// zeros). Uses the nearest-rank method on integer cycles — no floats,
    /// no interpolation, bit-stable.
    ///
    /// Sets of at most [`EXACT_SUMMARY_MAX`] values are sorted and
    /// summarized exactly; larger sets go through a [`LatencySketch`], whose
    /// percentiles follow the same nearest-rank rule within the sketch's
    /// documented error bound (`max` stays exact either way).
    pub fn from_latencies(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        if latencies.len() > EXACT_SUMMARY_MAX {
            let mut sketch = LatencySketch::new();
            for &v in latencies {
                sketch.record(v);
            }
            return LatencySummary::from_sketch(&sketch);
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let rank = |pct: u64| {
            let n = sorted.len() as u64;
            let idx = (pct * n).div_ceil(100).max(1) - 1;
            sorted[idx as usize]
        };
        LatencySummary {
            p50: rank(50),
            p95: rank(95),
            p99: rank(99),
            max: sorted[sorted.len() - 1],
        }
    }

    /// Summarizes a [`LatencySketch`]: nearest-rank percentiles within the
    /// sketch's error bound, exact maximum.
    pub fn from_sketch(sketch: &LatencySketch) -> Self {
        LatencySummary {
            p50: sketch.percentile(50),
            p95: sketch.percentile(95),
            p99: sketch.percentile(99),
            max: sketch.max(),
        }
    }
}

/// What ultimately happened to one admitted stream. Shedding is a
/// *structured outcome*, not an error: the pipeline keeps serving the rest
/// of the trace and the report says exactly which streams were dropped and
/// why.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StreamOutcome {
    /// The stream's result reached the host.
    #[default]
    Served,
    /// Shed at dispatch: the stream waited in the admission queue longer
    /// than the configured shedding deadline.
    ShedDeadline,
    /// Shed because the stream's batch exhausted its copy retry budget (on
    /// either the input or the result transfer).
    ShedCopyFailure,
    /// Shed because the circuit breaker was open when the stream would have
    /// dispatched (too many consecutive batch failures).
    ShedBreakerOpen,
}

impl StreamOutcome {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            StreamOutcome::Served => "served",
            StreamOutcome::ShedDeadline => "shed_deadline",
            StreamOutcome::ShedCopyFailure => "shed_copy_failure",
            StreamOutcome::ShedBreakerOpen => "shed_breaker_open",
        }
    }
}

/// Everything the run's fault handling did, in one machine-readable block.
///
/// Kernel-side counters (`block_retries`, `watchdog_kills`,
/// `degraded_blocks`) are folded out of the merged [`KernelStats`]; the
/// copy / shedding / breaker counters come from the pipeline itself. Like
/// the rest of the report it is integer-valued and bit-identical across
/// host thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Kernel block launches retried after an injected abort or watchdog
    /// kill.
    pub block_retries: u64,
    /// Kernel blocks killed by the watchdog budget.
    pub watchdog_kills: u64,
    /// Kernel blocks that exhausted their retry budget (or tripped the
    /// misspeculation ladder) and degraded to a sequential re-exec.
    pub degraded_blocks: u64,
    /// Host↔device copy attempts retried after an injected failure.
    pub copy_retries: u64,
    /// Batches abandoned after the copy retry budget ran out.
    pub failed_batches: u64,
    /// Streams shed for any reason (deadline, copy failure, open breaker).
    pub shed_streams: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Cycles lost to fault handling: kernel-side recovery overhead plus
    /// failed copy attempts and their backoff waits.
    pub fault_cycles: u64,
}

/// What the per-device transition-table residency LRU did during a run
/// (all zeros when [`crate::ServeConfig::residency`] is `None`).
///
/// A batch whose machine's table is already resident in device global
/// memory is a *hit*; a *miss* charges a real H2D copy of the table's
/// [`global footprint`](gspecpal::table::DeviceTable::global_footprint_bytes)
/// on the copy engine (the cycles land in `Phase::Transfer`, so the phase
/// partition stays exact), evicting least-recently-used tables until the
/// new one fits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidencyReport {
    /// Batches whose machine's table was already resident.
    pub hits: u64,
    /// Batches that had to upload their machine's table first.
    pub misses: u64,
    /// Tables evicted to make room for a missed table.
    pub evictions: u64,
    /// Table bytes copied host→device on misses.
    pub copied_bytes: u64,
}

impl ResidencyReport {
    /// Hit rate over all table lookups, in permille (0 when the LRU never
    /// ran).
    pub fn hit_permille(&self) -> u64 {
        (self.hits * 1000).checked_div(self.hits + self.misses).unwrap_or(0)
    }

    /// Folds another device's counters into this one (fleet aggregation).
    pub fn merge(&mut self, other: &ResidencyReport) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.copied_bytes += other.copied_bytes;
    }
}

/// One dispatched batch on the serve timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRecord {
    /// Index of the first stream (in admission order) in the batch.
    pub first_stream: usize,
    /// Number of streams in the batch.
    pub streams: usize,
    /// Machine the batch ran on.
    pub machine: usize,
    /// Scheme the machine's selector chose (chunk-parallel batches only run
    /// this; stream-parallel batches record it for provenance).
    pub scheme: SchemeKind,
    /// How the batch was executed.
    pub mode: ExecMode,
    /// Input bytes copied host→device.
    pub bytes: usize,
    /// Host→device input copy span.
    pub h2d: Span,
    /// Kernel span on the compute queue.
    pub compute: Span,
    /// Device→host result copy span.
    pub d2h: Span,
}

/// The full result of serving a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeReport {
    /// Policy name (`fifo` / `deadline` / `adaptive`).
    pub policy: &'static str,
    /// Whether copy/compute overlap was enabled.
    pub overlap: bool,
    /// Streams served (= trace length).
    pub streams: usize,
    /// Total input bytes copied to the device.
    pub total_bytes: usize,
    /// Every dispatched batch, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Cycle the last result copy finished — the wall-clock of the run.
    pub makespan_cycles: u64,
    /// Per-stream delivery latency (arrival → result on host), admission
    /// order.
    pub latencies: Vec<u64>,
    /// Percentiles of `latencies`.
    pub delivery: LatencySummary,
    /// Percentiles of arrival → kernel-scan completion (before the result
    /// copy): what the latency looks like to an on-device consumer, from
    /// the measured per-stream clocks.
    pub kernel_latency: LatencySummary,
    /// Verified end state of every stream, admission order.
    pub end_states: Vec<StateId>,
    /// Accept decision per stream, admission order.
    pub accepted: Vec<bool>,
    /// Engine-busy statistics: every batch's transfer and kernel stats
    /// merged sequentially. `stats.cycles` is total busy time across the
    /// three queues — it *exceeds* `makespan_cycles` exactly when copies
    /// overlapped compute. Transfer cycles sit in `Phase::Transfer` and
    /// per-phase cycles still partition `stats.cycles` exactly.
    pub stats: KernelStats,
    /// `(cycle, depth)` samples at every queue-depth change event.
    pub queue_depth: Vec<(u64, usize)>,
    /// Streams whose admission was delayed because the queue was full.
    pub backpressure_events: u64,
    /// Total cycles streams spent waiting for a queue slot.
    pub backpressure_wait_cycles: u64,
    /// Share of copy-engine busy cycles that ran under an active kernel, in
    /// permille (0–1000). 0 when overlap is disabled or there is nothing to
    /// hide behind; approaches 1000 when every copy is fully hidden.
    pub overlap_efficiency_permille: u64,
    /// Per-stream fate, admission order. Shed streams keep default entries
    /// in `latencies` / `end_states` / `accepted` and are excluded from the
    /// latency summaries.
    pub outcomes: Vec<StreamOutcome>,
    /// Aggregate fault-handling activity (all zeros on a fault-free run).
    pub recovery: RecoveryReport,
    /// Batches that completed end to end (equals `batches.len()` under
    /// [`crate::ReportDetail::Full`]; under `Bounded` the per-batch records
    /// themselves are not retained and this counter is the evidence).
    pub batches_dispatched: u64,
    /// Peak admission-queue depth, tracked incrementally. Under
    /// [`crate::ReportDetail::Full`] it equals the maximum over
    /// `queue_depth`; under `Bounded` the samples are not retained and this
    /// field carries the peak alone.
    pub peak_queue: usize,
    /// Upper bound, in permille, on the relative error of the `delivery` /
    /// `kernel_latency` percentiles: 0 when both summaries were computed
    /// exactly, [`LatencySketch::ERROR_PERMILLE`] when the served-stream
    /// count exceeded [`EXACT_SUMMARY_MAX`] and a sketch was used (`max` is
    /// exact in every case).
    pub latency_error_permille: u64,
    /// The adaptive controller's auditable decision log, in dispatch order
    /// (capped at [`crate::ControllerConfig::max_decisions`]; the counters
    /// below keep counting past the cap). Empty when
    /// [`crate::ServeConfig::controller`] is `None`.
    pub decisions: Vec<DecisionRecord>,
    /// Controller decisions made (= batches whose kernels ran under the
    /// controller).
    pub decisions_made: u64,
    /// How many of those were explore turns.
    pub explore_decisions: u64,
    /// Transition-table residency-LRU activity (all zeros without
    /// [`crate::ServeConfig::residency`]).
    pub residency: ResidencyReport,
    /// Deadline-class batches that preempted a bulk kernel at a wave
    /// boundary (always 0 without [`crate::ServeConfig::preempt`]).
    pub preemptions: u64,
    /// Total cycles preemptions pushed bulk kernel completions back by —
    /// the bounded price bulk throughput pays for deadline-class latency.
    pub preempted_cycles: u64,
}

impl ServeReport {
    /// Sustained throughput in bytes per cycle of makespan.
    pub fn bytes_per_cycle(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.makespan_cycles as f64
        }
    }

    /// Peak queue depth observed.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0).max(self.peak_queue)
    }

    /// Streams whose results reached the host. Falls back to
    /// `streams - shed` when per-stream outcomes were not retained
    /// ([`crate::ReportDetail::Bounded`]).
    pub fn served_streams(&self) -> usize {
        if self.outcomes.is_empty() {
            self.streams - self.recovery.shed_streams as usize
        } else {
            self.outcomes.iter().filter(|o| **o == StreamOutcome::Served).count()
        }
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} overlap={} streams={} batches={} makespan={}cy p50={} p95={} p99={} max={} \
             {:.4}B/cy transfer={}cy overlap_eff={}‰ backpressure={} shed={}",
            self.policy,
            self.overlap,
            self.streams,
            self.batches.len(),
            self.makespan_cycles,
            self.delivery.p50,
            self.delivery.p95,
            self.delivery.p99,
            self.delivery.max,
            self.bytes_per_cycle(),
            self.stats.profile.get(gspecpal_gpu::Phase::Transfer).cycles,
            self.overlap_efficiency_permille,
            self.backpressure_events,
            self.recovery.shed_streams,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let lat: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_latencies(&lat);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
    }

    #[test]
    fn percentiles_on_tiny_sets() {
        let s = LatencySummary::from_latencies(&[7]);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (7, 7, 7, 7));
        let s = LatencySummary::from_latencies(&[10, 2]);
        assert_eq!(s.p50, 2, "nearest rank: ceil(0.5·2)=1st of the sorted pair");
        assert_eq!(s.max, 10);
        assert_eq!(LatencySummary::from_latencies(&[]), LatencySummary::default());
    }

    #[test]
    fn summary_lines_do_not_panic() {
        let r = ServeReport { policy: "fifo", ..ServeReport::default() };
        assert!(r.summary().contains("fifo"));
        assert_eq!(r.bytes_per_cycle(), 0.0);
        assert_eq!(r.peak_queue_depth(), 0);
    }
}
