//! Structured rejection reasons for serve traces.

/// Why a trace cannot be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A stream's input is larger than one device staging buffer, so no
    /// batch could ever hold it. The pipeline double-buffers its input
    /// staging memory, so one buffer is half the configured device budget.
    StreamTooLarge {
        /// Index of the offending arrival in the trace.
        stream: usize,
        /// The stream's size in bytes.
        bytes: usize,
        /// Bytes one staging buffer holds (`device_mem_bytes / 2`).
        buffer_bytes: usize,
    },
    /// An arrival names a machine index the pipeline was not given.
    UnknownMachine {
        /// Index of the offending arrival in the trace.
        stream: usize,
        /// The machine id the arrival asked for.
        machine: usize,
        /// How many machines the pipeline has.
        n_machines: usize,
    },
    /// The configuration is internally inconsistent (zero-sized queue,
    /// zero-byte device budget, a policy with a zero batch cap, …).
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        problem: String,
    },
    /// An arrival is timestamped earlier than its predecessor, so the trace
    /// is not a valid time-ordered history (see
    /// [`crate::Trace::try_from_arrivals`]).
    NonMonotonicTrace {
        /// Index of the offending arrival.
        stream: usize,
        /// Its arrival cycle.
        cycle: u64,
        /// The predecessor's (later) arrival cycle.
        prev: u64,
    },
    /// An arrival cycle is so large that downstream cycle arithmetic
    /// (deadlines, latencies, backoff) could overflow the 64-bit clock.
    ArrivalOverflow {
        /// Index of the offending arrival.
        stream: usize,
        /// Its arrival cycle.
        cycle: u64,
        /// The largest admissible arrival cycle.
        max: u64,
    },
    /// An arrival carries a zero-length stream, which no kernel can scan.
    EmptyStream {
        /// Index of the offending arrival.
        stream: usize,
    },
    /// A checkpoint's bytes are malformed: truncated, bad magic or
    /// checksum, an out-of-range tag, or decoded state no run of the
    /// engine could have produced. Corruption is always a structured
    /// rejection, never a panic.
    CorruptCheckpoint {
        /// Byte offset the decoder was at when it gave up (0 for semantic
        /// validation failures past the byte layer).
        offset: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// A well-formed checkpoint was presented to a run whose configuration,
    /// machines, or device differ from the ones it was taken under — the
    /// bit-identity guarantee only holds against the identical setup, so
    /// resuming is refused instead of silently diverging.
    CheckpointMismatch {
        /// Fingerprint of the resuming run's setup.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        found: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::StreamTooLarge { stream, bytes, buffer_bytes } => write!(
                f,
                "stream {stream} is {bytes} bytes but one staging buffer holds {buffer_bytes}"
            ),
            ServeError::UnknownMachine { stream, machine, n_machines } => write!(
                f,
                "stream {stream} asks for machine {machine} but the pipeline has {n_machines}"
            ),
            ServeError::InvalidConfig { field, problem } => {
                write!(f, "invalid serve configuration: {field} {problem}")
            }
            ServeError::NonMonotonicTrace { stream, cycle, prev } => write!(
                f,
                "arrival {stream} at cycle {cycle} precedes its predecessor at cycle {prev}"
            ),
            ServeError::ArrivalOverflow { stream, cycle, max } => {
                write!(f, "arrival {stream} at cycle {cycle} exceeds the clock bound {max}")
            }
            ServeError::EmptyStream { stream } => {
                write!(f, "arrival {stream} carries an empty stream")
            }
            ServeError::CorruptCheckpoint { offset, what } => {
                write!(f, "corrupt checkpoint at byte {offset}: {what}")
            }
            ServeError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match this run's {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}
