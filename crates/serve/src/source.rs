//! Streaming arrival sources: traces consumed one arrival at a time.
//!
//! [`crate::serve`] takes a fully materialized [`Trace`] — fine for tests
//! and benches, fatal for the million-stream regime the ROADMAP targets,
//! where holding every arrival (and its payload) in memory defeats the
//! point. A [`TraceSource`] is the streaming alternative: the pipeline
//! *pulls* arrivals in admission order and drops each stream's bytes as
//! soon as its batch has been charged, so resident memory is bounded by
//! the admission queue, not the trace length (see
//! [`crate::serve_source`]).
//!
//! Three sources cover the practical cases:
//!
//! * [`TraceCursor`] — replays an in-memory [`Trace`]; this is how `serve`
//!   itself runs, so the two entry points share one engine and produce
//!   byte-identical reports.
//! * [`IterSource`] — adapts any `Iterator<Item = StreamArrival>` (a log
//!   parser, a socket decoder, a generator).
//! * [`SyntheticSource`] — the streaming twin of [`Trace::synthetic`]:
//!   the same seeded LCG, the same sequence, without materializing it.
//!   `Trace::synthetic` is implemented by collecting this source, so the
//!   two can never drift apart.

use crate::trace::{Lcg, StreamArrival, Trace};

/// A pull-based stream of arrivals in admission (non-decreasing
/// `arrival_cycle`) order.
///
/// The contract matches what [`Trace`] guarantees after sorting: the
/// pipeline validates monotonicity as it pulls and rejects a regression
/// with [`crate::ServeError::NonMonotonicTrace`], because an out-of-order
/// arrival from a live source is evidence of a broken feed, not something
/// to buffer and repair.
pub trait TraceSource {
    /// The next arrival, or `None` when the trace is exhausted. Must be
    /// monotone: once `None`, always `None`.
    fn next_arrival(&mut self) -> Option<StreamArrival>;
}

/// Adapts any iterator of arrivals into a [`TraceSource`].
pub struct IterSource<I>(pub I);

impl<I: Iterator<Item = StreamArrival>> TraceSource for IterSource<I> {
    fn next_arrival(&mut self) -> Option<StreamArrival> {
        self.0.next()
    }
}

/// A [`TraceSource`] replaying an in-memory [`Trace`] — the impl behind
/// [`Trace::source`]. Clones each arrival on pull; the trace itself stays
/// borrowed and untouched.
pub struct TraceCursor<'a> {
    arrivals: &'a [StreamArrival],
    next: usize,
}

impl<'a> TraceCursor<'a> {
    pub(crate) fn new(trace: &'a Trace) -> Self {
        TraceCursor { arrivals: trace.arrivals(), next: 0 }
    }
}

impl TraceSource for TraceCursor<'_> {
    fn next_arrival(&mut self) -> Option<StreamArrival> {
        let a = self.arrivals.get(self.next)?;
        self.next += 1;
        Some(a.clone())
    }
}

/// Streaming deterministic synthetic workload: yields exactly the
/// arrivals of `Trace::synthetic(seed, n_streams, …)`, one at a time.
///
/// This is what lets the host-throughput benchmark push a million streams
/// through the pipeline without ever materializing the trace: each pull
/// costs one stream's bytes, which the engine frees after dispatch.
pub struct SyntheticSource {
    rng: Lcg,
    clock: u64,
    remaining: usize,
    n_machines: usize,
    mean_gap: u64,
    len_range: std::ops::Range<usize>,
    alphabet: Vec<u8>,
}

impl SyntheticSource {
    /// See [`Trace::synthetic`] for the parameters and panics; the two
    /// produce the same sequence by construction.
    pub fn new(
        seed: u64,
        n_streams: usize,
        n_machines: usize,
        mean_gap: u64,
        len_range: std::ops::Range<usize>,
        alphabet: &[u8],
    ) -> Self {
        assert!(n_machines > 0, "need at least one machine");
        assert!(!alphabet.is_empty(), "need a nonempty alphabet");
        assert!(!len_range.is_empty(), "need a nonempty length range");
        SyntheticSource {
            rng: Lcg::new(seed),
            clock: 0,
            remaining: n_streams,
            n_machines,
            mean_gap,
            len_range,
            alphabet: alphabet.to_vec(),
        }
    }
}

impl Iterator for SyntheticSource {
    type Item = StreamArrival;

    fn next(&mut self) -> Option<StreamArrival> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock += self.rng.below(2 * self.mean_gap + 1);
        let machine = self.rng.below(self.n_machines as u64) as usize;
        let len = self.len_range.start
            + self.rng.below((self.len_range.end - self.len_range.start) as u64) as usize;
        let bytes = (0..len)
            .map(|_| self.alphabet[self.rng.below(self.alphabet.len() as u64) as usize])
            .collect();
        Some(StreamArrival { arrival_cycle: self.clock, machine, bytes })
    }
}

impl TraceSource for SyntheticSource {
    fn next_arrival(&mut self) -> Option<StreamArrival> {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_source_matches_trace_synthetic_exactly() {
        let streamed: Vec<StreamArrival> =
            SyntheticSource::new(42, 50, 3, 100, 8..64, b"01").collect();
        let materialized = Trace::synthetic(42, 50, 3, 100, 8..64, b"01");
        assert_eq!(streamed, materialized.arrivals());
    }

    #[test]
    fn trace_cursor_replays_in_order() {
        let trace = Trace::synthetic(7, 10, 2, 50, 4..8, b"ab");
        let mut cursor = trace.source();
        let mut n = 0;
        while let Some(a) = cursor.next_arrival() {
            assert_eq!(&a, &trace.arrivals()[n]);
            n += 1;
        }
        assert_eq!(n, trace.len());
        assert!(cursor.next_arrival().is_none(), "stays exhausted");
    }

    #[test]
    fn iter_source_adapts_any_iterator() {
        let mut src = IterSource((0..3u64).map(|i| StreamArrival {
            arrival_cycle: i,
            machine: 0,
            bytes: vec![b'x'],
        }));
        assert_eq!(src.next_arrival().unwrap().arrival_cycle, 0);
        assert_eq!(src.next_arrival().unwrap().arrival_cycle, 1);
        assert_eq!(src.next_arrival().unwrap().arrival_cycle, 2);
        assert!(src.next_arrival().is_none());
    }
}
