//! `gspecpal-serve`: a deterministic multi-stream serving pipeline over the
//! GSpecPal simulator.
//!
//! The rest of the workspace measures *one-shot batches*: build a job, run
//! a kernel, read the cycle count. Real serving is a different shape — a
//! trace of streams arriving over time, a bounded admission queue, batches
//! formed under a policy, inputs DMA-copied over PCIe before any kernel can
//! start, and results copied back before the host sees them. This crate
//! models that end to end, on the same deterministic cycle arithmetic as
//! the simulator itself:
//!
//! * [`Trace`] / [`StreamArrival`] — the workload: time-ordered arrivals of
//!   (cycle, machine, bytes), handwritten or synthesized from a seed;
//! * [`BatchPolicy`] — when a batch closes: FIFO fixed-size, deadline-capped,
//!   or adaptive occupancy-aware (work-conserving);
//! * [`ServeMachine`] — a DFA prepared for serving: selector-chosen scheme
//!   plus a device-sized hot-row table;
//! * [`serve`] — the pipeline: admission with backpressure, per-batch
//!   H2D-copy → kernel → D2H-copy scheduling on a dual copy-engine /
//!   compute-queue timeline ([`gspecpal_gpu::DeviceTimeline`]), with batch
//!   *k+1*'s input copy overlapping batch *k*'s kernel under double
//!   buffering;
//! * [`ServeReport`] — per-stream latency percentiles, sustained
//!   bytes/cycle, queue depth over time, backpressure counts, copy/compute
//!   overlap efficiency, and merged [`gspecpal_gpu::KernelStats`] whose
//!   `Phase::Transfer` bucket now carries real copy cycles while the
//!   per-phase partition of total cycles stays exact;
//! * [`serve_source`] / [`TraceSource`] — the streaming entry point: the
//!   same engine pulling arrivals one at a time from a generator, log
//!   parser, or [`SyntheticSource`], with resident memory bounded by the
//!   queue depth (pair with [`ReportDetail::Bounded`] and the
//!   constant-memory [`LatencySketch`] summaries to serve millions of
//!   streams without O(streams) state).
//!
//! Everything is integer cycle arithmetic over deterministic simulations:
//! two runs of the same trace and configuration produce bit-identical
//! reports at any host thread count.
//!
//! # Example
//!
//! ```
//! use gspecpal_fsm::examples::div7;
//! use gspecpal_gpu::DeviceSpec;
//! use gspecpal_serve::{serve, BatchPolicy, ServeConfig, ServeMachine, Trace};
//!
//! let spec = DeviceSpec::test_unit();
//! let dfa = div7();
//! let machine = ServeMachine::prepare(&spec, &dfa, &b"110101".repeat(64));
//! let trace = Trace::synthetic(7, 24, 1, 50, 16..128, b"01");
//! let cfg = ServeConfig { policy: BatchPolicy::Fifo { batch: 8 }, ..ServeConfig::default() };
//! let report = serve(&spec, &[machine], &trace, &cfg).unwrap();
//! assert_eq!(report.streams, 24);
//! // Every answer matches a host-side reference scan.
//! for (i, a) in trace.arrivals().iter().enumerate() {
//!     assert_eq!(report.end_states[i], dfa.run(&a.bytes));
//! }
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod error;
pub mod pipeline;
pub mod policy;
pub mod report;
pub mod sketch;
pub mod source;
pub mod trace;

pub use controller::{
    AdaptiveController, BatchObservation, ControllerConfig, Decision, DecisionRecord, LaunchChoice,
};
pub use error::ServeError;
pub use pipeline::{
    serve, serve_source, ReportDetail, ServeConfig, ServeMachine, ServeRecoveryConfig,
};
pub use policy::BatchPolicy;
pub use report::{
    BatchRecord, ExecMode, LatencySummary, RecoveryReport, ServeReport, StreamOutcome,
    EXACT_SUMMARY_MAX,
};
pub use sketch::LatencySketch;
pub use source::{IterSource, SyntheticSource, TraceCursor, TraceSource};
pub use trace::{StreamArrival, Trace, MAX_ARRIVAL_CYCLE};

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::{DeviceSpec, Phase};

    fn setup() -> (DeviceSpec, gspecpal_fsm::Dfa) {
        (DeviceSpec::test_unit(), div7())
    }

    fn burst_trace(n: usize, len: usize) -> Trace {
        Trace::from_arrivals(
            (0..n)
                .map(|i| StreamArrival {
                    arrival_cycle: 0,
                    machine: 0,
                    bytes: b"10".repeat(len / 2 + i % 3),
                })
                .collect(),
        )
    }

    #[test]
    fn answers_match_reference_scans_under_every_policy() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"110100".repeat(64));
        let trace = Trace::synthetic(3, 20, 1, 30, 8..96, b"01");
        for policy in [
            BatchPolicy::Fifo { batch: 4 },
            BatchPolicy::Deadline { batch: 4, max_wait: 40 },
            BatchPolicy::Adaptive { max_batch: 16 },
        ] {
            let cfg = ServeConfig { policy, ..ServeConfig::default() };
            let report = serve(&spec, std::slice::from_ref(&machine), &trace, &cfg).unwrap();
            assert_eq!(report.streams, 20, "{}", policy.name());
            for (i, a) in trace.arrivals().iter().enumerate() {
                assert_eq!(report.end_states[i], dfa.run(&a.bytes), "{} stream {i}", policy.name());
                assert_eq!(
                    report.accepted[i],
                    dfa.accepts(&a.bytes),
                    "{} stream {i}",
                    policy.name()
                );
            }
            let served: usize = report.batches.iter().map(|b| b.streams).sum();
            assert_eq!(served, 20);
        }
    }

    #[test]
    fn transfer_cycles_are_charged_and_partition_exactly() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        let trace = burst_trace(12, 40);
        let report = serve(&spec, &[machine], &trace, &ServeConfig::default()).unwrap();
        let transfer = report.stats.profile.get(Phase::Transfer).cycles;
        assert!(transfer > 0, "serving must charge host<->device copies");
        assert_eq!(
            report.stats.profile.total_cycles(),
            report.stats.cycles,
            "per-phase cycles still partition the total exactly"
        );
        // Each batch pays at least two copies (inputs in, results out).
        let n_batches = report.batches.len() as u64;
        assert!(transfer >= n_batches * 2 * spec.copy_latency_cycles);
    }

    #[test]
    fn overlap_strictly_beats_serialization_on_multi_batch_traces() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        // A burst: all streams present at cycle 0, so batching decisions are
        // identical with and without overlap.
        let trace = burst_trace(16, 60);
        let cfg = ServeConfig {
            policy: BatchPolicy::Fifo { batch: 4 },
            overlap: true,
            ..ServeConfig::default()
        };
        let overlapped = serve(&spec, std::slice::from_ref(&machine), &trace, &cfg).unwrap();
        let serial =
            serve(&spec, &[machine], &trace, &ServeConfig { overlap: false, ..cfg }).unwrap();
        assert_eq!(overlapped.batches.len(), serial.batches.len());
        assert!(overlapped.batches.len() >= 3, "need a multi-batch trace");
        // Same batches, same kernels, same answers...
        assert_eq!(overlapped.end_states, serial.end_states);
        assert_eq!(overlapped.stats, serial.stats, "engine-busy work is identical");
        // ...but the overlapped timeline finishes strictly earlier.
        assert!(
            overlapped.makespan_cycles < serial.makespan_cycles,
            "overlap {} vs serial {}",
            overlapped.makespan_cycles,
            serial.makespan_cycles
        );
        assert!(overlapped.overlap_efficiency_permille > 0);
        assert_eq!(serial.overlap_efficiency_permille, 0, "no copy ever rides under a kernel");
    }

    #[test]
    fn deadline_ships_partial_batches() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        // Two streams far apart: FIFO(2) waits for the second; Deadline ships
        // the first alone at its deadline.
        let trace = Trace::from_arrivals(vec![
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(20) },
            StreamArrival { arrival_cycle: 1_000_000, machine: 0, bytes: b"10".repeat(20) },
        ]);
        let deadline_cfg = ServeConfig {
            policy: BatchPolicy::Deadline { batch: 2, max_wait: 100 },
            ..ServeConfig::default()
        };
        let fifo_cfg =
            ServeConfig { policy: BatchPolicy::Fifo { batch: 2 }, ..ServeConfig::default() };
        let d = serve(&spec, std::slice::from_ref(&machine), &trace, &deadline_cfg).unwrap();
        let f = serve(&spec, &[machine], &trace, &fifo_cfg).unwrap();
        assert_eq!(d.batches.len(), 2, "deadline shipped the lone stream");
        assert_eq!(f.batches.len(), 1, "fifo waited the million cycles");
        assert!(
            d.latencies[0] < f.latencies[0],
            "deadline bounds the first stream's latency: {} vs {}",
            d.latencies[0],
            f.latencies[0]
        );
    }

    #[test]
    fn adaptive_is_work_conserving() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        // Trickle arrivals, far apart: adaptive must not hold the device
        // idle waiting to fill its occupancy target.
        let trace = Trace::from_arrivals(
            (0..4)
                .map(|i| StreamArrival {
                    arrival_cycle: i * 1_000_000,
                    machine: 0,
                    bytes: b"10".repeat(30),
                })
                .collect(),
        );
        let cfg = ServeConfig {
            policy: BatchPolicy::Adaptive { max_batch: 64 },
            ..ServeConfig::default()
        };
        let report = serve(&spec, &[machine], &trace, &cfg).unwrap();
        assert_eq!(report.batches.len(), 4, "each trickle arrival ships alone");
        // Under a burst the same policy batches aggressively.
        let burst = burst_trace(16, 30);
        let report = serve(
            &spec,
            &[ServeMachine::prepare(&spec, &div7(), &b"10".repeat(128))],
            &burst,
            &cfg,
        )
        .unwrap();
        assert!(report.batches.len() < 16, "burst arrivals share batches");
    }

    #[test]
    fn machine_changes_close_batches() {
        let (spec, dfa) = setup();
        let dfa2 = gspecpal_fsm::examples::mod_counter(5, &[0]);
        let m0 = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        let m1 = ServeMachine::prepare(&spec, &dfa2, &b"10".repeat(128));
        let trace = Trace::from_arrivals(vec![
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(10) },
            StreamArrival { arrival_cycle: 0, machine: 1, bytes: b"10".repeat(10) },
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(10) },
        ]);
        let cfg = ServeConfig { policy: BatchPolicy::Fifo { batch: 8 }, ..ServeConfig::default() };
        let report = serve(&spec, &[m0, m1], &trace, &cfg).unwrap();
        assert_eq!(report.batches.len(), 3, "a batch runs one machine's table");
        assert_eq!(report.end_states[1], dfa2.run(&trace.arrivals()[1].bytes));
    }
}
