//! `gspecpal-serve`: a deterministic multi-stream serving pipeline over the
//! GSpecPal simulator.
//!
//! The rest of the workspace measures *one-shot batches*: build a job, run
//! a kernel, read the cycle count. Real serving is a different shape — a
//! trace of streams arriving over time, a bounded admission queue, batches
//! formed under a policy, inputs DMA-copied over PCIe before any kernel can
//! start, and results copied back before the host sees them. This crate
//! models that end to end, on the same deterministic cycle arithmetic as
//! the simulator itself:
//!
//! * [`Trace`] / [`StreamArrival`] — the workload: time-ordered arrivals of
//!   (cycle, machine, bytes), handwritten or synthesized from a seed;
//! * [`BatchPolicy`] — when a batch closes: FIFO fixed-size, deadline-capped,
//!   or adaptive occupancy-aware (work-conserving);
//! * [`ServeMachine`] — a DFA prepared for serving: selector-chosen scheme
//!   plus a device-sized hot-row table;
//! * [`serve`] — the pipeline: admission with backpressure, per-batch
//!   H2D-copy → kernel → D2H-copy scheduling on a dual copy-engine /
//!   compute-queue timeline ([`gspecpal_gpu::DeviceTimeline`]), with batch
//!   *k+1*'s input copy overlapping batch *k*'s kernel under double
//!   buffering;
//! * [`ServeReport`] — per-stream latency percentiles, sustained
//!   bytes/cycle, queue depth over time, backpressure counts, copy/compute
//!   overlap efficiency, and merged [`gspecpal_gpu::KernelStats`] whose
//!   `Phase::Transfer` bucket now carries real copy cycles while the
//!   per-phase partition of total cycles stays exact;
//! * [`serve_source`] / [`TraceSource`] — the streaming entry point: the
//!   same engine pulling arrivals one at a time from a generator, log
//!   parser, or [`SyntheticSource`], with resident memory bounded by the
//!   queue depth (pair with [`ReportDetail::Bounded`] and the
//!   constant-memory [`LatencySketch`] summaries to serve millions of
//!   streams without O(streams) state);
//! * [`ResidencyConfig`] / [`PriorityClass`] — fleet-grade serving: a
//!   per-device transition-table LRU whose misses charge real H2D copies
//!   (and whose hit rate the report carries), and deadline-class machines
//!   whose batches preempt the open bulk kernel at its next wave boundary
//!   ([`ServeConfig::preempt`]) instead of queueing behind it;
//! * [`serve_checkpoint`] / [`serve_resume`] / [`serve_until_crash`] —
//!   crash consistency: the engine suspends at any quiescent inter-batch
//!   boundary into a versioned, checksummed, byte-deterministic
//!   [`EngineCheckpoint`], and a resumed run's report is bit-identical to
//!   the uninterrupted one; [`finalize_checkpoint`] turns the last
//!   checkpoint before a device crash into a durable report plus the
//!   orphan arrivals a failover peer must replay (see `gspecpal-cluster`).
//!
//! Everything is integer cycle arithmetic over deterministic simulations:
//! two runs of the same trace and configuration produce bit-identical
//! reports at any host thread count.
//!
//! # Example
//!
//! ```
//! use gspecpal_fsm::examples::div7;
//! use gspecpal_gpu::DeviceSpec;
//! use gspecpal_serve::{serve, BatchPolicy, ServeConfig, ServeMachine, Trace};
//!
//! let spec = DeviceSpec::test_unit();
//! let dfa = div7();
//! let machine = ServeMachine::prepare(&spec, &dfa, &b"110101".repeat(64));
//! let trace = Trace::synthetic(7, 24, 1, 50, 16..128, b"01");
//! let cfg = ServeConfig { policy: BatchPolicy::Fifo { batch: 8 }, ..ServeConfig::default() };
//! let report = serve(&spec, &[machine], &trace, &cfg).unwrap();
//! assert_eq!(report.streams, 24);
//! // Every answer matches a host-side reference scan.
//! for (i, a) in trace.arrivals().iter().enumerate() {
//!     assert_eq!(report.end_states[i], dfa.run(&a.bytes));
//! }
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod controller;
pub mod error;
pub mod pipeline;
pub mod policy;
pub mod report;
pub mod sketch;
pub mod source;
pub mod trace;

pub use checkpoint::{
    finalize_checkpoint, serve_checkpoint, serve_resume, serve_until_crash, CheckpointOutcome,
    CrashOutcome, EngineCheckpoint,
};
pub use controller::{
    AdaptiveController, BatchObservation, ControllerConfig, Decision, DecisionRecord, LaunchChoice,
};
pub use error::ServeError;
pub use pipeline::{
    serve, serve_source, ReportDetail, ResidencyConfig, ServeConfig, ServeMachine,
    ServeRecoveryConfig,
};
pub use policy::{BatchPolicy, PriorityClass};
pub use report::{
    BatchRecord, ExecMode, LatencySummary, RecoveryReport, ResidencyReport, ServeReport,
    StreamOutcome, EXACT_SUMMARY_MAX,
};
pub use sketch::LatencySketch;
pub use source::{IterSource, SyntheticSource, TraceCursor, TraceSource};
pub use trace::{StreamArrival, Trace, MAX_ARRIVAL_CYCLE};

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::examples::div7;
    use gspecpal_gpu::{DeviceSpec, Phase};

    fn setup() -> (DeviceSpec, gspecpal_fsm::Dfa) {
        (DeviceSpec::test_unit(), div7())
    }

    fn burst_trace(n: usize, len: usize) -> Trace {
        Trace::from_arrivals(
            (0..n)
                .map(|i| StreamArrival {
                    arrival_cycle: 0,
                    machine: 0,
                    bytes: b"10".repeat(len / 2 + i % 3),
                })
                .collect(),
        )
    }

    #[test]
    fn answers_match_reference_scans_under_every_policy() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"110100".repeat(64));
        let trace = Trace::synthetic(3, 20, 1, 30, 8..96, b"01");
        for policy in [
            BatchPolicy::Fifo { batch: 4 },
            BatchPolicy::Deadline { batch: 4, max_wait: 40 },
            BatchPolicy::Adaptive { max_batch: 16 },
        ] {
            let cfg = ServeConfig { policy, ..ServeConfig::default() };
            let report = serve(&spec, std::slice::from_ref(&machine), &trace, &cfg).unwrap();
            assert_eq!(report.streams, 20, "{}", policy.name());
            for (i, a) in trace.arrivals().iter().enumerate() {
                assert_eq!(report.end_states[i], dfa.run(&a.bytes), "{} stream {i}", policy.name());
                assert_eq!(
                    report.accepted[i],
                    dfa.accepts(&a.bytes),
                    "{} stream {i}",
                    policy.name()
                );
            }
            let served: usize = report.batches.iter().map(|b| b.streams).sum();
            assert_eq!(served, 20);
        }
    }

    #[test]
    fn transfer_cycles_are_charged_and_partition_exactly() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        let trace = burst_trace(12, 40);
        let report = serve(&spec, &[machine], &trace, &ServeConfig::default()).unwrap();
        let transfer = report.stats.profile.get(Phase::Transfer).cycles;
        assert!(transfer > 0, "serving must charge host<->device copies");
        assert_eq!(
            report.stats.profile.total_cycles(),
            report.stats.cycles,
            "per-phase cycles still partition the total exactly"
        );
        // Each batch pays at least two copies (inputs in, results out).
        let n_batches = report.batches.len() as u64;
        assert!(transfer >= n_batches * 2 * spec.copy_latency_cycles);
    }

    #[test]
    fn overlap_strictly_beats_serialization_on_multi_batch_traces() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        // A burst: all streams present at cycle 0, so batching decisions are
        // identical with and without overlap.
        let trace = burst_trace(16, 60);
        let cfg = ServeConfig {
            policy: BatchPolicy::Fifo { batch: 4 },
            overlap: true,
            ..ServeConfig::default()
        };
        let overlapped = serve(&spec, std::slice::from_ref(&machine), &trace, &cfg).unwrap();
        let serial =
            serve(&spec, &[machine], &trace, &ServeConfig { overlap: false, ..cfg }).unwrap();
        assert_eq!(overlapped.batches.len(), serial.batches.len());
        assert!(overlapped.batches.len() >= 3, "need a multi-batch trace");
        // Same batches, same kernels, same answers...
        assert_eq!(overlapped.end_states, serial.end_states);
        assert_eq!(overlapped.stats, serial.stats, "engine-busy work is identical");
        // ...but the overlapped timeline finishes strictly earlier.
        assert!(
            overlapped.makespan_cycles < serial.makespan_cycles,
            "overlap {} vs serial {}",
            overlapped.makespan_cycles,
            serial.makespan_cycles
        );
        assert!(overlapped.overlap_efficiency_permille > 0);
        assert_eq!(serial.overlap_efficiency_permille, 0, "no copy ever rides under a kernel");
    }

    #[test]
    fn deadline_ships_partial_batches() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        // Two streams far apart: FIFO(2) waits for the second; Deadline ships
        // the first alone at its deadline.
        let trace = Trace::from_arrivals(vec![
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(20) },
            StreamArrival { arrival_cycle: 1_000_000, machine: 0, bytes: b"10".repeat(20) },
        ]);
        let deadline_cfg = ServeConfig {
            policy: BatchPolicy::Deadline { batch: 2, max_wait: 100 },
            ..ServeConfig::default()
        };
        let fifo_cfg =
            ServeConfig { policy: BatchPolicy::Fifo { batch: 2 }, ..ServeConfig::default() };
        let d = serve(&spec, std::slice::from_ref(&machine), &trace, &deadline_cfg).unwrap();
        let f = serve(&spec, &[machine], &trace, &fifo_cfg).unwrap();
        assert_eq!(d.batches.len(), 2, "deadline shipped the lone stream");
        assert_eq!(f.batches.len(), 1, "fifo waited the million cycles");
        assert!(
            d.latencies[0] < f.latencies[0],
            "deadline bounds the first stream's latency: {} vs {}",
            d.latencies[0],
            f.latencies[0]
        );
    }

    #[test]
    fn adaptive_is_work_conserving() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        // Trickle arrivals, far apart: adaptive must not hold the device
        // idle waiting to fill its occupancy target.
        let trace = Trace::from_arrivals(
            (0..4)
                .map(|i| StreamArrival {
                    arrival_cycle: i * 1_000_000,
                    machine: 0,
                    bytes: b"10".repeat(30),
                })
                .collect(),
        );
        let cfg = ServeConfig {
            policy: BatchPolicy::Adaptive { max_batch: 64 },
            ..ServeConfig::default()
        };
        let report = serve(&spec, &[machine], &trace, &cfg).unwrap();
        assert_eq!(report.batches.len(), 4, "each trickle arrival ships alone");
        // Under a burst the same policy batches aggressively.
        let burst = burst_trace(16, 30);
        let report = serve(
            &spec,
            &[ServeMachine::prepare(&spec, &div7(), &b"10".repeat(128))],
            &burst,
            &cfg,
        )
        .unwrap();
        assert!(report.batches.len() < 16, "burst arrivals share batches");
    }

    #[test]
    fn residency_lru_hits_after_the_first_touch() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        let footprint = machine.table_footprint_bytes();
        let trace = burst_trace(16, 40);
        let cfg = ServeConfig {
            policy: BatchPolicy::Fifo { batch: 4 },
            residency: Some(ResidencyConfig { capacity_bytes: 4 * footprint }),
            ..ServeConfig::default()
        };
        let report = serve(&spec, &[machine], &trace, &cfg).unwrap();
        let batches = report.batches.len() as u64;
        assert!(batches >= 4);
        assert_eq!(report.residency.misses, 1, "only the cold first batch uploads");
        assert_eq!(report.residency.hits, batches - 1);
        assert_eq!(report.residency.evictions, 0);
        assert_eq!(report.residency.copied_bytes, footprint as u64);
        assert_eq!(report.residency.hit_permille(), (batches - 1) * 1000 / batches);
    }

    #[test]
    fn residency_thrash_evicts_and_reuploads() {
        let (spec, dfa) = setup();
        let dfa2 = gspecpal_fsm::examples::mod_counter(5, &[0]);
        let m0 = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        let m1 = ServeMachine::prepare(&spec, &dfa2, &b"10".repeat(128));
        let cap = m0.table_footprint_bytes().max(m1.table_footprint_bytes());
        // Alternate machines with room for exactly one table: every batch
        // misses and (after the first) evicts the other machine's table.
        let trace = Trace::from_arrivals(
            (0..8)
                .map(|i| StreamArrival {
                    arrival_cycle: 0,
                    machine: i % 2,
                    bytes: b"10".repeat(10),
                })
                .collect(),
        );
        let cfg = ServeConfig {
            policy: BatchPolicy::Fifo { batch: 1 },
            residency: Some(ResidencyConfig { capacity_bytes: cap }),
            ..ServeConfig::default()
        };
        let report = serve(&spec, &[m0, m1], &trace, &cfg).unwrap();
        assert_eq!(report.residency.hits, 0, "ping-pong traffic never hits");
        assert_eq!(report.residency.misses, 8);
        assert_eq!(report.residency.evictions, 7, "every upload after the first evicts");
    }

    #[test]
    fn residency_unfittable_table_always_reuploads_but_never_evicts() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        let trace = burst_trace(8, 30);
        let cfg = ServeConfig {
            policy: BatchPolicy::Fifo { batch: 2 },
            residency: Some(ResidencyConfig { capacity_bytes: 1 }),
            ..ServeConfig::default()
        };
        let report = serve(&spec, &[machine], &trace, &cfg).unwrap();
        assert_eq!(report.residency.hits, 0);
        assert_eq!(report.residency.misses, report.batches.len() as u64);
        assert_eq!(report.residency.evictions, 0);
    }

    #[test]
    fn residency_charges_real_transfers_and_keeps_the_partition_exact() {
        let (spec, dfa) = setup();
        let trace = burst_trace(12, 40);
        let base = serve(
            &spec,
            &[ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128))],
            &trace,
            &ServeConfig::default(),
        )
        .unwrap();
        let cfg = ServeConfig {
            residency: Some(ResidencyConfig { capacity_bytes: 1 }),
            ..ServeConfig::default()
        };
        let cold =
            serve(&spec, &[ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128))], &trace, &cfg)
                .unwrap();
        use gspecpal_gpu::Phase;
        assert!(
            cold.stats.profile.get(Phase::Transfer).cycles
                > base.stats.profile.get(Phase::Transfer).cycles,
            "table uploads must land in Phase::Transfer"
        );
        assert_eq!(cold.stats.profile.total_cycles(), cold.stats.cycles);
        assert!(cold.makespan_cycles >= base.makespan_cycles);
        assert_eq!(cold.end_states, base.end_states, "residency never changes answers");
    }

    #[test]
    fn preempt_mode_with_only_bulk_machines_matches_the_historical_engine() {
        let (spec, dfa) = setup();
        let trace = Trace::synthetic(11, 40, 1, 60, 8..96, b"01");
        let base_cfg =
            ServeConfig { policy: BatchPolicy::Fifo { batch: 4 }, ..ServeConfig::default() };
        let base = serve(
            &spec,
            &[ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128))],
            &trace,
            &base_cfg,
        )
        .unwrap();
        let preempt = serve(
            &spec,
            &[ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128))],
            &trace,
            &ServeConfig { preempt: true, ..base_cfg },
        )
        .unwrap();
        assert_eq!(preempt, base, "all-bulk preempt mode is the FIFO queue, byte for byte");
        assert_eq!(preempt.preemptions, 0);
    }

    #[test]
    fn deadline_class_preempts_the_open_bulk_kernel() {
        let (spec, dfa) = setup();
        // Machine 0: bulk, one big batch. Machine 1: deadline, one tiny
        // stream arriving while the bulk kernel is in flight.
        let mk = |class| ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128)).with_class(class);
        let mut arrivals: Vec<StreamArrival> = (0..8)
            .map(|_| StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(300) })
            .collect();
        arrivals.push(StreamArrival { arrival_cycle: 20_000, machine: 1, bytes: b"10".repeat(10) });
        let trace = Trace::from_arrivals(arrivals);
        let cfg = ServeConfig { policy: BatchPolicy::Fifo { batch: 8 }, ..ServeConfig::default() };
        let fifo =
            serve(&spec, &[mk(PriorityClass::Bulk), mk(PriorityClass::Deadline)], &trace, &cfg)
                .unwrap();
        let pre = serve(
            &spec,
            &[mk(PriorityClass::Bulk), mk(PriorityClass::Deadline)],
            &trace,
            &ServeConfig { preempt: true, ..cfg },
        )
        .unwrap();
        assert_eq!(pre.end_states, fifo.end_states, "preemption never changes answers");
        assert_eq!(pre.streams, fifo.streams);
        assert_eq!(pre.recovery.shed_streams, 0);
        if pre.preemptions > 0 {
            assert!(
                pre.latencies[8] < fifo.latencies[8],
                "the deadline stream must finish earlier: {} vs {}",
                pre.latencies[8],
                fifo.latencies[8]
            );
            assert!(pre.preempted_cycles > 0);
            // The displaced bulk batch pays exactly what the preemptor took.
            assert!(pre.latencies[0] >= fifo.latencies[0]);
        } else {
            panic!("the deadline stream arrived mid-kernel and must preempt");
        }
    }

    #[test]
    fn preempt_requires_overlap_and_residency_rejects_zero_capacity() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        let trace = burst_trace(2, 10);
        let cfg = ServeConfig { preempt: true, overlap: false, ..ServeConfig::default() };
        assert!(serve(&spec, std::slice::from_ref(&machine), &trace, &cfg).is_err());
        let cfg = ServeConfig {
            residency: Some(ResidencyConfig { capacity_bytes: 0 }),
            ..ServeConfig::default()
        };
        assert!(serve(&spec, &[machine], &trace, &cfg).is_err());
    }

    #[test]
    fn machine_changes_close_batches() {
        let (spec, dfa) = setup();
        let dfa2 = gspecpal_fsm::examples::mod_counter(5, &[0]);
        let m0 = ServeMachine::prepare(&spec, &dfa, &b"10".repeat(128));
        let m1 = ServeMachine::prepare(&spec, &dfa2, &b"10".repeat(128));
        let trace = Trace::from_arrivals(vec![
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(10) },
            StreamArrival { arrival_cycle: 0, machine: 1, bytes: b"10".repeat(10) },
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: b"10".repeat(10) },
        ]);
        let cfg = ServeConfig { policy: BatchPolicy::Fifo { batch: 8 }, ..ServeConfig::default() };
        let report = serve(&spec, &[m0, m1], &trace, &cfg).unwrap();
        assert_eq!(report.batches.len(), 3, "a batch runs one machine's table");
        assert_eq!(report.end_states[1], dfa2.run(&trace.arrivals()[1].bytes));
    }
}
