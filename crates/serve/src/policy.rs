//! Batching policies: when does the dispatcher close a batch?
//!
//! All three policies draw a batch from the *head* of the admission queue —
//! a contiguous run of streams for the same machine (a batch runs one
//! machine's table, so a machine change always closes it), capped by the
//! staging-buffer byte budget and the queue depth. They differ only in how
//! long they are willing to wait for more streams:
//!
//! * [`BatchPolicy::Fifo`] — close at a fixed stream count (or when the run
//!   ends). Simple, predictable, indifferent to latency.
//! * [`BatchPolicy::Deadline`] — like FIFO, but never keeps the oldest
//!   admitted stream waiting more than `max_wait` cycles: a partial batch
//!   ships when its deadline expires. Bounds queueing latency under trickle
//!   arrivals.
//! * [`BatchPolicy::Adaptive`] — occupancy-aware and work-conserving: the
//!   target size is however many one-thread-per-stream scans fill the
//!   device (block width × resident blocks × SMs, capped at `max_batch`),
//!   but if the device would go idle waiting for the next arrival the batch
//!   closes early. Chases device utilization without ever trading it for
//!   dead air.

/// Scheduling class of a machine's batches under preemptive serving
/// ([`crate::ServeConfig::preempt`]).
///
/// Classes are per *machine* because batches are: a batch runs one
/// machine's table, so a machine's class is its batches' class. Bulk is
/// the default and preserves historical behaviour exactly; a deadline
/// machine's batches may preempt an in-flight bulk kernel at its next
/// wave boundary instead of queueing behind it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PriorityClass {
    /// Throughput traffic: runs in dispatch order, preemptible at wave
    /// boundaries.
    #[default]
    Bulk,
    /// Latency-critical traffic: may preempt an in-flight bulk kernel at
    /// its next wave boundary. Never preempted itself.
    Deadline,
}

impl PriorityClass {
    /// Stable snake_case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Bulk => "bulk",
            PriorityClass::Deadline => "deadline",
        }
    }
}

/// When the dispatcher stops batching and ships what it has.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Fixed-size batches of up to `batch` streams.
    Fifo {
        /// Streams per batch.
        batch: usize,
    },
    /// Fixed-size batches with a queueing-latency cap: the batch closes at
    /// `batch` streams or when the oldest admitted stream has waited
    /// `max_wait` cycles, whichever comes first.
    Deadline {
        /// Streams per batch.
        batch: usize,
        /// Max cycles the oldest stream may wait for the batch to fill.
        max_wait: u64,
    },
    /// Occupancy-target batches that never let the device idle: aim for
    /// enough streams to fill every SM, but ship early when the next
    /// arrival is further out than the device's backlog.
    Adaptive {
        /// Hard cap on streams per batch (the occupancy target is clamped
        /// to this).
        max_batch: usize,
    },
}

impl BatchPolicy {
    /// Stable snake_case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BatchPolicy::Fifo { .. } => "fifo",
            BatchPolicy::Deadline { .. } => "deadline",
            BatchPolicy::Adaptive { .. } => "adaptive",
        }
    }

    /// The policy's hard cap on streams per batch.
    pub fn max_streams(&self) -> usize {
        match *self {
            BatchPolicy::Fifo { batch } => batch,
            BatchPolicy::Deadline { batch, .. } => batch,
            BatchPolicy::Adaptive { max_batch } => max_batch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_caps() {
        assert_eq!(BatchPolicy::Fifo { batch: 8 }.name(), "fifo");
        assert_eq!(BatchPolicy::Deadline { batch: 8, max_wait: 100 }.name(), "deadline");
        assert_eq!(BatchPolicy::Adaptive { max_batch: 64 }.name(), "adaptive");
        assert_eq!(BatchPolicy::Fifo { batch: 8 }.max_streams(), 8);
        assert_eq!(BatchPolicy::Deadline { batch: 3, max_wait: 1 }.max_streams(), 3);
        assert_eq!(BatchPolicy::Adaptive { max_batch: 64 }.max_streams(), 64);
    }
}
