//! Crash-consistent checkpoint / restore for the serving engine.
//!
//! A long-lived serve run is only as durable as its host process. This
//! module makes the engine's progress *recoverable*: at any quiescent
//! inter-batch boundary the engine's entire mutable state (see
//! [`EngineSnapshot`](crate::pipeline)) can be captured as an
//! [`EngineCheckpoint`], serialized to a versioned, checksummed,
//! byte-deterministic blob, and later rehydrated into a fresh engine that
//! continues the run — with the hard guarantee that
//!
//! > checkpoint at batch *B*, then [`serve_resume`] over the same trace,
//! > machines, configuration, and device, produces a [`ServeReport`]
//! > **bit-identical** to the uninterrupted run,
//!
//! for every batch policy, fault plan, report detail, controller /
//! residency / recovery configuration, and host thread count. The
//! guarantee is structural rather than aspirational: `serve` itself runs
//! the same resumable engine (`Engine::new` + step-to-dry + `finish`), so
//! a restore is not a parallel implementation that could drift — it is
//! the production engine handed its own state back.
//!
//! # Wire format
//!
//! Hand-rolled little-endian encoding, no external dependencies (the same
//! stance as the bench layer's JSON writer): a 4-byte magic `"GSCK"`, a
//! `u32` format version, a `u64` *setup fingerprint* (an FNV-1a fold over
//! the device spec, machine list, and serve configuration — resuming
//! under a different setup is refused with
//! [`ServeError::CheckpointMismatch`] instead of silently diverging), the
//! snapshot payload, and a trailing FNV-1a-64 checksum over everything
//! before it. Every length is bounded against the bytes actually present
//! before any allocation, every enum tag and boolean is range-checked,
//! and decoded state is semantically validated against the resuming
//! configuration — corruption of any kind surfaces as a structured
//! [`ServeError::CorruptCheckpoint`], never a panic and never an
//! out-of-memory.
//!
//! # Crash simulation and failover
//!
//! [`serve_until_crash`] drives a run while taking periodic checkpoints
//! and stops the moment the device timeline schedules work past a crash
//! cycle — modeling a device that dies mid-trace. The surviving artifact
//! is the latest checkpoint: [`finalize_checkpoint`] splits it into the
//! durable [`ServeReport`] of everything dispatched before the crash plus
//! the *orphan* arrivals (pulled but not yet dispatched) that a failover
//! peer must replay. The cluster layer builds its device-outage failover
//! on exactly this pair (see `gspecpal-cluster`).

use gspecpal::{SchemeKind, StitchPolicy};
use gspecpal_gpu::{DeviceSpec, KernelStats, LaunchShape, Phase, Span};

use crate::controller::{BatchObservation, DecisionRecord, LaunchChoice};
use crate::error::ServeError;
use crate::pipeline::{Engine, EngineSnapshot, ServeConfig, ServeMachine};
use crate::report::{
    BatchRecord, ExecMode, LatencySummary, RecoveryReport, ResidencyReport, ServeReport,
    StreamOutcome,
};
use crate::sketch::LatencySketch;
use crate::source::{IterSource, TraceSource};
use crate::trace::StreamArrival;

/// File magic of an encoded checkpoint.
const MAGIC: [u8; 4] = *b"GSCK";

/// Wire-format version this build writes and the only one it reads.
const VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Byte writer / bounds-checked reader
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor over untrusted bytes: every read is bounds-checked and every
/// failure carries the byte offset it happened at.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn corrupt(&self, what: &'static str) -> ServeError {
        ServeError::CorruptCheckpoint { offset: self.pos, what }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.corrupt(what))?;
        let slice = self.bytes.get(self.pos..end).ok_or_else(|| self.corrupt(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ServeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ServeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ServeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn usize(&mut self, what: &'static str) -> Result<usize, ServeError> {
        usize::try_from(self.u64(what)?).map_err(|_| self.corrupt(what))
    }

    fn i64(&mut self, what: &'static str) -> Result<i64, ServeError> {
        Ok(self.u64(what)? as i64)
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, ServeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(self.corrupt(what)),
        }
    }

    /// Reads a collection length and bounds it against the bytes actually
    /// remaining (`min_item_bytes` per element), so a corrupted length can
    /// never trigger a huge allocation.
    fn len(&mut self, min_item_bytes: usize, what: &'static str) -> Result<usize, ServeError> {
        let n = self.usize(what)?;
        let remaining = self.bytes.len() - self.pos;
        if n.checked_mul(min_item_bytes.max(1)).is_none_or(|need| need > remaining) {
            return Err(self.corrupt(what));
        }
        Ok(n)
    }

    fn u64_vec(&mut self, what: &'static str) -> Result<Vec<u64>, ServeError> {
        let n = self.len(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64(what)?);
        }
        Ok(v)
    }
}

fn write_u64s(w: &mut Writer, v: &[u64]) {
    w.usize(v.len());
    for &x in v {
        w.u64(x);
    }
}

// ---------------------------------------------------------------------------
// Enum tags (declaration order of the source enums)
// ---------------------------------------------------------------------------

fn scheme_tag(s: SchemeKind) -> u8 {
    match s {
        SchemeKind::Sequential => 0,
        SchemeKind::Naive => 1,
        SchemeKind::Enumerative => 2,
        SchemeKind::Pm => 3,
        SchemeKind::Sre => 4,
        SchemeKind::Rr => 5,
        SchemeKind::Nf => 6,
        SchemeKind::Sfa => 7,
    }
}

fn scheme_from(tag: u8) -> Option<SchemeKind> {
    Some(match tag {
        0 => SchemeKind::Sequential,
        1 => SchemeKind::Naive,
        2 => SchemeKind::Enumerative,
        3 => SchemeKind::Pm,
        4 => SchemeKind::Sre,
        5 => SchemeKind::Rr,
        6 => SchemeKind::Nf,
        7 => SchemeKind::Sfa,
        _ => return None,
    })
}

fn stitch_tag(s: StitchPolicy) -> u8 {
    match s {
        StitchPolicy::Sequential => 0,
        StitchPolicy::Tree => 1,
    }
}

fn stitch_from(tag: u8) -> Option<StitchPolicy> {
    Some(match tag {
        0 => StitchPolicy::Sequential,
        1 => StitchPolicy::Tree,
        _ => return None,
    })
}

fn mode_tag(m: ExecMode) -> u8 {
    match m {
        ExecMode::StreamParallel => 0,
        ExecMode::ChunkParallel => 1,
    }
}

fn mode_from(tag: u8) -> Option<ExecMode> {
    Some(match tag {
        0 => ExecMode::StreamParallel,
        1 => ExecMode::ChunkParallel,
        _ => return None,
    })
}

fn outcome_tag(o: StreamOutcome) -> u8 {
    match o {
        StreamOutcome::Served => 0,
        StreamOutcome::ShedDeadline => 1,
        StreamOutcome::ShedCopyFailure => 2,
        StreamOutcome::ShedBreakerOpen => 3,
    }
}

fn outcome_from(tag: u8) -> Option<StreamOutcome> {
    Some(match tag {
        0 => StreamOutcome::Served,
        1 => StreamOutcome::ShedDeadline,
        2 => StreamOutcome::ShedCopyFailure,
        3 => StreamOutcome::ShedBreakerOpen,
        _ => return None,
    })
}

/// The report's policy field is a `&'static str` drawn from
/// [`crate::BatchPolicy::name`]; it round-trips as a tag (3 = the default
/// report's empty string).
fn policy_tag(name: &str) -> u8 {
    match name {
        "fifo" => 0,
        "deadline" => 1,
        "adaptive" => 2,
        _ => 3,
    }
}

fn policy_from(tag: u8) -> Option<&'static str> {
    Some(match tag {
        0 => "fifo",
        1 => "deadline",
        2 => "adaptive",
        3 => "",
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Component codecs
// ---------------------------------------------------------------------------

fn write_span(w: &mut Writer, s: Span) {
    w.u64(s.start);
    w.u64(s.end);
}

fn read_span(r: &mut Reader<'_>, what: &'static str) -> Result<Span, ServeError> {
    let start = r.u64(what)?;
    let end = r.u64(what)?;
    if end < start {
        return Err(r.corrupt(what));
    }
    Ok(Span { start, end })
}

fn write_summary(w: &mut Writer, s: &LatencySummary) {
    w.u64(s.p50);
    w.u64(s.p95);
    w.u64(s.p99);
    w.u64(s.max);
}

fn read_summary(r: &mut Reader<'_>) -> Result<LatencySummary, ServeError> {
    Ok(LatencySummary {
        p50: r.u64("latency summary")?,
        p95: r.u64("latency summary")?,
        p99: r.u64("latency summary")?,
        max: r.u64("latency summary")?,
    })
}

/// Sketches encode sparsely: the (index, count) pairs of nonzero buckets,
/// in index order, plus the exact total/min/max. A million-stream sketch
/// has a handful of hot octaves, so this is far smaller than the dense
/// 114 KiB counter array.
fn write_sketch(w: &mut Writer, s: &LatencySketch) {
    let (counts, total, min, max) = s.raw_parts();
    let nonzero = counts.iter().filter(|&&c| c != 0).count();
    w.usize(nonzero);
    for (i, &c) in counts.iter().enumerate() {
        if c != 0 {
            w.usize(i);
            w.u64(c);
        }
    }
    w.u64(total);
    w.u64(min);
    w.u64(max);
}

fn read_sketch(r: &mut Reader<'_>) -> Result<LatencySketch, ServeError> {
    let n = r.len(16, "latency sketch buckets")?;
    let mut counts = vec![0u64; LatencySketch::BUCKETS];
    let mut prev: Option<usize> = None;
    for _ in 0..n {
        let i = r.usize("latency sketch bucket index")?;
        if i >= LatencySketch::BUCKETS || prev.is_some_and(|p| i <= p) {
            return Err(r.corrupt("latency sketch bucket index"));
        }
        let c = r.u64("latency sketch bucket count")?;
        if c == 0 {
            return Err(r.corrupt("latency sketch bucket count"));
        }
        counts[i] = c;
        prev = Some(i);
    }
    let total = r.u64("latency sketch total")?;
    let min = r.u64("latency sketch min")?;
    let max = r.u64("latency sketch max")?;
    LatencySketch::from_raw_parts(counts, total, min, max)
        .ok_or_else(|| r.corrupt("latency sketch counters do not sum to the total"))
}

fn write_stats(w: &mut Writer, s: &KernelStats) {
    w.u64(s.cycles);
    w.u64(s.rounds);
    w.u64(s.global_transactions);
    w.u64(s.global_coalesced_hits);
    w.u64(s.shared_accesses);
    w.u64(s.alu_ops);
    w.u64(s.shuffles);
    w.u64(s.atomics);
    w.usize(s.active_per_round.len());
    for &v in &s.active_per_round {
        w.u32(v);
    }
    w.usize(s.recovering_per_round.len());
    for &v in &s.recovering_per_round {
        w.u32(v);
    }
    write_u64s(w, &s.round_durations);
    w.u64(s.recovery_cycles);
    w.u64(s.recovery_runs);
    w.u64(s.fault_retries);
    w.u64(s.fault_watchdog_kills);
    w.u64(s.fault_degraded_blocks);
    w.u64(s.fault_cycles);
    match s.shape {
        None => w.u8(0),
        Some(sh) => {
            w.u8(1);
            w.u32(sh.resident_per_sm);
            w.u32(sh.blocks_per_wave);
            w.u32(sh.waves);
        }
    }
    for (_, pc) in s.profile.iter() {
        w.u64(pc.cycles);
        w.u64(pc.rounds);
        w.u64(pc.global_transactions);
        w.u64(pc.global_coalesced_hits);
        w.u64(pc.shared_accesses);
        w.u64(pc.alu_ops);
        w.u64(pc.shuffles);
        w.u64(pc.atomics);
        w.u64(pc.divergent_rounds);
        w.u64(pc.active_thread_rounds);
        w.u64(pc.thread_rounds);
    }
}

fn read_u32_vec(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<u32>, ServeError> {
    let n = r.len(4, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.u32(what)?);
    }
    Ok(v)
}

fn read_stats(r: &mut Reader<'_>) -> Result<KernelStats, ServeError> {
    let mut s = KernelStats {
        cycles: r.u64("stats cycles")?,
        rounds: r.u64("stats rounds")?,
        global_transactions: r.u64("stats counters")?,
        global_coalesced_hits: r.u64("stats counters")?,
        shared_accesses: r.u64("stats counters")?,
        alu_ops: r.u64("stats counters")?,
        shuffles: r.u64("stats counters")?,
        atomics: r.u64("stats counters")?,
        ..KernelStats::default()
    };
    s.active_per_round = read_u32_vec(r, "stats per-round actives")?;
    s.recovering_per_round = read_u32_vec(r, "stats per-round recoveries")?;
    s.round_durations = r.u64_vec("stats round durations")?;
    s.recovery_cycles = r.u64("stats recovery counters")?;
    s.recovery_runs = r.u64("stats recovery counters")?;
    s.fault_retries = r.u64("stats fault counters")?;
    s.fault_watchdog_kills = r.u64("stats fault counters")?;
    s.fault_degraded_blocks = r.u64("stats fault counters")?;
    s.fault_cycles = r.u64("stats fault counters")?;
    s.shape = match r.u8("stats launch shape")? {
        0 => None,
        1 => Some(LaunchShape {
            resident_per_sm: r.u32("stats launch shape")?,
            blocks_per_wave: r.u32("stats launch shape")?,
            waves: r.u32("stats launch shape")?,
        }),
        _ => return Err(r.corrupt("stats launch shape")),
    };
    for phase in Phase::ALL {
        let pc = s.profile.get_mut(phase);
        pc.cycles = r.u64("stats phase profile")?;
        pc.rounds = r.u64("stats phase profile")?;
        pc.global_transactions = r.u64("stats phase profile")?;
        pc.global_coalesced_hits = r.u64("stats phase profile")?;
        pc.shared_accesses = r.u64("stats phase profile")?;
        pc.alu_ops = r.u64("stats phase profile")?;
        pc.shuffles = r.u64("stats phase profile")?;
        pc.atomics = r.u64("stats phase profile")?;
        pc.divergent_rounds = r.u64("stats phase profile")?;
        pc.active_thread_rounds = r.u64("stats phase profile")?;
        pc.thread_rounds = r.u64("stats phase profile")?;
    }
    Ok(s)
}

fn write_choice(w: &mut Writer, c: &LaunchChoice) {
    w.u8(scheme_tag(c.scheme));
    w.usize(c.spec_k);
    w.u8(stitch_tag(c.stitch));
    w.u64(c.predicted_millicost);
}

fn read_choice(r: &mut Reader<'_>) -> Result<LaunchChoice, ServeError> {
    let scheme = scheme_from(r.u8("launch choice scheme")?)
        .ok_or_else(|| r.corrupt("launch choice scheme"))?;
    let spec_k = r.usize("launch choice spec_k")?;
    let stitch = stitch_from(r.u8("launch choice stitch")?)
        .ok_or_else(|| r.corrupt("launch choice stitch"))?;
    let predicted_millicost = r.u64("launch choice prediction")?;
    Ok(LaunchChoice { scheme, spec_k, stitch, predicted_millicost })
}

fn write_report(w: &mut Writer, rep: &ServeReport) {
    w.u8(policy_tag(rep.policy));
    w.bool(rep.overlap);
    w.usize(rep.streams);
    w.usize(rep.total_bytes);
    w.usize(rep.batches.len());
    for b in &rep.batches {
        w.usize(b.first_stream);
        w.usize(b.streams);
        w.usize(b.machine);
        w.u8(scheme_tag(b.scheme));
        w.u8(mode_tag(b.mode));
        w.usize(b.bytes);
        write_span(w, b.h2d);
        write_span(w, b.compute);
        write_span(w, b.d2h);
    }
    w.u64(rep.makespan_cycles);
    write_u64s(w, &rep.latencies);
    write_summary(w, &rep.delivery);
    write_summary(w, &rep.kernel_latency);
    w.usize(rep.end_states.len());
    for &s in &rep.end_states {
        w.u32(s);
    }
    w.usize(rep.accepted.len());
    for &a in &rep.accepted {
        w.bool(a);
    }
    write_stats(w, &rep.stats);
    w.usize(rep.queue_depth.len());
    for &(c, d) in &rep.queue_depth {
        w.u64(c);
        w.usize(d);
    }
    w.u64(rep.backpressure_events);
    w.u64(rep.backpressure_wait_cycles);
    w.u64(rep.overlap_efficiency_permille);
    w.usize(rep.outcomes.len());
    for &o in &rep.outcomes {
        w.u8(outcome_tag(o));
    }
    w.u64(rep.recovery.block_retries);
    w.u64(rep.recovery.watchdog_kills);
    w.u64(rep.recovery.degraded_blocks);
    w.u64(rep.recovery.copy_retries);
    w.u64(rep.recovery.failed_batches);
    w.u64(rep.recovery.shed_streams);
    w.u64(rep.recovery.breaker_trips);
    w.u64(rep.recovery.fault_cycles);
    w.u64(rep.batches_dispatched);
    w.usize(rep.peak_queue);
    w.u64(rep.latency_error_permille);
    w.usize(rep.decisions.len());
    for d in &rep.decisions {
        w.usize(d.batch);
        w.usize(d.machine);
        w.usize(d.arm);
        write_choice(w, &d.choice);
        w.bool(d.explore);
        w.u64(d.observation.bytes);
        w.u64(d.observation.compute_cycles);
        w.u64(d.observation.verify_cycles);
        w.u64(d.observation.recovery_cycles);
        w.u64(d.observation.stitch_cycles);
        w.u64(d.observation.verification_checks);
        w.u64(d.observation.verification_matches);
        w.bool(d.observation.chunk_parallel);
    }
    w.u64(rep.decisions_made);
    w.u64(rep.explore_decisions);
    w.u64(rep.residency.hits);
    w.u64(rep.residency.misses);
    w.u64(rep.residency.evictions);
    w.u64(rep.residency.copied_bytes);
    w.u64(rep.preemptions);
    w.u64(rep.preempted_cycles);
}

fn read_report(r: &mut Reader<'_>) -> Result<ServeReport, ServeError> {
    let policy = policy_from(r.u8("report policy")?).ok_or_else(|| r.corrupt("report policy"))?;
    let overlap = r.bool("report overlap flag")?;
    let streams = r.usize("report stream count")?;
    let total_bytes = r.usize("report byte count")?;
    let n_batches = r.len(66, "report batch records")?;
    let mut batches = Vec::with_capacity(n_batches);
    for _ in 0..n_batches {
        batches.push(BatchRecord {
            first_stream: r.usize("batch record")?,
            streams: r.usize("batch record")?,
            machine: r.usize("batch record")?,
            scheme: scheme_from(r.u8("batch record scheme")?)
                .ok_or_else(|| r.corrupt("batch record scheme"))?,
            mode: mode_from(r.u8("batch record mode")?)
                .ok_or_else(|| r.corrupt("batch record mode"))?,
            bytes: r.usize("batch record")?,
            h2d: read_span(r, "batch record h2d span")?,
            compute: read_span(r, "batch record compute span")?,
            d2h: read_span(r, "batch record d2h span")?,
        });
    }
    let makespan_cycles = r.u64("report makespan")?;
    let latencies = r.u64_vec("report latencies")?;
    let delivery = read_summary(r)?;
    let kernel_latency = read_summary(r)?;
    let n_states = r.len(4, "report end states")?;
    let mut end_states = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        end_states.push(r.u32("report end states")?);
    }
    let n_accepted = r.len(1, "report accept flags")?;
    let mut accepted = Vec::with_capacity(n_accepted);
    for _ in 0..n_accepted {
        accepted.push(r.bool("report accept flags")?);
    }
    let stats = read_stats(r)?;
    let n_depth = r.len(16, "report queue-depth samples")?;
    let mut queue_depth = Vec::with_capacity(n_depth);
    for _ in 0..n_depth {
        let c = r.u64("report queue-depth samples")?;
        let d = r.usize("report queue-depth samples")?;
        queue_depth.push((c, d));
    }
    let backpressure_events = r.u64("report backpressure")?;
    let backpressure_wait_cycles = r.u64("report backpressure")?;
    let overlap_efficiency_permille = r.u64("report overlap efficiency")?;
    let n_outcomes = r.len(1, "report outcomes")?;
    let mut outcomes = Vec::with_capacity(n_outcomes);
    for _ in 0..n_outcomes {
        outcomes.push(
            outcome_from(r.u8("report outcomes")?).ok_or_else(|| r.corrupt("report outcomes"))?,
        );
    }
    let recovery = RecoveryReport {
        block_retries: r.u64("report recovery counters")?,
        watchdog_kills: r.u64("report recovery counters")?,
        degraded_blocks: r.u64("report recovery counters")?,
        copy_retries: r.u64("report recovery counters")?,
        failed_batches: r.u64("report recovery counters")?,
        shed_streams: r.u64("report recovery counters")?,
        breaker_trips: r.u64("report recovery counters")?,
        fault_cycles: r.u64("report recovery counters")?,
    };
    let batches_dispatched = r.u64("report batch counter")?;
    let peak_queue = r.usize("report peak queue")?;
    let latency_error_permille = r.u64("report latency error")?;
    let n_decisions = r.len(92, "report decision log")?;
    let mut decisions = Vec::with_capacity(n_decisions);
    for _ in 0..n_decisions {
        decisions.push(DecisionRecord {
            batch: r.usize("decision record")?,
            machine: r.usize("decision record")?,
            arm: r.usize("decision record")?,
            choice: read_choice(r)?,
            explore: r.bool("decision record")?,
            observation: BatchObservation {
                bytes: r.u64("decision observation")?,
                compute_cycles: r.u64("decision observation")?,
                verify_cycles: r.u64("decision observation")?,
                recovery_cycles: r.u64("decision observation")?,
                stitch_cycles: r.u64("decision observation")?,
                verification_checks: r.u64("decision observation")?,
                verification_matches: r.u64("decision observation")?,
                chunk_parallel: r.bool("decision observation")?,
            },
        });
    }
    let decisions_made = r.u64("report decision counters")?;
    let explore_decisions = r.u64("report decision counters")?;
    let residency = ResidencyReport {
        hits: r.u64("report residency counters")?,
        misses: r.u64("report residency counters")?,
        evictions: r.u64("report residency counters")?,
        copied_bytes: r.u64("report residency counters")?,
    };
    let preemptions = r.u64("report preemption counters")?;
    let preempted_cycles = r.u64("report preemption counters")?;
    Ok(ServeReport {
        policy,
        overlap,
        streams,
        total_bytes,
        batches,
        makespan_cycles,
        latencies,
        delivery,
        kernel_latency,
        end_states,
        accepted,
        stats,
        queue_depth,
        backpressure_events,
        backpressure_wait_cycles,
        overlap_efficiency_permille,
        outcomes,
        recovery,
        batches_dispatched,
        peak_queue,
        latency_error_permille,
        decisions,
        decisions_made,
        explore_decisions,
        residency,
        preemptions,
        preempted_cycles,
    })
}

fn write_snapshot(w: &mut Writer, s: &EngineSnapshot) {
    w.usize(s.pulled);
    w.u64(s.last_cycle);
    w.usize(s.next);
    w.usize(s.batch_idx);
    w.u32(s.breaker_consecutive);
    w.u64(s.buffer_free[0]);
    w.u64(s.buffer_free[1]);
    w.u64(s.cq_free);
    w.u64(s.cq_horizon);
    for f in s.frontiers {
        w.u64(f);
    }
    w.usize(s.window.len());
    for a in &s.window {
        w.u64(a.arrival_cycle);
        w.usize(a.machine);
        w.usize(a.bytes.len());
        w.raw(&a.bytes);
    }
    w.usize(s.ring_released);
    write_u64s(w, &s.ring_recent);
    w.usize(s.depth_pending.len());
    for &(c, k) in &s.depth_pending {
        w.u64(c);
        w.u8(k as u8);
    }
    w.i64(s.depth_depth);
    match s.depth_group {
        None => w.u8(0),
        Some(c) => {
            w.u8(1);
            w.u64(c);
        }
    }
    w.usize(s.depth_samples.len());
    for &(c, d) in &s.depth_samples {
        w.u64(c);
        w.usize(d);
    }
    w.usize(s.depth_peak);
    w.bool(s.depth_zero_pairs);
    w.usize(s.meter_computes.len());
    for &sp in &s.meter_computes {
        write_span(w, sp);
    }
    w.usize(s.meter_pending_copies.len());
    for &sp in &s.meter_pending_copies {
        write_span(w, sp);
    }
    w.u64(s.meter_copy_busy);
    w.u64(s.meter_hidden);
    match &s.residency_order {
        None => w.u8(0),
        Some(order) => {
            w.u8(1);
            w.usize(order.len());
            for &m in order {
                w.usize(m);
            }
        }
    }
    match &s.controller {
        None => w.u8(0),
        Some(machines) => {
            w.u8(1);
            w.usize(machines.len());
            for (decided, arms) in machines {
                w.u64(*decided);
                w.usize(arms.len());
                for (window, observations) in arms {
                    write_u64s(w, window);
                    w.u64(*observations);
                }
            }
        }
    }
    write_report(w, &s.report);
    write_u64s(w, &s.delivery_exact);
    match &s.delivery_sketch {
        None => w.u8(0),
        Some(sk) => {
            w.u8(1);
            write_sketch(w, sk);
        }
    }
    write_u64s(w, &s.kernel_exact);
    match &s.kernel_sketch {
        None => w.u8(0),
        Some(sk) => {
            w.u8(1);
            write_sketch(w, sk);
        }
    }
}

fn read_snapshot(r: &mut Reader<'_>) -> Result<EngineSnapshot, ServeError> {
    let pulled = r.usize("pull cursor")?;
    let last_cycle = r.u64("source cycle cursor")?;
    let next = r.usize("admission cursor")?;
    let batch_idx = r.usize("batch cursor")?;
    let breaker_consecutive = r.u32("breaker counter")?;
    let buffer_free = [r.u64("buffer cursors")?, r.u64("buffer cursors")?];
    let cq_free = r.u64("compute cursor")?;
    let cq_horizon = r.u64("compute cursor")?;
    let frontiers =
        [r.u64("queue frontiers")?, r.u64("queue frontiers")?, r.u64("queue frontiers")?];
    let n_window = r.len(24, "admission window")?;
    let mut window = Vec::with_capacity(n_window);
    let mut prev_arrival = 0u64;
    for _ in 0..n_window {
        let arrival_cycle = r.u64("window arrival")?;
        if arrival_cycle < prev_arrival {
            return Err(r.corrupt("window arrivals out of order"));
        }
        prev_arrival = arrival_cycle;
        let machine = r.usize("window arrival")?;
        let n_bytes = r.len(1, "window arrival payload")?;
        if n_bytes == 0 {
            return Err(r.corrupt("window arrival carries an empty stream"));
        }
        let bytes = r.take(n_bytes, "window arrival payload")?.to_vec();
        window.push(StreamArrival { arrival_cycle, machine, bytes });
    }
    let ring_released = r.usize("release ring")?;
    let ring_recent = r.u64_vec("release ring")?;
    let n_pending = r.len(9, "depth tracker events")?;
    let mut depth_pending = Vec::with_capacity(n_pending);
    let mut prev: Option<(u64, i8)> = None;
    for _ in 0..n_pending {
        let c = r.u64("depth tracker events")?;
        let k = r.u8("depth tracker events")? as i8;
        if k != 1 && k != -1 {
            return Err(r.corrupt("depth tracker event kind"));
        }
        if prev.is_some_and(|p| (c, k) < p) {
            return Err(r.corrupt("depth tracker events out of order"));
        }
        prev = Some((c, k));
        depth_pending.push((c, k));
    }
    let depth_depth = r.i64("depth tracker depth")?;
    let depth_group = match r.u8("depth tracker group")? {
        0 => None,
        1 => Some(r.u64("depth tracker group")?),
        _ => return Err(r.corrupt("depth tracker group")),
    };
    let n_samples = r.len(16, "depth samples")?;
    let mut depth_samples = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let c = r.u64("depth samples")?;
        let d = r.usize("depth samples")?;
        depth_samples.push((c, d));
    }
    let depth_peak = r.usize("depth peak")?;
    let depth_zero_pairs = r.bool("depth zero-pair flag")?;
    let n_computes = r.len(16, "overlap meter computes")?;
    let mut meter_computes = Vec::with_capacity(n_computes);
    for _ in 0..n_computes {
        meter_computes.push(read_span(r, "overlap meter computes")?);
    }
    let n_copies = r.len(16, "overlap meter copies")?;
    let mut meter_pending_copies = Vec::with_capacity(n_copies);
    for _ in 0..n_copies {
        meter_pending_copies.push(read_span(r, "overlap meter copies")?);
    }
    let meter_copy_busy = r.u64("overlap meter counters")?;
    let meter_hidden = r.u64("overlap meter counters")?;
    let residency_order = match r.u8("residency order")? {
        0 => None,
        1 => {
            let n = r.len(8, "residency order")?;
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                order.push(r.usize("residency order")?);
            }
            Some(order)
        }
        _ => return Err(r.corrupt("residency order")),
    };
    let controller = match r.u8("controller state")? {
        0 => None,
        1 => {
            let n_machines = r.len(16, "controller state")?;
            let mut machines = Vec::with_capacity(n_machines);
            for _ in 0..n_machines {
                let decided = r.u64("controller state")?;
                let n_arms = r.len(16, "controller arms")?;
                let mut arms = Vec::with_capacity(n_arms);
                for _ in 0..n_arms {
                    let window = r.u64_vec("controller arm window")?;
                    let observations = r.u64("controller arm observations")?;
                    arms.push((window, observations));
                }
                machines.push((decided, arms));
            }
            Some(machines)
        }
        _ => return Err(r.corrupt("controller state")),
    };
    let report = read_report(r)?;
    let delivery_exact = r.u64_vec("delivery latencies")?;
    let delivery_sketch = match r.u8("delivery sketch")? {
        0 => None,
        1 => Some(read_sketch(r)?),
        _ => return Err(r.corrupt("delivery sketch")),
    };
    let kernel_exact = r.u64_vec("kernel latencies")?;
    let kernel_sketch = match r.u8("kernel sketch")? {
        0 => None,
        1 => Some(read_sketch(r)?),
        _ => return Err(r.corrupt("kernel sketch")),
    };
    Ok(EngineSnapshot {
        pulled,
        last_cycle,
        next,
        batch_idx,
        breaker_consecutive,
        buffer_free,
        cq_free,
        cq_horizon,
        frontiers,
        window,
        ring_released,
        ring_recent,
        depth_pending,
        depth_depth,
        depth_group,
        depth_samples,
        depth_peak,
        depth_zero_pairs,
        meter_computes,
        meter_pending_copies,
        meter_copy_busy,
        meter_hidden,
        residency_order,
        controller,
        report,
        delivery_exact,
        delivery_sketch,
        kernel_exact,
        kernel_sketch,
    })
}

// ---------------------------------------------------------------------------
// Setup fingerprint
// ---------------------------------------------------------------------------

/// FNV-1a fold over everything the bit-identity guarantee is conditional
/// on: the device spec's cost model, every machine's scheme / table
/// footprint / priority class / controller arms, and the full serve
/// configuration. Two setups with equal fingerprints run the engine
/// through identical state transitions, so a checkpoint from one resumes
/// under the other byte-for-byte; unequal fingerprints are refused with
/// [`ServeError::CheckpointMismatch`].
pub(crate) fn run_fingerprint(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    cfg: &ServeConfig,
) -> u64 {
    let mut w = Writer::default();
    // Device cost model (the name and the cycles→wall clock factor never
    // influence engine arithmetic).
    w.u32(spec.n_sms);
    w.u32(spec.cores_per_sm);
    w.usize(spec.shared_mem_bytes);
    w.u32(spec.warp_size);
    w.u32(spec.max_threads_per_block);
    w.u32(spec.max_threads_per_sm);
    w.u32(spec.registers_per_sm);
    w.u32(spec.max_blocks_per_sm);
    w.u64(spec.shared_latency);
    w.u64(spec.global_latency);
    w.u64(spec.global_segment_bytes);
    w.u64(spec.alu_latency);
    w.u64(spec.shuffle_latency);
    w.u64(spec.barrier_latency);
    w.u64(spec.atomic_latency);
    w.u64(spec.hash_probe_latency);
    w.u64(spec.bandwidth_millicycles_per_txn);
    w.u64(spec.copy_latency_cycles);
    w.u64(spec.copy_millicycles_per_byte);
    w.u32(spec.copy_engines);
    // Machines: everything the engine reads from them.
    w.usize(machines.len());
    for m in machines {
        w.u8(scheme_tag(m.scheme()));
        w.usize(m.table_footprint_bytes());
        w.u8(match m.class() {
            crate::policy::PriorityClass::Bulk => 0,
            crate::policy::PriorityClass::Deadline => 1,
        });
        w.u64(m.chunk_work_factor());
        w.usize(m.arms().len());
        for c in m.arms() {
            write_choice(&mut w, c);
        }
    }
    // Serve configuration.
    match cfg.policy {
        crate::policy::BatchPolicy::Fifo { batch } => {
            w.u8(0);
            w.usize(batch);
        }
        crate::policy::BatchPolicy::Deadline { batch, max_wait } => {
            w.u8(1);
            w.usize(batch);
            w.u64(max_wait);
        }
        crate::policy::BatchPolicy::Adaptive { max_batch } => {
            w.u8(2);
            w.usize(max_batch);
        }
    }
    w.bool(cfg.overlap);
    w.usize(cfg.device_mem_bytes);
    w.usize(cfg.max_queue_depth);
    w.usize(cfg.d2h_bytes_per_stream);
    w.u64(cfg.chunk_overhead_cycles);
    let sc = &cfg.scheme_config;
    w.usize(sc.n_chunks);
    w.usize(sc.spec_k);
    w.usize(sc.vr_others_registers);
    w.usize(sc.vr_end_registers);
    w.usize(sc.lookback);
    w.bool(sc.count_matches);
    w.u32(sc.spec_recovery_budget);
    w.u8(stitch_tag(sc.stitch));
    match sc.faults {
        None => w.u8(0),
        Some(p) => {
            w.u8(1);
            w.u64(p.seed);
            w.u32(p.abort_permille);
            w.u32(p.copy_fail_permille);
            w.u32(p.corrupt_permille);
            w.u64(p.watchdog_cycles);
        }
    }
    w.u32(sc.recovery.max_retries);
    w.u64(sc.recovery.backoff_base_cycles);
    w.u64(sc.recovery.backoff_cap_cycles);
    w.u32(sc.recovery.misspec_degrade_permille);
    w.u32(cfg.recovery.copy_max_retries);
    w.u64(cfg.recovery.copy_backoff_base_cycles);
    w.u64(cfg.recovery.copy_backoff_cap_cycles);
    w.u64(cfg.recovery.shed_wait_cycles);
    w.u32(cfg.recovery.breaker_failure_threshold);
    w.u8(match cfg.detail {
        crate::pipeline::ReportDetail::Full => 0,
        crate::pipeline::ReportDetail::Bounded => 1,
    });
    match &cfg.controller {
        None => w.u8(0),
        Some(cc) => {
            w.u8(1);
            w.usize(cc.window);
            w.u64(cc.explore_period);
            w.u64(cc.explore_cutoff_permille);
            w.usize(cc.max_decisions);
        }
    }
    match cfg.residency {
        None => w.u8(0),
        Some(rc) => {
            w.u8(1);
            w.usize(rc.capacity_bytes);
        }
    }
    w.bool(cfg.preempt);
    fnv1a(&w.buf)
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// A serialized-or-serializable snapshot of a serve run at a quiescent
/// inter-batch boundary, bound to the setup it was taken under by a
/// fingerprint.
///
/// Opaque by design: the only ways to obtain one are [`serve_checkpoint`] /
/// [`serve_until_crash`] (from a live engine) and
/// [`EngineCheckpoint::decode`] (from previously encoded bytes), and the
/// only ways to consume one are [`serve_resume`], [`finalize_checkpoint`],
/// and [`EngineCheckpoint::encode`]. Encoding is byte-deterministic: equal
/// checkpoints encode to equal bytes on every host.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineCheckpoint {
    pub(crate) fingerprint: u64,
    pub(crate) snapshot: EngineSnapshot,
}

impl EngineCheckpoint {
    /// The setup fingerprint the checkpoint is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Streams pulled from the source when the checkpoint was taken — the
    /// number of arrivals [`serve_resume`] skips before handing the source
    /// to the restored engine.
    pub fn streams_pulled(&self) -> usize {
        self.snapshot.pulled
    }

    /// Batches the run had formed (including abandoned ones) when the
    /// checkpoint was taken.
    pub fn batches_formed(&self) -> usize {
        self.snapshot.batch_idx
    }

    /// Arrivals sitting in the admission window at the boundary: pulled
    /// from the source but not yet dispatched. On failover these are the
    /// checkpoint's share of the orphans a peer must replay (see
    /// [`finalize_checkpoint`]).
    pub fn window_len(&self) -> usize {
        self.snapshot.window.len()
    }

    /// Serializes the checkpoint: magic, version, fingerprint, snapshot
    /// payload, FNV-1a-64 checksum. Byte-deterministic.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.raw(&MAGIC);
        w.u32(VERSION);
        w.u64(self.fingerprint);
        write_snapshot(&mut w, &self.snapshot);
        let checksum = fnv1a(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Deserializes a checkpoint, verifying the checksum before touching
    /// the payload. Truncation, bit flips, bad magic, unknown versions,
    /// out-of-range tags, and structurally impossible state are all
    /// structured [`ServeError::CorruptCheckpoint`] rejections — this
    /// function never panics and never allocates more than the input's
    /// own length implies.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        const HEADER: usize = 4 + 4 + 8;
        if bytes.len() < HEADER + 8 {
            return Err(ServeError::CorruptCheckpoint {
                offset: bytes.len(),
                what: "truncated checkpoint",
            });
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(body) != stored {
            return Err(ServeError::CorruptCheckpoint {
                offset: body.len(),
                what: "checksum mismatch",
            });
        }
        let mut r = Reader::new(body);
        if r.take(4, "magic")? != MAGIC {
            return Err(ServeError::CorruptCheckpoint { offset: 0, what: "bad magic" });
        }
        let version = r.u32("version")?;
        if version != VERSION {
            return Err(ServeError::CorruptCheckpoint {
                offset: 4,
                what: "unsupported checkpoint version",
            });
        }
        let fingerprint = r.u64("fingerprint")?;
        let snapshot = read_snapshot(&mut r)?;
        if r.pos != body.len() {
            return Err(r.corrupt("trailing bytes after the snapshot"));
        }
        Ok(EngineCheckpoint { fingerprint, snapshot })
    }
}

/// What [`serve_checkpoint`] produced: either the run finished before the
/// requested boundary, or a checkpoint was taken there.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckpointOutcome {
    /// The source ran dry (or the breaker drained the trace) before the
    /// requested batch boundary was reached — the completed report is the
    /// whole answer and there is nothing to resume.
    Completed(Box<ServeReport>),
    /// The run was suspended at the first quiescent boundary at or after
    /// the requested batch count.
    Checkpoint(Box<EngineCheckpoint>),
}

/// Runs the engine until `at_batch` batches have formed and the engine is
/// quiescent, then suspends it into an [`EngineCheckpoint`] (pass 0 to
/// checkpoint the fresh engine before any dispatch). Returns
/// [`CheckpointOutcome::Completed`] when the run ends first — including
/// under [`ServeConfig::preempt`], where an open bulk kernel can keep the
/// engine from ever quiescing mid-trace.
pub fn serve_checkpoint<S: TraceSource>(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    source: S,
    cfg: &ServeConfig,
    at_batch: usize,
) -> Result<CheckpointOutcome, ServeError> {
    cfg.validate()?;
    let fingerprint = run_fingerprint(spec, machines, cfg);
    let mut engine = Engine::new(spec, machines, source, cfg);
    loop {
        if engine.batches_formed() >= at_batch && engine.quiescent() {
            return Ok(CheckpointOutcome::Checkpoint(Box::new(EngineCheckpoint {
                fingerprint,
                snapshot: engine.snapshot(),
            })));
        }
        if !engine.step()? {
            return Ok(CheckpointOutcome::Completed(Box::new(engine.finish())));
        }
    }
}

/// Resumes a checkpointed run over a fresh instance of the *same* source
/// and finishes it. The report is bit-identical to the uninterrupted
/// run's for every policy, fault plan, detail level, and thread count.
///
/// `source` must replay the same arrival sequence the original run
/// consumed (the checkpoint records how many arrivals to skip); a source
/// that runs dry before the checkpoint position is rejected as corrupt. A
/// checkpoint taken under a different setup is refused with
/// [`ServeError::CheckpointMismatch`].
pub fn serve_resume<S: TraceSource>(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    mut source: S,
    cfg: &ServeConfig,
    checkpoint: &EngineCheckpoint,
) -> Result<ServeReport, ServeError> {
    cfg.validate()?;
    let expected = run_fingerprint(spec, machines, cfg);
    if expected != checkpoint.fingerprint {
        return Err(ServeError::CheckpointMismatch { expected, found: checkpoint.fingerprint });
    }
    for _ in 0..checkpoint.snapshot.pulled {
        if source.next_arrival().is_none() {
            return Err(ServeError::CorruptCheckpoint {
                offset: 0,
                what: "source ran dry before the checkpoint position",
            });
        }
    }
    let mut engine = Engine::restore(spec, machines, source, cfg, &checkpoint.snapshot)?;
    while engine.step()? {}
    Ok(engine.finish())
}

/// What survived a simulated mid-trace device crash.
#[derive(Clone, Debug, PartialEq)]
pub struct CrashOutcome {
    /// The finished report, when the whole run completed at or before the
    /// crash cycle — the crash struck an idle device and nothing was lost.
    pub completed: Option<Box<ServeReport>>,
    /// The latest checkpoint taken before the crash (always present when
    /// the run did *not* complete: a checkpoint is taken at batch 0,
    /// before any dispatch, so there is always a resume point).
    pub checkpoint: Option<Box<EngineCheckpoint>>,
    /// Checkpoints taken during the run.
    pub checkpoints_taken: u64,
    /// Total encoded bytes of those checkpoints — what a real deployment
    /// would have written to durable storage.
    pub checkpoint_bytes: u64,
}

/// Drives a run that will crash at `crash_cycle`, checkpointing every
/// `every_batches` formed batches (clamped to at least 1; the fresh
/// engine is always checkpointed first, so a crash before the first batch
/// still leaves a resume point). The run stops the moment the device
/// timeline schedules work past the crash cycle — that in-flight state
/// dies with the device; what survives is the latest checkpoint, whose
/// encoded size is accounted as durable-storage traffic.
pub fn serve_until_crash<S: TraceSource>(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    source: S,
    cfg: &ServeConfig,
    every_batches: usize,
    crash_cycle: u64,
) -> Result<CrashOutcome, ServeError> {
    cfg.validate()?;
    let fingerprint = run_fingerprint(spec, machines, cfg);
    let mut engine = Engine::new(spec, machines, source, cfg);
    let mut checkpoint: Option<Box<EngineCheckpoint>> = None;
    let mut checkpoints_taken = 0u64;
    let mut checkpoint_bytes = 0u64;
    let mut next_due = 0usize;
    loop {
        if engine.quiescent()
            && engine.horizon() <= crash_cycle
            && engine.batches_formed() >= next_due
        {
            let ck = EngineCheckpoint { fingerprint, snapshot: engine.snapshot() };
            checkpoints_taken += 1;
            checkpoint_bytes += ck.encode().len() as u64;
            checkpoint = Some(Box::new(ck));
            next_due = engine.batches_formed() + every_batches.max(1);
        }
        if engine.horizon() > crash_cycle {
            return Ok(CrashOutcome {
                completed: None,
                checkpoint,
                checkpoints_taken,
                checkpoint_bytes,
            });
        }
        if !engine.step()? {
            // The source ran dry with every scheduled cycle at or before
            // the crash: the run completed on the doomed device.
            return Ok(CrashOutcome {
                completed: Some(Box::new(engine.finish())),
                checkpoint,
                checkpoints_taken,
                checkpoint_bytes,
            });
        }
    }
}

/// Seals a crashed run's checkpoint into its durable [`ServeReport`] plus
/// the *orphan* arrivals a failover peer must replay.
///
/// The checkpoint's admission window holds streams that were pulled from
/// the source but never dispatched — on the dead device they are neither
/// served nor shed, so they are subtracted from the report's pull-side
/// totals and handed back as orphans (in admission order). The remaining
/// state finalizes exactly like a run whose source dried at the boundary:
/// same summaries, same counters, same invariants.
pub fn finalize_checkpoint(
    spec: &DeviceSpec,
    machines: &[ServeMachine<'_>],
    cfg: &ServeConfig,
    checkpoint: &EngineCheckpoint,
) -> Result<(ServeReport, Vec<StreamArrival>), ServeError> {
    cfg.validate()?;
    let expected = run_fingerprint(spec, machines, cfg);
    if expected != checkpoint.fingerprint {
        return Err(ServeError::CheckpointMismatch { expected, found: checkpoint.fingerprint });
    }
    let corrupt = |what: &'static str| ServeError::CorruptCheckpoint { offset: 0, what };
    let mut snap = checkpoint.snapshot.clone();
    let orphans = std::mem::take(&mut snap.window);
    snap.pulled = snap.next;
    for a in &orphans {
        snap.report.streams = snap
            .report
            .streams
            .checked_sub(1)
            .ok_or_else(|| corrupt("window exceeds stream count"))?;
        snap.report.total_bytes = snap
            .report
            .total_bytes
            .checked_sub(a.bytes.len())
            .ok_or_else(|| corrupt("window exceeds byte count"))?;
    }
    let source = IterSource(std::iter::empty::<StreamArrival>());
    let mut engine = Engine::restore(spec, machines, source, cfg, &snap)?;
    while engine.step()? {}
    Ok((engine.finish(), orphans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::serve;
    use crate::policy::BatchPolicy;
    use crate::trace::Trace;
    use gspecpal_fsm::examples::div7;

    fn setup() -> (DeviceSpec, gspecpal_fsm::Dfa) {
        (DeviceSpec::test_unit(), div7())
    }

    fn cfg() -> ServeConfig {
        ServeConfig { policy: BatchPolicy::Fifo { batch: 4 }, ..ServeConfig::default() }
    }

    #[test]
    fn resume_matches_the_uninterrupted_run() {
        let (spec, dfa) = setup();
        let machine = ServeMachine::prepare(&spec, &dfa, &b"110100".repeat(64));
        let machines = [machine];
        let trace = Trace::synthetic(3, 30, 1, 40, 8..96, b"01");
        let cfg = cfg();
        let reference = serve(&spec, &machines, &trace, &cfg).unwrap();
        for at_batch in [0usize, 1, 3, 5, 100] {
            match serve_checkpoint(&spec, &machines, trace.source(), &cfg, at_batch).unwrap() {
                CheckpointOutcome::Completed(report) => {
                    assert_eq!(*report, reference, "completed at_batch={at_batch}");
                }
                CheckpointOutcome::Checkpoint(ck) => {
                    let resumed =
                        serve_resume(&spec, &machines, trace.source(), &cfg, &ck).unwrap();
                    assert_eq!(resumed, reference, "resumed at_batch={at_batch}");
                }
            }
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_for_bit() {
        let (spec, dfa) = setup();
        let machines = [ServeMachine::prepare(&spec, &dfa, &b"110100".repeat(64))];
        let trace = Trace::synthetic(5, 24, 1, 40, 8..96, b"01");
        let cfg = cfg();
        let CheckpointOutcome::Checkpoint(ck) =
            serve_checkpoint(&spec, &machines, trace.source(), &cfg, 2).unwrap()
        else {
            panic!("the trace has more than two batches");
        };
        let bytes = ck.encode();
        let decoded = EngineCheckpoint::decode(&bytes).unwrap();
        assert_eq!(decoded, *ck);
        assert_eq!(decoded.encode(), bytes, "encoding is byte-deterministic");
    }

    #[test]
    fn corruption_is_rejected_never_panicking() {
        let (spec, dfa) = setup();
        let machines = [ServeMachine::prepare(&spec, &dfa, &b"110100".repeat(64))];
        let trace = Trace::synthetic(9, 24, 1, 40, 8..96, b"01");
        let cfg = cfg();
        let CheckpointOutcome::Checkpoint(ck) =
            serve_checkpoint(&spec, &machines, trace.source(), &cfg, 2).unwrap()
        else {
            panic!("expected a checkpoint");
        };
        let bytes = ck.encode();
        // Every truncation fails cleanly.
        for cut in 0..bytes.len() {
            assert!(EngineCheckpoint::decode(&bytes[..cut]).is_err(), "truncated at {cut}");
        }
        // Every single-bit flip fails cleanly (the checksum net).
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 1;
            assert!(EngineCheckpoint::decode(&bad).is_err(), "bit flip at byte {i}");
        }
    }

    #[test]
    fn mismatched_setups_are_refused() {
        let (spec, dfa) = setup();
        let machines = [ServeMachine::prepare(&spec, &dfa, &b"110100".repeat(64))];
        let trace = Trace::synthetic(11, 24, 1, 40, 8..96, b"01");
        let cfg = cfg();
        let CheckpointOutcome::Checkpoint(ck) =
            serve_checkpoint(&spec, &machines, trace.source(), &cfg, 1).unwrap()
        else {
            panic!("expected a checkpoint");
        };
        let other = ServeConfig { policy: BatchPolicy::Fifo { batch: 5 }, ..cfg.clone() };
        match serve_resume(&spec, &machines, trace.source(), &other, &ck) {
            Err(ServeError::CheckpointMismatch { .. }) => {}
            other => panic!("expected a fingerprint mismatch, got {other:?}"),
        }
        // A source that dries up early is structurally corrupt.
        let short = Trace::from_arrivals(trace.arrivals()[..1].to_vec());
        match serve_resume(&spec, &machines, short.source(), &cfg, &ck) {
            Err(ServeError::CorruptCheckpoint { .. }) => {}
            other => panic!("expected a dry-source rejection, got {other:?}"),
        }
    }

    #[test]
    fn finalize_splits_durable_report_from_orphans() {
        let (spec, dfa) = setup();
        let machines = [ServeMachine::prepare(&spec, &dfa, &b"110100".repeat(64))];
        let trace = Trace::synthetic(13, 40, 1, 30, 8..96, b"01");
        let cfg = cfg();
        let crash = serve_until_crash(&spec, &machines, trace.source(), &cfg, 1, 200_000).unwrap();
        assert!(crash.checkpoints_taken >= 1, "batch-0 checkpoint is unconditional");
        assert!(crash.checkpoint_bytes > 0);
        let ck = crash.checkpoint.expect("a checkpoint always survives");
        let (durable, orphans) = finalize_checkpoint(&spec, &machines, &cfg, &ck).unwrap();
        // Conservation: durable streams + orphans + never-pulled = trace.
        assert_eq!(durable.streams, ck.streams_pulled() - orphans.len());
        assert!(durable.streams + orphans.len() <= trace.len());
        // The durable report is internally consistent.
        assert_eq!(durable.stats.profile.total_cycles(), durable.stats.cycles);
        assert_eq!(durable.batches.len() as u64, durable.batches_dispatched);
    }
}
