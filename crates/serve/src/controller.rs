//! Online scheme / spec-k / stitch autotuning — closing the §IV selector
//! loop at runtime.
//!
//! The offline decision tree (Fig 6) picks one launch configuration per
//! FSM from a static training profile. The serve pipeline, however,
//! observes the real thing per batch: Verify/Recovery/Stitch cost splits,
//! predictor hit rates, fault overheads. The [`AdaptiveController`] feeds
//! those observations back into the launch decision: every (FSM, batch)
//! pair re-selects among the scored candidates of
//! [`gspecpal::Selector::score_choices`] — scheme, speculation depth, and
//! seam-stitch policy — starting from the offline pick (arm 0 *is* the
//! Fig 6 answer; the controller extends §IV, it never replaces it).
//!
//! # Decision rule
//!
//! Per machine the controller keeps one `Arm` per candidate: a bounded
//! window of observed integer milli-costs (kernel cycles ×1000 / batch
//! bytes) plus a lifetime observation count. The `d`-th decided batch of a
//! machine is an **explore** turn when `d ≡ period−1 (mod period)`; it
//! runs the least-observed arm that has not been cut off (an arm whose
//! windowed mean exceeds `explore_cutoff_permille`/1000 × the incumbent's
//! is never revisited; an arm never observed at all is pruned on the
//! offline prior instead, when its predicted cost exceeds the same
//! multiple of the offline pick's prediction — the surface guards the
//! explore set, observation retires the rest). Every other turn
//! **exploits**: the arm with the
//! lowest windowed mean among observed arms — or arm 0, the offline pick,
//! while nothing has been observed yet. All ties break on the lowest arm
//! index.
//!
//! # Determinism and replay
//!
//! The controller is a pure fold over the machine's decision/observation
//! history: integer arithmetic only, no clocks, no randomness, and the
//! serve engine drives it from its single sequential forward pass — so
//! decisions are bit-identical for any rayon pool size. Each exported
//! [`DecisionRecord`] carries the full [`BatchObservation`] that was fed
//! back, so the decision log on [`crate::ServeReport`] is *auditable by
//! replay*: reconstruct a controller from the same config and arm lists,
//! feed it the recorded observations, and it must reproduce every decision
//! exactly (the `tests/adaptive.rs` suite does).

use std::collections::VecDeque;

use gspecpal::{SchemeKind, StitchPolicy};
use gspecpal_gpu::{KernelStats, Phase};

/// Tuning knobs of the [`AdaptiveController`]. The defaults explore every
/// 4th batch per machine over an 8-observation cost window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ControllerConfig {
    /// Observations retained per arm (sliding window). Older costs age out
    /// so a machine whose input mix drifts re-learns.
    pub window: usize,
    /// Explore every `period`-th decided batch per machine; other turns
    /// exploit the best observed arm. 0 disables exploration (the
    /// controller then always runs the offline pick until an observation
    /// says otherwise — which never happens, so 0 pins arm 0).
    pub explore_period: u64,
    /// An arm whose windowed mean milli-cost exceeds this many permille of
    /// the incumbent's (best observed) mean is cut off from future
    /// exploration. 3000 = three times the incumbent.
    pub explore_cutoff_permille: u64,
    /// Cap on the exported decision log (the counters keep counting past
    /// it, like the latency sketches past `EXACT_SUMMARY_MAX`).
    pub max_decisions: usize,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            window: 8,
            explore_period: 4,
            explore_cutoff_permille: 3000,
            max_decisions: 4096,
        }
    }
}

/// One candidate launch configuration of a served machine: everything the
/// batch executor needs to deviate from the machine's static pick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchChoice {
    /// The execution scheme.
    pub scheme: SchemeKind,
    /// Speculation depth override; 0 inherits the run's
    /// [`gspecpal::SchemeConfig::spec_k`].
    pub spec_k: usize,
    /// Seam-stitch policy for the chunk-parallel path.
    pub stitch: StitchPolicy,
    /// Predicted cost on the offline spec-k surface, in milli-transitions
    /// per byte — the prior before any observation lands.
    pub predicted_millicost: u64,
}

/// What one executed batch fed back into the controller: the per-phase
/// cost split and predictor hit rate of the batch's kernels, plus the
/// bytes they covered. Pure integers off the deterministic timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchObservation {
    /// Input bytes the batch covered.
    pub bytes: u64,
    /// Total kernel cycles (all phases; fault overhead included — faults
    /// reach the controller *only* through this and the phase split).
    pub compute_cycles: u64,
    /// Cycles in the verification phase.
    pub verify_cycles: u64,
    /// Cycles in the recovery phase.
    pub recovery_cycles: u64,
    /// Cycles in the seam-stitch phase.
    pub stitch_cycles: u64,
    /// Speculation checks performed during verification.
    pub verification_checks: u64,
    /// Checks that found a matching record (the predictor hit rate is
    /// `matches / checks`).
    pub verification_matches: u64,
    /// Whether the batch ran chunk-parallel (the launch choice only
    /// steers the chunk-parallel path; a stream-parallel fallback is
    /// observed at its real cost all the same).
    pub chunk_parallel: bool,
}

impl BatchObservation {
    /// Folds one batch's merged kernel stats into an observation.
    pub fn from_stats(
        stats: &KernelStats,
        checks: u64,
        matches: u64,
        bytes: u64,
        chunk_parallel: bool,
    ) -> Self {
        BatchObservation {
            bytes,
            compute_cycles: stats.cycles,
            verify_cycles: stats.profile.get(Phase::Verify).cycles,
            recovery_cycles: stats.profile.get(Phase::Recovery).cycles,
            stitch_cycles: stats.profile.get(Phase::Stitch).cycles,
            verification_checks: checks,
            verification_matches: matches,
            chunk_parallel,
        }
    }

    /// The observation's scalar cost: kernel cycles per byte, in permille
    /// (the same unit as the offline surface's prediction).
    pub fn millicost(&self) -> u64 {
        self.compute_cycles.saturating_mul(1000) / self.bytes.max(1)
    }
}

/// One controller decision, exported on [`crate::ServeReport::decisions`].
/// Carries the observation that was fed back, so the log replays: a fresh
/// controller given the same config, arms, and these observations must
/// reproduce the `arm`/`explore` sequence bit for bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Dispatch index of the batch (including failed ones, matching
    /// [`crate::BatchRecord`] ordering).
    pub batch: usize,
    /// Machine the batch ran on.
    pub machine: usize,
    /// Index of the chosen arm in the machine's arm list.
    pub arm: usize,
    /// The launch configuration that ran.
    pub choice: LaunchChoice,
    /// Whether this was an explore turn (vs exploiting the best mean).
    pub explore: bool,
    /// What the batch reported back.
    pub observation: BatchObservation,
}

/// A decision the engine is about to act on; [`AdaptiveController::observe`]
/// completes it once the batch's stats are in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// Chosen arm index.
    pub arm: usize,
    /// Its launch configuration.
    pub choice: LaunchChoice,
    /// Whether this was an explore turn.
    pub explore: bool,
}

/// One candidate's statistics window.
#[derive(Clone, Debug)]
struct Arm {
    choice: LaunchChoice,
    window: VecDeque<u64>,
    observations: u64,
}

impl Arm {
    /// Windowed mean milli-cost; `None` before the first observation.
    fn mean(&self) -> Option<u64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.window.iter().sum::<u64>() / self.window.len() as u64)
        }
    }
}

/// Per-machine controller state: the arm windows plus the decided-batch
/// counter that paces exploration.
#[derive(Clone, Debug)]
struct MachineState {
    arms: Vec<Arm>,
    decided: u64,
}

impl MachineState {
    /// Best (lowest) windowed mean among observed arms, with its arm index.
    fn incumbent(&self) -> Option<(usize, u64)> {
        self.arms
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.mean().map(|m| (m, i)))
            .min()
            .map(|(m, i)| (i, m))
    }

    /// Whether arm `i` is cut off from exploration. An observed arm is cut
    /// off when its windowed mean is beyond the cutoff multiple of the
    /// incumbent's. An arm never observed is judged on the offline prior
    /// instead: predicted cost beyond the cutoff multiple of the offline
    /// pick's prediction is not worth a live probe (predictions are only
    /// compared with predictions — the surface's absolute scale never
    /// meets an observed cost).
    fn cut_off(&self, i: usize, cutoff_permille: u64) -> bool {
        match self.arms[i].mean() {
            Some(m) => match self.incumbent() {
                Some((_, best)) => m.saturating_mul(1000) > best.saturating_mul(cutoff_permille),
                None => false,
            },
            None => {
                let prior = self.arms[i].choice.predicted_millicost;
                let base = self.arms[0].choice.predicted_millicost;
                prior.saturating_mul(1000) > base.saturating_mul(cutoff_permille)
            }
        }
    }
}

/// One machine's exported dynamic state, for checkpointing: the
/// decided-batch counter plus each arm's (cost window, lifetime
/// observation count).
pub(crate) type MachineArmState = (u64, Vec<(Vec<u64>, u64)>);

/// The online feedback controller: one `MachineState` per served
/// machine, advanced machine-locally by the engine's forward pass.
#[derive(Clone, Debug)]
pub struct AdaptiveController {
    cfg: ControllerConfig,
    machines: Vec<MachineState>,
}

impl AdaptiveController {
    /// Builds a controller over per-machine arm lists (one list per served
    /// machine, in machine order — see `ServeMachine::arms`). Arm 0 of each
    /// list must be the machine's offline pick.
    pub fn new(cfg: ControllerConfig, arms_per_machine: Vec<Vec<LaunchChoice>>) -> Self {
        let machines = arms_per_machine
            .into_iter()
            .map(|arms| MachineState {
                arms: arms
                    .into_iter()
                    .map(|choice| Arm { choice, window: VecDeque::new(), observations: 0 })
                    .collect(),
                decided: 0,
            })
            .collect();
        AdaptiveController { cfg, machines }
    }

    /// The decision-log cap from the config.
    pub fn max_decisions(&self) -> usize {
        self.cfg.max_decisions
    }

    /// Decides the launch configuration for `machine`'s next batch. A pure
    /// function of the config, the arm lists, and the observations fed back
    /// so far — no clocks, no randomness.
    pub fn decide(&mut self, machine: usize) -> Decision {
        let cutoff = self.cfg.explore_cutoff_permille;
        let st = &mut self.machines[machine];
        let turn = st.decided;
        st.decided += 1;
        let explore_turn = self.cfg.explore_period > 0
            && st.arms.len() > 1
            && turn % self.cfg.explore_period == self.cfg.explore_period - 1;
        let st = &self.machines[machine];
        if explore_turn {
            // Least-observed live arm, lowest index on ties.
            let pick = st
                .arms
                .iter()
                .enumerate()
                .filter(|&(i, _)| !st.cut_off(i, cutoff))
                .min_by_key(|&(i, a)| (a.observations, i))
                .map(|(i, _)| i)
                .unwrap_or(0);
            return Decision { arm: pick, choice: st.arms[pick].choice, explore: true };
        }
        // Exploit: lowest observed windowed mean; the offline pick (arm 0)
        // until anything has been observed.
        let pick = st.incumbent().map_or(0, |(i, _)| i);
        Decision { arm: pick, choice: st.arms[pick].choice, explore: false }
    }

    /// The controller's entire dynamic state, for checkpointing: per
    /// machine, the decided-batch counter plus each arm's (cost window,
    /// lifetime observation count). Everything else — the arm choices, the
    /// config — rebuilds from the serve configuration and machine list.
    pub(crate) fn export_state(&self) -> Vec<MachineArmState> {
        self.machines
            .iter()
            .map(|m| {
                (
                    m.decided,
                    m.arms
                        .iter()
                        .map(|a| (a.window.iter().copied().collect(), a.observations))
                        .collect(),
                )
            })
            .collect()
    }

    /// Restores state exported by [`AdaptiveController::export_state`] into
    /// a freshly built controller. Returns `false` (leaving the controller
    /// untouched) when the shape does not match this controller's machine
    /// and arm lists — a checkpoint from a different fleet must not
    /// half-apply.
    pub(crate) fn import_state(&mut self, state: &[MachineArmState]) -> bool {
        if state.len() != self.machines.len()
            || self.machines.iter().zip(state).any(|(m, (_, arms))| arms.len() != m.arms.len())
        {
            return false;
        }
        for (m, (decided, arms)) in self.machines.iter_mut().zip(state) {
            m.decided = *decided;
            for (a, (window, observations)) in m.arms.iter_mut().zip(arms) {
                a.window = window.iter().copied().collect();
                a.observations = *observations;
            }
        }
        true
    }

    /// Feeds one batch's observation back into the decided arm's window.
    pub fn observe(&mut self, machine: usize, arm: usize, obs: &BatchObservation) {
        let window = self.cfg.window.max(1);
        let a = &mut self.machines[machine].arms[arm];
        a.window.push_back(obs.millicost());
        if a.window.len() > window {
            a.window.pop_front();
        }
        a.observations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arms() -> Vec<LaunchChoice> {
        let mk = |scheme, spec_k, cost| LaunchChoice {
            scheme,
            spec_k,
            stitch: StitchPolicy::Tree,
            predicted_millicost: cost,
        };
        vec![mk(SchemeKind::Sre, 4, 1100), mk(SchemeKind::Pm, 1, 1500), mk(SchemeKind::Rr, 4, 1700)]
    }

    fn obs(cost: u64) -> BatchObservation {
        BatchObservation { bytes: 1000, compute_cycles: cost, ..BatchObservation::default() }
    }

    #[test]
    fn starts_from_the_offline_pick() {
        let mut c = AdaptiveController::new(ControllerConfig::default(), vec![arms()]);
        // Turns 0..2 exploit with no observations: the offline pick.
        for _ in 0..3 {
            let d = c.decide(0);
            assert_eq!(d.arm, 0);
            assert!(!d.explore);
            c.observe(0, d.arm, &obs(1200 * 1000));
        }
        // Turn 3 (period 4) explores the least-observed arm: arm 1.
        let d = c.decide(0);
        assert!(d.explore);
        assert_eq!(d.arm, 1);
    }

    #[test]
    fn commits_to_the_observed_winner() {
        let mut c = AdaptiveController::new(ControllerConfig::default(), vec![arms()]);
        let d = c.decide(0);
        c.observe(0, d.arm, &obs(2000 * 1000)); // offline pick measures poor
        let d = c.decide(0);
        assert_eq!(d.arm, 0, "still the only observed arm");
        c.observe(0, d.arm, &obs(2000 * 1000));
        // Hand arm 2 a much better measurement; exploitation must move.
        c.observe(0, 2, &obs(500 * 1000));
        let d = c.decide(0);
        assert_eq!(d.arm, 2);
        assert!(!d.explore);
    }

    #[test]
    fn cutoff_retires_hopeless_arms_from_exploration() {
        let cfg = ControllerConfig { explore_cutoff_permille: 2000, ..Default::default() };
        let mut c = AdaptiveController::new(cfg, vec![arms()]);
        c.observe(0, 0, &obs(1000 * 1000));
        c.observe(0, 1, &obs(5000 * 1000)); // 5x the incumbent: cut off
                                            // Explore turn (turn 3): must skip arm 1 for the unobserved arm 2.
        for _ in 0..3 {
            let d = c.decide(0);
            c.observe(0, d.arm, &obs(1000 * 1000));
        }
        let d = c.decide(0);
        assert!(d.explore);
        assert_eq!(d.arm, 2, "cut-off arm is never re-explored");
    }

    #[test]
    fn prior_prunes_unobserved_expensive_arms_from_exploration() {
        let mut list = arms();
        list[1].predicted_millicost = 50_000; // far beyond 3000‰ of arm 0's 1100
        let mut c = AdaptiveController::new(ControllerConfig::default(), vec![list]);
        for _ in 0..3 {
            let d = c.decide(0);
            assert_eq!(d.arm, 0);
            c.observe(0, d.arm, &obs(1000 * 1000));
        }
        // Explore turn: arm 1 is pruned on its prior alone, never probed.
        let d = c.decide(0);
        assert!(d.explore);
        assert_eq!(d.arm, 2);
    }

    #[test]
    fn windows_age_out_old_costs() {
        let cfg = ControllerConfig { window: 2, ..Default::default() };
        let mut c = AdaptiveController::new(cfg, vec![arms()]);
        c.observe(0, 0, &obs(9000 * 1000));
        c.observe(0, 0, &obs(1000 * 1000));
        c.observe(0, 0, &obs(1000 * 1000));
        // The 9000 observation aged out of the 2-deep window.
        assert_eq!(c.machines[0].arms[0].mean(), Some(1_000_000));
    }

    #[test]
    fn replaying_observations_reproduces_decisions() {
        let mut live = AdaptiveController::new(ControllerConfig::default(), vec![arms()]);
        let mut log: Vec<(Decision, BatchObservation)> = Vec::new();
        let costs = [1500u64, 1400, 1600, 900, 1450, 800, 1300, 950, 1000, 850];
        for (i, &cost) in costs.iter().enumerate() {
            let d = live.decide(0);
            let o = obs(cost * 1000 + i as u64);
            live.observe(0, d.arm, &o);
            log.push((d, o));
        }
        // A fresh controller fed the same observations makes the same calls.
        let mut replay = AdaptiveController::new(ControllerConfig::default(), vec![arms()]);
        for (d, o) in &log {
            assert_eq!(replay.decide(0), *d);
            replay.observe(0, d.arm, o);
        }
    }

    #[test]
    fn observation_millicost_is_cycles_per_byte_permille() {
        let o = BatchObservation { bytes: 2048, compute_cycles: 4096, ..Default::default() };
        assert_eq!(o.millicost(), 2000);
        let empty = BatchObservation::default();
        assert_eq!(empty.millicost(), 0, "zero-byte batches cost nothing");
    }
}
