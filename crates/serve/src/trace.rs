//! Arrival traces: the workload a serving pipeline replays.
//!
//! A trace is a time-ordered list of [`StreamArrival`]s — each an input
//! stream arriving at some cycle for some machine. Traces are plain data:
//! they can be handwritten in tests, parsed from logs, or synthesized
//! deterministically with [`Trace::synthetic`] (a seeded LCG, so the same
//! seed always produces the same trace — no ambient randomness anywhere in
//! the serve layer).

/// One input stream arriving at the serving frontier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamArrival {
    /// Cycle (on the device clock) the stream becomes available to admit.
    pub arrival_cycle: u64,
    /// Which machine (index into the pipeline's machine set) must scan it.
    pub machine: usize,
    /// The stream's input bytes.
    pub bytes: Vec<u8>,
}

/// The largest admissible arrival cycle for [`Trace::try_from_arrivals`]:
/// a quarter of the clock space, leaving ample headroom for deadline,
/// latency and backoff arithmetic on top of any admissible arrival.
pub const MAX_ARRIVAL_CYCLE: u64 = u64::MAX / 4;

/// A time-ordered arrival trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    arrivals: Vec<StreamArrival>,
}

impl Trace {
    /// Builds a trace from arrivals, stably sorting them by arrival cycle
    /// (ties keep their given order, so equal-cycle bursts stay
    /// deterministic).
    pub fn from_arrivals(mut arrivals: Vec<StreamArrival>) -> Self {
        arrivals.sort_by_key(|a| a.arrival_cycle);
        Trace { arrivals }
    }

    /// Builds a trace from arrivals that must already be a valid history:
    /// arrival cycles non-decreasing, every cycle at most
    /// [`MAX_ARRIVAL_CYCLE`], and no zero-length stream. Unlike
    /// [`Trace::from_arrivals`] this never reorders — an out-of-order
    /// timestamp in a captured log is evidence of a broken capture, not
    /// something to silently repair.
    pub fn try_from_arrivals(
        arrivals: Vec<StreamArrival>,
    ) -> Result<Self, crate::error::ServeError> {
        use crate::error::ServeError;
        let mut prev = 0u64;
        for (i, a) in arrivals.iter().enumerate() {
            if a.arrival_cycle > MAX_ARRIVAL_CYCLE {
                return Err(ServeError::ArrivalOverflow {
                    stream: i,
                    cycle: a.arrival_cycle,
                    max: MAX_ARRIVAL_CYCLE,
                });
            }
            if a.arrival_cycle < prev {
                return Err(ServeError::NonMonotonicTrace {
                    stream: i,
                    cycle: a.arrival_cycle,
                    prev,
                });
            }
            if a.bytes.is_empty() {
                return Err(ServeError::EmptyStream { stream: i });
            }
            prev = a.arrival_cycle;
        }
        Ok(Trace { arrivals })
    }

    /// The arrivals, in admission order.
    pub fn arrivals(&self) -> &[StreamArrival] {
        &self.arrivals
    }

    /// Number of streams in the trace.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Total input bytes across all arrivals.
    pub fn total_bytes(&self) -> usize {
        self.arrivals.iter().map(|a| a.bytes.len()).sum()
    }

    /// Deterministic synthetic trace: `n_streams` arrivals with
    /// LCG-sampled inter-arrival gaps in `[0, 2 × mean_gap]`, machines
    /// assigned round-robin-with-jitter over `n_machines`, and stream
    /// lengths in `len_range` with bytes drawn from `alphabet`.
    ///
    /// The generator is a bare 64-bit LCG keyed only by `seed` — same seed,
    /// same trace, on every platform and every run.
    ///
    /// # Panics
    ///
    /// On degenerate generator parameters (`n_machines == 0`, an empty
    /// `alphabet`, or an empty `len_range`) — these are programming errors
    /// in test/bench setup, not runtime inputs, so they stay asserts rather
    /// than [`crate::ServeError`]s.
    pub fn synthetic(
        seed: u64,
        n_streams: usize,
        n_machines: usize,
        mean_gap: u64,
        len_range: std::ops::Range<usize>,
        alphabet: &[u8],
    ) -> Self {
        // Materialize the streaming generator, so the two can never drift:
        // `SyntheticSource` *is* the definition of the synthetic workload.
        let source = crate::source::SyntheticSource::new(
            seed, n_streams, n_machines, mean_gap, len_range, alphabet,
        );
        Trace { arrivals: source.collect() }
    }

    /// A [`crate::TraceSource`] replaying this trace in admission order —
    /// what lets `serve` and [`crate::serve_source`] share one engine.
    pub fn source(&self) -> crate::source::TraceCursor<'_> {
        crate::source::TraceCursor::new(self)
    }
}

/// Collects arrivals into a trace, stably sorting by arrival cycle —
/// identical semantics to [`Trace::from_arrivals`].
impl FromIterator<StreamArrival> for Trace {
    fn from_iter<I: IntoIterator<Item = StreamArrival>>(iter: I) -> Self {
        Trace::from_arrivals(iter.into_iter().collect())
    }
}

/// Minimal 64-bit LCG (Knuth's MMIX constants) — enough entropy for trace
/// shaping, zero dependencies, bit-stable everywhere. Shared with the
/// streaming [`crate::source::SyntheticSource`], which must replay the
/// exact sequence of [`Trace::synthetic`].
pub(crate) struct Lcg(u64);

impl Lcg {
    pub(crate) fn new(seed: u64) -> Self {
        // Scramble the seed so small seeds don't start in a low-entropy
        // regime.
        Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 =
            self.0.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        self.0
    }

    /// Uniform-ish sample in `[0, n)` (top bits; fine for workload shaping).
    pub(crate) fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            (self.next() >> 11) % n
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_arrivals_sorts_stably() {
        let t = Trace::from_arrivals(vec![
            StreamArrival { arrival_cycle: 5, machine: 0, bytes: vec![1] },
            StreamArrival { arrival_cycle: 3, machine: 0, bytes: vec![2] },
            StreamArrival { arrival_cycle: 5, machine: 1, bytes: vec![3] },
        ]);
        let cycles: Vec<u64> = t.arrivals().iter().map(|a| a.arrival_cycle).collect();
        assert_eq!(cycles, vec![3, 5, 5]);
        // The two cycle-5 arrivals keep their original relative order.
        assert_eq!(t.arrivals()[1].bytes, vec![1]);
        assert_eq!(t.arrivals()[2].bytes, vec![3]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_bytes(), 3);
    }

    #[test]
    fn synthetic_traces_are_reproducible() {
        let a = Trace::synthetic(42, 20, 3, 100, 8..64, b"01");
        let b = Trace::synthetic(42, 20, 3, 100, 8..64, b"01");
        assert_eq!(a, b);
        let c = Trace::synthetic(43, 20, 3, 100, 8..64, b"01");
        assert_ne!(a, c, "different seeds diverge");
        assert_eq!(a.len(), 20);
        assert!(a.arrivals().windows(2).all(|w| w[0].arrival_cycle <= w[1].arrival_cycle));
        assert!(a.arrivals().iter().all(|s| (8..64).contains(&s.bytes.len())));
        assert!(a.arrivals().iter().all(|s| s.machine < 3));
        assert!(a.arrivals().iter().all(|s| s.bytes.iter().all(|b| b"01".contains(b))));
    }

    #[test]
    fn try_from_arrivals_rejects_non_monotonic_traces() {
        use crate::error::ServeError;
        let err = Trace::try_from_arrivals(vec![
            StreamArrival { arrival_cycle: 5, machine: 0, bytes: vec![1] },
            StreamArrival { arrival_cycle: 3, machine: 0, bytes: vec![2] },
        ])
        .unwrap_err();
        assert_eq!(err, ServeError::NonMonotonicTrace { stream: 1, cycle: 3, prev: 5 });
    }

    #[test]
    fn try_from_arrivals_rejects_overflowing_cycles() {
        use crate::error::ServeError;
        let err = Trace::try_from_arrivals(vec![StreamArrival {
            arrival_cycle: u64::MAX,
            machine: 0,
            bytes: vec![1],
        }])
        .unwrap_err();
        assert_eq!(
            err,
            ServeError::ArrivalOverflow {
                stream: 0,
                cycle: u64::MAX,
                max: super::MAX_ARRIVAL_CYCLE
            }
        );
    }

    #[test]
    fn try_from_arrivals_rejects_empty_streams() {
        use crate::error::ServeError;
        let err = Trace::try_from_arrivals(vec![
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: vec![1] },
            StreamArrival { arrival_cycle: 1, machine: 0, bytes: vec![] },
        ])
        .unwrap_err();
        assert_eq!(err, ServeError::EmptyStream { stream: 1 });
    }

    #[test]
    fn try_from_arrivals_accepts_valid_histories() {
        let t = Trace::try_from_arrivals(vec![
            StreamArrival { arrival_cycle: 0, machine: 0, bytes: vec![1] },
            StreamArrival { arrival_cycle: 0, machine: 1, bytes: vec![2] },
            StreamArrival { arrival_cycle: 9, machine: 0, bytes: vec![3] },
        ])
        .unwrap();
        assert_eq!(t.len(), 3, "equal-cycle bursts are valid and keep their order");
    }

    #[test]
    fn empty_traces_are_fine() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.total_bytes(), 0);
        let t = Trace::synthetic(1, 0, 2, 10, 1..2, b"a");
        assert!(t.is_empty());
    }
}
