//! Synthetic benchmark suite standing in for ANMLZoo/AutomataZoo (§V-B).
//!
//! The paper evaluates on 36 DFAs — 12 each compiled from Snort, ClamAV and
//! PowerEN rule sets — with 10 MB proprietary input traces. Neither the rule
//! sets' DFAs nor the traces are redistributable, so this crate synthesizes
//! families with the *same measured characteristics* (the axes Table II
//! itself uses to describe the benchmarks):
//!
//! * state-count ranges per family (Snort largest, PowerEN smallest);
//! * spec-1 / spec-4 lookback accuracy distributions;
//! * a per-family quota of FSMs with highly input-sensitive speculation;
//! * 10-step convergence (`#uniqStates`) distributions.
//!
//! Each benchmark belongs to a behavioural [`Tier`] engineered from three
//! primitives: Aho-Corasick keyword/regex machines (fast convergence),
//! slow-retreat chains (convergent over a chunk but opaque to 2-byte
//! lookback), and class-trigger counters (permutation components that never
//! converge and set the speculation-queue depth). The tier mix per family
//! mirrors which scheme wins where in the paper's Figure 8 / Table III.

#![warn(missing_docs)]

pub mod family;
pub mod inputs;
pub mod suite;
pub mod tiers;

pub use family::Family;
pub use suite::{build_family, build_suite, Benchmark};
pub use tiers::Tier;
