//! Behavioural tiers and the FSM primitives that realize them.
//!
//! The paper's 36 benchmarks span four observable behaviours (Table II,
//! Table III, Fig 8), each of which favours a different scheme:
//!
//! | tier | lookback-2 | chunk convergence | winner | construction |
//! |------|-----------|-------------------|--------|--------------|
//! | [`Tier::SpecKFriendly`] | truth in top-4 | none | PM | signatures × shallow counter (m ≤ 4) |
//! | [`Tier::SlowConvergence`] | truth deep | strong | SRE | slow-retreat chains |
//! | [`Tier::NonConvergent`] | truth in top-16 | none | RR/NF | signatures × deep counter (m = 9…18) |
//! | [`Tier::InputSensitive`] | regime-dependent | regime-dependent | NF | signatures × resettable counter, regime-switching input |

use gspecpal_fsm::classes::ByteClasses;
use gspecpal_fsm::combinators::{product, sliding_window_dfa, ProductAccept};
use gspecpal_fsm::dfa::{Dfa, DfaBuilder, StateId};
use gspecpal_regex::{compile_set, CompileConfig};
use rand::rngs::StdRng;
use rand::RngExt;

use crate::family::Family;

/// The behavioural class of a benchmark FSM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Enumerative speculation (spec-4) covers the truth; recovery is waste.
    SpecKFriendly,
    /// 2-byte lookback is blind but predecessor end states converge to the
    /// truth within a chunk.
    SlowConvergence,
    /// Nothing converges; only enumerating the top-≈16 speculative states
    /// (aggressive recovery) works.
    NonConvergent,
    /// Speculation quality flips between input regimes.
    InputSensitive,
}

impl Tier {
    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::SpecKFriendly => "spec-k",
            Tier::SlowConvergence => "converge",
            Tier::NonConvergent => "deep-spec",
            Tier::InputSensitive => "input-sens",
        }
    }
}

/// Builds a class-trigger counter: `m` states, bytes satisfying `trigger`
/// advance the count (mod m), everything else leaves it unchanged.
/// Incrementing is a permutation for every `m`, so the machine never
/// converges — it carries `m`-deep mode information across arbitrarily long
/// inputs, which is exactly what defeats both lookback prediction (beyond
/// rank m) and end-state forwarding.
pub fn class_counter(m: u32, trigger: impl Fn(u8) -> bool) -> Dfa {
    assert!(m >= 1);
    let classes = ByteClasses::refine(|a, b| trigger(a) != trigger(b));
    build_counter(m, classes, &trigger, None::<fn(u8) -> bool>)
}

/// A counter with a reset class: `reset` bytes send the count back to 0.
/// Windows containing a reset byte pin the counter — prediction becomes easy
/// — while reset-free regions behave like [`class_counter`]. Feeding it a
/// regime-switching input produces *input-sensitive* speculation.
pub fn reset_counter(m: u32, trigger: impl Fn(u8) -> bool, reset: impl Fn(u8) -> bool) -> Dfa {
    assert!(m >= 1);
    let classes = ByteClasses::refine(|a, b| trigger(a) != trigger(b) || reset(a) != reset(b));
    build_counter(m, classes, &trigger, Some(reset))
}

fn build_counter(
    m: u32,
    classes: ByteClasses,
    trigger: &impl Fn(u8) -> bool,
    reset: Option<impl Fn(u8) -> bool>,
) -> Dfa {
    let reps = classes.representatives();
    let mut b = DfaBuilder::new(classes.clone());
    for _ in 0..m {
        b.add_state(false);
    }
    for r in 0..m {
        let s = r as StateId;
        for (c, &rep) in reps.iter().enumerate() {
            let target = if reset.as_ref().is_some_and(|f| f(rep)) {
                0
            } else if trigger(rep) {
                ((r + 1) % m) as StateId
            } else {
                s
            };
            b.set_transition(s, c as u16, target).expect("state exists");
        }
    }
    b.build(0).expect("counter is total")
}

/// Generates the family's signature rule set (regex patterns) and compiles
/// the disjunction to a minimal search DFA — the §V-B pipeline with our RE2
/// substitute.
pub fn signature_dfa(family: Family, rng: &mut StdRng) -> (Dfa, Vec<Vec<u8>>) {
    signature_dfa_with(family, rng, false)
}

/// Like [`signature_dfa`], optionally restricted to plain literal
/// signatures (no bounded gaps or digit patterns). Literal sets have shallow
/// prefixes, so chunk boundaries rarely land mid-rule — the easy-to-predict
/// regime of the spec-k tier.
pub fn signature_dfa_with(
    family: Family,
    rng: &mut StdRng,
    literals_only: bool,
) -> (Dfa, Vec<Vec<u8>>) {
    let mut rules = generate_rules(family, rng);
    if literals_only {
        for r in rules.iter_mut() {
            // Replace each pattern with its literal witness.
            let lit = r.1.clone();
            r.0 = lit
                .iter()
                .map(|&b| {
                    if b.is_ascii_alphanumeric() || b == b' ' || b == b'/' {
                        (b as char).to_string()
                    } else {
                        format!("\\x{b:02x}")
                    }
                })
                .collect();
        }
    }
    let refs: Vec<&str> = rules.iter().map(|(p, _)| p.as_str()).collect();
    let dfa = compile_set(&refs, CompileConfig::default()).expect("generated rules always compile");
    let spice = rules.into_iter().map(|(_, lit)| lit).collect();
    (dfa, spice)
}

/// Family-flavoured rule generation: each rule is a regex pattern plus a
/// literal byte string that matches it (for seeding the input generators).
fn generate_rules(family: Family, rng: &mut StdRng) -> Vec<(String, Vec<u8>)> {
    let n = family.keyword_count();
    let mut rules = Vec::with_capacity(n);
    match family {
        Family::Snort => {
            const TOKENS: &[&str] = &[
                "attack",
                "exploit",
                "overflow",
                "shellcode",
                "passwd",
                "cmd",
                "admin",
                "select",
                "union",
                "script",
                "eval",
                "payload",
                "root",
                "login",
            ];
            for i in 0..n {
                let t = TOKENS[rng.random_range(0..TOKENS.len())];
                let u = TOKENS[rng.random_range(0..TOKENS.len())];
                match i % 5 {
                    0 => {
                        let r = format!("{t}{}", rng.random_range(0..100));
                        rules.push((r.clone(), r.into_bytes()));
                    }
                    1 => {
                        let r = format!("GET /{t}/{u}");
                        rules.push((r.clone(), r.into_bytes()));
                    }
                    2 => rules.push((format!("{t}\\.(exe|php)"), format!("{t}.exe").into_bytes())),
                    3 => {
                        // A content rule with a bounded gap, Snort `distance`
                        // style — these are what make NIDS DFAs large.
                        let lit = format!("{t}=XX{u}");
                        rules.push((format!("{t}=.{{2,4}}{u}"), lit.into_bytes()));
                    }
                    _ => rules.push((t.to_string(), t.as_bytes().to_vec())),
                }
            }
        }
        Family::ClamAV => {
            // Hex byte-string signatures, ClamAV style.
            for i in 0..n {
                let len = rng.random_range(4..9);
                let mut sig = String::new();
                let mut literal = Vec::new();
                for _ in 0..len {
                    let b = rng.random_range(0x20..=0xff_u32) as u8;
                    sig.push_str(&format!("\\x{b:02x}"));
                    literal.push(b);
                }
                if i % 6 == 0 {
                    // A wildcard skip byte, like ClamAV's `??`.
                    let b = rng.random_range(0x20..=0xff_u32) as u8;
                    sig.push('.');
                    sig.push_str(&format!("\\x{b:02x}"));
                    literal.push(b'?');
                    literal.push(b);
                }
                rules.push((sig, literal));
            }
        }
        Family::PowerEn => {
            const STEMS: &[&str] = &["err", "warn", "fail", "pass", "time", "addr"];
            for i in 0..n {
                let s = STEMS[rng.random_range(0..STEMS.len())];
                match i % 3 {
                    0 => rules.push((format!("{s}(or|ing)?s?"), s.as_bytes().to_vec())),
                    1 => {
                        let lit = format!("123,45 {s}");
                        rules.push((format!("[0-9]{{2,4}},[0-9]{{2}} {s}"), lit.into_bytes()));
                    }
                    _ => rules.push((s.to_string(), s.as_bytes().to_vec())),
                }
            }
        }
    }
    rules
}

/// Trigger predicate for the family's counters (which bytes advance the
/// mode): binary payload bytes for the network/binary families, digits for
/// the text-trace family.
pub fn family_trigger(family: Family) -> fn(u8) -> bool {
    match family {
        Family::Snort => |b| b >= 0x80,
        Family::ClamAV => |b| b >= 0x80,
        Family::PowerEn => |b| b.is_ascii_digit(),
    }
}

/// Reset predicate (which bytes pin the counter) — newline for traffic, NUL
/// padding for executables, comma for CSV-like traces.
pub fn family_reset(family: Family) -> fn(u8) -> bool {
    match family {
        Family::Snort => |b| b == b'\n',
        Family::ClamAV => |b| b == 0,
        Family::PowerEn => |b| b == b',',
    }
}

/// Letter pool for the slow-convergence tier's sliding-window machines —
/// bytes common in every family's input streams, so windows keep churning.
const WINDOW_POOL: &[u8] = b"aeiostnr l/d";

/// Window-machine alphabet size per family (`W = size + 1` candidate states
/// survive a 2-byte lookback; chosen so spec-4 covers well under half).
fn window_alphabet(family: Family, rng: &mut StdRng) -> Vec<u8> {
    let size = match family {
        Family::Snort => 8,
        Family::ClamAV => 7,
        Family::PowerEn => 4,
    };
    // Rotate through the pool so different benchmarks get different letters.
    let off = rng.random_range(0..WINDOW_POOL.len());
    (0..size).map(|i| WINDOW_POOL[(off + i) % WINDOW_POOL.len()]).collect()
}

/// A built tier machine plus the metadata its input generator needs.
#[derive(Clone, Debug)]
pub struct TierMachine {
    /// The compiled machine.
    pub dfa: Dfa,
    /// Literal tokens the input generators embed so rules actually fire.
    pub spice: Vec<Vec<u8>>,
    /// For window machines: the letter alphabet (drives `window_text`).
    pub window_alphabet: Option<Vec<u8>>,
    /// For window machines: probability mass on the four hot letters — the
    /// knob that sets PM's effective spec-4 accuracy on this benchmark.
    pub skew: f64,
}

/// Builds the tier machine for one benchmark.
pub fn build_tier_dfa(family: Family, tier: Tier, rng: &mut StdRng) -> TierMachine {
    match tier {
        Tier::SpecKFriendly => {
            // m = 3 keeps the whole candidate set (3 counter phases × the
            // converged signature root, plus an occasional prefix state)
            // inside spec-4's reach, and literal-only signatures keep chunk
            // boundaries out of rule prefixes: enumerative speculation
            // almost never misses, which is precisely the regime where PM
            // wins.
            let (kw, spice) = signature_dfa_with(family, rng, true);
            let ctr = class_counter(3, family_trigger(family));
            let dfa = product(&kw, &ctr, ProductAccept::First).expect("product fits");
            TierMachine { dfa, spice, window_alphabet: None, skew: 0.0 }
        }
        Tier::SlowConvergence => {
            // A sliding-window machine: total convergence after 3 symbols
            // (end-state forwarding is always right) but W equally-likely
            // lookback candidates (enumerative speculation misses most).
            let alphabet = window_alphabet(family, rng);
            let accept: Vec<u8> = (0..3).map(|_| alphabet[0]).collect();
            let dfa = sliding_window_dfa(&alphabet, 3, &accept).expect("window fits");
            let skew = 0.88 + 0.07 * rng.random::<f64>();
            TierMachine { dfa, spice: vec![accept], window_alphabet: Some(alphabet), skew }
        }
        Tier::NonConvergent => {
            let (kw, spice) = signature_dfa(family, rng);
            let moduli = family.counter_moduli();
            let m = rng.random_range(moduli.start..moduli.end);
            let ctr = class_counter(m, family_trigger(family));
            let dfa = product(&kw, &ctr, ProductAccept::First).expect("product fits");
            TierMachine { dfa, spice, window_alphabet: None, skew: 0.0 }
        }
        Tier::InputSensitive => {
            let (kw, spice) = signature_dfa(family, rng);
            let moduli = family.counter_moduli();
            let m = rng.random_range(moduli.start..moduli.end);
            let ctr = reset_counter(m, family_trigger(family), family_reset(family));
            let dfa = product(&kw, &ctr, ProductAccept::First).expect("product fits");
            TierMachine { dfa, spice, window_alphabet: None, skew: 0.0 }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gspecpal_fsm::profile::unique_states_after;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn class_counter_counts_triggers() {
        let d = class_counter(5, |b| b == b'!');
        assert_eq!(d.run(b"a!b!!c"), 3);
        assert_eq!(d.run(b"abc"), 0);
        assert_eq!(d.run(b"!!!!!"), 0, "wraps mod 5");
    }

    #[test]
    fn class_counter_never_converges() {
        let d = class_counter(7, |b| b >= 0x80);
        assert_eq!(unique_states_after(&d, &[0x90, 0x10, 0x85, 0x20]), 7);
    }

    #[test]
    fn reset_counter_resets() {
        let d = reset_counter(5, |b| b == b'!', |b| b == b'\n');
        assert_eq!(d.run(b"!!\n!"), 1);
        // A reset collapses all states at once.
        assert_eq!(unique_states_after(&d, b"x\ny"), 1);
        // Without resets it stays a permutation.
        assert_eq!(unique_states_after(&d, b"x!y"), 5);
    }

    #[test]
    fn signature_dfas_fire_on_spice() {
        for family in Family::all() {
            let (d, spice) = signature_dfa(family, &mut rng());
            assert!(d.n_states() > 2, "{family}: {} states", d.n_states());
            for s in spice.iter().take(3) {
                let mut input = b"  ".to_vec();
                input.extend_from_slice(s);
                assert!(d.count_matches(&input) > 0, "{family}: spice {s:?} must match");
            }
        }
    }

    #[test]
    fn tier_machines_build_for_all_families() {
        for family in Family::all() {
            for tier in [
                Tier::SpecKFriendly,
                Tier::SlowConvergence,
                Tier::NonConvergent,
                Tier::InputSensitive,
            ] {
                let d = build_tier_dfa(family, tier, &mut rng()).dfa;
                assert!(d.n_states() >= 4, "{family}/{}: {} states", tier.name(), d.n_states());
                // Every machine is total: a junk run never panics.
                let junk: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
                let _ = d.run(&junk);
            }
        }
    }

    #[test]
    fn speck_tier_queue_depth_at_most_4_on_quiet_windows() {
        let d = build_tier_dfa(Family::Snort, Tier::SpecKFriendly, &mut rng()).dfa;
        // A quiet ASCII window: the keyword component collapses to its root,
        // leaving only the ≤4 counter phases.
        let uniq = unique_states_after(&d, b"qu");
        assert!(uniq <= 8, "uniq = {uniq}");
    }

    #[test]
    fn nonconvergent_tier_is_a_deep_permutation() {
        let d = build_tier_dfa(Family::PowerEn, Tier::NonConvergent, &mut rng()).dfa;
        // Ten text bytes leave at least the counter modulus alive.
        let uniq = unique_states_after(&d, b"ab 12 cd 3");
        assert!(uniq >= 9, "uniq = {uniq}");
    }

    #[test]
    fn slow_convergence_tier_collapses_over_ten_junk_bytes() {
        let d = build_tier_dfa(Family::PowerEn, Tier::SlowConvergence, &mut rng()).dfa;
        let uniq = unique_states_after(&d, b"ZZZZZZZZZZ");
        assert!(uniq <= 4, "uniq = {uniq}");
    }

    #[test]
    fn state_count_ordering_follows_table2() {
        let mut r = rng();
        let snort = build_tier_dfa(Family::Snort, Tier::NonConvergent, &mut r).dfa;
        let clam = build_tier_dfa(Family::ClamAV, Tier::NonConvergent, &mut r).dfa;
        let pen = build_tier_dfa(Family::PowerEn, Tier::NonConvergent, &mut r).dfa;
        assert!(snort.n_states() > pen.n_states());
        assert!(clam.n_states() > pen.n_states());
    }
}
