//! Benchmark families (the three applications of §V-B).

/// The application a benchmark FSM models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Network intrusion detection (Snort rules over network traffic).
    Snort,
    /// Virus detection (ClamAV signatures over binary executables).
    ClamAV,
    /// IBM's PowerEN regular-expression benchmark over its trace files.
    PowerEn,
}

impl Family {
    /// All three families, in the paper's order.
    pub fn all() -> [Family; 3] {
        [Family::Snort, Family::ClamAV, Family::PowerEn]
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Family::Snort => "Snort",
            Family::ClamAV => "ClamAV",
            Family::PowerEn => "PowerEN",
        }
    }

    /// Number of FSMs per family (the paper builds 12 each).
    pub const FSMS_PER_FAMILY: usize = 12;

    /// How many of the family's FSMs should exhibit highly input-sensitive
    /// speculation (Table II: Snort 3, ClamAV 5, PowerEN 6).
    pub fn input_sensitive_quota(self) -> usize {
        match self {
            Family::Snort => 3,
            Family::ClamAV => 5,
            Family::PowerEn => 6,
        }
    }

    /// The speculation-queue depth range (counter modulus) characteristic of
    /// the family's hard benchmarks. PowerEN runs deepest — its Fig 7
    /// register sweet spot is 18 rather than 16.
    pub fn counter_moduli(self) -> std::ops::Range<u32> {
        match self {
            Family::Snort => 9..14,
            Family::ClamAV => 10..15,
            Family::PowerEn => 14..19,
        }
    }

    /// Rough keyword-set size for the family's signature machines — drives
    /// the state-count ordering of Table II (Snort ≫ ClamAV ≫ PowerEN).
    pub fn keyword_count(self) -> usize {
        match self {
            Family::Snort => 40,
            Family::ClamAV => 18,
            Family::PowerEn => 6,
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotas_match_table2() {
        assert_eq!(Family::Snort.input_sensitive_quota(), 3);
        assert_eq!(Family::ClamAV.input_sensitive_quota(), 5);
        assert_eq!(Family::PowerEn.input_sensitive_quota(), 6);
    }

    #[test]
    fn poweren_runs_deepest_queues() {
        assert!(Family::PowerEn.counter_moduli().end > Family::Snort.counter_moduli().end);
    }

    #[test]
    fn snort_has_most_keywords() {
        assert!(Family::Snort.keyword_count() > Family::ClamAV.keyword_count());
        assert!(Family::ClamAV.keyword_count() > Family::PowerEn.keyword_count());
    }
}
